//! Arrangement construction cost: subdividing Ω (Fig. 3) at increasing
//! grid resolutions and deployment sizes.

use cool_common::SeedSequence;
use cool_geometry::{AnyRegion, Arrangement, DeploymentKind, DeploymentSpec, Disk, Rect};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_arrangement(c: &mut Criterion) {
    let mut group = c.benchmark_group("arrangement_build");
    group.sample_size(20);
    for &n in &[20usize, 50, 100] {
        let mut rng = SeedSequence::new(5).nth_rng(n as u64);
        let omega = Rect::square(100.0);
        let spec = DeploymentSpec::new(omega, n, DeploymentKind::UniformRandom);
        let regions: Vec<AnyRegion> = spec
            .generate(&mut rng)
            .into_iter()
            .map(|p| Disk::new(p, 15.0).into())
            .collect();
        for &resolution in &[128usize, 256] {
            group.bench_with_input(
                BenchmarkId::new("grid", format!("n{n}_res{resolution}")),
                &(&regions, resolution),
                |b, (regions, resolution)| {
                    b.iter(|| black_box(Arrangement::build(omega, regions, *resolution)));
                },
            );
        }
        for &depth in &[7usize, 8] {
            group.bench_with_input(
                BenchmarkId::new("adaptive", format!("n{n}_depth{depth}")),
                &(&regions, depth),
                |b, (regions, depth)| {
                    b.iter(|| black_box(Arrangement::build_adaptive(omega, regions, *depth)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_arrangement);
criterion_main!(benches);
