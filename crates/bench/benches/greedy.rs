//! Greedy scheduler scaling: naive vs lazy (CELF) across deployment sizes
//! — the ablation behind DESIGN.md's "lazy marginal-gain evaluation" call.

// Benchmarks abort loudly on a broken instance; unwrap/expect are fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use cool_common::SeedSequence;
use cool_core::greedy::{greedy_active_lazy, greedy_active_naive, greedy_passive_naive};
use cool_core::horizon::greedy_horizon;
use cool_core::instances::fig9_instance;
use cool_core::local_search::improve_schedule;
use cool_energy::ChargeCycle;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy");
    for &(n, m) in &[(100usize, 10usize), (200, 20), (400, 40)] {
        let mut rng = SeedSequence::new(1).nth_rng(n as u64);
        let utility = fig9_instance(n, m, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("naive", format!("n{n}_m{m}")),
            &utility,
            |b, u| b.iter(|| black_box(greedy_active_naive(u, 4).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("lazy", format!("n{n}_m{m}")),
            &utility,
            |b, u| b.iter(|| black_box(greedy_active_lazy(u, 4).unwrap())),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("greedy_passive");
    for &(n, m) in &[(100usize, 10usize), (200, 20)] {
        let mut rng = SeedSequence::new(2).nth_rng(n as u64);
        let utility = fig9_instance(n, m, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &utility,
            |b, u| b.iter(|| black_box(greedy_passive_naive(u, 4).unwrap())),
        );
    }
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("horizon_greedy");
    group.sample_size(20);
    for &(n, slots) in &[(40usize, 8usize), (80, 8)] {
        let mut rng = SeedSequence::new(3).nth_rng(n as u64);
        let utility = fig9_instance(n, 8, &mut rng);
        let cycles = vec![ChargeCycle::paper_sunny(); n];
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_L{slots}")),
            &(&utility, &cycles, slots),
            |b, (u, cycles, slots)| b.iter(|| black_box(greedy_horizon(*u, cycles, *slots))),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("local_search");
    for &n in &[100usize, 300] {
        let mut rng = SeedSequence::new(4).nth_rng(n as u64);
        let utility = fig9_instance(n, 20, &mut rng);
        let schedule = greedy_active_naive(&utility, 4).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}")),
            &(&utility, &schedule),
            |b, (u, s)| b.iter(|| black_box(improve_schedule((*s).clone(), *u, 4))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_greedy, bench_extensions);
criterion_main!(benches);
