//! Exact solvers: plain exhaustive enumeration vs submodularity-pruned
//! branch & bound (identical optima, very different costs).

use cool_common::SeedSequence;
use cool_core::instances::random_multi_target;
use cool_core::optimal::{branch_and_bound, exhaustive_optimal};
use cool_core::schedule::ScheduleMode;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_optimal");
    group.sample_size(10);
    for &n in &[6usize, 8] {
        let mut rng = SeedSequence::new(10).nth_rng(n as u64);
        let utility = random_multi_target(n, 2, 0.5, 0.4, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("exhaustive", format!("n{n}_T3")),
            &utility,
            |b, u| b.iter(|| black_box(exhaustive_optimal(u, 3, ScheduleMode::ActiveSlot))),
        );
        group.bench_with_input(
            BenchmarkId::new("branch_and_bound", format!("n{n}_T3")),
            &utility,
            |b, u| b.iter(|| black_box(branch_and_bound(u, 3))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact);
criterion_main!(benches);
