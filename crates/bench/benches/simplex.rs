//! Simplex solve times on scheduling-shaped LPs (the §IV-A.1 relaxation).

// Benchmarks abort loudly on a broken instance; unwrap/expect are fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use cool_common::SeedSequence;
use cool_core::instances::random_multi_target;
use cool_core::lp::LpScheduler;
use cool_core::problem::Problem;
use cool_energy::ChargeCycle;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_schedule");
    group.sample_size(10);
    for &(n, m) in &[(10usize, 3usize), (20, 5), (30, 8)] {
        let mut rng = SeedSequence::new(6).nth_rng(n as u64);
        let utility = random_multi_target(n, m, 0.4, 0.4, &mut rng);
        let problem = Problem::new(utility, ChargeCycle::paper_sunny(), 1).expect("valid instance");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &problem,
            |b, p| {
                b.iter(|| {
                    let mut rng = SeedSequence::new(7).nth_rng(0);
                    black_box(
                        LpScheduler::new(4)
                            .schedule(p, &mut rng)
                            .expect("LP solves"),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
