//! Testbed simulator throughput: full-day (48-slot) runs of the 100-node
//! rooftop under the greedy policy.

// Benchmarks abort loudly on a broken instance; unwrap/expect are fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use cool_common::SeedSequence;
use cool_core::greedy::greedy_schedule;
use cool_core::policy::SchedulePolicy;
use cool_core::problem::Problem;
use cool_energy::ChargeCycle;
use cool_testbed::{RooftopDeployment, TestbedSim};
use cool_utility::DetectionUtility;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_sim_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("testbed_day");
    group.sample_size(20);
    for &n in &[25usize, 100] {
        let mut rng = SeedSequence::new(8).nth_rng(n as u64);
        let deployment =
            RooftopDeployment::new(cool_geometry::Rect::square(45.0), n, 12.0, &mut rng);
        let cycle = ChargeCycle::paper_sunny();
        let utility = DetectionUtility::uniform(n, 0.4);
        let problem = Problem::new(utility.clone(), cycle, 12).expect("valid instance");
        let schedule = greedy_schedule(&problem);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}")),
            &(deployment, schedule, utility),
            |b, (deployment, schedule, utility)| {
                b.iter(|| {
                    let mut sim = TestbedSim::new(deployment.clone(), cycle);
                    let mut rng = SeedSequence::new(9).nth_rng(0);
                    black_box(sim.run(SchedulePolicy::new(schedule.clone()), utility, 48, &mut rng))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim_day);
criterion_main!(benches);
