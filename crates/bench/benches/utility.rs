//! Utility-evaluation benches: incremental evaluators vs from-scratch
//! marginal gains — the per-query cost behind every scheduler loop.

use cool_common::{SeedSequence, SensorId, SensorSet};
use cool_core::instances::random_multi_target;
use cool_utility::{Evaluator, UtilityFunction};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_gains(c: &mut Criterion) {
    let mut group = c.benchmark_group("marginal_gain");
    for &(n, m) in &[(100usize, 10usize), (400, 40)] {
        let mut rng = SeedSequence::new(3).nth_rng(n as u64);
        let utility = random_multi_target(n, m, 0.2, 0.4, &mut rng);

        // A half-full current set.
        let members: Vec<usize> = (0..n).step_by(2).collect();
        let set = SensorSet::from_indices(n, members.iter().copied());
        let mut evaluator = utility.evaluator();
        for &v in &members {
            evaluator.insert(SensorId(v));
        }

        group.bench_with_input(
            BenchmarkId::new("incremental", format!("n{n}_m{m}")),
            &evaluator,
            |b, e| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for v in (1..n).step_by(2) {
                        acc += e.gain(SensorId(v));
                    }
                    black_box(acc)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("from_scratch", format!("n{n}_m{m}")),
            &(&utility, &set),
            |b, (u, s)| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for v in (1..n).step_by(2) {
                        acc += u.marginal_gain(s, SensorId(v));
                    }
                    black_box(acc)
                });
            },
        );
    }
    group.finish();
}

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_full_set");
    for &(n, m) in &[(100usize, 10usize), (400, 40)] {
        let mut rng = SeedSequence::new(4).nth_rng(n as u64);
        let utility = random_multi_target(n, m, 0.2, 0.4, &mut rng);
        let set = SensorSet::full(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &(&utility, &set),
            |b, (u, s)| b.iter(|| black_box(u.eval(s))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gains, bench_eval);
criterion_main!(benches);
