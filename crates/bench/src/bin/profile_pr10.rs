//! Profiling harness for the PR 10 big cell: one greedy solve of the
//! n = 10 000-sensor / m = 100 000-target instance on a single engine,
//! so a sampling profiler sees nothing but that engine's hot path.
//!
//! ```text
//! cargo build --release -p cool-bench --bin profile_pr10
//! gprofng collect app -o walk.er ./target/release/profile_pr10 partwalk
//! gprofng collect app -o soa.er  ./target/release/profile_pr10 soa
//! gprofng display text -functions walk.er soa.er
//! ```
//!
//! The instance and seed match `measure_pr10`'s `COOL_BENCH_PR10_BIG=1`
//! cell exactly (seed 2011, `SeedSequence` child 2, index `SIZES.len()`),
//! so the printed wall-clock should reproduce the checked-in
//! `BENCH_PR10.json` row and both arms must report the same assignment
//! hash. `m`/`n` can be overridden as trailing arguments for smaller
//! profile runs.
#![allow(clippy::unwrap_used)] // application binary: a broken solve should abort loudly

use cool_bench::experiments::perf_sparse::{sparse_instance, BIG_CELL, SIZES};
use cool_common::SeedSequence;
use cool_core::greedy::greedy_active_lazy_with_threads;
use cool_utility::PartWalkSumUtility;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arm = args.first().map_or("soa", String::as_str);
    let m = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(BIG_CELL.0);
    let n = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(BIG_CELL.1);

    let mut rng = SeedSequence::new(2011).child(2).nth_rng(SIZES.len() as u64);
    eprintln!("building m = {m}, n = {n} instance…");
    let utility = sparse_instance(n, m, &mut rng);

    let start = Instant::now();
    let schedule = match arm {
        "soa" => greedy_active_lazy_with_threads(&utility, 4, 1).unwrap(),
        "partwalk" => {
            let walk = PartWalkSumUtility::new(utility.clone());
            greedy_active_lazy_with_threads(&walk, 4, 1).unwrap()
        }
        other => {
            eprintln!("unknown arm {other:?} (want `soa` or `partwalk`)");
            std::process::exit(2);
        }
    };
    let ms = start.elapsed().as_secs_f64() * 1e3;

    // FNV-1a over the assignment: a cheap cross-arm identity witness.
    let hash = schedule
        .assignment()
        .iter()
        .fold(0xcbf2_9ce4_8422_2325_u64, |h, &s| {
            (h ^ s as u64).wrapping_mul(0x0000_0100_0000_01b3)
        });
    println!("{arm}: {ms:.1} ms, assignment hash {hash:016x}");
}
