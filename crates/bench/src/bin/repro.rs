//! `repro` — regenerate the paper's figures and tables.
//!
//! ```text
//! repro <experiment>... [--seed N] [--out DIR]
//! repro all
//! repro list
//! ```
//!
//! Prints each experiment's tables (the same rows/series the paper
//! reports) and writes CSVs under `--out` (default `results/`).

use cool_bench::experiments;
use std::path::PathBuf;
use std::process::ExitCode;

/// Writes to stdout, exiting quietly if the reader closed the pipe early
/// (`cool ... | head` must not panic).
fn emit(text: &str) {
    use std::io::Write;
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut seed = 2011u64; // the paper's year, for want of a better default
    let mut out = PathBuf::from("results");

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed needs an integer"),
            },
            "--out" => match iter.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => return usage("--out needs a directory"),
            },
            "list" => {
                use std::fmt::Write as _;
                let mut out = String::from("available experiments:\n");
                for id in experiments::ALL {
                    let _ = writeln!(out, "  {id}");
                }
                emit(&out);
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(experiments::ALL.iter().map(ToString::to_string)),
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other}"));
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        return usage("no experiment given");
    }

    for id in &ids {
        let Some(report) = experiments::run(id, seed) else {
            eprintln!("unknown experiment `{id}` — try `repro list`");
            return ExitCode::FAILURE;
        };
        emit(&report.to_string());
        match report.write_csvs(&out) {
            Ok(paths) => {
                for p in paths {
                    emit(&format!("wrote {}\n", p.display()));
                }
            }
            Err(e) => {
                eprintln!("failed writing CSVs to {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
        }
        emit("\n");
    }
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}");
    eprintln!("usage: repro <experiment>... [--seed N] [--out DIR] | repro all | repro list");
    ExitCode::FAILURE
}
