//! Ablations of the design choices DESIGN.md calls out: lazy (CELF) vs
//! naive greedy, incremental vs from-scratch utility evaluation, and the
//! greedy against the coverage-blind baselines.

use crate::ExperimentReport;
use cool_common::{SeedSequence, SensorId, Table};
use cool_core::baselines::{random_schedule, round_robin_schedule, static_schedule};
use cool_core::greedy::{greedy_active_lazy, greedy_active_naive, greedy_schedule};
use cool_core::instances::{fig9_instance, random_multi_target};
use cool_core::problem::Problem;
use cool_energy::ChargeCycle;
use cool_utility::{Evaluator, UtilityFunction};
use std::time::Instant;

/// Runs the ablation suite.
pub fn run(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new("ablation");
    let seeds = SeedSequence::new(seed);
    let cycle = ChargeCycle::paper_sunny();
    let t_slots = cycle.slots_per_period();

    // 1. Lazy vs naive greedy: identical outputs, different wall time.
    let mut lazy_table = Table::new([
        "n",
        "m",
        "naive ms",
        "lazy ms",
        "speedup",
        "identical output",
    ]);
    for (i, (n, m)) in [(100usize, 10usize), (200, 20), (400, 30)]
        .iter()
        .enumerate()
    {
        let mut rng = seeds.child(1).nth_rng(i as u64);
        let u = fig9_instance(*n, *m, &mut rng);
        let start = Instant::now();
        let naive = greedy_active_naive(&u, t_slots).unwrap();
        let naive_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let lazy = greedy_active_lazy(&u, t_slots).unwrap();
        let lazy_ms = start.elapsed().as_secs_f64() * 1e3;
        lazy_table.row([
            n.to_string(),
            m.to_string(),
            format!("{naive_ms:.1}"),
            format!("{lazy_ms:.1}"),
            format!("{:.1}×", naive_ms / lazy_ms.max(1e-6)),
            (naive.assignment() == lazy.assignment()).to_string(),
        ]);
    }
    report.add_table("lazy_vs_naive", lazy_table);

    // 2. Incremental evaluator vs from-scratch evaluation for the greedy's
    //    gain queries.
    let mut eval_table = Table::new(["n", "m", "incremental ms", "from-scratch ms", "speedup"]);
    for (i, (n, m)) in [(60usize, 10usize), (120, 20)].iter().enumerate() {
        let mut rng = seeds.child(2).nth_rng(i as u64);
        let u = random_multi_target(*n, *m, 0.3, 0.4, &mut rng);

        let start = Instant::now();
        let _ = greedy_active_naive(&u, t_slots).unwrap();
        let incremental_ms = start.elapsed().as_secs_f64() * 1e3;

        // From-scratch variant: the same loop with marginal_gain on sets.
        let start = Instant::now();
        let mut sets = vec![cool_common::SensorSet::new(*n); t_slots];
        let mut unassigned: Vec<usize> = (0..*n).collect();
        while !unassigned.is_empty() {
            let mut best = (f64::NEG_INFINITY, 0usize, 0usize);
            for &v in &unassigned {
                for (t, set) in sets.iter().enumerate() {
                    let gain = u.marginal_gain(set, SensorId(v));
                    if gain > best.0 {
                        best = (gain, v, t);
                    }
                }
            }
            sets[best.2].insert(SensorId(best.1));
            unassigned.retain(|&x| x != best.1);
        }
        let scratch_ms = start.elapsed().as_secs_f64() * 1e3;

        eval_table.row([
            n.to_string(),
            m.to_string(),
            format!("{incremental_ms:.1}"),
            format!("{scratch_ms:.1}"),
            format!("{:.1}×", scratch_ms / incremental_ms.max(1e-6)),
        ]);
    }
    report.add_table("incremental_vs_scratch", eval_table);

    // 3. Greedy vs baselines across n (utility, not time).
    let mut base_table = Table::new(["n", "m", "greedy", "round-robin", "random", "static"]);
    for (i, (n, m)) in [(100usize, 10usize), (300, 30)].iter().enumerate() {
        let mut rng = seeds.child(3).nth_rng(i as u64);
        let u = fig9_instance(*n, *m, &mut rng);
        let problem = Problem::new(u, cycle, 1).expect("valid instance");
        let g = problem.average_utility_per_target_slot(&greedy_schedule(&problem));
        let rr = problem.average_utility_per_target_slot(&round_robin_schedule(&problem));
        let rnd = problem.average_utility_per_target_slot(&random_schedule(&problem, &mut rng));
        let st = problem.average_utility_per_target_slot(&static_schedule(&problem));
        base_table.row([
            n.to_string(),
            m.to_string(),
            format!("{g:.4}"),
            format!("{rr:.4}"),
            format!("{rnd:.4}"),
            format!("{st:.4}"),
        ]);
    }
    report.add_table("baselines", base_table);

    // 4. Evaluator correctness sanity on a large instance: value after bulk
    //    inserts equals from-scratch eval.
    let mut rng = seeds.child(4).nth_rng(0);
    let u = fig9_instance(200, 20, &mut rng);
    let mut evaluator = u.evaluator();
    let mut set = cool_common::SensorSet::new(200);
    for v in (0..200).step_by(3) {
        evaluator.insert(SensorId(v));
        set.insert(SensorId(v));
    }
    let drift = (evaluator.value() - u.eval(&set)).abs();
    let mut drift_table = Table::new(["check", "value"]);
    drift_table.row(["incremental-vs-scratch drift", &format!("{drift:.2e}")]);
    report.add_table("numerical_drift", drift_table);

    // 5. Ready-state leakage: the paper assumes idle (ready) nodes hold
    //    their charge; real hardware leaks. How fast does achieved utility
    //    degrade as the idealisation is relaxed?
    let mut leakage_table = Table::new([
        "ready leakage per slot",
        "avg utility",
        "activation rate",
        "with 5% tolerance",
    ]);
    {
        use cool_core::policy::SchedulePolicy;
        use cool_testbed::{RooftopDeployment, TestbedSim};
        use cool_utility::DetectionUtility;

        let mut rng = seeds.child(5).nth_rng(0);
        let deployment =
            RooftopDeployment::new(cool_geometry::Rect::square(30.0), 25, 10.0, &mut rng);
        let utility = DetectionUtility::uniform(25, 0.4);
        let problem = Problem::new(utility.clone(), cycle, 12).expect("valid instance");
        let schedule = cool_core::greedy::greedy_schedule(&problem);
        for leakage in [0.0, 0.02, 0.05, 0.1, 0.2] {
            let mut sim = TestbedSim::new(deployment.clone(), cycle).with_ready_leakage(leakage);
            let metrics = sim.run(
                SchedulePolicy::new(schedule.clone()),
                &utility,
                48,
                &mut seeds.child(5).nth_rng(1),
            );
            let mut tolerant_sim = TestbedSim::new(deployment.clone(), cycle)
                .with_ready_leakage(leakage)
                .with_activation_tolerance(0.05);
            let tolerant = tolerant_sim.run(
                SchedulePolicy::new(schedule.clone()),
                &utility,
                48,
                &mut seeds.child(5).nth_rng(1),
            );
            leakage_table.row([
                format!("{leakage:.2}"),
                format!("{:.4}", metrics.average_utility()),
                format!("{:.3}", metrics.activation_success_rate()),
                format!("{:.4}", tolerant.average_utility()),
            ]);
        }
    }
    report.add_table("ready_leakage", leakage_table);

    report.add_note(
        "Lazy evaluation and incremental evaluators are pure accelerations: outputs \
         are bit-identical; the greedy beats every coverage-blind baseline, with \
         `static` (everyone in slot 0) collapsing to ≈ greedy/T.",
    );
    report.add_note(
        "Ready-state leakage ablation: small leakage (≤ 1/ρ per slot) is absorbed \
         by the next top-up slot at the cost of refused activations right after \
         idle slots; the paper's zero-leakage idealisation is the leakage→0 row.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_output_identical_and_baselines_ordered() {
        let r = run(5);
        let (_, lazy) = r
            .tables()
            .iter()
            .find(|(n, _)| n == "lazy_vs_naive")
            .unwrap();
        for line in lazy.to_csv().lines().skip(1) {
            assert!(line.ends_with("true"), "lazy output differs: {line}");
        }
        let (_, base) = r.tables().iter().find(|(n, _)| n == "baselines").unwrap();
        for line in base.to_csv().lines().skip(1) {
            let cells: Vec<f64> = line
                .split(',')
                .skip(2)
                .map(|c| c.parse().unwrap())
                .collect();
            let (g, rr, rnd, st) = (cells[0], cells[1], cells[2], cells[3]);
            assert!(
                g + 1e-9 >= rr && g + 1e-9 >= rnd && g + 1e-9 >= st,
                "greedy dominates: {line}"
            );
            assert!(st < g, "static is strictly worse: {line}");
        }
    }

    #[test]
    fn numerical_drift_is_negligible() {
        let r = run(6);
        let (_, drift) = r
            .tables()
            .iter()
            .find(|(n, _)| n == "numerical_drift")
            .unwrap();
        let v: f64 = drift
            .to_csv()
            .lines()
            .nth(1)
            .unwrap()
            .split(',')
            .next_back()
            .unwrap()
            .parse()
            .unwrap();
        assert!(v < 1e-9);
    }
}
