//! Empirical approximation ratios for the greedy (Lemma 4.1, Theorems 4.3
//! and 4.4): greedy / exhaustive-optimal across random instances, for both
//! the `ρ > 1` and `ρ ≤ 1` schedulers, plus the period-repetition
//! equivalence of Theorem 4.3.

use crate::ExperimentReport;
use cool_common::{SeedSequence, Table};
use cool_core::greedy::{greedy_active_naive, greedy_passive_naive};
use cool_core::instances::random_multi_target;
use cool_core::optimal::exhaustive_optimal;
use cool_core::schedule::ScheduleMode;
use cool_utility::UtilityFunction;

const TRIALS: usize = 40;

struct RatioStats {
    min: f64,
    mean: f64,
    at_optimum: usize,
}

fn ratio_sweep(
    seeds: SeedSequence,
    slots: usize,
    mode: ScheduleMode,
    n_range: (usize, usize),
) -> RatioStats {
    let mut min: f64 = f64::INFINITY;
    let mut sum = 0.0;
    let mut at_optimum = 0;
    for trial in 0..TRIALS {
        let mut rng = seeds.nth_rng(trial as u64);
        let n = n_range.0 + (trial % (n_range.1 - n_range.0 + 1));
        let m = 1 + trial % 3;
        let u = random_multi_target(n, m, 0.6, 0.4, &mut rng);
        let greedy = match mode {
            ScheduleMode::ActiveSlot => greedy_active_naive(&u, slots).unwrap(),
            ScheduleMode::PassiveSlot => greedy_passive_naive(&u, slots).unwrap(),
        };
        let opt = exhaustive_optimal(&u, slots, mode);
        let g = greedy.period_utility(&u);
        let o = opt.period_utility(&u);
        let ratio = if o > 0.0 { g / o } else { 1.0 };
        assert!(
            ratio + 1e-9 >= 0.5,
            "trial {trial}: ratio {ratio} violates the ½-approximation"
        );
        min = min.min(ratio);
        sum += ratio;
        if ratio > 1.0 - 1e-9 {
            at_optimum += 1;
        }
    }
    RatioStats {
        min,
        mean: sum / TRIALS as f64,
        at_optimum,
    }
}

/// Runs the approximation-ratio study.
pub fn run(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new("approx");
    let seeds = SeedSequence::new(seed);

    let mut table = Table::new([
        "scheduler",
        "T",
        "trials",
        "min ratio",
        "mean ratio",
        "optimal found",
        "guarantee",
    ]);
    for (label, slots, mode, child) in [
        (
            "greedy active (ρ>1)",
            3usize,
            ScheduleMode::ActiveSlot,
            0u64,
        ),
        ("greedy active (ρ>1)", 4, ScheduleMode::ActiveSlot, 1),
        ("greedy passive (ρ≤1)", 3, ScheduleMode::PassiveSlot, 2),
        ("greedy passive (ρ≤1)", 4, ScheduleMode::PassiveSlot, 3),
    ] {
        let stats = ratio_sweep(seeds.child(child), slots, mode, (3, 7));
        table.row([
            label.to_string(),
            slots.to_string(),
            TRIALS.to_string(),
            format!("{:.4}", stats.min),
            format!("{:.4}", stats.mean),
            format!("{}/{}", stats.at_optimum, TRIALS),
            "0.5".to_string(),
        ]);
    }
    report.add_table("ratios", table);

    // Theorem 4.3: repeating the one-period schedule α times multiplies the
    // utility exactly by α, so the horizon ratio equals the period ratio.
    let mut rng = seeds.child(9).nth_rng(0);
    let u = random_multi_target(6, 2, 0.6, 0.4, &mut rng);
    let schedule = greedy_active_naive(&u, 4).unwrap();
    let per_period = schedule.period_utility(&u);
    let mut repeat = Table::new(["alpha", "total utility", "alpha × period utility"]);
    for alpha in [1usize, 2, 4, 12] {
        // Summing the repeated schedule slot-by-slot:
        let total: f64 = (0..alpha)
            .map(|_| (0..4).map(|t| u.eval(&schedule.active_set(t))).sum::<f64>())
            .sum();
        repeat.row([
            alpha.to_string(),
            format!("{total:.9}"),
            format!("{:.9}", alpha as f64 * per_period),
        ]);
    }
    report.add_table("theorem43_repetition", repeat);

    // Greedy + 1-exchange local search: does post-optimisation close the
    // residual gap to the optimum on the instances where greedy is not
    // already optimal?
    let mut ls_table = Table::new([
        "trials",
        "greedy at optimum",
        "greedy+LS at optimum",
        "mean ratio greedy",
        "mean ratio greedy+LS",
    ]);
    {
        let mut greedy_opt = 0usize;
        let mut ls_opt = 0usize;
        let mut greedy_sum = 0.0;
        let mut ls_sum = 0.0;
        let trials = 60usize;
        for trial in 0..trials {
            let mut rng = seeds.child(20).nth_rng(trial as u64);
            let n = 3 + trial % 5;
            let u = random_multi_target(n, 2, 0.6, 0.4, &mut rng);
            let slots = 3;
            let greedy = greedy_active_naive(&u, slots).unwrap();
            let improved = cool_core::local_search::improve_schedule(greedy.clone(), &u, 32);
            let opt = exhaustive_optimal(&u, slots, ScheduleMode::ActiveSlot).period_utility(&u);
            let g_ratio = greedy.period_utility(&u) / opt;
            let l_ratio = improved.final_value / opt;
            assert!(l_ratio >= g_ratio - 1e-12, "local search never degrades");
            greedy_sum += g_ratio;
            ls_sum += l_ratio;
            if g_ratio > 1.0 - 1e-9 {
                greedy_opt += 1;
            }
            if l_ratio > 1.0 - 1e-9 {
                ls_opt += 1;
            }
        }
        ls_table.row([
            trials.to_string(),
            format!("{greedy_opt}/{trials}"),
            format!("{ls_opt}/{trials}"),
            format!("{:.4}", greedy_sum / trials as f64),
            format!("{:.4}", ls_sum / trials as f64),
        ]);
    }
    report.add_table("local_search", ls_table);

    report.add_note(
        "Every observed ratio is far above the proven ½ bound; the greedy finds \
         the exact optimum on a large fraction of random instances — matching the \
         paper's 'performs even better than the theoretical bound'.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_exceed_guarantee() {
        // `run` asserts ≥ 0.5 internally for every trial.
        let r = run(11);
        let (_, table) = &r.tables()[0];
        for line in table.to_csv().lines().skip(1) {
            let min_ratio: f64 = line.split(',').nth(3).unwrap().parse().unwrap();
            assert!(min_ratio >= 0.5);
            assert!(
                min_ratio > 0.8,
                "empirically ratios are high, got {min_ratio}"
            );
        }
    }

    #[test]
    fn repetition_identity_exact() {
        let r = run(12);
        let (_, table) = r
            .tables()
            .iter()
            .find(|(n, _)| n == "theorem43_repetition")
            .unwrap();
        for line in table.to_csv().lines().skip(1) {
            let mut cells = line.split(',');
            let _alpha = cells.next();
            let total: f64 = cells.next().unwrap().parse().unwrap();
            let product: f64 = cells.next().unwrap().parse().unwrap();
            assert!((total - product).abs() < 1e-9);
        }
    }
}
