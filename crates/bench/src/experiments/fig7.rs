//! Fig. 7 — time vs light strength vs charging voltage, plus the in-text
//! §VI-A parameter extraction (`T_d = 15`, `T_r ≈ 45`, ρ stable per 2-hour
//! window).

use crate::svg::{LineChart, Series};
use crate::ExperimentReport;
use cool_common::{SeedSequence, Table};
use cool_energy::{core_window_stability, estimate_pattern, fit_pattern};
use cool_testbed::NodeTraceSet;

/// Nodes shown in the paper's figure.
const NODES: [usize; 2] = [5, 6];
/// July 15th–17th.
const DAYS: usize = 3;

/// Runs the charging-pattern measurement reproduction.
pub fn run(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new("fig7");
    let set = NodeTraceSet::generate(&NODES, DAYS, SeedSequence::new(seed));

    // Hourly trace excerpt per node/day (the figure's series, decimated).
    for trace in set.traces() {
        let mut table = Table::new([
            "day",
            "weather",
            "hour",
            "light W/m²",
            "voltage V",
            "charge mA",
        ]);
        for (d, day) in trace.days.iter().enumerate() {
            for sample in day.samples().iter().filter(|s| s.minute % 60.0 == 0.0) {
                table.row([
                    format!("{}", 15 + d),
                    set.weather()[d].to_string(),
                    format!("{:02}:00", (sample.minute / 60.0) as u32),
                    format!("{:.1}", sample.light_wm2),
                    format!("{:.3}", sample.voltage),
                    format!("{:.2}", sample.charge_current_ma),
                ]);
            }
        }
        report.add_table(format!("node{}_trace", trace.node), table);

        // The figure itself: one day of light strength and charging voltage
        // (voltage scaled ×100 to share the axis, as labelled).
        let day0 = &trace.days[0];
        let light: Vec<(f64, f64)> = day0
            .samples()
            .iter()
            .step_by(10)
            .map(|s| (s.minute / 60.0, s.light_wm2))
            .collect();
        let volts: Vec<(f64, f64)> = day0
            .samples()
            .iter()
            .step_by(10)
            .map(|s| (s.minute / 60.0, s.voltage * 100.0))
            .collect();
        report.add_chart(
            format!("node{}_day15", trace.node),
            LineChart::new(
                format!("Fig. 7 — node {} on the 15th (sunny)", trace.node),
                "hour of day",
                "light (W/m²) / voltage (V × 100)",
            )
            .with_series(Series::new("light strength", light))
            .with_series(Series::new("charging voltage ×100", volts))
            .render(),
        );
    }

    // The §VI-A claim: light varies a lot, voltage holds level, ρ stable.
    let mut claims = Table::new([
        "node",
        "day",
        "weather",
        "light spread",
        "voltage spread",
        "T_r est (min)",
        "rho est",
        "window CV",
    ]);
    for trace in set.traces() {
        for (d, day) in trace.days.iter().enumerate() {
            let windows = estimate_pattern(day, 120.0, 30.0);
            let fitted = fit_pattern(&windows, 15.0);
            let cv = core_window_stability(&windows);
            claims.row([
                trace.node.to_string(),
                format!("{}", 15 + d),
                set.weather()[d].to_string(),
                format!("{:.2}", day.light_relative_spread()),
                format!("{:.3}", day.daytime_voltage_relative_spread()),
                fitted.map_or("n/a".into(), |p| format!("{:.1}", p.recharge_minutes)),
                fitted.map_or("n/a".into(), |p| format!("{:.2}", p.rho())),
                cv.map_or("n/a".into(), |c| format!("{c:.3}")),
            ]);
        }
    }
    report.add_table("pattern_stability", claims);

    report.add_note(
        "Paper: light strength varies significantly within a day while charging \
         voltage stays level once harvesting starts; sunny-day pattern T_d=15min, \
         T_r=45min (rho=3).",
    );
    report.add_note(
        "Reproduction: synthetic irradiance + saturating charge controller; see the \
         voltage-spread column (small) vs light-spread column (large), and T_r \
         estimates near 45 min on sunny days with small 2-hour-window CV.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_both_nodes_and_claims() {
        let r = run(2009);
        assert_eq!(r.tables().len(), 3);
        assert!(r.tables().iter().any(|(n, _)| n == "node5_trace"));
        assert!(r.tables().iter().any(|(n, _)| n == "node6_trace"));
        let (_, claims) = r
            .tables()
            .iter()
            .find(|(n, _)| n == "pattern_stability")
            .unwrap();
        assert_eq!(claims.len(), 6, "2 nodes × 3 days");
    }

    #[test]
    fn sunny_first_day_estimates_paper_pattern() {
        let r = run(2009);
        let (_, claims) = r
            .tables()
            .iter()
            .find(|(n, _)| n == "pattern_stability")
            .unwrap();
        // Render and spot-check the first row mentions a T_r close to 45.
        let csv = claims.to_csv();
        let first_row = csv.lines().nth(1).unwrap();
        assert!(first_row.contains("sunny"));
    }
}
