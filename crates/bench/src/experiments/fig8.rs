//! Fig. 8 — average utility vs number of sensors for m = 1..4 targets:
//! greedy against the closed-form upper bound (m = 1) and against the
//! optimal-by-enumeration reference (small n).

use crate::svg::{LineChart, Series};
use crate::ExperimentReport;
use cool_common::{SeedSequence, Table};
use cool_core::bounds::single_target_upper_bound;
use cool_core::greedy::greedy_schedule;
use cool_core::instances::fig8_instance;
use cool_core::optimal::branch_and_bound;
use cool_core::problem::Problem;
use cool_core::symmetric::optimal_partition_dp;
use cool_energy::ChargeCycle;
use cool_utility::AnyUtility;

const SENSOR_COUNTS: [usize; 5] = [20, 40, 60, 80, 100];
const TRIALS: usize = 5;

/// Per-target upper bound averaged over targets: for target `i` with
/// `|V(O_i)|` coverers, `1 − (1−p)^⌈|V(O_i)|/T⌉`.
fn multi_target_bound(u: &cool_utility::SumUtility, t: usize, p: f64) -> f64 {
    let bounds: Vec<f64> = u
        .parts()
        .iter()
        .map(|part| match part {
            AnyUtility::Detection(d) => single_target_upper_bound(d.coverage().len(), t, p),
            _ => 1.0,
        })
        .collect();
    bounds.iter().sum::<f64>() / bounds.len() as f64
}

/// Runs the Fig. 8 sweep.
pub fn run(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new("fig8");
    let seeds = SeedSequence::new(seed);
    let cycle = ChargeCycle::paper_sunny();
    let periods = 12; // a 12-hour day of 4-slot hours

    for m in 1..=4usize {
        let mut greedy_points = Vec::new();
        let mut bound_points = Vec::new();
        let mut table = if m == 1 {
            Table::new([
                "n",
                "greedy avg utility",
                "exact optimum (DP)",
                "upper bound",
                "gap %",
            ])
        } else {
            Table::new(["n", "greedy avg utility", "upper bound", "gap %"])
        };
        for &n in &SENSOR_COUNTS {
            let mut greedy_sum = 0.0;
            let mut bound_sum = 0.0;
            for trial in 0..TRIALS {
                let mut rng = seeds.child(m as u64).nth_rng((n * TRIALS + trial) as u64);
                let utility = fig8_instance(n, m, &mut rng);
                let bound = multi_target_bound(&utility, cycle.slots_per_period(), 0.4);
                let problem = Problem::new(utility, cycle, periods).expect("valid instance");
                let schedule = greedy_schedule(&problem);
                greedy_sum += problem.average_utility_per_target_slot(&schedule);
                bound_sum += bound;
            }
            let greedy = greedy_sum / TRIALS as f64;
            let bound = bound_sum / TRIALS as f64;
            greedy_points.push((n as f64, greedy));
            bound_points.push((n as f64, bound));
            if m == 1 {
                // Single uniform target is a symmetric instance: the O(T·n²)
                // DP gives the exact optimum even at n = 100, where T^n
                // enumeration is unthinkable.
                let t = cycle.slots_per_period();
                let exact = optimal_partition_dp(n, t, |k| {
                    1.0 - 0.6f64.powi(i32::try_from(k).unwrap_or(i32::MAX))
                })
                .value
                    / t as f64;
                table.row([
                    n.to_string(),
                    format!("{greedy:.6}"),
                    format!("{exact:.6}"),
                    format!("{bound:.6}"),
                    format!("{:.2}", (bound - greedy) / bound * 100.0),
                ]);
            } else {
                table.row([
                    n.to_string(),
                    format!("{greedy:.6}"),
                    format!("{bound:.6}"),
                    format!("{:.2}", (bound - greedy) / bound * 100.0),
                ]);
            }
        }
        report.add_table(format!("m{m}"), table);
        report.add_chart(
            format!("m{m}"),
            LineChart::new(
                format!("Fig. 8({}) — m = {m}", char::from(b'a' + (m - 1) as u8)),
                "number of sensor nodes",
                "average utility",
            )
            .with_series(Series::new("greedy", greedy_points))
            .with_series(Series::new("upper bound", bound_points))
            .render(),
        );
    }

    // Optimal-by-enumeration comparison, feasible at small n (the paper
    //'s "optimal obtained by enumerating all possible scheduling").
    let mut opt_table = Table::new(["m", "n", "greedy", "optimal (B&B)", "ratio"]);
    for m in 1..=4usize {
        for n in [4usize, 6, 8, 10] {
            let mut rng = seeds.child(100 + m as u64).nth_rng(n as u64);
            let utility = fig8_instance(n, m, &mut rng);
            let problem = Problem::new(utility.clone(), cycle, 1).expect("valid instance");
            let greedy = greedy_schedule(&problem).period_utility(&utility);
            let optimal =
                branch_and_bound(&utility, cycle.slots_per_period()).period_utility(&utility);
            opt_table.row([
                m.to_string(),
                n.to_string(),
                format!("{greedy:.6}"),
                format!("{optimal:.6}"),
                format!("{:.4}", greedy / optimal.max(f64::MIN_POSITIVE)),
            ]);
        }
    }
    report.add_table("greedy_vs_optimal", opt_table);

    report.add_note(
        "Paper Fig. 8: greedy tracks the optimum/upper bound closely for m = 1..4, \
         utility increasing in n; e.g. m=1 rises from ≈0.92 (n=20) to ≈0.9834 (n=100).",
    );
    report.add_note(
        "Reproduction: m=1 matches the paper's closed-form curve exactly \
         (1 − 0.6^(n/4)); multi-target coverage draws are random (the paper does \
         not specify its coverage matrix), so absolute levels differ while the \
         shape — greedy ≈ bound, increasing in n — holds. Ratios to the true \
         optimum are ≥ 0.99 on all enumerable instances.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_target_matches_closed_form() {
        let r = run(42);
        let (_, m1) = &r.tables()[0];
        let csv = m1.to_csv();
        // n = 20 row: greedy = 1 − 0.6^5 = 0.922..., equal to the DP optimum.
        let row = csv.lines().nth(1).unwrap();
        assert!(row.starts_with("20,0.9222"), "row was {row}");
        let cells: Vec<&str> = row.split(',').collect();
        assert_eq!(
            cells[1], cells[2],
            "greedy equals the exact symmetric optimum"
        );
        // n = 100 row: greedy = 1 − 0.6^25 ≈ 0.9999972.
        let row = csv.lines().nth(5).unwrap();
        assert!(row.starts_with("100,0.99999"), "row was {row}");
    }

    #[test]
    fn greedy_is_near_optimal_on_enumerable_instances() {
        let r = run(43);
        let (_, table) = r
            .tables()
            .iter()
            .find(|(n, _)| n == "greedy_vs_optimal")
            .unwrap();
        for line in table.to_csv().lines().skip(1) {
            let ratio: f64 = line.split(',').next_back().unwrap().parse().unwrap();
            assert!(ratio >= 0.9, "greedy/optimal ratio {ratio} in {line}");
            assert!(ratio <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn four_target_tables_present() {
        let r = run(44);
        for m in 1..=4 {
            assert!(r.tables().iter().any(|(n, _)| n == &format!("m{m}")));
        }
    }
}
