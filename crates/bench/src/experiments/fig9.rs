//! Fig. 9 — average utility per target per slot for n ∈ {100..500},
//! m ∈ {10..50}: the large-scale simulation driven by the deployment
//! geometry. Cells of the (n, m) sweep run on scoped threads with
//! per-cell deterministic seeding.

use crate::svg::{LineChart, Series};
use crate::ExperimentReport;
use cool_common::{default_sweep_threads, parallel_map, SeedSequence, Table};
use cool_core::greedy::greedy_schedule_lazy;
use cool_core::instances::fig9_instance;
use cool_core::problem::Problem;
use cool_energy::ChargeCycle;

const SENSOR_COUNTS: [usize; 5] = [100, 200, 300, 400, 500];
const TARGET_COUNTS: [usize; 5] = [10, 20, 30, 40, 50];
const TRIALS: usize = 3;

/// Runs the Fig. 9 sweep. Rows are target counts `m`, columns sensor
/// counts `n` — the same series layout as the paper's bar groups.
pub fn run(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new("fig9");
    let seeds = SeedSequence::new(seed);
    let cycle = ChargeCycle::paper_sunny();
    // 30 daytime periods, as in the paper's run.
    let periods = 30 * cycle.periods_in_hours(12.0);

    let cells: Vec<(usize, usize)> = TARGET_COUNTS
        .iter()
        .flat_map(|&m| SENSOR_COUNTS.iter().map(move |&n| (m, n)))
        .collect();
    let averages = parallel_map(default_sweep_threads(), cells, |(m, n)| {
        let mut sum = 0.0;
        for trial in 0..TRIALS {
            let mut rng = seeds.child(m as u64).nth_rng((n * TRIALS + trial) as u64);
            let utility = fig9_instance(n, m, &mut rng);
            let problem = Problem::new(utility, cycle, periods).expect("valid instance");
            let schedule = greedy_schedule_lazy(&problem);
            sum += problem.average_utility_per_target_slot(&schedule);
        }
        sum / TRIALS as f64
    });

    let mut table = Table::new(["m \\ n", "100", "200", "300", "400", "500"]);
    let mut min_small_n: f64 = 1.0; // n ∈ {100, 200}
    let mut min_large_n: f64 = 1.0; // n ∈ {300..500}
    for (row, &m) in TARGET_COUNTS.iter().enumerate() {
        let mut cells_text = vec![format!("{m}")];
        for (col, &n) in SENSOR_COUNTS.iter().enumerate() {
            let avg = averages[row * SENSOR_COUNTS.len() + col];
            if n <= 200 {
                min_small_n = min_small_n.min(avg);
            } else {
                min_large_n = min_large_n.min(avg);
            }
            cells_text.push(format!("{avg:.4}"));
        }
        table.row(cells_text);
    }
    report.add_table("utility_by_n_m", table);

    let mut chart = LineChart::new(
        "Fig. 9 — average utility vs deployment scale",
        "number of sensors",
        "average utility per target per slot",
    )
    .with_y_range(0.5, 1.0);
    for (row, &m) in TARGET_COUNTS.iter().enumerate() {
        let points: Vec<(f64, f64)> = SENSOR_COUNTS
            .iter()
            .enumerate()
            .map(|(col, &n)| (n as f64, averages[row * SENSOR_COUNTS.len() + col]))
            .collect();
        chart = chart.with_series(Series::new(format!("m = {m}"), points));
    }
    report.add_chart("utility_by_n", chart.render());

    let mut floors = Table::new(["band", "paper floor", "measured min"]);
    floors.row(["n = 100–200", "0.69", &format!("{min_small_n:.4}")]);
    floors.row(["n = 300–500", "0.78", &format!("{min_large_n:.4}")]);
    report.add_table("utility_floors", floors);

    report.add_note(
        "Paper: avg utility ≥ 0.69 for 100–200 sensors, ≥ 0.78 for 300–500; \
         always ≥ 0.5, corroborating the ½-approximation.",
    );
    report.add_note(
        "Reproduction: geometric deployments (region side 500·(n/100)^0.4, radius \
         100) — see DESIGN.md for why the paper's unspecified region size is \
         filled in this way. Utility grows with n, is ≥ 0.5 everywhere, and the \
         band floors land on the paper's (0.69 / 0.78).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline property of Fig. 9 — utility floors in the paper's
    /// bands and the global ≥ 0.5 guarantee (this is the slowest unit test
    /// in the workspace; it runs the full sweep once).
    #[test]
    fn floors_hold() {
        let r = run(99);
        let (_, floors) = r
            .tables()
            .iter()
            .find(|(n, _)| n == "utility_floors")
            .unwrap();
        let csv = floors.to_csv();
        let small: f64 = csv
            .lines()
            .nth(1)
            .unwrap()
            .split(',')
            .next_back()
            .unwrap()
            .parse()
            .unwrap();
        let large: f64 = csv
            .lines()
            .nth(2)
            .unwrap()
            .split(',')
            .next_back()
            .unwrap()
            .parse()
            .unwrap();
        assert!(small >= 0.5, "½-approximation floor: {small}");
        assert!(large >= 0.5, "½-approximation floor: {large}");
        assert!(
            (small - 0.69).abs() < 0.12,
            "n≤200 floor near paper's 0.69: {small}"
        );
        assert!(
            (large - 0.78).abs() < 0.12,
            "n≥300 floor near paper's 0.78: {large}"
        );
        assert!(large > small, "more sensors help");
    }

    /// The parallel sweep is deterministic: same seed, same table.
    #[test]
    fn sweep_is_deterministic() {
        let a = run(123);
        let b = run(123);
        assert_eq!(a.tables()[0].1.to_csv(), b.tables()[0].1.to_csv());
    }
}
