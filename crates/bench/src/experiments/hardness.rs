//! §III — the NP-hardness gadget behaving exactly as the reduction proves:
//! with utility `U(S) = log(1 + Σ I)` and `T = 2` slots, the optimal
//! schedule achieves `2·log(1 + ΣI/2)` **iff** the integers admit a
//! balanced split.

use crate::ExperimentReport;
use cool_common::Table;
use cool_core::optimal::exhaustive_optimal;
use cool_core::schedule::ScheduleMode;
use cool_utility::LogSumUtility;

/// Subset-Sum instances: half with a perfect split, half without.
const INSTANCES: [(&str, &[u64]); 6] = [
    ("balanced-1", &[3, 1, 2, 2]),
    ("balanced-2", &[5, 5]),
    ("balanced-3", &[1, 2, 3, 4, 10]),
    ("unbalanced-1", &[1, 1, 5]),
    ("unbalanced-2", &[2, 4, 16]),
    ("unbalanced-3", &[1, 1, 1]),
];

fn has_balanced_split(xs: &[u64]) -> bool {
    let total: u64 = xs.iter().sum();
    if !total.is_multiple_of(2) {
        return false;
    }
    let target = total / 2;
    let mut reachable = vec![false; (target + 1) as usize];
    reachable[0] = true;
    for &x in xs {
        for s in (x as usize..reachable.len()).rev() {
            if reachable[s - x as usize] {
                reachable[s] = true;
            }
        }
    }
    reachable[target as usize]
}

/// Runs the hardness-gadget verification.
pub fn run(_seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new("hardness");
    let mut table = Table::new([
        "instance",
        "integers",
        "balanced split?",
        "opt 2-slot utility",
        "2·log(1+Σ/2)",
        "achieves bound?",
    ]);
    for (name, xs) in INSTANCES {
        let utility = LogSumUtility::from_integers(xs);
        let total = utility.total_weight();
        let bound = 2.0 * (1.0 + total / 2.0).ln();
        let opt =
            exhaustive_optimal(&utility, 2, ScheduleMode::ActiveSlot).period_utility(&utility);
        let achieves = (opt - bound).abs() < 1e-9;
        let balanced = has_balanced_split(xs);
        assert_eq!(
            achieves, balanced,
            "{name}: the reduction equivalence must hold (opt={opt}, bound={bound})"
        );
        table.row([
            name.to_string(),
            format!("{xs:?}"),
            balanced.to_string(),
            format!("{opt:.9}"),
            format!("{bound:.9}"),
            achieves.to_string(),
        ]);
    }
    report.add_table("subset_sum_reduction", table);
    report.add_note(
        "Theorem 3.1's reduction verified constructively: the two-slot optimum \
         meets 2·log(1+Σ/2) exactly when Subset-Sum has a balanced solution.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_equivalence_holds_for_all_instances() {
        // `run` asserts internally; reaching here means all six pass.
        let r = run(0);
        assert_eq!(r.tables()[0].1.len(), 6);
    }

    #[test]
    fn balanced_split_detector() {
        assert!(has_balanced_split(&[3, 1, 2, 2]));
        assert!(has_balanced_split(&[5, 5]));
        assert!(!has_balanced_split(&[1, 1, 5]));
        assert!(!has_balanced_split(&[1, 1, 1]), "odd total");
        assert!(has_balanced_split(&[]), "empty splits trivially");
    }
}
