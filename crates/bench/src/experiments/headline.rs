//! The §VI-B headline numbers: n = 100, one target, p = 0.4 — greedy
//! average utility vs the closed-form optimum bound, on the ideal schedule
//! and on the simulated testbed.

use crate::ExperimentReport;
use cool_common::{SeedSequence, Table};
use cool_core::bounds::single_target_upper_bound;
use cool_core::greedy::greedy_schedule;
use cool_core::policy::SchedulePolicy;
use cool_core::problem::Problem;
use cool_energy::ChargeCycle;
use cool_testbed::{RooftopDeployment, TestbedSim};
use cool_utility::DetectionUtility;

/// Runs the headline comparison.
pub fn run(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new("headline");
    let seeds = SeedSequence::new(seed);
    let cycle = ChargeCycle::paper_sunny();
    let n = 100;
    let p = 0.4;

    let utility = DetectionUtility::uniform(n, p);
    let problem = Problem::new(utility.clone(), cycle, 12).expect("valid instance");
    let schedule = greedy_schedule(&problem);
    let ideal = problem.average_utility_per_target_slot(&schedule);
    let bound = single_target_upper_bound(n, cycle.slots_per_period(), p);

    // The same schedule executed on the simulated rooftop for 30 daytime
    // half-days (the paper's 30-day run).
    let mut rng = seeds.nth_rng(0);
    let deployment = RooftopDeployment::paper_layout(&mut rng);
    let mut sim = TestbedSim::new(deployment, cycle);
    let slots = 30 * cycle.slots_in_hours(12.0);
    let metrics = sim.run(SchedulePolicy::new(schedule), &utility, slots, &mut rng);

    let mut table = Table::new(["quantity", "paper", "this reproduction"]);
    table.row([
        "greedy avg utility (ideal schedule)",
        "0.983408764",
        &format!("{ideal:.9}"),
    ]);
    table.row(["optimum upper bound", "0.999380", &format!("{bound:.9}")]);
    table.row([
        "greedy avg utility (simulated testbed, 30 days)",
        "0.983408764",
        &format!("{:.9}", metrics.average_utility()),
    ]);
    report.add_table("headline", table);

    report.add_note(
        "The stated formulas give: balanced greedy = 1 − 0.6^25 ≈ 0.9999972 and \
         bound = 1 − 0.6^25 (they coincide when T divides n). The paper's printed \
         0.9834/0.99938 correspond to ≈8 and ≈14.5 effective sensors per slot — \
         consistent with testbed imperfections (not every node ready each slot), \
         not with the formulas at p = 0.4.",
    );
    report.add_note(
        "Shape preserved: greedy sits within a fraction of a percent of the bound \
         in both the paper and the reproduction.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_is_close_to_bound() {
        let r = run(7);
        let (_, table) = &r.tables()[0];
        let csv = table.to_csv();
        let ideal: f64 = csv
            .lines()
            .nth(1)
            .unwrap()
            .split(',')
            .next_back()
            .unwrap()
            .parse()
            .unwrap();
        let bound: f64 = csv
            .lines()
            .nth(2)
            .unwrap()
            .split(',')
            .next_back()
            .unwrap()
            .parse()
            .unwrap();
        assert!(ideal <= bound + 1e-9);
        assert!(bound - ideal < 0.01, "greedy within 1% of the bound");
    }

    #[test]
    fn simulated_testbed_matches_ideal_on_sunny_cycle() {
        let r = run(8);
        let (_, table) = &r.tables()[0];
        let csv = table.to_csv();
        let ideal: f64 = csv
            .lines()
            .nth(1)
            .unwrap()
            .split(',')
            .next_back()
            .unwrap()
            .parse()
            .unwrap();
        let simulated: f64 = csv
            .lines()
            .nth(3)
            .unwrap()
            .split(',')
            .next_back()
            .unwrap()
            .parse()
            .unwrap();
        assert!((ideal - simulated).abs() < 1e-6, "{ideal} vs {simulated}");
    }
}
