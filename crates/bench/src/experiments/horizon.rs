//! §VIII extensions study (future work the paper poses, implemented here):
//! horizon-level greedy with per-sensor cycles and partially-recharged
//! activation, against period-repetition and homogeneous fallbacks.

use crate::ExperimentReport;
use cool_common::{SeedSequence, SensorId, Table};
use cool_core::greedy::greedy_active_naive;
use cool_core::horizon::{greedy_horizon, HorizonSchedule};
use cool_core::instances::random_multi_target;
use cool_energy::ChargeCycle;

const TRIALS: usize = 10;

/// Runs the horizon-scheduling study.
pub fn run(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new("horizon");
    let seeds = SeedSequence::new(seed);

    // 1. Homogeneous sanity: horizon greedy vs Theorem 4.3 period
    //    repetition — same model, so they should be close (typically equal).
    let mut homo = Table::new([
        "n",
        "m",
        "alpha",
        "horizon greedy",
        "period repeated",
        "ratio",
    ]);
    let sunny = ChargeCycle::paper_sunny();
    let t = sunny.slots_per_period();
    for (i, (n, m, alpha)) in [(8usize, 2usize, 2usize), (12, 3, 3), (16, 4, 2)]
        .iter()
        .enumerate()
    {
        let mut h_sum = 0.0;
        let mut r_sum = 0.0;
        for trial in 0..TRIALS {
            let mut rng = seeds.child(i as u64).nth_rng(trial as u64);
            let u = random_multi_target(*n, *m, 0.5, 0.4, &mut rng);
            let cycles = vec![sunny; *n];
            let horizon = greedy_horizon(&u, &cycles, alpha * t);
            assert!(horizon.is_feasible(&cycles));
            let repeated =
                HorizonSchedule::from_period(&greedy_active_naive(&u, t).unwrap(), *alpha);
            h_sum += horizon.total_utility(&u);
            r_sum += repeated.total_utility(&u);
        }
        homo.row([
            n.to_string(),
            m.to_string(),
            alpha.to_string(),
            format!("{:.4}", h_sum / TRIALS as f64),
            format!("{:.4}", r_sum / TRIALS as f64),
            format!("{:.4}", h_sum / r_sum),
        ]);
    }
    report.add_table("homogeneous_sanity", homo);

    // 2. Heterogeneous fleets: mixed ρ per sensor. Homogeneous schedulers
    //    must assume the worst cycle fleet-wide; the horizon greedy uses
    //    each sensor's own budget.
    let mut hetero = Table::new([
        "fleet",
        "horizon greedy",
        "worst-cycle fallback",
        "improvement",
    ]);
    for (i, (label, rhos)) in [
        (
            "half ρ=3, half ρ=7",
            vec![3.0, 3.0, 3.0, 3.0, 7.0, 7.0, 7.0, 7.0],
        ),
        (
            "mixed ρ ∈ {1,3,7}",
            vec![1.0, 1.0, 3.0, 3.0, 3.0, 7.0, 7.0, 7.0],
        ),
        (
            "mostly fast ρ=1",
            vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 7.0, 7.0],
        ),
    ]
    .iter()
    .enumerate()
    {
        let n = rhos.len();
        let cycles: Vec<ChargeCycle> = rhos
            .iter()
            .map(|&r| ChargeCycle::from_rho(r, 15.0).expect("integral rho"))
            .collect();
        let worst = cycles
            .iter()
            .copied()
            .max_by(|a, b| a.rho().partial_cmp(&b.rho()).expect("finite"))
            .expect("non-empty");
        let horizon_slots = 2 * worst.slots_per_period();

        let mut h_sum = 0.0;
        let mut w_sum = 0.0;
        for trial in 0..TRIALS {
            let mut rng = seeds.child(10 + i as u64).nth_rng(trial as u64);
            let u = random_multi_target(n, 3, 0.6, 0.4, &mut rng);
            let horizon = greedy_horizon(&u, &cycles, horizon_slots);
            assert!(horizon.is_feasible(&cycles));
            let fallback_period = greedy_active_naive(&u, worst.slots_per_period()).unwrap();
            let fallback = HorizonSchedule::from_period(&fallback_period, 2);
            h_sum += horizon.total_utility(&u);
            w_sum += fallback.total_utility(&u);
        }
        hetero.row([
            label.to_string(),
            format!("{:.4}", h_sum / TRIALS as f64),
            format!("{:.4}", w_sum / TRIALS as f64),
            format!("{:+.1}%", (h_sum / w_sum - 1.0) * 100.0),
        ]);
    }
    report.add_table("heterogeneous_fleets", hetero);

    // 3. Partial-recharge activation: how much schedule density the energy
    //    machine's "activate when one slot's energy is banked" rule buys
    //    for fast rechargers vs the strict full-charge rule (which for
    //    ρ ≤ 1 only supports the passive-slot pattern).
    let mut partial = Table::new(["rho", "L", "activations/sensor", "full-charge-only budget"]);
    for &rho_inv in &[2usize, 3, 4] {
        let cycle = ChargeCycle::from_rho(1.0 / rho_inv as f64, 15.0).expect("integral");
        let n = 4;
        let mut rng = seeds.child(30).nth_rng(rho_inv as u64);
        let u = random_multi_target(n, 2, 0.9, 0.6, &mut rng);
        let slots = 12;
        let schedule = greedy_horizon(&u, &vec![cycle; n], slots);
        let mean_act: f64 = (0..n)
            .map(|v| schedule.activation_count(SensorId(v)) as f64)
            .sum::<f64>()
            / n as f64;
        // Strict full-charge activation would allow one burst of 1/ρ active
        // slots per full recharge: the same density here, but the horizon
        // greedy can also *stagger* bursts; report the per-period budget.
        let budget = slots / cycle.slots_per_period() * cycle.active_slots_per_period();
        partial.row([
            format!("1/{rho_inv}"),
            slots.to_string(),
            format!("{mean_act:.1}"),
            budget.to_string(),
        ]);
    }
    report.add_table("partial_recharge_density", partial);

    report.add_note(
        "Homogeneous fleets: the horizon greedy reproduces period-repetition \
         utility (ratios ≈ 1.0), empirically extending Theorem 4.3's construction.",
    );
    report.add_note(
        "Heterogeneous fleets: scheduling each sensor on its own cycle beats the \
         only option available to the homogeneous scheduler (assume the worst \
         cycle fleet-wide) by double-digit percentages — the §VIII extension pays.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_ratios_near_one() {
        let r = run(77);
        let (_, homo) = r
            .tables()
            .iter()
            .find(|(n, _)| n == "homogeneous_sanity")
            .unwrap();
        for line in homo.to_csv().lines().skip(1) {
            let ratio: f64 = line.split(',').next_back().unwrap().parse().unwrap();
            assert!((0.95..=1.05).contains(&ratio), "ratio {ratio} in {line}");
        }
    }

    #[test]
    fn heterogeneous_always_improves() {
        let r = run(78);
        let (_, het) = r
            .tables()
            .iter()
            .find(|(n, _)| n == "heterogeneous_fleets")
            .unwrap();
        for line in het.to_csv().lines().skip(1) {
            let imp = line.split(',').next_back().unwrap();
            assert!(
                imp.starts_with('+'),
                "improvement should be positive: {line}"
            );
        }
    }
}
