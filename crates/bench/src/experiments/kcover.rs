//! k-coverage scheduling — an extension instance: each target wants `k`
//! **simultaneous** observers, so the per-slot utility is
//! `Σ w·min(count, k)/k` (piecewise-linear diminishing returns instead of
//! the detection utility's smooth geometric ones). The greedy machinery is
//! unchanged; this experiment measures how the requirement `k` reshapes
//! schedules and how close greedy stays to the optimum.

use crate::svg::{LineChart, Series};
use crate::ExperimentReport;
use cool_common::{SeedSequence, SensorSet, Table};
use cool_core::greedy::greedy_active_naive;
use cool_core::optimal::branch_and_bound;
use cool_energy::ChargeCycle;
use cool_utility::KCoverageUtility;
use rand::Rng;

const TRIALS: usize = 8;

fn random_coverages<R: Rng + ?Sized>(n: usize, m: usize, prob: f64, rng: &mut R) -> Vec<SensorSet> {
    (0..m)
        .map(|_| {
            let mut cov = SensorSet::new(n);
            for v in 0..n {
                if rng.random_range(0.0..1.0) < prob {
                    cov.insert(cool_common::SensorId(v));
                }
            }
            if cov.is_empty() {
                cov.insert(cool_common::SensorId(rng.random_range(0..n)));
            }
            cov
        })
        .collect()
}

/// Runs the k-coverage study.
pub fn run(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new("kcover");
    let seeds = SeedSequence::new(seed);
    let cycle = ChargeCycle::paper_sunny();
    let t = cycle.slots_per_period();

    // 1. Utility vs k at fixed deployment (n = 40, m = 6, dense coverage):
    //    higher k demands more simultaneous sensors per slot, so per-slot
    //    value drops as the same n spreads across T slots.
    let mut table = Table::new(["k", "greedy avg/target/slot", "max possible/slot"]);
    let mut series = Vec::new();
    for k in 1..=5u32 {
        let mut sum = 0.0;
        for trial in 0..TRIALS {
            let mut rng = seeds.child(u64::from(k)).nth_rng(trial as u64);
            let coverages = random_coverages(40, 6, 0.5, &mut rng);
            let u = KCoverageUtility::uniform(coverages, k);
            let schedule = greedy_active_naive(&u, t).unwrap();
            sum += schedule.period_utility(&u) / (t * u.n_targets()) as f64;
        }
        let avg = sum / TRIALS as f64;
        table.row([k.to_string(), format!("{avg:.4}"), "1.0000".to_string()]);
        series.push((f64::from(k), avg));
    }
    report.add_table("utility_vs_k", table);
    report.add_chart(
        "utility_vs_k",
        LineChart::new(
            "k-coverage — greedy utility vs requirement k",
            "required simultaneous observers k",
            "average utility per target per slot",
        )
        .with_series(Series::new("greedy (n=40, m=6, T=4)", series))
        .render(),
    );

    // 2. Greedy vs exact optimum on enumerable instances.
    let mut opt_table = Table::new(["n", "m", "k", "greedy", "optimal", "ratio"]);
    for (i, (n, m, k)) in [(6usize, 2usize, 2u32), (8, 3, 2), (8, 2, 3)]
        .iter()
        .enumerate()
    {
        let mut rng = seeds.child(100 + i as u64).nth_rng(0);
        let coverages = random_coverages(*n, *m, 0.7, &mut rng);
        let u = KCoverageUtility::uniform(coverages, *k);
        let greedy = greedy_active_naive(&u, t).unwrap().period_utility(&u);
        let optimal = branch_and_bound(&u, t).period_utility(&u);
        assert!(
            greedy + 1e-9 >= 0.5 * optimal,
            "½-approximation holds for k-coverage too"
        );
        opt_table.row([
            n.to_string(),
            m.to_string(),
            k.to_string(),
            format!("{greedy:.4}"),
            format!("{optimal:.4}"),
            format!("{:.4}", greedy / optimal.max(f64::MIN_POSITIVE)),
        ]);
    }
    report.add_table("greedy_vs_optimal", opt_table);

    report.add_note(
        "k-coverage slots straight into Algorithm 1 (it is monotone submodular); \
         utility falls with k as the fixed sensor budget must pile k-deep on each \
         target every slot, and greedy stays within the ½ guarantee (empirically \
         near-optimal) throughout.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utility_decreases_in_k_and_ratios_hold() {
        let r = run(55);
        let (_, table) = r
            .tables()
            .iter()
            .find(|(n, _)| n == "utility_vs_k")
            .unwrap();
        let values: Vec<f64> = table
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        for pair in values.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1e-9,
                "higher k cannot raise utility: {values:?}"
            );
        }

        let (_, opt) = r
            .tables()
            .iter()
            .find(|(n, _)| n == "greedy_vs_optimal")
            .unwrap();
        for line in opt.to_csv().lines().skip(1) {
            let ratio: f64 = line.split(',').next_back().unwrap().parse().unwrap();
            assert!((0.5..=1.0 + 1e-9).contains(&ratio), "{line}");
        }
    }
}
