//! §IV-A.1 — the LP-relaxation pipeline: relaxation value (an upper bound
//! on OPT), randomised-rounding value, greedy value, and exact optimum on
//! enumerable instances.

use crate::ExperimentReport;
use cool_common::{SeedSequence, Table};
use cool_core::greedy::greedy_schedule;
use cool_core::instances::random_multi_target;
use cool_core::lp::LpScheduler;
use cool_core::optimal::branch_and_bound;
use cool_core::problem::Problem;
use cool_energy::ChargeCycle;

/// Runs the LP study.
pub fn run(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new("lp");
    let seeds = SeedSequence::new(seed);
    let cycle = ChargeCycle::paper_sunny();
    let scheduler = LpScheduler::new(32);

    let mut table = Table::new([
        "n",
        "m",
        "LP value (UB)",
        "LP + rounding",
        "greedy",
        "optimal",
        "rounding/opt",
    ]);
    for (i, (n, m)) in [(6usize, 1usize), (8, 2), (10, 3), (12, 2)]
        .iter()
        .enumerate()
    {
        let mut rng = seeds.nth_rng(i as u64);
        let utility = random_multi_target(*n, *m, 0.6, 0.4, &mut rng);
        let problem = Problem::new(utility.clone(), cycle, 1).expect("valid instance");
        let outcome = scheduler.schedule(&problem, &mut rng).expect("LP solves");
        let greedy = greedy_schedule(&problem).period_utility(&utility);
        let optimal = branch_and_bound(&utility, cycle.slots_per_period()).period_utility(&utility);
        assert!(
            outcome.lp_value + 1e-6 >= optimal,
            "LP value {} must upper-bound OPT {}",
            outcome.lp_value,
            optimal
        );
        table.row([
            n.to_string(),
            m.to_string(),
            format!("{:.6}", outcome.lp_value),
            format!("{:.6}", outcome.rounded_value),
            format!("{greedy:.6}"),
            format!("{optimal:.6}"),
            format!(
                "{:.4}",
                outcome.rounded_value / optimal.max(f64::MIN_POSITIVE)
            ),
        ]);
    }
    report.add_table("lp_vs_greedy", table);

    // Rounding-trial ablation (the paper's iterated rounding): best-of-k
    // rounded value as k grows.
    let mut rng = seeds.nth_rng(100);
    let utility = random_multi_target(12, 3, 0.6, 0.4, &mut rng);
    let problem = Problem::new(utility.clone(), cycle, 1).expect("valid instance");
    let mut trials_table = Table::new(["rounding trials", "best rounded value"]);
    for k in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut rng = seeds.nth_rng(200);
        let outcome = LpScheduler::new(k)
            .schedule(&problem, &mut rng)
            .expect("LP solves");
        trials_table.row([k.to_string(), format!("{:.6}", outcome.rounded_value)]);
    }
    report.add_table("rounding_trials", trials_table);

    // The full multi-period window LP (sliding Σ_{window} x ≤ 1) with the
    // paper's two repair strategies.
    let mut window_table = Table::new([
        "n",
        "L",
        "window LP (UB)",
        "resample repair",
        "deactivate repair",
        "greedy (period-repeated)",
    ]);
    for (i, (n, alpha)) in [(8usize, 2usize), (10, 3)].iter().enumerate() {
        let mut rng = seeds.nth_rng(300 + i as u64);
        let utility = random_multi_target(*n, 2, 0.6, 0.4, &mut rng);
        let t = cycle.slots_per_period();
        let slots = alpha * t;
        let resample = cool_core::lp_window::solve_window_lp(
            &utility,
            t,
            slots,
            cool_core::lp_window::RepairStrategy::Resample,
            16,
            &mut seeds.nth_rng(310 + i as u64),
        )
        .expect("window LP solves");
        let deactivate = cool_core::lp_window::solve_window_lp(
            &utility,
            t,
            slots,
            cool_core::lp_window::RepairStrategy::Deactivate,
            16,
            &mut seeds.nth_rng(320 + i as u64),
        )
        .expect("window LP solves");
        let repeated = cool_core::horizon::HorizonSchedule::from_period(
            &cool_core::greedy::greedy_active_naive(&utility, t).unwrap(),
            *alpha,
        );
        window_table.row([
            n.to_string(),
            slots.to_string(),
            format!("{:.4}", resample.lp_value),
            format!("{:.4}", resample.rounded_value),
            format!("{:.4}", deactivate.rounded_value),
            format!("{:.4}", repeated.total_utility(&utility)),
        ]);
    }
    report.add_table("window_lp", window_table);

    report.add_note(
        "The LP value upper-bounds the optimum on every instance (concave-envelope \
         relaxation); rounding recovers most of it, and iterating the rounding — \
         the paper's repair loop, which in the one-period form is re-sampling — \
         closes the rest. Greedy remains the better practical scheduler.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp_bounds_hold() {
        // Internal asserts verify LP ≥ OPT on every instance.
        let r = run(31);
        let (_, table) = &r.tables()[0];
        assert_eq!(table.len(), 4);
        for line in table.to_csv().lines().skip(1) {
            let ratio: f64 = line.split(',').next_back().unwrap().parse().unwrap();
            assert!(
                ratio > 0.6,
                "rounding recovers most of the optimum: {ratio}"
            );
            assert!(ratio <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn more_rounding_trials_never_hurt() {
        let r = run(32);
        let (_, table) = r
            .tables()
            .iter()
            .find(|(n, _)| n == "rounding_trials")
            .unwrap();
        let values: Vec<f64> = table
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').next_back().unwrap().parse().unwrap())
            .collect();
        for pair in values.windows(2) {
            assert!(
                pair[1] + 1e-9 >= pair[0],
                "best-of-k is monotone in k: {values:?}"
            );
        }
    }
}
