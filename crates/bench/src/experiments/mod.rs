//! The experiment runners — one module per paper figure/table.

pub mod ablation;
pub mod approx;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod hardness;
pub mod headline;
pub mod horizon;
pub mod kcover;
pub mod lp;
pub mod perf_greedy;
pub mod perf_hetero;
pub mod perf_serve;
pub mod perf_session;
pub mod perf_sparse;
pub mod randmodel;
pub mod region;
pub mod testbed30;

use crate::ExperimentReport;

/// All experiment ids, in suggested running order.
pub const ALL: [&str; 18] = [
    "fig7",
    "fig8",
    "headline",
    "fig9",
    "hardness",
    "approx",
    "lp",
    "randmodel",
    "testbed30",
    "ablation",
    "horizon",
    "region",
    "kcover",
    "perf_greedy",
    "perf_sparse",
    "perf_session",
    "perf_serve",
    "perf_hetero",
];

/// Dispatches an experiment by id.
///
/// Returns `None` for an unknown id.
pub fn run(id: &str, seed: u64) -> Option<ExperimentReport> {
    match id {
        "fig7" => Some(fig7::run(seed)),
        "fig8" => Some(fig8::run(seed)),
        "headline" => Some(headline::run(seed)),
        "fig9" => Some(fig9::run(seed)),
        "hardness" => Some(hardness::run(seed)),
        "approx" => Some(approx::run(seed)),
        "lp" => Some(lp::run(seed)),
        "randmodel" => Some(randmodel::run(seed)),
        "testbed30" => Some(testbed30::run(seed)),
        "ablation" => Some(ablation::run(seed)),
        "horizon" => Some(horizon::run(seed)),
        "region" => Some(region::run(seed)),
        "kcover" => Some(kcover::run(seed)),
        "perf_greedy" => Some(perf_greedy::run(seed)),
        "perf_sparse" => Some(perf_sparse::run(seed)),
        "perf_session" => Some(perf_session::run(seed)),
        "perf_serve" => Some(perf_serve::run(seed)),
        "perf_hetero" => Some(perf_hetero::run(seed)),
        _ => None,
    }
}
