//! Wall-clock comparison of the greedy implementations: naive loop vs
//! lazy (CELF) vs lazy with the parallel initial fan-out, for both the
//! active (`ρ > 1`) and passive (`ρ ≤ 1`) allocation families.
//!
//! Besides the usual report table, `run` emits `BENCH_PR3.json` in the
//! working directory — the machine-readable perf baseline the CI
//! `bench-smoke` job checks (lazy must not be slower than naive at the
//! largest size).

use crate::ExperimentReport;
use cool_common::parallel::default_sweep_threads;
use cool_common::{SeedSequence, Table};
use cool_core::greedy::{
    greedy_active_lazy_with_threads, greedy_active_naive, greedy_passive_lazy_with_threads,
    greedy_passive_naive,
};
use cool_core::instances::fig9_instance;
use std::time::Instant;

/// The (n, T) grid the benchmark sweeps.
pub const SIZES: [(usize, usize); 6] =
    [(50, 4), (50, 16), (200, 4), (200, 16), (800, 4), (800, 16)];

/// One measured (family, n, T) cell.
#[derive(Clone, Debug)]
pub struct PerfCell {
    /// `"active"` (`ρ > 1`) or `"passive"` (`ρ ≤ 1`).
    pub family: &'static str,
    /// Sensor count.
    pub n: usize,
    /// Slots per period.
    pub t_slots: usize,
    /// Naive O(n²·T) loop, milliseconds.
    pub naive_ms: f64,
    /// Lazy heap with a sequential initial fan-out, milliseconds.
    pub lazy_ms: f64,
    /// Lazy heap with the parallel initial fan-out, milliseconds.
    pub lazy_parallel_ms: f64,
    /// Whether all three produced the same assignment (they must).
    pub identical: bool,
}

fn time_ms<S>(f: impl FnOnce() -> S) -> (f64, S) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

/// Measures the full grid. Deterministic per seed; assignments are
/// cross-checked so a tie-break or staleness regression shows up as
/// `identical = false` rather than a silently wrong speedup.
pub fn measure(seed: u64) -> Vec<PerfCell> {
    let seeds = SeedSequence::new(seed);
    let threads = default_sweep_threads();
    let mut cells = Vec::with_capacity(2 * SIZES.len());
    for (i, &(n, t_slots)) in SIZES.iter().enumerate() {
        let mut rng = seeds.child(1).nth_rng(i as u64);
        let u = fig9_instance(n, (n / 10).max(1), &mut rng);

        let (naive_ms, naive) = time_ms(|| greedy_active_naive(&u, t_slots).unwrap());
        let (lazy_ms, lazy) = time_ms(|| greedy_active_lazy_with_threads(&u, t_slots, 1).unwrap());
        let (lazy_parallel_ms, par) =
            time_ms(|| greedy_active_lazy_with_threads(&u, t_slots, threads).unwrap());
        cells.push(PerfCell {
            family: "active",
            n,
            t_slots,
            naive_ms,
            lazy_ms,
            lazy_parallel_ms,
            identical: naive.assignment() == lazy.assignment()
                && naive.assignment() == par.assignment(),
        });

        let (naive_ms, naive) = time_ms(|| greedy_passive_naive(&u, t_slots).unwrap());
        let (lazy_ms, lazy) = time_ms(|| greedy_passive_lazy_with_threads(&u, t_slots, 1).unwrap());
        let (lazy_parallel_ms, par) =
            time_ms(|| greedy_passive_lazy_with_threads(&u, t_slots, threads).unwrap());
        cells.push(PerfCell {
            family: "passive",
            n,
            t_slots,
            naive_ms,
            lazy_ms,
            lazy_parallel_ms,
            identical: naive.assignment() == lazy.assignment()
                && naive.assignment() == par.assignment(),
        });
    }
    cells
}

/// Renders the cells as the `BENCH_PR3.json` document (no external JSON
/// dependency; shape is pinned by the unit tests and the CI smoke check).
#[must_use]
pub fn to_json(seed: u64, cells: &[PerfCell]) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{{\"bench\":\"perf_greedy\",\"seed\":{seed},\"threads\":{},\"rows\":[",
        default_sweep_threads()
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"family\":\"{}\",\"n\":{},\"t_slots\":{},\"naive_ms\":{:.3},\"lazy_ms\":{:.3},\"lazy_parallel_ms\":{:.3},\"identical\":{}}}",
            c.family, c.n, c.t_slots, c.naive_ms, c.lazy_ms, c.lazy_parallel_ms, c.identical
        );
    }
    out.push_str("]}\n");
    out
}

/// Runs the benchmark, writes `BENCH_PR3.json` to the working directory,
/// and returns the report.
pub fn run(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new("perf_greedy");
    let cells = measure(seed);

    let mut table = Table::new([
        "family",
        "n",
        "T",
        "naive ms",
        "lazy ms",
        "lazy+par ms",
        "lazy speedup",
        "identical",
    ]);
    for c in &cells {
        table.row([
            c.family.to_string(),
            c.n.to_string(),
            c.t_slots.to_string(),
            format!("{:.1}", c.naive_ms),
            format!("{:.1}", c.lazy_ms),
            format!("{:.1}", c.lazy_parallel_ms),
            format!("{:.1}×", c.naive_ms / c.lazy_ms.max(1e-6)),
            c.identical.to_string(),
        ]);
    }
    report.add_table("wallclock", table);

    let json = to_json(seed, &cells);
    match std::fs::write("BENCH_PR3.json", &json) {
        Ok(()) => {
            report.add_note("wrote BENCH_PR3.json (machine-readable perf baseline)");
        }
        Err(e) => {
            report.add_note(format!("could not write BENCH_PR3.json: {e}"));
        }
    }
    report.add_note(
        "Lazy evaluation is a pure acceleration (identical assignments); the parallel \
         fan-out only engages above the cell threshold, so small sizes report \
         sequential times for both lazy columns.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::json::{self, Value};

    #[test]
    fn json_parses_and_covers_the_grid() {
        // A tiny hand-built cell list: the JSON shape is the contract the
        // CI smoke check scripts against.
        let cells = vec![
            PerfCell {
                family: "active",
                n: 800,
                t_slots: 16,
                naive_ms: 100.0,
                lazy_ms: 10.0,
                lazy_parallel_ms: 8.0,
                identical: true,
            },
            PerfCell {
                family: "passive",
                n: 50,
                t_slots: 4,
                naive_ms: 1.0,
                lazy_ms: 0.5,
                lazy_parallel_ms: 0.5,
                identical: true,
            },
        ];
        let doc = json::parse(&to_json(7, &cells)).unwrap();
        assert_eq!(
            doc.get("bench").and_then(Value::as_str),
            Some("perf_greedy")
        );
        assert_eq!(doc.get("seed").and_then(Value::as_f64), Some(7.0));
        let rows = doc.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("n").and_then(Value::as_f64), Some(800.0));
        assert_eq!(
            rows[0].get("identical").and_then(Value::as_bool),
            Some(true)
        );
    }

    #[test]
    fn small_measurement_is_identical_across_variants() {
        // Measure only the smallest grid cell shape (cheap): every variant
        // must agree on the assignment.
        let seeds = SeedSequence::new(11);
        let mut rng = seeds.child(1).nth_rng(0);
        let u = fig9_instance(50, 5, &mut rng);
        let naive = greedy_active_naive(&u, 4).unwrap();
        let lazy = greedy_active_lazy_with_threads(&u, 4, 1).unwrap();
        assert_eq!(naive.assignment(), lazy.assignment());
        let pnaive = greedy_passive_naive(&u, 4).unwrap();
        let plazy = greedy_passive_lazy_with_threads(&u, 4, default_sweep_threads()).unwrap();
        assert_eq!(pnaive.assignment(), plazy.assignment());
    }
}
