//! Heterogeneous-fleet scheduling sweep: greedy vs the strip-cover
//! baselines across ρ mixtures.
//!
//! Each cell fixes one fleet *mixture* — a fraction of "slow" sensors
//! (ρ = ½, recharge faster than they drain, passive family) among "fast"
//! ones (ρ = 3, the paper's sunny cycle, active family) — builds a random
//! multi-target detection instance over it, and schedules the same fleet
//! four ways on the shared LCM tick grid:
//!
//! * [`hetero_greedy_lazy`] — the per-sensor-phase greedy this repo
//!   champions, finished with a deterministic best-response [`polish`]
//!   (each sensor re-picks its phase until no single move improves);
//! * [`hef_schedule`] — High-Energy-First (battery-descending phase
//!   picks);
//! * [`rsc_schedule`] — Restricted Strip Covering (one run per
//!   hyperperiod, longest strips first);
//! * [`set_once_schedule`] — Set-Once Strip Cover (utility-blind
//!   load balancing).
//!
//! Every schedule is replayed through the per-sensor energy automata
//! (`all_feasible`) and capped by the duty-cycle upper bound. Besides the
//! report table, `run` emits `BENCH_PR9.json` — the machine-readable
//! artefact the CI `bench-smoke` job checks (every row must parse, be
//! feasible, and satisfy `greedy ≥ HEF`).
//!
//! [`hetero_greedy_lazy`]: cool_core::hetero::hetero_greedy_lazy
//! [`hef_schedule`]: cool_core::hef_schedule
//! [`rsc_schedule`]: cool_core::rsc_schedule
//! [`set_once_schedule`]: cool_core::set_once_schedule

use crate::ExperimentReport;
use cool_common::{SeedSequence, SensorId, SensorSet, Table};
use cool_core::hetero::{hetero_greedy_lazy, FleetSchedule};
use cool_core::{grid_duty_upper_bound, hef_schedule, rsc_schedule, set_once_schedule};
use cool_energy::{Fleet, FleetGrid, SensorProfile};
use cool_utility::SumUtility;
use rand::Rng;
use std::time::Instant;

/// Fraction of slow (ρ = ½) sensors in each swept mixture.
pub const MIXES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Sensors per cell.
const N_SENSORS: usize = 36;

/// Targets (utility parts) per cell.
const M_TARGETS: usize = 100;

/// Sensors covering each target.
const COVER: usize = 5;

/// Per-sensor detection probability of the synthetic targets.
const DETECT_P: f64 = 0.35;

/// The fast profile: the paper's sunny (15, 45) cycle, ρ = 3, period 4
/// ticks on the 15-minute grid.
fn fast_profile() -> SensorProfile {
    SensorProfile {
        battery: 30.0,
        mu_d: 120.0,
        mu_r: 40.0,
        solar_eff: 1.0,
    }
}

/// The slow profile: drains for 30 minutes, refills in 15, ρ = ½, period
/// 3 ticks — the passive family, so mixtures cross the ρ = 1 boundary.
fn slow_profile() -> SensorProfile {
    SensorProfile {
        battery: 30.0,
        mu_d: 60.0,
        mu_r: 120.0,
        solar_eff: 1.0,
    }
}

/// One measured mixture cell.
#[derive(Clone, Debug)]
pub struct HeteroCell {
    /// Fraction of slow sensors in the fleet.
    pub frac_slow: f64,
    /// Sensor count.
    pub n: usize,
    /// Target count.
    pub m: usize,
    /// LCM hyperperiod of the mixed grid, in ticks.
    pub hyperperiod: usize,
    /// Hyperperiod utility of the heterogeneous lazy greedy.
    pub greedy_value: f64,
    /// Hyperperiod utility of High-Energy-First.
    pub hef_value: f64,
    /// Hyperperiod utility of Restricted Strip Covering.
    pub rsc_value: f64,
    /// Hyperperiod utility of Set-Once Strip Cover.
    pub set_once_value: f64,
    /// Duty-cycle upper bound on any feasible schedule's value.
    pub duty_bound: f64,
    /// Greedy wall-clock, milliseconds.
    pub greedy_ms: f64,
    /// HEF wall-clock, milliseconds.
    pub hef_ms: f64,
    /// `greedy_value ≥ hef_value` (the CI contract).
    pub greedy_ge_hef: bool,
    /// All four schedules replay clean through the energy automata.
    pub all_feasible: bool,
}

fn time_ms<S>(f: impl FnOnce() -> S) -> (f64, S) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

/// A mixture fleet: the first `round(frac · n)` sensors slow, the rest
/// fast.
pub fn mixture_fleet(n: usize, frac_slow: f64) -> Fleet {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let n_slow = ((frac_slow * n as f64).round() as usize).min(n);
    let profiles = (0..n)
        .map(|v| {
            if v < n_slow {
                slow_profile()
            } else {
                fast_profile()
            }
        })
        .collect();
    Fleet::new(profiles).expect("palette profiles are well-formed")
}

/// Deterministic best-response polish: each sensor in index order re-picks
/// the phase maximising the hyperperiod utility with every other sensor
/// held fixed, sweeping until a full pass finds no improving move (pass
/// cap [`POLISH_PASSES`]). Any phase vector is energy-feasible on the
/// periodic grid (each period holds exactly one `d_v`-tick run), so the
/// polish preserves feasibility while escaping the greedy's insertion-
/// order artifacts — the resulting schedule is a single-move local
/// optimum, which the fixed-order baselines are not.
pub fn polish(utility: &SumUtility, grid: &FleetGrid, schedule: &FleetSchedule) -> FleetSchedule {
    let n = grid.n_sensors();
    let mut phases = schedule.phases().to_vec();
    let mut best = FleetSchedule::new(grid.clone(), phases.clone()).hyperperiod_utility(utility);
    for _ in 0..POLISH_PASSES {
        let mut improved = false;
        for v in 0..n {
            for phi in 0..grid.period_ticks(v) {
                if phi == phases[v] {
                    continue;
                }
                let mut candidate = phases.clone();
                candidate[v] = phi;
                let value = FleetSchedule::new(grid.clone(), candidate.clone())
                    .hyperperiod_utility(utility);
                if value > best + 1e-9 {
                    best = value;
                    phases = candidate;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    FleetSchedule::new(grid.clone(), phases)
}

/// Best-response pass cap (each pass tries every sensor × phase move).
const POLISH_PASSES: usize = 8;

/// A random multi-target detection instance: `m` targets, each covered by
/// [`COVER`] distinct sensors out of `n`.
fn hetero_instance(n: usize, m: usize, rng: &mut impl Rng) -> SumUtility {
    let coverages: Vec<SensorSet> = (0..m)
        .map(|_| {
            let mut cov = SensorSet::new(n);
            while cov.len() < COVER.min(n) {
                cov.insert(SensorId(rng.random_range(0..n)));
            }
            cov
        })
        .collect();
    SumUtility::multi_target_detection(&coverages, DETECT_P)
}

/// Measures every mixture. Deterministic per seed; every schedule is
/// replayed through the per-sensor energy automata so an infeasible
/// baseline shows up as `all_feasible = false` rather than a free lunch.
pub fn measure(seed: u64) -> Vec<HeteroCell> {
    let seeds = SeedSequence::new(seed);
    let mut cells = Vec::with_capacity(MIXES.len());
    for (i, &frac_slow) in MIXES.iter().enumerate() {
        let mut rng = seeds.child(1).nth_rng(i as u64);
        let utility = hetero_instance(N_SENSORS, M_TARGETS, &mut rng);
        let fleet = mixture_fleet(N_SENSORS, frac_slow);
        let grid = FleetGrid::build(&fleet).expect("palette profiles are commensurable");

        let (greedy_ms, greedy) = time_ms(|| {
            let seeded = hetero_greedy_lazy(&utility, &grid).unwrap();
            polish(&utility, &grid, &seeded)
        });
        let (hef_ms, hef) = time_ms(|| hef_schedule(&utility, &fleet, &grid).unwrap());
        let rsc = rsc_schedule(&utility, &grid).unwrap();
        let set_once = set_once_schedule(&grid);

        let greedy_value = greedy.hyperperiod_utility(&utility);
        let hef_value = hef.hyperperiod_utility(&utility);
        let all_feasible = greedy.is_feasible()
            && hef.is_feasible()
            && rsc.is_feasible(&grid)
            && set_once.is_feasible(&grid);
        cells.push(HeteroCell {
            frac_slow,
            n: N_SENSORS,
            m: M_TARGETS,
            hyperperiod: grid.hyperperiod(),
            greedy_value,
            hef_value,
            rsc_value: rsc.hyperperiod_utility(&utility),
            set_once_value: set_once.hyperperiod_utility(&utility),
            duty_bound: grid_duty_upper_bound(&utility, &grid),
            greedy_ms,
            hef_ms,
            greedy_ge_hef: greedy_value + 1e-9 >= hef_value,
            all_feasible,
        });
    }
    cells
}

/// Renders the cells as the `BENCH_PR9.json` document (no external JSON
/// dependency; shape is pinned by the unit tests and the CI smoke check).
#[must_use]
pub fn to_json(seed: u64, cells: &[HeteroCell]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{{\"bench\":\"perf_hetero\",\"seed\":{seed},\"rows\":[");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"frac_slow\":{:.2},\"n\":{},\"m\":{},\"hyperperiod\":{},\
             \"greedy_value\":{:.6},\"hef_value\":{:.6},\"rsc_value\":{:.6},\
             \"set_once_value\":{:.6},\"duty_bound\":{:.6},\
             \"greedy_ms\":{:.3},\"hef_ms\":{:.3},\
             \"greedy_ge_hef\":{},\"all_feasible\":{}}}",
            c.frac_slow,
            c.n,
            c.m,
            c.hyperperiod,
            c.greedy_value,
            c.hef_value,
            c.rsc_value,
            c.set_once_value,
            c.duty_bound,
            c.greedy_ms,
            c.hef_ms,
            c.greedy_ge_hef,
            c.all_feasible
        );
    }
    out.push_str("]}\n");
    out
}

/// Runs the sweep, writes `BENCH_PR9.json` to the working directory, and
/// returns the report.
pub fn run(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new("perf_hetero");
    let cells = measure(seed);

    let mut table = Table::new([
        "slow frac",
        "H",
        "greedy",
        "hef",
        "rsc",
        "set-once",
        "duty bound",
        "greedy≥hef",
        "feasible",
    ]);
    for c in &cells {
        table.row([
            format!("{:.2}", c.frac_slow),
            c.hyperperiod.to_string(),
            format!("{:.2}", c.greedy_value),
            format!("{:.2}", c.hef_value),
            format!("{:.2}", c.rsc_value),
            format!("{:.2}", c.set_once_value),
            format!("{:.2}", c.duty_bound),
            c.greedy_ge_hef.to_string(),
            c.all_feasible.to_string(),
        ]);
    }
    report.add_table("mixtures", table);

    let json = to_json(seed, &cells);
    match std::fs::write("BENCH_PR9.json", &json) {
        Ok(()) => {
            report.add_note("wrote BENCH_PR9.json (machine-readable hetero baseline)");
        }
        Err(e) => {
            report.add_note(format!("could not write BENCH_PR9.json: {e}"));
        }
    }
    report.add_note(
        "The heterogeneous greedy chooses (sensor, phase) pairs by marginal \
         gain on the shared LCM tick grid, then a best-response sweep \
         re-picks phases until no single move improves — a local optimum. \
         HEF fixes the battery-descending order, RSC places one run per \
         hyperperiod, and Set-Once is utility-blind; greedy matches or \
         beats all three at every swept mixture while staying \
         energy-feasible per sensor.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::json::{self, Value};

    #[test]
    fn json_parses_and_pins_the_shape() {
        // A tiny hand-built cell list: the JSON shape is the contract the
        // CI smoke check scripts against.
        let cells = vec![HeteroCell {
            frac_slow: 0.5,
            n: 36,
            m: 100,
            hyperperiod: 12,
            greedy_value: 200.0,
            hef_value: 190.0,
            rsc_value: 120.0,
            set_once_value: 110.0,
            duty_bound: 260.0,
            greedy_ms: 2.0,
            hef_ms: 1.0,
            greedy_ge_hef: true,
            all_feasible: true,
        }];
        let doc = json::parse(&to_json(9, &cells)).unwrap();
        assert_eq!(
            doc.get("bench").and_then(Value::as_str),
            Some("perf_hetero")
        );
        assert_eq!(doc.get("seed").and_then(Value::as_f64), Some(9.0));
        let rows = doc.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("frac_slow").and_then(Value::as_f64), Some(0.5));
        assert_eq!(
            rows[0].get("greedy_ge_hef").and_then(Value::as_bool),
            Some(true)
        );
        assert_eq!(
            rows[0].get("all_feasible").and_then(Value::as_bool),
            Some(true)
        );
    }

    #[test]
    fn greedy_dominates_the_baselines_on_the_swept_mixtures() {
        // The real sweep at the default seed: every mixture must satisfy
        // the CI contract — feasible everywhere, greedy ≥ HEF, and every
        // value under the duty-cycle upper bound.
        let cells = measure(42);
        assert_eq!(cells.len(), MIXES.len());
        for c in &cells {
            assert!(c.all_feasible, "infeasible at frac_slow={}", c.frac_slow);
            assert!(
                c.greedy_ge_hef,
                "greedy {} < hef {} at frac_slow={}",
                c.greedy_value, c.hef_value, c.frac_slow
            );
            for (name, value) in [
                ("greedy", c.greedy_value),
                ("hef", c.hef_value),
                ("rsc", c.rsc_value),
                ("set-once", c.set_once_value),
            ] {
                assert!(
                    value <= c.duty_bound + 1e-6,
                    "{name} {value} exceeds duty bound {} at frac_slow={}",
                    c.duty_bound,
                    c.frac_slow
                );
            }
        }
    }

    #[test]
    fn mixture_fleet_splits_the_profiles() {
        let fleet = mixture_fleet(8, 0.25);
        let profiles = fleet.profiles();
        assert_eq!(profiles.len(), 8);
        assert!((profiles[0].mu_d - 60.0).abs() < 1e-12, "slow first");
        assert!((profiles[7].mu_d - 120.0).abs() < 1e-12, "fast rest");
        let grid = FleetGrid::build(&fleet).unwrap();
        assert_eq!(grid.hyperperiod(), 12, "lcm of periods 3 and 4");
    }
}
