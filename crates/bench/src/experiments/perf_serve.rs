//! Serving-layer throughput/latency comparison: the `poll(2)` event loop
//! with HTTP keep-alive and sharded caches ([`ServeMode::Event`]) against
//! the PR 2 thread-per-connection baseline ([`ServeMode::Threaded`]).
//!
//! Each cell boots a real daemon on an ephemeral port and drives it with
//! the deterministic closed-loop `cool loadgen` engine at a fixed
//! concurrency. The event cells reuse keep-alive connections (one TCP
//! connection per worker for the whole cell); the threaded cells pay one
//! connection per request — the old wire discipline — so the comparison
//! captures exactly what the transport rewrite buys.
//!
//! Besides the report table, `run` emits `BENCH_PR8.json` in the working
//! directory — the machine-readable baseline the CI bench-smoke job
//! checks (event must beat threaded on throughput and p99 latency at the
//! upper concurrency levels).

use crate::ExperimentReport;
use cool_common::Table;
use cool_serve::{run_loadgen, LoadgenConfig, ServeMode, Server, ServerConfig};

/// Client concurrency levels the benchmark sweeps.
pub const CONCURRENCY: [usize; 3] = [1, 8, 32];

/// Worker threads per daemon (both modes, for a fair core budget).
const THREADS: usize = 4;

/// Shards for the event daemon (the threaded baseline is single-lock).
const SHARDS: usize = 4;

/// One measured (mode, concurrency) cell.
#[derive(Clone, Debug)]
pub struct ServeCell {
    /// `"event"` or `"threaded"`.
    pub mode: &'static str,
    /// Concurrent loadgen workers.
    pub concurrency: usize,
    /// Requests completed in the cell.
    pub requests: u64,
    /// Transport errors (0 on a healthy daemon).
    pub errors: u64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile latency, milliseconds.
    pub p999_ms: f64,
}

/// Boots a daemon, drives one closed-loop loadgen cell against it, shuts
/// it down, and returns the cell.
fn measure_cell(
    mode: ServeMode,
    mode_name: &'static str,
    concurrency: usize,
    seed: u64,
    cell_ms: u64,
) -> ServeCell {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        mode,
        threads: THREADS,
        shards: SHARDS,
        queue_cap: 1024,
        cache_cap: 64,
        timeout_ms: 30_000,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run());

    let report = run_loadgen(&LoadgenConfig {
        addr: addr.to_string(),
        duration_ms: cell_ms,
        concurrency,
        // Keep-alive is the event transport's discipline; the threaded
        // baseline only speaks one request per connection.
        keep_alive: mode == ServeMode::Event,
        distinct: 8,
        seed,
        shutdown_after: true,
        ..LoadgenConfig::default()
    })
    .expect("loadgen cell completes");
    handle
        .join()
        .expect("server thread exits")
        .expect("server loop clean");

    ServeCell {
        mode: mode_name,
        concurrency,
        requests: report.requests,
        errors: report.errors,
        throughput_rps: report.throughput_rps,
        p50_ms: report.p50_ms,
        p99_ms: report.p99_ms,
        p999_ms: report.p999_ms,
    }
}

/// Measures the full (mode × concurrency) grid, `cell_ms` of traffic per
/// cell. Deterministic request streams per seed (wall-clock counts are
/// machine-dependent, as with every perf experiment).
pub fn measure(seed: u64, cell_ms: u64) -> Vec<ServeCell> {
    let mut cells = Vec::with_capacity(2 * CONCURRENCY.len());
    for (mode, name) in [
        (ServeMode::Threaded, "threaded"),
        (ServeMode::Event, "event"),
    ] {
        for &concurrency in &CONCURRENCY {
            cells.push(measure_cell(mode, name, concurrency, seed, cell_ms));
        }
    }
    cells
}

/// Renders the cells as the `BENCH_PR8.json` document (no external JSON
/// dependency; shape is pinned by the unit tests and the CI smoke check).
#[must_use]
pub fn to_json(seed: u64, cells: &[ServeCell]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{{\"bench\":\"perf_serve\",\"seed\":{seed},\"rows\":[");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"mode\":\"{}\",\"concurrency\":{},\"requests\":{},\"errors\":{},\
             \"throughput_rps\":{:.3},\"p50_ms\":{:.6},\"p99_ms\":{:.6},\"p999_ms\":{:.6}}}",
            c.mode,
            c.concurrency,
            c.requests,
            c.errors,
            c.throughput_rps,
            c.p50_ms,
            c.p99_ms,
            c.p999_ms
        );
    }
    out.push_str("]}\n");
    out
}

/// Runs the benchmark, writes `BENCH_PR8.json` to the working directory,
/// and returns the report.
pub fn run(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new("perf_serve");
    let cells = measure(seed, 1_000);

    let mut table = Table::new([
        "mode",
        "concurrency",
        "requests",
        "errors",
        "req/s",
        "p50 ms",
        "p99 ms",
        "p999 ms",
    ]);
    for c in &cells {
        table.row([
            c.mode.to_string(),
            c.concurrency.to_string(),
            c.requests.to_string(),
            c.errors.to_string(),
            format!("{:.0}", c.throughput_rps),
            format!("{:.3}", c.p50_ms),
            format!("{:.3}", c.p99_ms),
            format!("{:.3}", c.p999_ms),
        ]);
    }
    report.add_table("transport comparison", table);

    let json = to_json(seed, &cells);
    match std::fs::write("BENCH_PR8.json", &json) {
        Ok(()) => {
            report.add_note("wrote BENCH_PR8.json (machine-readable serving baseline)");
        }
        Err(e) => {
            report.add_note(format!("could not write BENCH_PR8.json: {e}"));
        }
    }
    report.add_note(
        "Keep-alive amortizes the TCP handshake the threaded baseline pays \
         per request, and sharded caches/queues let concurrent requests for \
         different content addresses proceed without contending on one lock; \
         both effects grow with concurrency, so the event rows should pull \
         ahead on throughput and p99 as workers are added.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::json::{self, Value};

    #[test]
    fn json_parses_and_pins_the_row_shape() {
        let cells = vec![ServeCell {
            mode: "event",
            concurrency: 8,
            requests: 1200,
            errors: 0,
            throughput_rps: 2400.0,
            p50_ms: 0.8,
            p99_ms: 4.5,
            p999_ms: 9.0,
        }];
        let doc = json::parse(&to_json(7, &cells)).unwrap();
        assert_eq!(doc.get("bench").and_then(Value::as_str), Some("perf_serve"));
        assert_eq!(doc.get("seed").and_then(Value::as_f64), Some(7.0));
        let rows = doc.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("mode").and_then(Value::as_str), Some("event"));
        assert_eq!(
            rows[0].get("concurrency").and_then(Value::as_f64),
            Some(8.0)
        );
        assert_eq!(rows[0].get("errors").and_then(Value::as_f64), Some(0.0));
        assert_eq!(rows[0].get("p99_ms").and_then(Value::as_f64), Some(4.5));
    }

    #[test]
    fn event_cell_serves_cleanly_with_low_p50_under_light_load() {
        // Regression for the 5 ms accept-poll sleep the event loop
        // replaced: a single closed-loop client against an idle daemon
        // must see a median far below the old polling granularity stack-up
        // (loose bound — debug build, shared CI hardware).
        let cell = measure_cell(ServeMode::Event, "event", 1, 11, 250);
        assert_eq!(cell.errors, 0, "{cell:?}");
        assert!(cell.requests > 0, "{cell:?}");
        assert!(cell.p50_ms < 50.0, "light-load p50 too high: {cell:?}");
    }
}
