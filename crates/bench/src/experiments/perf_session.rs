//! Wall-clock comparison of warm-start session repair against from-scratch
//! re-solving, across sensor counts and delta batch sizes.
//!
//! Each cell builds a low-degree multi-target detection session (`n`
//! sensors, `n` targets, each watched by [`COVER`] sensors), solves it
//! once, then replays a batch of localized deltas (sensor toggles and
//! target reweights) two ways: through [`SessionEntry::patch`] (the
//! warm-start repair engine, re-greedying only the O(deg) dirty cells)
//! and by mutating a plain [`SessionInstance`] and running a full
//! [`SessionInstance::solve`] after every delta — what a sessionless
//! server does per PATCH.
//!
//! Besides the report table, `run` emits `BENCH_PR7.json` in the working
//! directory — the machine-readable baseline the CI `session-smoke` job
//! checks (incremental must be strictly faster than scratch for
//! single-delta batches at the largest `n`, and every repair must stay
//! within the greedy approximation ratio of the scratch value).

use crate::ExperimentReport;
use cool_common::{SeedSequence, SensorId, SensorSet, Table};
use cool_core::repair::{RepairConfig, RepairMode};
use cool_session::{Delta, SessionEntry, SessionInstance, TargetSpec};
use rand::Rng;
use std::time::Instant;

/// Sensor counts the benchmark sweeps.
pub const SENSOR_COUNTS: [usize; 2] = [200, 800];

/// Delta batch sizes per cell.
pub const DELTA_SIZES: [usize; 3] = [1, 4, 16];

/// Sensors covering each target — keeps every sensor's dirty
/// neighbourhood small relative to `n`, so repairs stay incremental.
const COVER: usize = 6;

/// Per-sensor detection probability of the synthetic targets.
const DETECT_P: f64 = 0.4;

/// One measured (n, batch size) cell.
#[derive(Clone, Debug)]
pub struct SessionCell {
    /// Sensor count (targets equal it).
    pub n: usize,
    /// Deltas in the replayed batch.
    pub deltas: usize,
    /// Warm-start repair pipeline, milliseconds for the whole batch.
    pub incremental_ms: f64,
    /// Apply + full from-scratch solve per delta, milliseconds.
    pub scratch_ms: f64,
    /// (sensor, slot) cells the warm-start repairs re-evaluated.
    pub cells_touched: u64,
    /// How many of the repairs fell back to a full re-solve.
    pub full_repairs: usize,
    /// Final scratch value minus final repaired value (≤ a small positive
    /// number by the approximation bound; often ≤ 0).
    pub value_gap: f64,
}

fn time_ms<S>(f: impl FnOnce() -> S) -> (f64, S) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

/// A random low-degree session: `n` sensors, `n` targets, each covered by
/// [`COVER`] distinct sensors, on the paper's sunny cycle (ρ = 3).
pub fn session_instance(n: usize, rng: &mut impl Rng) -> SessionInstance {
    let targets: Vec<TargetSpec> = (0..n)
        .map(|_| {
            let mut coverage = SensorSet::new(n);
            while coverage.len() < COVER.min(n) {
                coverage.insert(SensorId(rng.random_range(0..n)));
            }
            TargetSpec {
                coverage,
                p: DETECT_P,
            }
        })
        .collect();
    SessionInstance::new(n, targets, 15.0, 45.0, 12.0).expect("synthetic instance is valid")
}

/// A batch of `k` localized deltas: distinct sensor kills interleaved
/// with target reweights (the mutations a live deployment actually sees).
pub fn delta_batch(instance: &SessionInstance, k: usize, rng: &mut impl Rng) -> Vec<Delta> {
    let n = instance.n();
    let targets = instance.targets().len();
    let mut killed = SensorSet::new(n);
    (0..k)
        .map(|i| {
            if i % 2 == 0 && killed.len() + 1 < n {
                let mut sensor = rng.random_range(0..n);
                while killed.contains(SensorId(sensor)) {
                    sensor = rng.random_range(0..n);
                }
                killed.insert(SensorId(sensor));
                Delta::RemoveSensor { sensor }
            } else {
                Delta::Reweight {
                    target: rng.random_range(0..targets),
                    p: [0.3, 0.45, 0.6][rng.random_range(0..3usize)],
                }
            }
        })
        .collect()
}

/// Measures the full grid. Deterministic per seed; every repair value is
/// cross-checked against the scratch value so a divergence shows up in
/// `value_gap` rather than as a silently wrong speedup.
pub fn measure(seed: u64) -> Vec<SessionCell> {
    let seeds = SeedSequence::new(seed);
    let config = RepairConfig::default();
    let mut cells = Vec::with_capacity(SENSOR_COUNTS.len() * DELTA_SIZES.len());
    for (i, &n) in SENSOR_COUNTS.iter().enumerate() {
        for (j, &k) in DELTA_SIZES.iter().enumerate() {
            let mut rng = seeds.child(1).nth_rng((i * DELTA_SIZES.len() + j) as u64);
            let instance = session_instance(n, &mut rng);
            let deltas = delta_batch(&instance, k, &mut rng);
            let mut entry =
                SessionEntry::solve(instance.clone()).expect("synthetic instance solves");

            let (incremental_ms, stats) = time_ms(|| {
                deltas
                    .iter()
                    .map(|d| entry.patch(d, &config).expect("benchmark delta applies"))
                    .collect::<Vec<_>>()
            });
            let cells_touched = stats.iter().map(|s| s.cells_touched).sum();
            let full_repairs = stats.iter().filter(|s| s.mode == RepairMode::Full).count();

            let (scratch_ms, scratch_value) = time_ms(|| {
                let mut plain = instance.clone();
                let mut value = 0.0;
                for d in &deltas {
                    plain.apply(d).expect("benchmark delta applies");
                    let schedule = plain.solve().expect("mutated instance solves");
                    value = schedule.period_utility(&plain.utility());
                }
                value
            });

            cells.push(SessionCell {
                n,
                deltas: k,
                incremental_ms,
                scratch_ms,
                cells_touched,
                full_repairs,
                value_gap: scratch_value - entry.value(),
            });
        }
    }
    cells
}

/// Renders the cells as the `BENCH_PR7.json` document (no external JSON
/// dependency; shape is pinned by the unit tests and the CI smoke check).
#[must_use]
pub fn to_json(seed: u64, cells: &[SessionCell]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{{\"bench\":\"perf_session\",\"seed\":{seed},\"rows\":[");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"n\":{},\"deltas\":{},\"incremental_ms\":{:.3},\"scratch_ms\":{:.3},\"cells_touched\":{},\"full_repairs\":{},\"value_gap\":{:.6}}}",
            c.n, c.deltas, c.incremental_ms, c.scratch_ms, c.cells_touched, c.full_repairs, c.value_gap
        );
    }
    out.push_str("]}\n");
    out
}

/// Runs the benchmark, writes `BENCH_PR7.json` to the working directory,
/// and returns the report.
pub fn run(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new("perf_session");
    let cells = measure(seed);

    let mut table = Table::new([
        "n",
        "deltas",
        "incremental ms",
        "scratch ms",
        "speedup",
        "cells",
        "full",
        "value gap",
    ]);
    for c in &cells {
        table.row([
            c.n.to_string(),
            c.deltas.to_string(),
            format!("{:.2}", c.incremental_ms),
            format!("{:.2}", c.scratch_ms),
            format!("{:.1}×", c.scratch_ms / c.incremental_ms.max(1e-6)),
            c.cells_touched.to_string(),
            c.full_repairs.to_string(),
            format!("{:+.4}", c.value_gap),
        ]);
    }
    report.add_table("wallclock", table);

    let json = to_json(seed, &cells);
    match std::fs::write("BENCH_PR7.json", &json) {
        Ok(()) => {
            report.add_note("wrote BENCH_PR7.json (machine-readable perf baseline)");
        }
        Err(e) => {
            report.add_note(format!("could not write BENCH_PR7.json: {e}"));
        }
    }
    report.add_note(
        "Warm-start repair re-greedies only the dirty sensors' O(deg) cells, \
         so a single-delta patch avoids the full n·T greedy sweep entirely; \
         the win shrinks as batches grow (more cells dirtied, occasional \
         full-repair fallbacks) and the value gap stays within the greedy \
         approximation bound.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::json::{self, Value};

    #[test]
    fn json_parses_and_covers_the_grid() {
        // A tiny hand-built cell list: the JSON shape is the contract the
        // CI smoke check scripts against.
        let cells = vec![SessionCell {
            n: 800,
            deltas: 1,
            incremental_ms: 0.4,
            scratch_ms: 11.0,
            cells_touched: 120,
            full_repairs: 0,
            value_gap: -0.01,
        }];
        let doc = json::parse(&to_json(7, &cells)).unwrap();
        assert_eq!(
            doc.get("bench").and_then(Value::as_str),
            Some("perf_session")
        );
        assert_eq!(doc.get("seed").and_then(Value::as_f64), Some(7.0));
        let rows = doc.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("n").and_then(Value::as_f64), Some(800.0));
        assert_eq!(rows[0].get("deltas").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn small_batch_stays_incremental_and_near_scratch() {
        // A cheap n=200 probe of the measurement machinery (smaller n
        // puts a sensor's ~COVER² neighbourhood over the 25% dirty
        // threshold and legitimately forces full repairs): localized
        // deltas must repair incrementally and land within the greedy
        // approximation ratio of the scratch value.
        let mut rng = SeedSequence::new(11).child(1).nth_rng(0);
        let instance = session_instance(200, &mut rng);
        let deltas = delta_batch(&instance, 2, &mut rng);
        let mut entry = SessionEntry::solve(instance.clone()).unwrap();
        let config = RepairConfig::default();
        for d in &deltas {
            let stats = entry.patch(d, &config).unwrap();
            assert_eq!(stats.mode, RepairMode::Incremental, "{d:?}");
        }
        let mut plain = instance;
        for d in &deltas {
            plain.apply(d).unwrap();
        }
        let scratch = plain.solve().unwrap();
        let scratch_value = scratch.period_utility(&plain.utility());
        assert!(entry.value() + 1e-9 >= 0.5 * scratch_value);
    }
}
