//! Wall-clock comparison of the sparse incidence-indexed sum evaluator
//! against the dense O(m) walk, across target counts, sensor counts, and
//! both allocation families.
//!
//! Each cell builds a synthetic multi-target detection instance with a
//! *small coverage degree* (every target watched by a handful of sensors,
//! so `deg(v) ≪ m`) and runs the same lazy greedy twice: once on the
//! plain [`SumUtility`] (sparse [`SparseSumEvaluator`] via the evaluator
//! seam) and once on the [`DenseSumUtility`] wrapper (dense
//! [`SumEvaluator`](cool_utility::SumEvaluator) oracle). Sparse gains are
//! bitwise equal to dense ones, so the two runs must produce **identical
//! assignments** — a cell with `identical = false` is a correctness bug,
//! not a measurement artifact.
//!
//! Besides the report table, `run` emits `BENCH_PR5.json` in the working
//! directory — the machine-readable baseline the CI `bench-smoke` job
//! checks (sparse must not be slower than dense at the largest `m`, and
//! every row must be `identical`).
//!
//! Since PR 10 the run also emits `BENCH_PR10.json`: a three-arm sweep of
//! the struct-of-arrays kernels ([`SparseSumEvaluator`]) against the
//! retained per-part enum walk ([`PartWalkSumUtility`]) and the dense
//! oracle. The dense arm only runs at the small sizes (it is O(m) per
//! query); setting [`BIG_CELL_ENV`]`=1` adds the n = 10 000 / m = 100 000
//! cell (soa vs partwalk only — the instance alone is ~8 GB of dense
//! per-part probability vectors, so CI validates the checked-in JSON
//! instead of re-measuring it).
//!
//! [`SparseSumEvaluator`]: cool_utility::SparseSumEvaluator

use crate::ExperimentReport;
use cool_common::{SeedSequence, SensorId, SensorSet, Table};
use cool_core::greedy::{greedy_active_lazy_with_threads, greedy_passive_lazy_with_threads};
use cool_utility::{DenseSumUtility, PartWalkSumUtility, SumUtility};
use rand::Rng;
use std::time::Instant;

/// The (m targets, n sensors) grid the benchmark sweeps.
pub const SIZES: [(usize, usize); 6] = [
    (100, 200),
    (100, 800),
    (1000, 200),
    (1000, 800),
    (5000, 200),
    (5000, 800),
];

/// Environment variable that, when set to `1`, adds the [`BIG_CELL`] row
/// to the PR 10 sweep. Off by default: the cell needs ~8 GB per utility
/// arm and minutes of wall clock, so it is measured once locally and the
/// resulting `BENCH_PR10.json` is checked in for CI to validate.
pub const BIG_CELL_ENV: &str = "COOL_BENCH_PR10_BIG";

/// The (m targets, n sensors) of the env-gated large PR 10 cell.
pub const BIG_CELL: (usize, usize) = (100_000, 10_000);

/// Sensors covering each target — keeps `deg(v) = m·COVER/n ≪ m` so the
/// sparse walk has something to skip.
const COVER: usize = 6;

/// Slots per period in every cell.
const T_SLOTS: usize = 4;

/// Per-sensor detection probability of the synthetic targets.
const DETECT_P: f64 = 0.4;

/// One measured (family, m, n) cell.
#[derive(Clone, Debug)]
pub struct SparseCell {
    /// `"active"` (`ρ > 1`) or `"passive"` (`ρ ≤ 1`).
    pub family: &'static str,
    /// Number of utility parts (targets).
    pub m: usize,
    /// Sensor count.
    pub n: usize,
    /// Slots per period.
    pub t_slots: usize,
    /// Lazy greedy on the dense O(m)-walk evaluator, milliseconds.
    pub dense_ms: f64,
    /// Lazy greedy on the sparse O(deg) evaluator, milliseconds.
    pub sparse_ms: f64,
    /// Mean incidence degree over sensors (`index.n_entries() / n`).
    pub avg_degree: f64,
    /// Whether both runs produced the same assignment (they must).
    pub identical: bool,
}

/// One measured (family, m, n) cell of the PR 10 three-arm sweep.
#[derive(Clone, Debug)]
pub struct Pr10Cell {
    /// `"active"` (`ρ > 1`) or `"passive"` (`ρ ≤ 1`).
    pub family: &'static str,
    /// Number of utility parts (targets).
    pub m: usize,
    /// Sensor count.
    pub n: usize,
    /// Slots per period.
    pub t_slots: usize,
    /// Lazy greedy on the struct-of-arrays kernels, milliseconds.
    pub soa_ms: f64,
    /// Lazy greedy on the retained per-part enum walk, milliseconds.
    pub partwalk_ms: f64,
    /// Lazy greedy on the dense O(m)-walk oracle, milliseconds; `None` at
    /// the big cell, where the dense arm is prohibitively slow.
    pub dense_ms: Option<f64>,
    /// Mean incidence degree over sensors (`index.n_entries() / n`).
    pub avg_degree: f64,
    /// Whether every measured arm produced the same assignment (they must).
    pub identical: bool,
}

fn time_ms<S>(f: impl FnOnce() -> S) -> (f64, S) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

/// A random low-degree multi-target detection instance: `m` targets, each
/// covered by [`COVER`] distinct sensors out of `n`.
pub fn sparse_instance(n: usize, m: usize, rng: &mut impl Rng) -> SumUtility {
    let coverages: Vec<SensorSet> = (0..m)
        .map(|_| {
            let mut cov = SensorSet::new(n);
            while cov.len() < COVER.min(n) {
                cov.insert(SensorId(rng.random_range(0..n)));
            }
            cov
        })
        .collect();
    SumUtility::multi_target_detection(&coverages, DETECT_P)
}

/// Measures the full grid. Deterministic per seed; assignments are
/// cross-checked so any sparse/dense divergence shows up as
/// `identical = false` rather than a silently wrong speedup.
pub fn measure(seed: u64) -> Vec<SparseCell> {
    let seeds = SeedSequence::new(seed);
    let mut cells = Vec::with_capacity(2 * SIZES.len());
    for (i, &(m, n)) in SIZES.iter().enumerate() {
        let mut rng = seeds.child(1).nth_rng(i as u64);
        let sparse = sparse_instance(n, m, &mut rng);
        let avg_degree = sparse.incidence().n_entries() as f64 / n as f64;
        let dense = DenseSumUtility::new(sparse.clone());

        let (dense_ms, d) =
            time_ms(|| greedy_active_lazy_with_threads(&dense, T_SLOTS, 1).unwrap());
        let (sparse_ms, s) =
            time_ms(|| greedy_active_lazy_with_threads(&sparse, T_SLOTS, 1).unwrap());
        cells.push(SparseCell {
            family: "active",
            m,
            n,
            t_slots: T_SLOTS,
            dense_ms,
            sparse_ms,
            avg_degree,
            identical: d.assignment() == s.assignment(),
        });

        let (dense_ms, d) =
            time_ms(|| greedy_passive_lazy_with_threads(&dense, T_SLOTS, 1).unwrap());
        let (sparse_ms, s) =
            time_ms(|| greedy_passive_lazy_with_threads(&sparse, T_SLOTS, 1).unwrap());
        cells.push(SparseCell {
            family: "passive",
            m,
            n,
            t_slots: T_SLOTS,
            dense_ms,
            sparse_ms,
            avg_degree,
            identical: d.assignment() == s.assignment(),
        });
    }
    cells
}

/// Measures one PR 10 cell: soa and partwalk arms always, the dense arm
/// only when `with_dense` (small sizes). All measured arms must agree on
/// the assignment — the SoA kernels are bitwise equal to the enum walk,
/// so a mismatch is a correctness bug.
fn measure_pr10_cell(
    family: &'static str,
    m: usize,
    n: usize,
    soa: &SumUtility,
    walk: &PartWalkSumUtility,
    dense: Option<&DenseSumUtility>,
    avg_degree: f64,
) -> Pr10Cell {
    let active = family == "active";
    let run_soa = |u: &SumUtility| {
        if active {
            greedy_active_lazy_with_threads(u, T_SLOTS, 1).unwrap()
        } else {
            greedy_passive_lazy_with_threads(u, T_SLOTS, 1).unwrap()
        }
    };
    let (soa_ms, s) = time_ms(|| run_soa(soa));
    let (partwalk_ms, w) = time_ms(|| {
        if active {
            greedy_active_lazy_with_threads(walk, T_SLOTS, 1).unwrap()
        } else {
            greedy_passive_lazy_with_threads(walk, T_SLOTS, 1).unwrap()
        }
    });
    let mut identical = s.assignment() == w.assignment();
    let dense_ms = dense.map(|du| {
        let (ms, d) = time_ms(|| {
            if active {
                greedy_active_lazy_with_threads(du, T_SLOTS, 1).unwrap()
            } else {
                greedy_passive_lazy_with_threads(du, T_SLOTS, 1).unwrap()
            }
        });
        identical &= d.assignment() == s.assignment();
        ms
    });
    Pr10Cell {
        family,
        m,
        n,
        t_slots: T_SLOTS,
        soa_ms,
        partwalk_ms,
        dense_ms,
        avg_degree,
        identical,
    }
}

/// Measures the PR 10 three-arm grid: every [`SIZES`] cell with all three
/// arms, plus — when [`BIG_CELL_ENV`] is `1` — the n = 10 000 /
/// m = 100 000 cell (active family, soa vs partwalk only).
pub fn measure_pr10(seed: u64) -> Vec<Pr10Cell> {
    let seeds = SeedSequence::new(seed);
    let mut cells = Vec::with_capacity(2 * SIZES.len() + 1);
    for (i, &(m, n)) in SIZES.iter().enumerate() {
        let mut rng = seeds.child(2).nth_rng(i as u64);
        let soa = sparse_instance(n, m, &mut rng);
        let avg_degree = soa.incidence().n_entries() as f64 / n as f64;
        let walk = PartWalkSumUtility::new(soa.clone());
        let dense = DenseSumUtility::new(soa.clone());
        for family in ["active", "passive"] {
            cells.push(measure_pr10_cell(
                family,
                m,
                n,
                &soa,
                &walk,
                Some(&dense),
                avg_degree,
            ));
        }
    }
    if std::env::var(BIG_CELL_ENV).as_deref() == Ok("1") {
        let (m, n) = BIG_CELL;
        let mut rng = seeds.child(2).nth_rng(SIZES.len() as u64);
        let soa = sparse_instance(n, m, &mut rng);
        let avg_degree = soa.incidence().n_entries() as f64 / n as f64;
        let walk = PartWalkSumUtility::new(soa.clone());
        cells.push(measure_pr10_cell(
            "active", m, n, &soa, &walk, None, avg_degree,
        ));
    }
    cells
}

/// Renders the cells as the `BENCH_PR5.json` document (no external JSON
/// dependency; shape is pinned by the unit tests and the CI smoke check).
#[must_use]
pub fn to_json(seed: u64, cells: &[SparseCell]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{{\"bench\":\"perf_sparse\",\"seed\":{seed},\"rows\":[");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"family\":\"{}\",\"m\":{},\"n\":{},\"t_slots\":{},\"dense_ms\":{:.3},\"sparse_ms\":{:.3},\"avg_degree\":{:.2},\"identical\":{}}}",
            c.family, c.m, c.n, c.t_slots, c.dense_ms, c.sparse_ms, c.avg_degree, c.identical
        );
    }
    out.push_str("]}\n");
    out
}

/// Renders the PR 10 cells as the `BENCH_PR10.json` document. The dense
/// arm is `null` where it was skipped (the big cell).
#[must_use]
pub fn to_json_pr10(seed: u64, cells: &[Pr10Cell]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{{\"bench\":\"perf_sparse_pr10\",\"seed\":{seed},\"rows\":[");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let dense = c
            .dense_ms
            .map_or_else(|| "null".to_string(), |ms| format!("{ms:.3}"));
        let _ = write!(
            out,
            "{{\"family\":\"{}\",\"m\":{},\"n\":{},\"t_slots\":{},\"soa_ms\":{:.3},\"partwalk_ms\":{:.3},\"dense_ms\":{},\"avg_degree\":{:.2},\"identical\":{}}}",
            c.family, c.m, c.n, c.t_slots, c.soa_ms, c.partwalk_ms, dense, c.avg_degree, c.identical
        );
    }
    out.push_str("]}\n");
    out
}

/// Runs the benchmark, writes `BENCH_PR5.json` to the working directory,
/// and returns the report.
pub fn run(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new("perf_sparse");
    let cells = measure(seed);

    let mut table = Table::new([
        "family",
        "m",
        "n",
        "avg deg",
        "dense ms",
        "sparse ms",
        "speedup",
        "identical",
    ]);
    for c in &cells {
        table.row([
            c.family.to_string(),
            c.m.to_string(),
            c.n.to_string(),
            format!("{:.1}", c.avg_degree),
            format!("{:.1}", c.dense_ms),
            format!("{:.1}", c.sparse_ms),
            format!("{:.1}×", c.dense_ms / c.sparse_ms.max(1e-6)),
            c.identical.to_string(),
        ]);
    }
    report.add_table("wallclock", table);

    let json = to_json(seed, &cells);
    match std::fs::write("BENCH_PR5.json", &json) {
        Ok(()) => {
            report.add_note("wrote BENCH_PR5.json (machine-readable perf baseline)");
        }
        Err(e) => {
            report.add_note(format!("could not write BENCH_PR5.json: {e}"));
        }
    }
    report.add_note(
        "The sparse evaluator is a pure acceleration (identical assignments): \
         marginal gains only visit incident parts, so each query costs \
         O(deg) instead of O(m) and the win grows with the target count.",
    );

    let pr10 = measure_pr10(seed);
    let mut table = Table::new([
        "family",
        "m",
        "n",
        "avg deg",
        "soa ms",
        "partwalk ms",
        "dense ms",
        "soa speedup",
        "identical",
    ]);
    for c in &pr10 {
        table.row([
            c.family.to_string(),
            c.m.to_string(),
            c.n.to_string(),
            format!("{:.1}", c.avg_degree),
            format!("{:.1}", c.soa_ms),
            format!("{:.1}", c.partwalk_ms),
            c.dense_ms
                .map_or_else(|| "—".to_string(), |ms| format!("{ms:.1}")),
            format!("{:.1}×", c.partwalk_ms / c.soa_ms.max(1e-6)),
            c.identical.to_string(),
        ]);
    }
    report.add_table("soa_vs_partwalk", table);

    let json = to_json_pr10(seed, &pr10);
    match std::fs::write("BENCH_PR10.json", &json) {
        Ok(()) => {
            report.add_note("wrote BENCH_PR10.json (SoA kernel perf baseline)");
        }
        Err(e) => {
            report.add_note(format!("could not write BENCH_PR10.json: {e}"));
        }
    }
    if std::env::var(BIG_CELL_ENV).as_deref() != Ok("1") {
        report.add_note(format!(
            "big cell (m = {}, n = {}) skipped; set {}=1 to measure it",
            BIG_CELL.0, BIG_CELL.1, BIG_CELL_ENV
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::json::{self, Value};

    #[test]
    fn json_parses_and_covers_the_grid() {
        // A tiny hand-built cell list: the JSON shape is the contract the
        // CI smoke check scripts against.
        let cells = vec![
            SparseCell {
                family: "active",
                m: 5000,
                n: 800,
                t_slots: 4,
                dense_ms: 100.0,
                sparse_ms: 5.0,
                avg_degree: 37.5,
                identical: true,
            },
            SparseCell {
                family: "passive",
                m: 100,
                n: 200,
                t_slots: 4,
                dense_ms: 1.0,
                sparse_ms: 0.5,
                avg_degree: 3.0,
                identical: true,
            },
        ];
        let doc = json::parse(&to_json(7, &cells)).unwrap();
        assert_eq!(
            doc.get("bench").and_then(Value::as_str),
            Some("perf_sparse")
        );
        assert_eq!(doc.get("seed").and_then(Value::as_f64), Some(7.0));
        let rows = doc.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("m").and_then(Value::as_f64), Some(5000.0));
        assert_eq!(
            rows[0].get("identical").and_then(Value::as_bool),
            Some(true)
        );
    }

    #[test]
    fn pr10_json_parses_and_renders_the_skipped_dense_arm_as_null() {
        let cells = vec![
            Pr10Cell {
                family: "active",
                m: 100_000,
                n: 10_000,
                t_slots: 4,
                soa_ms: 1000.0,
                partwalk_ms: 2500.0,
                dense_ms: None,
                avg_degree: 60.0,
                identical: true,
            },
            Pr10Cell {
                family: "passive",
                m: 5000,
                n: 800,
                t_slots: 4,
                soa_ms: 4.0,
                partwalk_ms: 9.0,
                dense_ms: Some(120.0),
                avg_degree: 37.5,
                identical: true,
            },
        ];
        let doc = json::parse(&to_json_pr10(7, &cells)).unwrap();
        assert_eq!(
            doc.get("bench").and_then(Value::as_str),
            Some("perf_sparse_pr10")
        );
        let rows = doc.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("dense_ms"), Some(&Value::Null));
        assert_eq!(rows[0].get("soa_ms").and_then(Value::as_f64), Some(1000.0));
        assert_eq!(rows[1].get("dense_ms").and_then(Value::as_f64), Some(120.0));
        assert_eq!(
            rows[0].get("identical").and_then(Value::as_bool),
            Some(true)
        );
    }

    #[test]
    fn small_pr10_measurement_is_identical_across_all_arms() {
        let mut rng = SeedSequence::new(11).child(2).nth_rng(0);
        let soa = sparse_instance(40, 60, &mut rng);
        let walk = PartWalkSumUtility::new(soa.clone());
        let dense = DenseSumUtility::new(soa.clone());
        for family in ["active", "passive"] {
            let cell = measure_pr10_cell(family, 60, 40, &soa, &walk, Some(&dense), 9.0);
            assert!(cell.identical, "{family} arms diverged");
        }
    }

    /// CI `hard-invariants` smoke of the large regime: a 10 000-sensor,
    /// 20 000-target active greedy solve on the SoA kernels must match the
    /// per-part enum walk assignment-for-assignment (gains are bitwise
    /// equal, so the lazy heap pops in the same order). `#[ignore]`d —
    /// ~seconds and ~3 GB, run explicitly via `-- --ignored soa_smoke`.
    #[test]
    #[ignore = "large instance; run explicitly (CI hard-invariants job)"]
    fn soa_smoke_10k() {
        let mut rng = SeedSequence::new(23).child(3).nth_rng(0);
        let soa = sparse_instance(10_000, 20_000, &mut rng);
        let walk = PartWalkSumUtility::new(soa.clone());
        let s = greedy_active_lazy_with_threads(&soa, T_SLOTS, 1).unwrap();
        let w = greedy_active_lazy_with_threads(&walk, T_SLOTS, 1).unwrap();
        assert_eq!(s.assignment(), w.assignment());
        assert_eq!(
            s.period_utility(&soa).to_bits(),
            w.period_utility(&walk).to_bits()
        );
    }

    #[test]
    fn small_measurement_is_identical_across_evaluators() {
        // Measure only a small cell (cheap): sparse and dense greedy runs
        // must agree on the assignment for both families.
        let mut rng = SeedSequence::new(11).child(1).nth_rng(0);
        let sparse = sparse_instance(60, 40, &mut rng);
        let dense = DenseSumUtility::new(sparse.clone());
        let s = greedy_active_lazy_with_threads(&sparse, 4, 1).unwrap();
        let d = greedy_active_lazy_with_threads(&dense, 4, 1).unwrap();
        assert_eq!(s.assignment(), d.assignment());
        let s = greedy_passive_lazy_with_threads(&sparse, 4, 1).unwrap();
        let d = greedy_passive_lazy_with_threads(&dense, 4, 1).unwrap();
        assert_eq!(s.assignment(), d.assignment());
    }
}
