//! §V — the random charging model: schedule with the effective ratio `ρ'`,
//! evaluate by Monte-Carlo simulation of the stochastic energy process.

use crate::ExperimentReport;
use cool_common::SensorSet;
use cool_common::{SeedSequence, Table};
use cool_core::schedule::{PeriodSchedule, ScheduleMode};
use cool_core::stochastic::{rho_prime_cycle, simulate_schedule, stochastic_greedy, stochastic_lp};
use cool_energy::RandomChargeModel;
use cool_utility::SumUtility;

const SIM_PERIODS: usize = 200;

/// Runs the stochastic-model study.
pub fn run(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new("randmodel");
    let seeds = SeedSequence::new(seed);
    let n = 20;
    let utility = SumUtility::multi_target_detection(&[SensorSet::full(n)], 0.4);

    // Scenarios: (label, λ_a /min, λ_d min, T̄_r, σ) with T_d = 15 min.
    let scenarios: [(&str, f64, f64, f64, f64); 4] = [
        ("busy events, slow solar", 0.2, 2.0, 112.5, 10.0),
        ("rare events, slow solar", 0.05, 2.0, 150.0, 15.0),
        ("busy events, fast solar", 0.2, 2.0, 37.5, 5.0),
        ("saturated sensing", 1.0, 3.0, 45.0, 5.0),
    ];

    let mut table = Table::new([
        "scenario",
        "duty",
        "T̄_d (min)",
        "rho'",
        "T slots",
        "greedy(ρ') sim utility",
        "LP(ρ') sim utility",
        "round-robin sim utility",
        "static sim utility",
    ]);
    for (i, (label, la, ld, tr, sigma)) in scenarios.iter().enumerate() {
        let model = RandomChargeModel::new(15.0, *la, *ld, *tr, *sigma).expect("valid model");
        let cycle = rho_prime_cycle(&model).expect("quantizable");
        let (_, greedy_plan) = stochastic_greedy(&utility, &model).expect("schedulable");
        let t = cycle.slots_per_period();
        let mode = if cycle.rho() > 1.0 {
            ScheduleMode::ActiveSlot
        } else {
            ScheduleMode::PassiveSlot
        };
        let round_robin = PeriodSchedule::new(mode, t, (0..n).map(|v| v % t).collect());
        let static_plan = PeriodSchedule::new(mode, t, vec![0; n]);

        let sim = |plan: &PeriodSchedule, stream: u64| {
            let mut rng = seeds.child(i as u64).nth_rng(stream);
            simulate_schedule(
                &utility,
                plan,
                &model,
                cycle.slot_minutes(),
                SIM_PERIODS,
                &mut rng,
            )
        };
        let g = sim(&greedy_plan, 0);
        let lp = stochastic_lp(&utility, &model, 16, &mut seeds.child(i as u64).nth_rng(9))
            .ok()
            .map(|(_, plan)| sim(&plan, 3));
        let rr = sim(&round_robin, 1);
        let st = sim(&static_plan, 2);
        table.row([
            label.to_string(),
            format!("{:.2}", model.duty_factor()),
            format!("{:.1}", model.mean_discharge_minutes()),
            format!("{:.2}", model.rho_prime()),
            t.to_string(),
            format!("{g:.4}"),
            lp.map_or("n/a (rho'<=1)".into(), |v| format!("{v:.4}")),
            format!("{rr:.4}"),
            format!("{st:.4}"),
        ]);
    }
    report.add_table("stochastic_scheduling", table);

    report.add_note(
        "The paper proposes feeding ρ' = T̄_r/T̄_d to the (LP-based) scheduler and \
         leaves the greedy extension open; here the ρ'-greedy is evaluated under \
         the full stochastic process. It matches round-robin on identical sensors \
         (both balance) and dominates the static baseline in every scenario.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_dominates_static_in_all_scenarios() {
        let r = run(17);
        let (_, table) = &r.tables()[0];
        for line in table.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let g: f64 = cells[cells.len() - 4].parse().unwrap();
            let st: f64 = cells[cells.len() - 1].parse().unwrap();
            assert!(g > st, "greedy {g} ≤ static {st} in {line}");
        }
    }

    #[test]
    fn utilities_are_probabilities() {
        let r = run(18);
        let (_, table) = &r.tables()[0];
        for line in table.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            for cell in &cells[cells.len() - 4..] {
                if cell.starts_with("n/a") {
                    continue;
                }
                let v: f64 = cell.parse().unwrap();
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
