//! Region monitoring (Eq. 2, Fig. 3) — the paper's second utility model,
//! exercised end to end: sensing disks subdivide Ω into signature
//! subregions, the utility is weighted covered area, and the greedy
//! schedules against it. The paper describes this model without evaluating
//! it; this experiment fills that gap.

use crate::svg::{LineChart, Series};
use crate::ExperimentReport;
use cool_common::{SeedSequence, Table};
use cool_core::baselines::{round_robin_schedule, static_schedule};
use cool_core::greedy::greedy_schedule;
use cool_core::problem::Problem;
use cool_energy::ChargeCycle;
use cool_geometry::{AnyRegion, Arrangement, DeploymentKind, DeploymentSpec, Disk, Rect};
use cool_utility::{CoverageUtility, UtilityFunction};

const SENSOR_COUNTS: [usize; 4] = [20, 40, 60, 80];
const RADIUS: f64 = 18.0;
const SIDE: f64 = 100.0;
const RESOLUTION: usize = 192;

/// Runs the region-monitoring study.
pub fn run(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new("region");
    let seeds = SeedSequence::new(seed);
    let cycle = ChargeCycle::paper_sunny();
    let omega = Rect::square(SIDE);

    let mut table = Table::new([
        "n",
        "subregions",
        "n² bound",
        "coverable %",
        "2-covered %",
        "greedy %/slot",
        "round-robin %/slot",
        "static %/slot",
    ]);
    let mut greedy_series = Vec::new();
    let mut rr_series = Vec::new();
    for (i, &n) in SENSOR_COUNTS.iter().enumerate() {
        let mut rng = seeds.nth_rng(i as u64);
        let spec = DeploymentSpec::new(omega, n, DeploymentKind::UniformRandom);
        let regions: Vec<AnyRegion> = spec
            .generate(&mut rng)
            .into_iter()
            .map(|p| Disk::new(p, RADIUS).into())
            .collect();
        let arrangement = Arrangement::build(omega, &regions, RESOLUTION);
        let utility = CoverageUtility::new(&arrangement);
        let max = utility.max_value();

        let problem = Problem::new(utility, cycle, 1).expect("valid instance");
        let greedy = problem.average_utility_per_slot(&greedy_schedule(&problem)) / max;
        let rr = problem.average_utility_per_slot(&round_robin_schedule(&problem)) / max;
        let st = problem.average_utility_per_slot(&static_schedule(&problem)) / max;

        table.row([
            n.to_string(),
            arrangement.subregions().len().to_string(),
            (n * n).to_string(),
            format!(
                "{:.1}",
                arrangement.total_coverable_area() / omega.area() * 100.0
            ),
            format!(
                "{:.1}",
                arrangement.area_covered_at_least(2) / omega.area() * 100.0
            ),
            format!("{:.1}", greedy * 100.0),
            format!("{:.1}", rr * 100.0),
            format!("{:.1}", st * 100.0),
        ]);
        greedy_series.push((n as f64, greedy));
        rr_series.push((n as f64, rr));
        assert!(
            arrangement.subregions().len() <= n * n,
            "the paper's polynomial subregion bound holds"
        );
    }
    report.add_table("region_coverage", table);
    report.add_chart(
        "coverage_fraction",
        LineChart::new(
            "Region monitoring (Eq. 2) — covered-area fraction per slot",
            "number of sensors",
            "fraction of coverable weighted area",
        )
        .with_series(Series::new("greedy", greedy_series))
        .with_series(Series::new("round-robin", rr_series))
        .render(),
    );

    report.add_note(
        "Eq. 2's weighted-area utility scheduled end to end: subregion counts stay \
         well under the paper's n² bound; the greedy keeps the largest covered \
         fraction every slot and the static baseline collapses to ≈ 1/T of it.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_dominates_baselines_and_bound_holds() {
        let r = run(2025);
        let (_, table) = &r.tables()[0];
        for line in table.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let greedy: f64 = cells[5].parse().unwrap();
            let rr: f64 = cells[6].parse().unwrap();
            let st: f64 = cells[7].parse().unwrap();
            assert!(greedy + 1e-9 >= rr, "{line}");
            assert!(greedy > st, "{line}");
            let subs: usize = cells[1].parse().unwrap();
            let bound: usize = cells[2].parse().unwrap();
            assert!(subs <= bound);
        }
        assert_eq!(r.charts().len(), 1);
    }
}
