//! §VI-B — the 30-day, 100-node testbed run, end to end: weather evolves
//! day by day, each morning the charging pattern is estimated from the
//! previous day's harvest trace and the adaptive policy re-plans, then the
//! day executes on the simulated rooftop against a multi-target coverage
//! utility (10 monitored spots on the roof).

use crate::ExperimentReport;
use cool_common::{OnlineStats, SeedSequence, Table};
use cool_core::policy::{ActivationPolicy, AdaptivePolicy};
use cool_energy::{
    estimate_pattern, fit_pattern, ChargeCycle, HarvestConfig, HarvestTrace, Weather,
    WeatherGenerator,
};
use cool_geometry::deployment::{disks_at, sensors_covering, uniform_targets};
use cool_testbed::{RooftopDeployment, TestbedSim};
use cool_utility::SumUtility;

const DAYS: usize = 30;
const TARGETS: usize = 10;
const SENSING_RADIUS: f64 = 12.0;
const DETECTION_P: f64 = 0.4;

/// Runs the 30-day campaign. Reports **average utility per target per
/// slot**, the paper's metric.
pub fn run(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new("testbed30");
    let seeds = SeedSequence::new(seed);
    let mut rng = seeds.nth_rng(0);

    let deployment = RooftopDeployment::paper_layout(&mut rng);

    // Ten monitored spots on the roof; a node covers a spot within sensing
    // range. Spots that land outside everyone's range are re-drawn inside
    // the deployment generator's contract by simple rejection here.
    let disks = disks_at(deployment.nodes(), SENSING_RADIUS);
    let mut coverages = Vec::with_capacity(TARGETS);
    while coverages.len() < TARGETS {
        let candidate = uniform_targets(deployment.roof(), 1, &mut rng)[0];
        let cov = sensors_covering(candidate, &disks);
        if !cov.is_empty() {
            coverages.push(cov);
        }
    }
    let utility = SumUtility::multi_target_detection(&coverages, DETECTION_P);

    let mut weather_gen = WeatherGenerator::new(Weather::Sunny);
    let mut policy = AdaptivePolicy::new(utility.clone(), ChargeCycle::paper_sunny());

    let mut days_table = Table::new([
        "day",
        "weather",
        "cycle",
        "slots",
        "avg utility/target",
        "activation rate",
    ]);
    let mut overall = OnlineStats::new();
    let mut per_weather = std::collections::BTreeMap::<String, OnlineStats>::new();

    for day in 0..DAYS {
        let weather = if day == 0 {
            Weather::Sunny
        } else {
            weather_gen.next_day(&mut rng)
        };

        // Morning: estimate the day's charging pattern from a harvest trace
        // (the §VI-A measurement pipeline) and re-plan.
        let trace = HarvestTrace::generate(
            HarvestConfig {
                weather,
                ..HarvestConfig::default()
            },
            &mut seeds.child(1).nth_rng(day as u64),
        );
        let fitted = fit_pattern(&estimate_pattern(&trace, 120.0, 30.0), 15.0);
        let cycle = fitted
            .and_then(|p| p.quantize().ok())
            .unwrap_or_else(|| weather.charge_cycle().expect("weather cycles are valid"));
        policy.update_cycle(cycle);

        // Daytime: 12 hours of slots on a fresh-battery testbed.
        let slots = cycle.slots_in_hours(12.0).max(1);
        let mut sim = TestbedSim::new(deployment.clone(), cycle);
        let metrics = sim.run(
            SnapshotPolicy(&mut policy),
            &utility,
            slots,
            &mut seeds.child(2).nth_rng(day as u64),
        );

        let per_target = metrics.average_utility() / TARGETS as f64;
        overall.push(per_target);
        per_weather
            .entry(weather.to_string())
            .or_default()
            .push(per_target);
        days_table.row([
            (day + 1).to_string(),
            weather.to_string(),
            format!("rho={:.0}", cycle.rho()),
            slots.to_string(),
            format!("{per_target:.4}"),
            format!("{:.3}", metrics.activation_success_rate()),
        ]);
    }
    report.add_table("daily", days_table);

    let mut summary = Table::new(["weather", "days", "mean utility", "min", "max"]);
    for (weather, stats) in &per_weather {
        summary.row([
            weather.clone(),
            stats.count().to_string(),
            format!("{:.4}", stats.mean()),
            format!("{:.4}", stats.min()),
            format!("{:.4}", stats.max()),
        ]);
    }
    summary.row([
        "ALL".to_string(),
        overall.count().to_string(),
        format!("{:.4}", overall.mean()),
        format!("{:.4}", overall.min()),
        format!("{:.4}", overall.max()),
    ]);
    report.add_table("summary", summary);

    report.add_note(format!(
        "30-day mean utility per target per slot: {:.4} (paper's 100-node testbed \
         reports 0.9834 for its single whole-network target under July weather). \
         Sunny days run near the schedule's ideal; overcast/rainy days stretch the \
         charging period (larger ρ ⇒ fewer simultaneously active sensors), pulling \
         days down — the mechanism behind the paper's per-weather pattern \
         selection (§II-B).",
        overall.mean()
    ));
    report
}

/// Borrow adapter: lets the day loop keep ownership of the adaptive policy
/// across days while each day's simulation drives it by `&mut`.
struct SnapshotPolicy<'a>(&'a mut AdaptivePolicy<SumUtility>);

impl ActivationPolicy for SnapshotPolicy<'_> {
    fn decide(&mut self, slot: usize, ready: &cool_common::SensorSet) -> cool_common::SensorSet {
        self.0.decide(slot, ready)
    }

    fn slots_per_period(&self) -> usize {
        self.0.slots_per_period()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_days_complete_with_high_sunny_utility() {
        let r = run(2011);
        let (_, daily) = &r.tables()[0];
        assert_eq!(daily.len(), DAYS);
        let (_, summary) = r.tables().iter().find(|(n, _)| n == "summary").unwrap();
        let csv = summary.to_csv();
        let sunny = csv
            .lines()
            .find(|l| l.starts_with("sunny"))
            .expect("some sunny days");
        let mean: f64 = sunny.split(',').nth(2).unwrap().parse().unwrap();
        assert!(
            mean > 0.8,
            "sunny-day per-target utility is high, got {mean}"
        );
        let min: f64 = sunny.split(',').nth(3).unwrap().parse().unwrap();
        assert!(min > 0.0, "per-weather min tracks real observations");
    }

    #[test]
    fn bad_weather_costs_utility() {
        let r = run(2011);
        let (_, summary) = r.tables().iter().find(|(n, _)| n == "summary").unwrap();
        let csv = summary.to_csv();
        let mean_of = |prefix: &str| -> Option<f64> {
            csv.lines()
                .find(|l| l.starts_with(prefix))
                .map(|l| l.split(',').nth(2).unwrap().parse().unwrap())
        };
        let sunny = mean_of("sunny").expect("sunny days exist");
        if let Some(rainy) = mean_of("rainy") {
            assert!(rainy < sunny, "rainy {rainy} < sunny {sunny}");
        }
    }

    #[test]
    fn activation_rate_is_perfect_on_feasible_plans() {
        let r = run(2012);
        let (_, daily) = &r.tables()[0];
        for line in daily.to_csv().lines().skip(1) {
            let rate: f64 = line.split(',').next_back().unwrap().parse().unwrap();
            assert!(rate > 0.99, "adaptive plans stay feasible: {line}");
        }
    }
}
