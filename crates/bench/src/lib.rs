//! Experiment runners reproducing every figure and table of the paper.
//!
//! This crate is application code, not a library surface: a broken
//! instance, a full disk, or an impossible cycle should abort the run
//! loudly, and runner functions are long linear recipes mirroring their
//! figures — hence the allowances below.
//!
//! Each experiment module exposes `run(seed) -> ExperimentReport`; the
//! `repro` binary dispatches on experiment id, prints the report's tables
//! (the same rows/series the paper reports) and writes CSVs under
//! `results/`.
//!
//! | id | paper artefact | module |
//! |---|---|---|
//! | `fig7` | charging-pattern traces + 2-hour stability (§VI-A, Fig. 7) | [`experiments::fig7`] |
//! | `fig8` | greedy vs optimal/upper bound, m = 1..4 (Fig. 8) | [`experiments::fig8`] |
//! | `headline` | the §VI-B single-target numbers | [`experiments::headline`] |
//! | `fig9` | utility vs (n, m) at scale (Fig. 9) | [`experiments::fig9`] |
//! | `hardness` | the §III Subset-Sum gadget behaving as proved | [`experiments::hardness`] |
//! | `approx` | empirical ½-approximation (Lemma 4.1 / Thms 4.3, 4.4) | [`experiments::approx`] |
//! | `lp` | LP relaxation vs rounding vs greedy (§IV-A.1) | [`experiments::lp`] |
//! | `randmodel` | the §V stochastic-charging pipeline | [`experiments::randmodel`] |
//! | `testbed30` | the 30-day, 100-node testbed run (§VI-B) | [`experiments::testbed30`] |
//! | `ablation` | lazy vs naive greedy, rounding trials, baselines, leakage | [`experiments::ablation`] |
//! | `horizon` | §VIII extensions: heterogeneous fleets, partial recharge | [`experiments::horizon`] |
//! | `region` | region monitoring with Eq. 2 over the Fig. 3 arrangement | [`experiments::region`] |
//! | `kcover` | k-coverage extension through the same scheduler | [`experiments::kcover`] |
//! | `perf_greedy` | naive vs lazy vs lazy+parallel greedy wall-clock (emits `BENCH_PR3.json`) | [`experiments::perf_greedy`] |
//! | `perf_sparse` | sparse vs dense sum-evaluator wall-clock (emits `BENCH_PR5.json`), plus the PR 10 SoA-kernel vs enum-walk sweep (emits `BENCH_PR10.json`; `COOL_BENCH_PR10_BIG=1` adds the 10k-sensor/100k-part cell, profiled via the `profile_pr10` binary) | [`experiments::perf_sparse`] |
//! | `perf_session` | warm-start session repair vs from-scratch re-solve (emits `BENCH_PR7.json`) | [`experiments::perf_session`] |
//! | `perf_serve` | event-loop keep-alive daemon vs thread-per-connection baseline (emits `BENCH_PR8.json`) | [`experiments::perf_serve`] |
//! | `perf_hetero` | heterogeneous greedy vs RSC/Set-Once/HEF across ρ mixtures (emits `BENCH_PR9.json`) | [`experiments::perf_hetero`] |
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::too_many_lines)]

pub mod experiments;
pub mod report;
pub mod svg;

pub use report::ExperimentReport;
