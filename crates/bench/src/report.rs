//! Experiment report structure shared by all runners.

use cool_common::Table;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// The output of one experiment: named tables plus free-form notes
/// (paper-vs-measured commentary).
#[derive(Clone, Debug, Default)]
pub struct ExperimentReport {
    id: String,
    tables: Vec<(String, Table)>,
    charts: Vec<(String, String)>,
    notes: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report for experiment `id`.
    pub fn new(id: impl Into<String>) -> Self {
        ExperimentReport {
            id: id.into(),
            tables: Vec::new(),
            charts: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// The experiment id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Adds a named table.
    pub fn add_table(&mut self, name: impl Into<String>, table: Table) -> &mut Self {
        self.tables.push((name.into(), table));
        self
    }

    /// Adds a rendered SVG chart.
    pub fn add_chart(&mut self, name: impl Into<String>, svg: impl Into<String>) -> &mut Self {
        self.charts.push((name.into(), svg.into()));
        self
    }

    /// Adds a note line.
    pub fn add_note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// The charts, in insertion order.
    pub fn charts(&self) -> &[(String, String)] {
        &self.charts
    }

    /// The tables, in insertion order.
    pub fn tables(&self) -> &[(String, Table)] {
        &self.tables
    }

    /// The notes, in insertion order.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Writes every table as `<dir>/<id>_<table-name>.csv` and every chart
    /// as `<dir>/<id>_<chart-name>.svg`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or file writes.
    pub fn write_csvs(&self, dir: &Path) -> io::Result<Vec<std::path::PathBuf>> {
        fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        for (name, table) in &self.tables {
            let path = dir.join(format!("{}_{}.csv", self.id, slugify(name)));
            fs::write(&path, table.to_csv())?;
            written.push(path);
        }
        for (name, svg) in &self.charts {
            let path = dir.join(format!("{}_{}.svg", self.id, slugify(name)));
            fs::write(&path, svg)?;
            written.push(path);
        }
        Ok(written)
    }
}

fn slugify(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== experiment {} ===", self.id)?;
        for (name, table) in &self.tables {
            writeln!(f, "\n-- {name} --")?;
            write!(f, "{table}")?;
        }
        if !self.notes.is_empty() {
            writeln!(f, "\nnotes:")?;
            for note in &self.notes {
                writeln!(f, "  * {note}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_tables_and_notes() {
        let mut r = ExperimentReport::new("demo");
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        r.add_table("values", t).add_note("a note");
        let text = r.to_string();
        assert!(text.contains("experiment demo"));
        assert!(text.contains("values"));
        assert!(text.contains("a note"));
        assert_eq!(r.tables().len(), 1);
        assert_eq!(r.notes().len(), 1);
    }

    #[test]
    fn csv_writing_slugifies_names() {
        let tmp = std::env::temp_dir().join(format!("cool_report_test_{}", std::process::id()));
        let mut r = ExperimentReport::new("x");
        let mut t = Table::new(["c"]);
        t.row(["2"]);
        r.add_table("My Table!", t);
        let written = r.write_csvs(&tmp).unwrap();
        assert_eq!(written.len(), 1);
        assert!(written[0]
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("x_my_table_"));
        let content = std::fs::read_to_string(&written[0]).unwrap();
        assert!(content.starts_with("c\n"));
        std::fs::remove_dir_all(&tmp).ok();
    }
}
