//! Minimal self-contained SVG line charts for the figure reproductions.
//!
//! The paper's evaluation is figures, not tables; this module renders the
//! harness's series as standalone `.svg` files (no plotting dependency —
//! the charts are simple enough to emit directly).

use std::fmt::Write as _;

/// One named series of `(x, y)` points.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }
}

/// A multi-series line chart.
///
/// # Examples
///
/// ```
/// use cool_bench::svg::{LineChart, Series};
///
/// let chart = LineChart::new("demo", "n", "utility")
///     .with_series(Series::new("greedy", vec![(20.0, 0.92), (100.0, 0.99)]));
/// let svg = chart.render();
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("polyline"));
/// assert!(svg.contains("greedy"));
/// ```
#[derive(Clone, Debug)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    width: f64,
    height: f64,
    y_range: Option<(f64, f64)>,
}

/// A qualitative palette that stays readable on white.
const PALETTE: [&str; 6] = [
    "#1b6ca8", "#d1495b", "#3a7d44", "#8d6a9f", "#c77d1e", "#444444",
];

const MARGIN_LEFT: f64 = 64.0;
const MARGIN_RIGHT: f64 = 24.0;
const MARGIN_TOP: f64 = 40.0;
const MARGIN_BOTTOM: f64 = 48.0;

impl LineChart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            width: 640.0,
            height: 400.0,
            y_range: None,
        }
    }

    /// Adds a series (builder style).
    #[must_use]
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Fixes the y axis range instead of auto-scaling.
    #[must_use]
    pub fn with_y_range(mut self, min: f64, max: f64) -> Self {
        assert!(min < max, "empty y range");
        self.y_range = Some((min, max));
        self
    }

    /// Number of series.
    pub fn n_series(&self) -> usize {
        self.series.len()
    }

    /// Renders the chart as a standalone SVG document.
    pub fn render(&self) -> String {
        let (x_min, x_max, y_min, y_max) = self.ranges();
        let plot_w = self.width - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = self.height - MARGIN_TOP - MARGIN_BOTTOM;
        let px = |x: f64| MARGIN_LEFT + (x - x_min) / (x_max - x_min).max(1e-12) * plot_w;
        let py = |y: f64| MARGIN_TOP + plot_h - (y - y_min) / (y_max - y_min).max(1e-12) * plot_h;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">"#,
            w = self.width,
            h = self.height
        );
        let _ = write!(
            svg,
            r#"<rect width="{}" height="{}" fill="white"/>"#,
            self.width, self.height
        );
        // Title and axis labels.
        let _ = write!(
            svg,
            r#"<text x="{}" y="20" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
            self.width / 2.0,
            escape(&self.title)
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
            MARGIN_LEFT + plot_w / 2.0,
            self.height - 10.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="14" y="{}" text-anchor="middle" transform="rotate(-90 14 {})">{}</text>"#,
            MARGIN_TOP + plot_h / 2.0,
            MARGIN_TOP + plot_h / 2.0,
            escape(&self.y_label)
        );

        // Axes + grid + ticks.
        let _ = write!(
            svg,
            r##"<rect x="{MARGIN_LEFT}" y="{MARGIN_TOP}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#999"/>"##,
        );
        for i in 0..=4 {
            let frac = f64::from(i) / 4.0;
            let xv = x_min + frac * (x_max - x_min);
            let yv = y_min + frac * (y_max - y_min);
            let xp = px(xv);
            let yp = py(yv);
            let _ = write!(
                svg,
                r##"<line x1="{xp}" y1="{}" x2="{xp}" y2="{}" stroke="#ddd"/>"##,
                MARGIN_TOP,
                MARGIN_TOP + plot_h
            );
            let _ = write!(
                svg,
                r##"<line x1="{}" y1="{yp}" x2="{}" y2="{yp}" stroke="#ddd"/>"##,
                MARGIN_LEFT,
                MARGIN_LEFT + plot_w
            );
            let _ = write!(
                svg,
                r#"<text x="{xp}" y="{}" text-anchor="middle">{}</text>"#,
                MARGIN_TOP + plot_h + 16.0,
                format_tick(xv)
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" text-anchor="end">{}</text>"#,
                MARGIN_LEFT - 6.0,
                yp + 4.0,
                format_tick(yv)
            );
        }

        // Series.
        for (idx, series) in self.series.iter().enumerate() {
            let color = PALETTE[idx % PALETTE.len()];
            let mut path = String::new();
            for &(x, y) in &series.points {
                let _ = write!(path, "{:.2},{:.2} ", px(x), py(y));
            }
            let _ = write!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                path.trim_end()
            );
            for &(x, y) in &series.points {
                let _ = write!(
                    svg,
                    r#"<circle cx="{:.2}" cy="{:.2}" r="3" fill="{color}"/>"#,
                    px(x),
                    py(y)
                );
            }
            // Legend entry.
            let ly = MARGIN_TOP + 14.0 * idx as f64 + 4.0;
            let lx = MARGIN_LEFT + plot_w - 130.0;
            let _ = write!(
                svg,
                r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
                lx + 18.0
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}">{}</text>"#,
                lx + 24.0,
                ly + 4.0,
                escape(&series.name)
            );
        }
        svg.push_str("</svg>");
        svg
    }

    fn ranges(&self) -> (f64, f64, f64, f64) {
        let points = self.series.iter().flat_map(|s| s.points.iter().copied());
        let mut x_min = f64::INFINITY;
        let mut x_max = f64::NEG_INFINITY;
        let mut y_min = f64::INFINITY;
        let mut y_max = f64::NEG_INFINITY;
        for (x, y) in points {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        if !x_min.is_finite() {
            (x_min, x_max, y_min, y_max) = (0.0, 1.0, 0.0, 1.0);
        }
        if x_min == x_max {
            x_max = x_min + 1.0;
        }
        if let Some((lo, hi)) = self.y_range {
            (y_min, y_max) = (lo, hi);
        } else {
            if y_min == y_max {
                y_max = y_min + 1.0;
            }
            // 5% padding.
            let pad = (y_max - y_min) * 0.05;
            y_min -= pad;
            y_max += pad;
        }
        (x_min, x_max, y_min, y_max)
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn format_tick(v: f64) -> String {
    if v.abs() >= 100.0 || v == v.trunc() {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> LineChart {
        LineChart::new("Fig. 8(a)", "number of sensors", "utility")
            .with_series(Series::new(
                "greedy",
                vec![(20.0, 0.92), (60.0, 0.99), (100.0, 0.999)],
            ))
            .with_series(Series::new(
                "bound",
                vec![(20.0, 0.93), (60.0, 0.995), (100.0, 0.9995)],
            ))
    }

    #[test]
    fn renders_wellformed_svg() {
        let svg = chart().render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("greedy") && svg.contains("bound"));
        assert!(svg.matches("<circle").count() >= 6);
        // Balanced tags of the kinds we emit.
        for tag in ["text", "svg"] {
            assert_eq!(
                svg.matches(&format!("<{tag}")).count(),
                svg.matches(&format!("</{tag}")).count(),
                "unbalanced <{tag}>"
            );
        }
    }

    #[test]
    fn escapes_markup_in_labels() {
        let svg = LineChart::new("a<b & c>d", "x", "y")
            .with_series(Series::new("s<1>", vec![(0.0, 0.0)]))
            .render();
        assert!(svg.contains("a&lt;b &amp; c&gt;d"));
        assert!(svg.contains("s&lt;1&gt;"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn fixed_y_range_is_respected() {
        let svg = chart().with_y_range(0.0, 1.0).render();
        assert!(
            svg.contains(">1<") || svg.contains(">1.00<"),
            "top tick shows 1: {svg}"
        );
    }

    #[test]
    fn empty_chart_still_renders() {
        let svg = LineChart::new("empty", "x", "y").render();
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<polyline").count(), 0);
    }

    #[test]
    #[should_panic(expected = "empty y range")]
    fn degenerate_y_range_panics() {
        let _ = chart().with_y_range(1.0, 1.0);
    }

    #[test]
    fn single_point_series_is_finite() {
        let svg = LineChart::new("one", "x", "y")
            .with_series(Series::new("p", vec![(5.0, 0.5)]))
            .render();
        assert!(!svg.contains("NaN") && !svg.contains("inf"));
    }
}
