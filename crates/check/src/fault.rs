//! Serve-layer fault injection: drive a real `cool-serve` daemon over raw
//! sockets with hostile clients — torn request bodies, slow-loris stalls,
//! protocol garbage, queue saturation, mid-request shutdown — and assert
//! the fault contract: **every answered fault carries a typed `COOL-Exxx`
//! status, and no fault corrupts the schedule cache.**
//!
//! Violations are reported as `COOL-E023` (`fault-contract-violated`).
//! Probes run against two live daemons on ephemeral ports: a main server
//! (tiny worker pool and queue, generous budget) and a short-budget server
//! used only for the slow-loris probe.

use crate::oracle::Violation;
use cool_common::CoolCode;
use cool_serve::{Server, ServerConfig};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

/// Client-side socket timeout — generous so only a truly unresponsive
/// daemon trips it.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(20);

/// The scenario used by the baseline/cache probes.
const BASELINE_SCENARIO: &str = "sensors = 9\\ntargets = 2\\n";
/// A distinct scenario for the saturation probe.
const SLOW_SCENARIO: &str = "sensors = 6\\n";

/// Outcome of the fault-injection pass.
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// Probes executed.
    pub probes_run: usize,
    /// Contract violations (empty on a healthy daemon).
    pub violations: Vec<Violation>,
}

impl FaultReport {
    /// `true` when every probe upheld the contract.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A parsed HTTP exchange.
struct Exchange {
    status: u16,
    head: String,
    body: String,
}

/// Boots a daemon on an ephemeral port.
fn boot(mut config: ServerConfig) -> Result<(SocketAddr, JoinHandle<std::io::Result<()>>), String> {
    config.addr = "127.0.0.1:0".to_string();
    let server = Server::bind(config).map_err(|e| format!("bind: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let handle = std::thread::spawn(move || server.run());
    Ok((addr, handle))
}

/// Sends raw bytes, optionally half-closing the write side, and reads the
/// full response.
fn raw_exchange(addr: SocketAddr, request: &[u8], half_close: bool) -> Result<Exchange, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .map_err(|e| format!("set timeout: {e}"))?;
    stream
        .write_all(request)
        .map_err(|e| format!("write: {e}"))?;
    if half_close {
        stream
            .shutdown(Shutdown::Write)
            .map_err(|e| format!("half-close: {e}"))?;
    }
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("no header separator in response: {raw:?}"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line: {head:?}"))?;
    Ok(Exchange {
        status,
        head: head.to_string(),
        body: body.to_string(),
    })
}

/// One well-formed request (the shape every probe perturbs).
fn well_formed(method: &str, path: &str, headers: &[(&str, &str)], body: &str) -> Vec<u8> {
    let mut request = format!(
        "{method} {path} HTTP/1.1\r\nhost: check\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in headers {
        let _ = write!(request, "{name}: {value}\r\n");
    }
    request.push_str("\r\n");
    request.push_str(body);
    request.into_bytes()
}

fn schedule_body(scenario_escaped: &str) -> String {
    format!("{{\"scenario\":\"{scenario_escaped}\"}}")
}

/// Runs the full fault-probe battery and reports contract violations.
#[allow(clippy::too_many_lines)] // one probe after another, linear and flat
pub fn run_fault_probes() -> FaultReport {
    let mut violations = Vec::new();
    let mut probes = 0usize;
    let fail = |relation: &'static str, detail: String| Violation {
        code: CoolCode::FaultContractViolated,
        relation,
        detail,
    };

    // Main daemon: one worker, one queue slot, generous budget.
    let main = boot(ServerConfig {
        threads: 1,
        queue_cap: 1,
        cache_cap: 16,
        timeout_ms: 10_000,
        test_hooks: true,
        ..ServerConfig::default()
    });
    let (addr, handle) = match main {
        Ok(pair) => pair,
        Err(e) => {
            violations.push(fail("fault-boot", e));
            return FaultReport {
                probes_run: probes,
                violations,
            };
        }
    };

    // --- Probe 1: baseline happy path (also seeds the cache). ---
    probes += 1;
    let baseline_request = well_formed(
        "POST",
        "/v1/schedule",
        &[],
        &schedule_body(BASELINE_SCENARIO),
    );
    let baseline = match raw_exchange(addr, &baseline_request, false) {
        Ok(x) if x.status == 200 && x.head.contains("x-cool-cache: miss") => Some(x),
        Ok(x) => {
            violations.push(fail(
                "fault-baseline",
                format!("expected 200 cold miss, got {} ({})", x.status, x.body),
            ));
            None
        }
        Err(e) => {
            violations.push(fail("fault-baseline", e));
            None
        }
    };

    // --- Probe 2: torn body — Content-Length promised, bytes withheld. ---
    probes += 1;
    let torn = b"POST /v1/schedule HTTP/1.1\r\nhost: check\r\ncontent-length: 64\r\nconnection: close\r\n\r\nshort".to_vec();
    match raw_exchange(addr, &torn, true) {
        Ok(x) if x.status == 400 && x.body.contains("COOL-E019") => {}
        Ok(x) => violations.push(fail(
            "fault-torn-body",
            format!(
                "expected typed 400 COOL-E019, got {} ({})",
                x.status, x.body
            ),
        )),
        Err(e) => violations.push(fail(
            "fault-torn-body",
            format!("no answer to torn body: {e}"),
        )),
    }

    // --- Probe 3: protocol garbage. ---
    probes += 1;
    match raw_exchange(addr, b"GARBAGE\r\n\r\n", false) {
        Ok(x) if x.status == 400 && x.body.contains("COOL-E019") => {}
        Ok(x) => violations.push(fail(
            "fault-garbage",
            format!(
                "expected typed 400 COOL-E019, got {} ({})",
                x.status, x.body
            ),
        )),
        Err(e) => violations.push(fail("fault-garbage", format!("no answer to garbage: {e}"))),
    }

    // --- Probe 4: queue saturation — six concurrent slow requests against
    // one worker and a one-slot queue. Which requests are shed is timing-
    // dependent; the contract is that every answer is 200 or a typed 429,
    // and at least one of each occurs. ---
    probes += 1;
    let workers: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let request = well_formed(
                    "POST",
                    "/v1/schedule",
                    &[("x-cool-test-sleep-ms", "300")],
                    &schedule_body(SLOW_SCENARIO),
                );
                raw_exchange(addr, &request, false)
            })
        })
        .collect();
    let mut served = 0usize;
    let mut shed = 0usize;
    for worker in workers {
        match worker.join() {
            Ok(Ok(x)) => match x.status {
                200 => served += 1,
                429 if x.body.contains("COOL-E018") => shed += 1,
                status => violations.push(fail(
                    "fault-queue-saturation",
                    format!("untyped or unexpected answer {status}: {}", x.body),
                )),
            },
            Ok(Err(e)) => violations.push(fail(
                "fault-queue-saturation",
                format!("no answer under saturation: {e}"),
            )),
            Err(_) => violations.push(fail(
                "fault-queue-saturation",
                "probe thread panicked".to_string(),
            )),
        }
    }
    if served == 0 || shed == 0 {
        violations.push(fail(
            "fault-queue-saturation",
            format!("expected both served and shed requests, got {served} served / {shed} shed"),
        ));
    }

    // --- Probe 5: cache integrity after the faults — the baseline replay
    // must be a byte-identical hit, and the daemon still healthy. ---
    probes += 1;
    if let Some(baseline) = &baseline {
        match raw_exchange(addr, &baseline_request, false) {
            Ok(x)
                if x.status == 200
                    && x.head.contains("x-cool-cache: hit")
                    && x.body == baseline.body => {}
            Ok(x) => violations.push(fail(
                "fault-cache-integrity",
                format!(
                    "cache replay corrupted: status {}, hit={}, identical={}",
                    x.status,
                    x.head.contains("x-cool-cache: hit"),
                    x.body == baseline.body
                ),
            )),
            Err(e) => violations.push(fail("fault-cache-integrity", e)),
        }
    }
    match raw_exchange(addr, &well_formed("GET", "/healthz", &[], ""), false) {
        Ok(x) if x.status == 200 => {}
        Ok(x) => violations.push(fail(
            "fault-cache-integrity",
            format!("healthz degraded after faults: {}", x.status),
        )),
        Err(e) => violations.push(fail("fault-cache-integrity", format!("healthz: {e}"))),
    }

    // --- Probe 6: mid-request shutdown — an accepted slow request must
    // drain to 200, and the listener must actually close. ---
    probes += 1;
    let slow = std::thread::spawn(move || {
        let request = well_formed(
            "POST",
            "/v1/schedule",
            &[("x-cool-test-sleep-ms", "400")],
            &schedule_body(SLOW_SCENARIO),
        );
        raw_exchange(addr, &request, false)
    });
    std::thread::sleep(Duration::from_millis(150));
    match raw_exchange(addr, &well_formed("POST", "/v1/shutdown", &[], ""), false) {
        Ok(x) if x.status == 200 => {}
        Ok(x) => violations.push(fail(
            "fault-shutdown-drain",
            format!("shutdown answered {}", x.status),
        )),
        Err(e) => violations.push(fail("fault-shutdown-drain", format!("shutdown: {e}"))),
    }
    match slow.join() {
        Ok(Ok(x)) if x.status == 200 => {}
        Ok(Ok(x)) => violations.push(fail(
            "fault-shutdown-drain",
            format!(
                "in-flight request dropped on shutdown: {} ({})",
                x.status, x.body
            ),
        )),
        Ok(Err(e)) => violations.push(fail(
            "fault-shutdown-drain",
            format!("in-flight request got no answer: {e}"),
        )),
        Err(_) => violations.push(fail(
            "fault-shutdown-drain",
            "slow probe thread panicked".to_string(),
        )),
    }
    match handle.join() {
        Ok(Ok(())) => {}
        Ok(Err(e)) => violations.push(fail(
            "fault-shutdown-drain",
            format!("server loop errored: {e}"),
        )),
        Err(_) => violations.push(fail(
            "fault-shutdown-drain",
            "server thread panicked".to_string(),
        )),
    }
    if TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_ok() {
        violations.push(fail(
            "fault-shutdown-drain",
            "listener still accepting after shutdown".to_string(),
        ));
    }

    // --- Probe 7: slow loris against a short-budget daemon — a stalled
    // request must get a typed 408 when its budget expires. ---
    probes += 1;
    match boot(ServerConfig {
        threads: 1,
        queue_cap: 4,
        timeout_ms: 250,
        test_hooks: false,
        ..ServerConfig::default()
    }) {
        Ok((loris_addr, loris_handle)) => {
            // A partial request line, then silence — no half-close: EOF
            // would read as a truncated request (400), not a stall (408).
            match raw_exchange(loris_addr, b"POST /v1/sched", false) {
                Ok(x) if x.status == 408 && x.body.contains("COOL-E017") => {}
                Ok(x) => violations.push(fail(
                    "fault-slow-loris",
                    format!(
                        "expected typed 408 COOL-E017, got {} ({})",
                        x.status, x.body
                    ),
                )),
                Err(e) => violations.push(fail(
                    "fault-slow-loris",
                    format!("stalled client got no answer: {e}"),
                )),
            }
            match raw_exchange(
                loris_addr,
                &well_formed("POST", "/v1/shutdown", &[], ""),
                false,
            ) {
                Ok(x) if x.status == 200 => {}
                Ok(x) => violations.push(fail(
                    "fault-slow-loris",
                    format!("loris daemon shutdown answered {}", x.status),
                )),
                Err(e) => violations.push(fail(
                    "fault-slow-loris",
                    format!("loris daemon shutdown: {e}"),
                )),
            }
            if let Ok(Err(e)) = loris_handle.join() {
                violations.push(fail(
                    "fault-slow-loris",
                    format!("loris server loop errored: {e}"),
                ));
            }
        }
        Err(e) => violations.push(fail("fault-slow-loris", e)),
    }

    FaultReport {
        probes_run: probes,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_battery_is_clean_on_a_healthy_daemon() {
        let report = run_fault_probes();
        assert_eq!(report.probes_run, 7);
        assert!(
            report.is_clean(),
            "fault contract violations: {:#?}",
            report.violations
        );
    }
}
