//! Serve-layer fault injection: drive a real `cool-serve` daemon over raw
//! sockets with hostile clients — torn request bodies, slow-loris stalls,
//! protocol garbage, queue saturation, mid-request shutdown — and assert
//! the fault contract: **every answered fault carries a typed `COOL-Exxx`
//! status, and no fault corrupts the schedule cache.**
//!
//! Violations are reported as `COOL-E023` (`fault-contract-violated`).
//! Probes run against two live daemons on ephemeral ports: a main server
//! (tiny worker pool and queue, generous budget) and a short-budget server
//! used only for the slow-loris probe.

use crate::oracle::Violation;
use cool_common::CoolCode;
use cool_serve::{Server, ServerConfig};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

/// Client-side socket timeout — generous so only a truly unresponsive
/// daemon trips it.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(20);

/// The scenario used by the baseline/cache probes.
const BASELINE_SCENARIO: &str = "sensors = 9\\ntargets = 2\\n";
/// A distinct scenario for the saturation probe.
const SLOW_SCENARIO: &str = "sensors = 6\\n";

/// Outcome of the fault-injection pass.
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// Probes executed.
    pub probes_run: usize,
    /// Contract violations (empty on a healthy daemon).
    pub violations: Vec<Violation>,
}

impl FaultReport {
    /// `true` when every probe upheld the contract.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A parsed HTTP exchange.
struct Exchange {
    status: u16,
    head: String,
    body: String,
}

/// Boots a daemon on an ephemeral port.
fn boot(mut config: ServerConfig) -> Result<(SocketAddr, JoinHandle<std::io::Result<()>>), String> {
    config.addr = "127.0.0.1:0".to_string();
    let server = Server::bind(config).map_err(|e| format!("bind: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let handle = std::thread::spawn(move || server.run());
    Ok((addr, handle))
}

/// Sends raw bytes, optionally half-closing the write side, and reads the
/// full response.
fn raw_exchange(addr: SocketAddr, request: &[u8], half_close: bool) -> Result<Exchange, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .map_err(|e| format!("set timeout: {e}"))?;
    stream
        .write_all(request)
        .map_err(|e| format!("write: {e}"))?;
    if half_close {
        stream
            .shutdown(Shutdown::Write)
            .map_err(|e| format!("half-close: {e}"))?;
    }
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("no header separator in response: {raw:?}"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line: {head:?}"))?;
    Ok(Exchange {
        status,
        head: head.to_string(),
        body: body.to_string(),
    })
}

/// One well-formed request (the shape every probe perturbs).
fn well_formed(method: &str, path: &str, headers: &[(&str, &str)], body: &str) -> Vec<u8> {
    let mut request = format!(
        "{method} {path} HTTP/1.1\r\nhost: check\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in headers {
        let _ = write!(request, "{name}: {value}\r\n");
    }
    request.push_str("\r\n");
    request.push_str(body);
    request.into_bytes()
}

fn schedule_body(scenario_escaped: &str) -> String {
    format!("{{\"scenario\":\"{scenario_escaped}\"}}")
}

/// A well-formed request carrying an explicit `connection:` token
/// (`keep-alive` to hold the connection open, `close` to end it).
fn framed_request(method: &str, path: &str, connection: &str, body: &str) -> Vec<u8> {
    format!(
        "{method} {path} HTTP/1.1\r\nhost: check\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Writes one request on a live keep-alive connection and reads exactly one
/// `Content-Length`-framed response, leaving the connection open (bytes past
/// the frame stay in `pending` for the next call).
fn framed_exchange(
    stream: &mut TcpStream,
    pending: &mut Vec<u8>,
    request: &[u8],
) -> Result<Exchange, String> {
    stream
        .write_all(request)
        .map_err(|e| format!("write: {e}"))?;
    let mut chunk = [0u8; 4096];
    let (head_end, content_length) = loop {
        if let Some(pos) = pending.windows(4).position(|w| w == b"\r\n\r\n") {
            let head =
                std::str::from_utf8(&pending[..pos]).map_err(|e| format!("head utf-8: {e}"))?;
            let mut length = 0usize;
            for line in head.lines().skip(1) {
                if let Some((name, value)) = line.split_once(':') {
                    if name.trim().eq_ignore_ascii_case("content-length") {
                        length = value
                            .trim()
                            .parse()
                            .map_err(|e| format!("content-length: {e}"))?;
                    }
                }
            }
            break (pos, length);
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-head".to_string());
        }
        pending.extend_from_slice(&chunk[..n]);
    };
    let total = head_end + 4 + content_length;
    while pending.len() < total {
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        pending.extend_from_slice(&chunk[..n]);
    }
    let head = String::from_utf8_lossy(&pending[..head_end]).to_string();
    let body = String::from_utf8_lossy(&pending[head_end + 4..total]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line: {head:?}"))?;
    pending.drain(..total);
    Ok(Exchange { status, head, body })
}

/// Runs the full fault-probe battery and reports contract violations.
#[allow(clippy::too_many_lines)] // one probe after another, linear and flat
pub fn run_fault_probes() -> FaultReport {
    let mut violations = Vec::new();
    let mut probes = 0usize;
    let fail = |relation: &'static str, detail: String| Violation {
        code: CoolCode::FaultContractViolated,
        relation,
        detail,
    };

    // Main daemon: one worker, one queue slot, generous budget.
    let main = boot(ServerConfig {
        threads: 1,
        queue_cap: 1,
        cache_cap: 16,
        timeout_ms: 10_000,
        test_hooks: true,
        ..ServerConfig::default()
    });
    let (addr, handle) = match main {
        Ok(pair) => pair,
        Err(e) => {
            violations.push(fail("fault-boot", e));
            return FaultReport {
                probes_run: probes,
                violations,
            };
        }
    };

    // --- Probe 1: baseline happy path (also seeds the cache). ---
    probes += 1;
    let baseline_request = well_formed(
        "POST",
        "/v1/schedule",
        &[],
        &schedule_body(BASELINE_SCENARIO),
    );
    let baseline = match raw_exchange(addr, &baseline_request, false) {
        Ok(x) if x.status == 200 && x.head.contains("x-cool-cache: miss") => Some(x),
        Ok(x) => {
            violations.push(fail(
                "fault-baseline",
                format!("expected 200 cold miss, got {} ({})", x.status, x.body),
            ));
            None
        }
        Err(e) => {
            violations.push(fail("fault-baseline", e));
            None
        }
    };

    // --- Probe 2: torn body — Content-Length promised, bytes withheld. ---
    probes += 1;
    let torn = b"POST /v1/schedule HTTP/1.1\r\nhost: check\r\ncontent-length: 64\r\nconnection: close\r\n\r\nshort".to_vec();
    match raw_exchange(addr, &torn, true) {
        Ok(x) if x.status == 400 && x.body.contains("COOL-E019") => {}
        Ok(x) => violations.push(fail(
            "fault-torn-body",
            format!(
                "expected typed 400 COOL-E019, got {} ({})",
                x.status, x.body
            ),
        )),
        Err(e) => violations.push(fail(
            "fault-torn-body",
            format!("no answer to torn body: {e}"),
        )),
    }

    // --- Probe 3: protocol garbage. ---
    probes += 1;
    match raw_exchange(addr, b"GARBAGE\r\n\r\n", false) {
        Ok(x) if x.status == 400 && x.body.contains("COOL-E019") => {}
        Ok(x) => violations.push(fail(
            "fault-garbage",
            format!(
                "expected typed 400 COOL-E019, got {} ({})",
                x.status, x.body
            ),
        )),
        Err(e) => violations.push(fail("fault-garbage", format!("no answer to garbage: {e}"))),
    }

    // --- Probe 4: queue saturation — six concurrent slow requests against
    // one worker and a one-slot queue. Which requests are shed is timing-
    // dependent; the contract is that every answer is 200 or a typed 429,
    // and at least one of each occurs. ---
    probes += 1;
    let workers: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let request = well_formed(
                    "POST",
                    "/v1/schedule",
                    &[("x-cool-test-sleep-ms", "300")],
                    &schedule_body(SLOW_SCENARIO),
                );
                raw_exchange(addr, &request, false)
            })
        })
        .collect();
    let mut served = 0usize;
    let mut shed = 0usize;
    for worker in workers {
        match worker.join() {
            Ok(Ok(x)) => match x.status {
                200 => served += 1,
                429 if x.body.contains("COOL-E018") => shed += 1,
                status => violations.push(fail(
                    "fault-queue-saturation",
                    format!("untyped or unexpected answer {status}: {}", x.body),
                )),
            },
            Ok(Err(e)) => violations.push(fail(
                "fault-queue-saturation",
                format!("no answer under saturation: {e}"),
            )),
            Err(_) => violations.push(fail(
                "fault-queue-saturation",
                "probe thread panicked".to_string(),
            )),
        }
    }
    if served == 0 || shed == 0 {
        violations.push(fail(
            "fault-queue-saturation",
            format!("expected both served and shed requests, got {served} served / {shed} shed"),
        ));
    }

    // --- Probe 5: cache integrity after the faults — the baseline replay
    // must be a byte-identical hit, and the daemon still healthy. ---
    probes += 1;
    if let Some(baseline) = &baseline {
        match raw_exchange(addr, &baseline_request, false) {
            Ok(x)
                if x.status == 200
                    && x.head.contains("x-cool-cache: hit")
                    && x.body == baseline.body => {}
            Ok(x) => violations.push(fail(
                "fault-cache-integrity",
                format!(
                    "cache replay corrupted: status {}, hit={}, identical={}",
                    x.status,
                    x.head.contains("x-cool-cache: hit"),
                    x.body == baseline.body
                ),
            )),
            Err(e) => violations.push(fail("fault-cache-integrity", e)),
        }
    }
    match raw_exchange(addr, &well_formed("GET", "/healthz", &[], ""), false) {
        Ok(x) if x.status == 200 => {}
        Ok(x) => violations.push(fail(
            "fault-cache-integrity",
            format!("healthz degraded after faults: {}", x.status),
        )),
        Err(e) => violations.push(fail("fault-cache-integrity", format!("healthz: {e}"))),
    }

    // --- Probe 6: keep-alive reuse — one connection carries a cache hit,
    // a route-level 400 (which must NOT kill the connection), a replay of
    // the baseline, and finally a `connection: close` that does. ---
    probes += 1;
    let keep_alive = (|| -> Result<(), String> {
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(Some(CLIENT_TIMEOUT))
            .map_err(|e| format!("set timeout: {e}"))?;
        let mut pending = Vec::new();
        let hit = framed_exchange(
            &mut stream,
            &mut pending,
            &framed_request(
                "POST",
                "/v1/schedule",
                "keep-alive",
                &schedule_body(BASELINE_SCENARIO),
            ),
        )?;
        if hit.status != 200 || !hit.head.contains("connection: keep-alive") {
            return Err(format!(
                "first keep-alive request: expected 200 keep-alive, got {} ({})",
                hit.status, hit.head
            ));
        }
        let bad = framed_exchange(
            &mut stream,
            &mut pending,
            &framed_request("POST", "/v1/schedule", "keep-alive", "not json"),
        )?;
        if bad.status != 400 || !bad.body.contains("COOL-E019") {
            return Err(format!(
                "bad body on live connection: expected typed 400 COOL-E019, got {} ({})",
                bad.status, bad.body
            ));
        }
        if !bad.head.contains("connection: keep-alive") {
            return Err("route-level 400 closed the keep-alive connection".to_string());
        }
        let replay = framed_exchange(
            &mut stream,
            &mut pending,
            &framed_request(
                "POST",
                "/v1/schedule",
                "keep-alive",
                &schedule_body(BASELINE_SCENARIO),
            ),
        )?;
        if replay.status != 200
            || !replay.head.contains("x-cool-cache: hit")
            || baseline.as_ref().is_some_and(|b| b.body != replay.body)
        {
            return Err(format!(
                "replay after 4xx on the same connection degraded: status {}, head {}",
                replay.status, replay.head
            ));
        }
        let last = framed_exchange(
            &mut stream,
            &mut pending,
            &framed_request("GET", "/healthz", "close", ""),
        )?;
        if last.status != 200 || !last.head.contains("connection: close") {
            return Err(format!(
                "connection: close not honoured: {} ({})",
                last.status, last.head
            ));
        }
        let mut sink = [0u8; 64];
        match stream.read(&mut sink) {
            Ok(0) => Ok(()),
            Ok(n) => Err(format!(
                "expected EOF after connection: close, read {n} bytes"
            )),
            Err(e) => Err(format!("expected clean EOF after connection: close: {e}")),
        }
    })();
    if let Err(e) = keep_alive {
        violations.push(fail("fault-keep-alive", e));
    }

    // --- Probe 7: mid-request shutdown — an accepted slow request must
    // drain to 200, and the listener must actually close. ---
    probes += 1;
    let slow = std::thread::spawn(move || {
        let request = well_formed(
            "POST",
            "/v1/schedule",
            &[("x-cool-test-sleep-ms", "400")],
            &schedule_body(SLOW_SCENARIO),
        );
        raw_exchange(addr, &request, false)
    });
    std::thread::sleep(Duration::from_millis(150));
    match raw_exchange(addr, &well_formed("POST", "/v1/shutdown", &[], ""), false) {
        Ok(x) if x.status == 200 => {}
        Ok(x) => violations.push(fail(
            "fault-shutdown-drain",
            format!("shutdown answered {}", x.status),
        )),
        Err(e) => violations.push(fail("fault-shutdown-drain", format!("shutdown: {e}"))),
    }
    match slow.join() {
        Ok(Ok(x)) if x.status == 200 => {}
        Ok(Ok(x)) => violations.push(fail(
            "fault-shutdown-drain",
            format!(
                "in-flight request dropped on shutdown: {} ({})",
                x.status, x.body
            ),
        )),
        Ok(Err(e)) => violations.push(fail(
            "fault-shutdown-drain",
            format!("in-flight request got no answer: {e}"),
        )),
        Err(_) => violations.push(fail(
            "fault-shutdown-drain",
            "slow probe thread panicked".to_string(),
        )),
    }
    match handle.join() {
        Ok(Ok(())) => {}
        Ok(Err(e)) => violations.push(fail(
            "fault-shutdown-drain",
            format!("server loop errored: {e}"),
        )),
        Err(_) => violations.push(fail(
            "fault-shutdown-drain",
            "server thread panicked".to_string(),
        )),
    }
    if TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_ok() {
        violations.push(fail(
            "fault-shutdown-drain",
            "listener still accepting after shutdown".to_string(),
        ));
    }

    // --- Probe 8: slow loris against a short-budget daemon — a stalled
    // request must get a typed 408 when its budget expires. ---
    probes += 1;
    match boot(ServerConfig {
        threads: 1,
        queue_cap: 4,
        timeout_ms: 250,
        test_hooks: false,
        ..ServerConfig::default()
    }) {
        Ok((loris_addr, loris_handle)) => {
            // A partial request line, then silence — no half-close: EOF
            // would read as a truncated request (400), not a stall (408).
            match raw_exchange(loris_addr, b"POST /v1/sched", false) {
                Ok(x) if x.status == 408 && x.body.contains("COOL-E017") => {}
                Ok(x) => violations.push(fail(
                    "fault-slow-loris",
                    format!(
                        "expected typed 408 COOL-E017, got {} ({})",
                        x.status, x.body
                    ),
                )),
                Err(e) => violations.push(fail(
                    "fault-slow-loris",
                    format!("stalled client got no answer: {e}"),
                )),
            }
            match raw_exchange(
                loris_addr,
                &well_formed("POST", "/v1/shutdown", &[], ""),
                false,
            ) {
                Ok(x) if x.status == 200 => {}
                Ok(x) => violations.push(fail(
                    "fault-slow-loris",
                    format!("loris daemon shutdown answered {}", x.status),
                )),
                Err(e) => violations.push(fail(
                    "fault-slow-loris",
                    format!("loris daemon shutdown: {e}"),
                )),
            }
            if let Ok(Err(e)) = loris_handle.join() {
                violations.push(fail(
                    "fault-slow-loris",
                    format!("loris server loop errored: {e}"),
                ));
            }
        }
        Err(e) => violations.push(fail("fault-slow-loris", e)),
    }

    FaultReport {
        probes_run: probes,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_battery_is_clean_on_a_healthy_daemon() {
        let report = run_fault_probes();
        assert_eq!(report.probes_run, 8);
        assert!(
            report.is_clean(),
            "fault contract violations: {:#?}",
            report.violations
        );
    }
}
