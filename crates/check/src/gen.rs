//! Seeded case generation: scenarios across both charging regimes and
//! instance materialisation across every utility family in `cool-utility`.
//!
//! A [`CheckCase`] is a plain [`Scenario`] plus a [`UtilityFamily`] tag, so
//! every failing case — whatever its family — shrinks to an ordinary
//! `scenarios/`-format file (the family rides along in a comment directive
//! the scenario parser ignores). All randomness flows from
//! [`SeedSequence`]: the geometry replays the exact stream discipline of
//! [`Scenario::build`] (stream 0), and the extra per-family weight draws
//! come from a dedicated child sequence, so a case is a pure function of
//! `(scenario file, family)`.

use cool_common::{SeedSequence, SensorSet};
use cool_core::instances::geometric_multi_target;
use cool_core::problem::Problem;
use cool_energy::{ChargeCycle, Fleet, FleetGrid};
use cool_geometry::Rect;
use cool_scenario::Scenario;
use cool_utility::{
    AnyUtility, CoverageUtility, FacilityLocationUtility, KCoverageUtility, LinearUtility,
    LogSumUtility, SumUtility,
};
use rand::Rng;
use std::fmt;
use std::str::FromStr;

/// Child-sequence index reserved for the per-family weight draws (streams
/// 0–2 of the root are taken by instance generation, the random baseline,
/// and LP rounding).
const FAMILY_STREAM: u64 = 7;

/// Child-sequence index for the per-case scenario-parameter draws.
const CASE_STREAM: u64 = 11;

/// Child-sequence index for the heterogeneous-fleet profile draws.
const FLEET_STREAM: u64 = 23;

/// Per-sensor profile palette `(battery Wh, μ_d W, μ_r W, solar_eff)` for
/// heterogeneous cases. Every entry lands on a 15-minute tick and every
/// combination keeps the LCM hyperperiod at ≤ 24 ticks (periods 4, 8, 2,
/// 3, 4, 4), so hetero schedules stay cheap to cross-examine.
const FLEET_PALETTE: [(f64, f64, f64, f64); 6] = [
    (30.0, 120.0, 40.0, 1.0),  // (15, 45): the paper's sunny cycle
    (60.0, 120.0, 40.0, 1.0),  // (30, 90): double capacity, period 8
    (30.0, 120.0, 120.0, 1.0), // (15, 15): ρ = 1, period 2
    (30.0, 60.0, 120.0, 1.0),  // (30, 15): ρ = 1/2, period 3
    (45.0, 180.0, 60.0, 1.0),  // (15, 45) again but a 45 Wh battery
    (30.0, 120.0, 80.0, 0.5),  // (15, 45) via half solar efficiency
];

/// Which utility family a check case materialises over the scenario's
/// deployment geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UtilityFamily {
    /// Per-target detection probability `1 − Π(1−p)` — the scenario's own
    /// instance, bit-identical to [`Scenario::build`].
    Detection,
    /// Modular `Σ w_v` with quantised per-sensor weights.
    Linear,
    /// Per-target `ln(1 + Σ w_v)` over the covering sensors.
    LogSum,
    /// Weighted-area coverage with per-target signatures (Eq. 2 shape).
    Coverage,
    /// Facility location `Σ_i max_v b_{iv}` with quantised benefits.
    Facility,
    /// k-coverage `Σ_i w_i · min(count, k_i)/k_i`.
    KCover,
}

impl UtilityFamily {
    /// Every family, in the order the generator cycles through them.
    pub fn all() -> &'static [UtilityFamily] {
        &[
            UtilityFamily::Detection,
            UtilityFamily::Linear,
            UtilityFamily::LogSum,
            UtilityFamily::Coverage,
            UtilityFamily::Facility,
            UtilityFamily::KCover,
        ]
    }

    /// The stable slug used in output and counterexample directives.
    pub fn slug(self) -> &'static str {
        match self {
            UtilityFamily::Detection => "detection",
            UtilityFamily::Linear => "linear",
            UtilityFamily::LogSum => "logsum",
            UtilityFamily::Coverage => "coverage",
            UtilityFamily::Facility => "facility",
            UtilityFamily::KCover => "kcover",
        }
    }

    /// Whether `U` scales linearly under a uniform positive weight scaling
    /// (detection composes probabilities and log-sum is logarithmic, so
    /// neither admits the scaling metamorphic relation).
    pub fn is_scalable(self) -> bool {
        !matches!(self, UtilityFamily::Detection | UtilityFamily::LogSum)
    }

    /// Index within [`UtilityFamily::all`] — the per-family rng stream.
    fn stream(self) -> u64 {
        match self {
            UtilityFamily::Detection => 0,
            UtilityFamily::Linear => 1,
            UtilityFamily::LogSum => 2,
            UtilityFamily::Coverage => 3,
            UtilityFamily::Facility => 4,
            UtilityFamily::KCover => 5,
        }
    }
}

impl fmt::Display for UtilityFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

impl FromStr for UtilityFamily {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        UtilityFamily::all()
            .iter()
            .copied()
            .find(|f| f.slug() == s)
            .ok_or_else(|| format!("unknown utility family `{s}` (expected one of detection | linear | logsum | coverage | facility | kcover)"))
    }
}

/// One generated check case: a scenario plus the utility family to
/// materialise over its deployment.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckCase {
    /// 0-based index within the generated batch (0 for replayed cases).
    pub index: usize,
    /// The scenario — fully determines geometry, cycle, and horizon.
    pub scenario: Scenario,
    /// The utility family built over the scenario's deployment.
    pub family: UtilityFamily,
}

/// A materialised case: the problem instance plus everything the oracle
/// relations need.
#[derive(Clone, Debug)]
pub struct CheckInstance {
    /// The schedulable instance (utility + cycle + periods).
    pub problem: Problem<SumUtility>,
    /// The derived charging cycle.
    pub cycle: ChargeCycle,
    /// Whole periods in the scenario's working time.
    pub periods: usize,
    /// Small enough for the `T^n` exhaustive enumerator.
    pub tiny: bool,
}

/// A materialised heterogeneous case: the family's utility over the
/// scenario's deployment geometry plus the fleet's LCM tick grid. Built
/// only for cases whose scenario sets per-sensor profile lists — the
/// oracle runs its heterogeneous battery on these instead of the
/// homogeneous relations.
#[derive(Clone, Debug)]
pub struct FleetCheckInstance {
    /// The family utility (same materials path as the homogeneous build).
    pub utility: SumUtility,
    /// The per-sensor energy profiles and cycles.
    pub fleet: Fleet,
    /// The LCM tick grid all per-sensor periods embed into.
    pub grid: FleetGrid,
}

/// The deterministic raw materials a family's utility is assembled from.
/// Relabeling and scaling transforms operate on these (not on the finished
/// utility), so permuted/scaled variants are built by the same constructor
/// path as the original.
#[derive(Clone, Debug)]
struct Materials {
    n: usize,
    p: f64,
    /// Per-target covering sets from the deployment geometry.
    coverages: Vec<SensorSet>,
    /// Quantised per-sensor weights (quarter steps — exact in binary
    /// floats, with genuine exact ties for the tie-break oracle).
    sensor_weights: Vec<f64>,
    /// Quantised per-target weights.
    target_weights: Vec<f64>,
    /// Quantised targets × sensors benefit matrix (zero off-coverage).
    benefits: Vec<Vec<f64>>,
}

/// A quantised positive draw in `{0.25, 0.5, …, 2.0}` — exact in binary
/// floating point, so scaling by powers of two commutes with every
/// downstream arithmetic operation.
fn quantized<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    f64::from(1 + rng.random_range(0..8u32)) / 4.0
}

fn materials(case: &CheckCase) -> Materials {
    let s = &case.scenario;
    // Replay Scenario::build's exact stream discipline so the Detection
    // family is bit-identical to the scenario's own instance.
    let seeds = SeedSequence::new(s.seed);
    let mut geometry_rng = seeds.nth_rng(0);
    let (detection, _positions, _targets) = geometric_multi_target(
        Rect::square(s.region),
        s.sensors,
        s.targets,
        s.radius,
        s.detection_p,
        &mut geometry_rng,
    );
    let coverages: Vec<SensorSet> = detection
        .parts()
        .iter()
        .map(|part| match part {
            AnyUtility::Detection(d) => d.coverage(),
            _ => unreachable!("geometric_multi_target emits detection parts"),
        })
        .collect();

    let mut rng = seeds.child(FAMILY_STREAM).nth_rng(case.family.stream());
    let sensor_weights: Vec<f64> = (0..s.sensors).map(|_| quantized(&mut rng)).collect();
    let target_weights: Vec<f64> = (0..s.targets).map(|_| quantized(&mut rng)).collect();
    let benefits: Vec<Vec<f64>> = coverages
        .iter()
        .map(|cov| {
            let mut row = vec![0.0; s.sensors];
            for v in cov {
                row[v.index()] = quantized(&mut rng);
            }
            row
        })
        .collect();

    Materials {
        n: s.sensors,
        p: s.detection_p,
        coverages,
        sensor_weights,
        target_weights,
        benefits,
    }
}

/// Applies a sensor relabeling `perm[old] = new` to a coverage set.
fn permute_set(set: &SensorSet, perm: &[usize]) -> SensorSet {
    SensorSet::from_indices(set.universe(), set.iter().map(|v| perm[v.index()]))
}

/// Applies a relabeling to a per-sensor vector.
fn permute_vec(values: &[f64], perm: &[usize]) -> Vec<f64> {
    let mut out = vec![0.0; values.len()];
    for (old, &value) in values.iter().enumerate() {
        out[perm[old]] = value;
    }
    out
}

/// Assembles the family's utility from materials, optionally relabeled by
/// `perm` (old index → new index) and uniformly scaled by `scale`.
///
/// `scale` must be `1.0` for non-[scalable](UtilityFamily::is_scalable)
/// families.
fn utility_from(
    family: UtilityFamily,
    m: &Materials,
    perm: Option<&[usize]>,
    scale: f64,
) -> SumUtility {
    debug_assert!(
        scale == 1.0 || family.is_scalable(),
        "scaling applied to a non-scalable family"
    );
    let identity: Vec<usize> = (0..m.n).collect();
    let perm = perm.unwrap_or(&identity);
    let coverages: Vec<SensorSet> = m.coverages.iter().map(|c| permute_set(c, perm)).collect();

    let parts: Vec<AnyUtility> = match family {
        UtilityFamily::Detection => coverages
            .iter()
            .map(|cov| cool_utility::DetectionUtility::uniform_on(cov, m.p).into())
            .collect(),
        UtilityFamily::Linear => {
            let weights: Vec<f64> = permute_vec(&m.sensor_weights, perm)
                .iter()
                .map(|w| w * scale)
                .collect();
            vec![LinearUtility::new(weights).into()]
        }
        UtilityFamily::LogSum => coverages
            .iter()
            .map(|cov| {
                let mut weights = vec![0.0; m.n];
                let permuted = permute_vec(&m.sensor_weights, perm);
                for v in cov {
                    weights[v.index()] = permuted[v.index()];
                }
                LogSumUtility::new(weights).into()
            })
            .collect(),
        UtilityFamily::Coverage => {
            let values: Vec<f64> = m.target_weights.iter().map(|w| w * scale).collect();
            vec![CoverageUtility::from_parts(m.n, coverages, values).into()]
        }
        UtilityFamily::Facility => {
            let benefits: Vec<Vec<f64>> = m
                .benefits
                .iter()
                .map(|row| permute_vec(row, perm).iter().map(|b| b * scale).collect())
                .collect();
            vec![FacilityLocationUtility::new(benefits).into()]
        }
        UtilityFamily::KCover => {
            let k: Vec<u32> = m
                .coverages
                .iter()
                .map(|cov| u32::try_from(cov.len().min(2)).unwrap_or(1).max(1))
                .collect();
            let weights: Vec<f64> = m.target_weights.iter().map(|w| w * scale).collect();
            vec![KCoverageUtility::new(coverages, k, weights).into()]
        }
    };
    SumUtility::new(parts)
}

/// Budget above which the exhaustive enumerator is skipped.
const TINY_BUDGET: f64 = 20_000.0;

impl CheckCase {
    /// Materialises the case into a problem instance.
    ///
    /// # Errors
    ///
    /// Returns a rendered message for invalid cycle parameters or
    /// degenerate horizons (the generator never produces these; replayed
    /// hand-edited files can).
    pub fn build(&self) -> Result<CheckInstance, String> {
        let s = &self.scenario;
        let cycle = ChargeCycle::from_minutes(s.discharge_minutes, s.recharge_minutes)
            .map_err(|e| e.to_string())?;
        let periods = cycle.periods_in_hours(s.hours).max(1);
        let utility = utility_from(self.family, &materials(self), None, 1.0);
        let problem = Problem::new(utility, cycle, periods).map_err(|e| e.to_string())?;
        let t = cycle.slots_per_period();
        let tiny = (t as f64).powi(i32::try_from(s.sensors).unwrap_or(i32::MAX)) <= TINY_BUDGET;
        Ok(CheckInstance {
            problem,
            cycle,
            periods,
            tiny,
        })
    }

    /// Materialises a heterogeneous case: the scenario's profile lists
    /// become a [`Fleet`] and its LCM tick grid, and the family utility is
    /// assembled by the same materials path as [`CheckCase::build`].
    ///
    /// # Errors
    ///
    /// Returns a rendered message when the scenario has no profile lists,
    /// a profile is invalid, or the fleet does not embed into a grid (the
    /// generator's palette never produces these; hand-edited replays can).
    pub fn build_fleet(&self) -> Result<FleetCheckInstance, String> {
        if !self.scenario.has_profiles() {
            return Err("scenario has no per-sensor profile lists".into());
        }
        let fleet = self.scenario.fleet()?;
        let grid = FleetGrid::build(&fleet).map_err(|e| e.to_string())?;
        let utility = utility_from(self.family, &materials(self), None, 1.0);
        Ok(FleetCheckInstance {
            utility,
            fleet,
            grid,
        })
    }

    /// The case's utility relabeled by `perm` (old index → new index).
    pub fn permuted_utility(&self, perm: &[usize]) -> SumUtility {
        utility_from(self.family, &materials(self), Some(perm), 1.0)
    }

    /// The case's utility with every weight scaled by `scale` (a power of
    /// two keeps the arithmetic exact). Only valid for
    /// [scalable](UtilityFamily::is_scalable) families.
    pub fn scaled_utility(&self, scale: f64) -> SumUtility {
        utility_from(self.family, &materials(self), None, scale)
    }

    /// A deterministic sensor relabeling for the metamorphic oracle
    /// (Fisher–Yates from the case's own seed).
    pub fn relabeling(&self) -> Vec<usize> {
        let n = self.scenario.sensors;
        let mut rng = SeedSequence::new(self.scenario.seed)
            .child(FAMILY_STREAM + 1)
            .nth_rng(self.family.stream());
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        perm
    }
}

/// Active-regime `(discharge, recharge)` minute pairs: ρ ∈ {3, 2, 4}.
const ACTIVE_CYCLES: [(f64, f64); 3] = [(15.0, 45.0), (15.0, 30.0), (10.0, 40.0)];
/// Passive-regime pairs: ρ ∈ {1/3, 1/2, 1}.
const PASSIVE_CYCLES: [(f64, f64); 3] = [(45.0, 15.0), (30.0, 15.0), (15.0, 15.0)];

/// Generates `count` deterministic cases from `seed`, cycling through
/// every utility family and alternating the ρ>1 / ρ≤1 regimes. Every
/// third case is tiny enough for the exhaustive optimal oracle.
pub fn generate_cases(seed: u64, count: usize) -> Vec<CheckCase> {
    let seeds = SeedSequence::new(seed).child(CASE_STREAM);
    (0..count)
        .map(|i| {
            let mut rng = seeds.nth_rng(i as u64);
            let family = UtilityFamily::all()[i % UtilityFamily::all().len()];
            let active = i % 2 == 0;
            let (discharge, recharge) = if active {
                ACTIVE_CYCLES[rng.random_range(0..ACTIVE_CYCLES.len())]
            } else {
                PASSIVE_CYCLES[rng.random_range(0..PASSIVE_CYCLES.len())]
            };
            let sensors = if i % 3 == 0 {
                3 + rng.random_range(0..4usize) // tiny: 3..=6
            } else {
                8 + rng.random_range(0..13usize) // 8..=20
            };
            let targets = 1 + rng.random_range(0..3usize);
            let detection_p = [0.3, 0.4, 0.5, 0.6][rng.random_range(0..4usize)];
            let periods = 1 + rng.random_range(0..2usize);
            // One spare minute so `periods_in_hours` floors to exactly
            // `periods` despite float division.
            let hours = (periods as f64 * (discharge + recharge) + 1.0) / 60.0;

            let mut scenario = Scenario {
                sensors,
                targets,
                detection_p,
                discharge_minutes: discharge,
                recharge_minutes: recharge,
                hours,
                region: 200.0,
                radius: 60.0 + 20.0 * f64::from(rng.random_range(0..3u32)),
                seed: seeds.nth_seed(1_000_000 + i as u64),
                ..Scenario::default()
            };
            if i % 4 == 3 {
                // Heterogeneous fleet: per-sensor profile lists drawn from
                // the palette (assigned cyclically over the sensors). The
                // profiles then define the energy model; the duration keys
                // above are ignored by the builder.
                let mut fleet_rng = SeedSequence::new(seed)
                    .child(FLEET_STREAM)
                    .nth_rng(i as u64);
                let k = 2 + fleet_rng.random_range(0..3usize);
                for _ in 0..k {
                    let (b, d, r, e) =
                        FLEET_PALETTE[fleet_rng.random_range(0..FLEET_PALETTE.len())];
                    scenario.battery.push(b);
                    scenario.mu_d.push(d);
                    scenario.mu_r.push(r);
                    scenario.solar_eff.push(e);
                }
                // One spare minute past the worst-case hyperperiod
                // (24 ticks × 15 minutes) so at least one whole
                // hyperperiod always fits the working time.
                scenario.hours = (24.0 * 15.0 + 1.0) / 60.0;
            }
            CheckCase {
                index: i,
                scenario,
                family,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_utility::UtilityFunction;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_cases(42, 12);
        let b = generate_cases(42, 12);
        assert_eq!(a, b);
        let c = generate_cases(43, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn cases_cover_both_regimes_and_all_families() {
        let cases = generate_cases(7, 12);
        assert!(cases.iter().any(|c| {
            c.scenario.recharge_minutes > c.scenario.discharge_minutes // ρ > 1
        }));
        assert!(cases
            .iter()
            .any(|c| c.scenario.recharge_minutes <= c.scenario.discharge_minutes));
        for family in UtilityFamily::all() {
            assert!(cases.iter().any(|c| c.family == *family), "{family}");
        }
        assert!(cases.iter().any(|c| c.build().unwrap().tiny));
    }

    #[test]
    fn every_family_builds_a_valid_instance() {
        for case in generate_cases(3, 6) {
            let instance = case.build().unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(instance.problem.n_sensors(), case.scenario.sensors);
            // The sampled axiom checker accepts every generated utility.
            let report = cool_lint::preflight(
                instance.problem.utility(),
                case.scenario.sensors,
                instance.cycle.slots_per_period(),
            );
            assert!(report.is_clean(), "{}: {report}", case.family);
        }
    }

    #[test]
    fn detection_family_matches_scenario_build() {
        let case = &generate_cases(11, 1)[0];
        assert_eq!(case.family, UtilityFamily::Detection);
        let built = case.scenario.build().unwrap();
        let ours = case.build().unwrap();
        let full = SensorSet::full(case.scenario.sensors);
        assert_eq!(
            built.problem.utility().eval(&full),
            ours.problem.utility().eval(&full),
            "detection family must replay Scenario::build bit-for-bit"
        );
        assert_eq!(built.periods, ours.periods);
    }

    #[test]
    fn relabeling_is_a_permutation() {
        let case = &generate_cases(5, 2)[1];
        let perm = case.relabeling();
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        let permuted = case.permuted_utility(&perm);
        let base = case.build().unwrap();
        let full = SensorSet::full(case.scenario.sensors);
        assert!(
            (permuted.eval(&full) - base.problem.utility().eval(&full)).abs() < 1e-12,
            "full-set value is relabeling-invariant"
        );
    }

    #[test]
    fn every_fourth_case_is_a_heterogeneous_fleet() {
        let cases = generate_cases(9, 12);
        for case in &cases {
            assert_eq!(
                case.index % 4 == 3,
                case.scenario.has_profiles(),
                "case {}",
                case.index
            );
        }
        for case in cases.iter().filter(|c| c.scenario.has_profiles()) {
            let instance = case
                .build_fleet()
                .unwrap_or_else(|e| panic!("case {}: {e}", case.index));
            assert_eq!(instance.fleet.len(), case.scenario.sensors);
            assert!(
                instance.grid.hyperperiod() <= 24,
                "palette promises a small hyperperiod, got {}",
                instance.grid.hyperperiod()
            );
            // Fleet cases survive the counterexample round trip: profile
            // lists are part of the canonical grammar.
            let parsed = Scenario::parse(&case.scenario.canonical()).unwrap();
            assert_eq!(parsed, case.scenario);
        }
        assert!(generate_cases(9, 4)[3].build_fleet().is_ok());
        assert!(generate_cases(9, 1)[0].build_fleet().is_err());
    }

    #[test]
    fn family_slugs_round_trip() {
        for family in UtilityFamily::all() {
            assert_eq!(family.slug().parse::<UtilityFamily>().unwrap(), *family);
        }
        assert!("quantum".parse::<UtilityFamily>().is_err());
    }
}
