//! # cool-check
//!
//! Deterministic differential-testing and fault-injection harness for the
//! whole scheduler stack (DESIGN.md §9).
//!
//! One run (`cool check --seed N`) does four things:
//!
//! 1. **Generate** — derive a batch of scenarios from the seed, covering
//!    both charging regimes and every utility family ([`gen`]).
//! 2. **Cross-examine** — run naive greedy, lazy greedy, LP rounding, the
//!    horizon scheduler, and (on tiny instances) the exhaustive optimum on
//!    each case, asserting every relation that is a theorem of this
//!    codebase ([`oracle`]).
//! 3. **Shrink** — minimise any failing case to the smallest scenario that
//!    still violates the same relation, rendered as a reproducible
//!    `scenarios/`-format file ([`shrink`]).
//! 4. **Fault-inject** — batter a live `cool-serve` daemon with hostile
//!    clients and assert the typed-error and cache-integrity contract
//!    ([`fault`]).
//!
//! Everything except the serve probes is a pure function of the seed: the
//! same seed produces byte-identical output, and a shrunk counterexample
//! file replays with `cool check --replay FILE`.

pub mod fault;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use fault::{run_fault_probes, FaultReport};
pub use gen::{generate_cases, CheckCase, CheckInstance, FleetCheckInstance, UtilityFamily};
pub use oracle::{check_case, CaseOutcome, OracleSettings, Violation};
pub use shrink::{parse_counterexample, render_counterexample, shrink_case};

use std::fmt::Write as _;

/// Harness configuration (mirrors the `cool check` CLI flags).
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Root seed; the entire batch derives from it.
    pub seed: u64,
    /// Number of generated cases.
    pub cases: usize,
    /// LP rounding trials per case.
    pub lp_trials: usize,
    /// Required greedy/optimal ratio on tiny cases (Lemma 4.1 proves ½).
    pub ratio: f64,
    /// Run the serve-layer fault battery.
    pub serve_faults: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            seed: 42,
            cases: 12,
            lp_trials: 8,
            ratio: 0.5,
            serve_faults: true,
        }
    }
}

impl CheckConfig {
    fn oracle_settings(&self) -> OracleSettings {
        OracleSettings {
            lp_trials: self.lp_trials,
            ratio: self.ratio,
        }
    }
}

/// A shrunk, renderable counterexample.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Suggested file name (`cool-check-case<i>-<relation>.txt`).
    pub file_name: String,
    /// The `scenarios/`-format file contents (with `check_*` directives).
    pub contents: String,
    /// The relation the file reproduces.
    pub relation: String,
    /// Index of the originating case.
    pub case_index: usize,
}

/// Everything one harness run produced.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Per-case one-line summaries, in case order.
    pub case_lines: Vec<String>,
    /// Every violation, prefixed with its case label.
    pub violations: Vec<String>,
    /// Harness-level errors (a case that failed to build or a scheduler
    /// that failed outright) — counted as failures.
    pub errors: Vec<String>,
    /// Shrunk counterexamples for the CLI to write out.
    pub counterexamples: Vec<Counterexample>,
    /// Total relations evaluated.
    pub relations_checked: usize,
    /// Cases evaluated.
    pub cases_checked: usize,
    /// Fault probes run (0 when the battery is skipped).
    pub fault_probes: usize,
}

impl RunReport {
    /// `true` when no relation was violated and no harness error occurred.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.errors.is_empty()
    }

    /// Deterministic human-readable rendering (no timings, no paths): the
    /// same seed renders byte-identical text run over run.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.case_lines {
            let _ = writeln!(out, "{line}");
        }
        for violation in &self.violations {
            let _ = writeln!(out, "FAIL {violation}");
        }
        for error in &self.errors {
            let _ = writeln!(out, "ERROR {error}");
        }
        if self.fault_probes > 0 {
            let _ = writeln!(out, "serve-faults: {} probes", self.fault_probes);
        }
        let verdict = if self.is_clean() { "ok" } else { "FAIL" };
        let _ = writeln!(
            out,
            "summary: {} cases, {} relations, {} violations, {} errors — {verdict}",
            self.cases_checked,
            self.relations_checked,
            self.violations.len(),
            self.errors.len()
        );
        out
    }
}

/// Checks one case into the report, shrinking any violation.
fn run_case(case: &CheckCase, label: &str, settings: &OracleSettings, report: &mut RunReport) {
    match check_case(case, settings) {
        Ok(outcome) => {
            report.cases_checked += 1;
            report.relations_checked += outcome.relations_checked;
            let verdict = if outcome.is_clean() { "ok" } else { "FAIL" };
            report.case_lines.push(format!(
                "{label}: family={} sensors={} targets={} relations={}{} — {verdict}",
                case.family,
                case.scenario.sensors,
                case.scenario.targets,
                outcome.relations_checked,
                if outcome.tiny { " tiny" } else { "" },
            ));
            let mut shrunk_relations: Vec<&str> = Vec::new();
            for violation in &outcome.violations {
                report.violations.push(format!("{label}: {violation}"));
                if shrunk_relations.contains(&violation.relation) {
                    continue; // one counterexample per (case, relation)
                }
                shrunk_relations.push(violation.relation);
                let (small, steps) = shrink_case(case, violation.relation, settings);
                report.counterexamples.push(Counterexample {
                    file_name: format!("cool-check-case{}-{}.txt", case.index, violation.relation),
                    contents: render_counterexample(&small, violation.relation),
                    relation: violation.relation.to_string(),
                    case_index: case.index,
                });
                report.case_lines.push(format!(
                    "{label}: shrunk {} → {} sensors in {steps} steps for {}",
                    case.scenario.sensors, small.scenario.sensors, violation.relation
                ));
            }
        }
        Err(e) => {
            report.cases_checked += 1;
            report.errors.push(format!("{label}: {e}"));
        }
    }
}

/// Runs the full harness: generate → cross-examine → shrink → fault-inject.
pub fn run(config: &CheckConfig) -> RunReport {
    let settings = config.oracle_settings();
    let mut report = RunReport::default();
    for case in generate_cases(config.seed, config.cases) {
        let label = format!("case {}", case.index);
        run_case(&case, &label, &settings, &mut report);
    }
    if config.serve_faults {
        let faults = run_fault_probes();
        report.fault_probes = faults.probes_run;
        for violation in faults.violations {
            report.violations.push(format!("serve: {violation}"));
        }
    }
    report
}

/// Replays a counterexample (or plain scenario) file.
///
/// When the file carries a `check_relation` directive, the verdict is
/// about that specific relation: clean means the relation no longer fails
/// (e.g. after a fix); a violation means the file still reproduces it.
///
/// # Errors
///
/// Returns a rendered message for unparsable files.
pub fn replay(text: &str, config: &CheckConfig) -> Result<RunReport, String> {
    let (case, relation) = parse_counterexample(text)?;
    let settings = config.oracle_settings();
    let mut report = RunReport::default();
    run_case(&case, "replay", &settings, &mut report);
    if let Some(relation) = relation {
        let reproduced = report
            .violations
            .iter()
            .any(|v| v.contains(&format!(" {relation}: ")));
        report.case_lines.push(format!(
            "replay: relation {relation} {}",
            if reproduced {
                "still reproduces"
            } else {
                "no longer fails"
            }
        ));
        // The verdict of a replay is scoped to the named relation.
        report
            .violations
            .retain(|v| v.contains(&format!(" {relation}: ")));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> CheckConfig {
        CheckConfig {
            cases: 6,
            serve_faults: false,
            ..CheckConfig::default()
        }
    }

    #[test]
    fn default_run_is_clean_and_deterministic() {
        let config = quick_config();
        let first = run(&config);
        assert!(first.is_clean(), "{}", first.render());
        assert_eq!(first.cases_checked, 6);
        let second = run(&config);
        assert_eq!(first.render(), second.render(), "non-deterministic output");
    }

    #[test]
    fn different_seeds_produce_different_reports() {
        let a = run(&quick_config());
        let b = run(&CheckConfig {
            seed: 43,
            ..quick_config()
        });
        assert_ne!(a.render(), b.render());
    }

    #[test]
    fn impossible_ratio_fails_shrinks_and_replays() {
        let config = CheckConfig {
            ratio: 1.01,
            ..quick_config()
        };
        let report = run(&config);
        assert!(!report.is_clean());
        assert!(!report.counterexamples.is_empty(), "{}", report.render());
        let ce = &report.counterexamples[0];
        assert_eq!(ce.relation, "greedy-ratio");

        // The shrunk file must reproduce under the same settings…
        let replayed = replay(&ce.contents, &config).unwrap();
        assert!(
            replayed
                .case_lines
                .iter()
                .any(|l| l.contains("still reproduces")),
            "{}",
            replayed.render()
        );
        assert!(!replayed.is_clean());

        // …and come up clean once the "bug" (the absurd ratio) is fixed.
        let fixed = replay(&ce.contents, &quick_config()).unwrap();
        assert!(fixed.is_clean(), "{}", fixed.render());
    }

    #[test]
    fn render_reports_the_verdict() {
        let report = run(&quick_config());
        let text = report.render();
        assert!(text.contains("summary: 6 cases"));
        assert!(text.trim_end().ends_with("ok"));
    }
}
