//! The differential oracle: every relation between schedulers that is a
//! theorem (or a pinned implementation contract) of this codebase, checked
//! on one materialised case.
//!
//! Relations and their diagnostic codes:
//!
//! | relation | code | statement |
//! |---|---|---|
//! | `naive-lazy-equal` | `COOL-E020` | naive and lazy greedy produce identical assignments (incl. tie-break order) |
//! | `schedule-replay` | lint's own code | every produced schedule replays cleanly through `cool-lint` |
//! | `greedy-le-lp` | `COOL-E021` | greedy period value ≤ LP relaxation value |
//! | `rounded-le-lp` | `COOL-E021` | rounded schedule value ≤ LP relaxation value |
//! | `optimal-ge-greedy` | `COOL-E021` | exhaustive optimum dominates greedy (tiny cases) |
//! | `optimal-ge-rounded` | `COOL-E021` | exhaustive optimum dominates LP rounding (tiny cases) |
//! | `optimal-le-lp` | `COOL-E021` | exhaustive optimum ≤ LP relaxation value (tiny cases) |
//! | `greedy-ratio` | `COOL-E021` | greedy ≥ ratio · optimum (tiny cases; Lemma 4.1's ½ by default) |
//! | `horizon-replay` | lint's own code | per-sensor horizon greedy replays cleanly |
//! | `horizon-le-max` | `COOL-E021` | horizon total ≤ L · max utility |
//! | `rotate-invariant` | `COOL-E022` | rotating a schedule within the period preserves its value and feasibility |
//! | `relabel-eval` | `COOL-E022` | relabeling sensors and the utility together preserves a schedule's value |
//! | `scale-exact` | `COOL-E022` | scaling weights by a power of two scales the greedy value exactly and keeps the assignment |
//! | `sparse-dense-equal` | `COOL-E024` | sparse (incidence-indexed) and dense sum evaluators agree on a random insert/remove/gain/loss trace — gains/losses bitwise, values within `EXACT_TOL` |
//! | `support-zero-gain` | `COOL-E024` | sparse gain/loss is **exactly** 0 for every sensor outside the sum's support, at every trace state |
//! | `abstract-unsound` | `COOL-E026` | the abstract energy interpreter's feasible regions agree with sampled concrete replays: verified-failing charges fail, charges ≥ θ replay clean, and a ∀-feasibility proof implies every sensor's region is `All` |
//! | `session-repair-equal` | `COOL-E027` | warm-start session repair tracks a from-scratch solve: an empty dirty set reproduces the previous schedule bit-for-bit at zero cost, every patched schedule stays energy-feasible with value ≥ ratio · scratch, and a full-mode repair **is** the scratch solve (identical assignment) |
//! | `hetero-homog-reduce` | `COOL-E028` | on a uniform fleet synthesised from the case's own cycle, the heterogeneous greedy (naive **and** lazy) reproduces the homogeneous greedy's schedule bit-for-bit through the phase embedding |
//! | `baseline-sound` | `COOL-E029` | every grid baseline (RSC, Set-Once, HEF) replays clean through the per-sensor energy automaton and never beats the duty-cycle upper bound (nor, on uniform fleets, the LP relaxation) |
//! | `greedy-le-duty` | `COOL-E021` | the heterogeneous greedy's hyperperiod value ≤ the duty-cycle upper bound |
//!
//! Cases whose scenario sets per-sensor profile lists run a dedicated
//! heterogeneous battery instead of the homogeneous relations: naive/lazy
//! fleet-greedy equality (`naive-lazy-equal`), concrete grid replay
//! (`schedule-replay`), the duty bound, `baseline-sound`, and a sampled
//! soundness check of the per-sensor abstract interpreter
//! (`abstract-unsound`).
//!
//! A note on what is deliberately **not** asserted: the *value achieved by
//! greedy* is not relabeling-invariant. On tie-heavy instances (e.g. the
//! detection family with a uniform `p`) the index-based tie-break picks a
//! different winner after renaming, and the choice cascades to a genuinely
//! different final value (observed: seed 53, ~5% gap). Evaluation
//! invariance (`relabel-eval`) is the theorem; greedy-value invariance is
//! not, which is exactly why `naive-lazy-equal` pins both implementations
//! to one tie order instead.

use crate::gen::CheckCase;
use cool_common::{CoolCode, Interval, SeedSequence, SensorId, SensorSet};
use cool_core::greedy::{
    greedy_active_naive, greedy_passive_naive, try_greedy_schedule, try_greedy_schedule_lazy,
};
use cool_core::hetero::{hetero_greedy_lazy, hetero_greedy_naive, phases_from_period_schedule};
use cool_core::horizon::greedy_horizon;
use cool_core::lp::LpScheduler;
use cool_core::optimal::exhaustive_optimal;
use cool_core::repair::{repair_schedule, RepairConfig, RepairMode};
use cool_core::schedule::{PeriodSchedule, ScheduleMode};
use cool_core::{grid_duty_upper_bound, hef_schedule, rsc_schedule, set_once_schedule};
use cool_energy::{Fleet, FleetGrid};
use cool_lint::{
    feasible_region, grid_feasible_region, grid_sensor_replay_clean, lint_grid_schedule,
    lint_horizon, lint_schedule, lint_schedule_abstract, proves_feasible_for_all,
    proves_grid_feasible_for_all, sensor_replay_clean, FeasibleRegion, Report,
};
use cool_session::{Delta, SessionEntry, SessionInstance};
use cool_utility::{Evaluator, SumUtility, UtilityFunction};
use rand::Rng;
use std::fmt;

/// Absolute tolerance for inequality relations between independently
/// computed values (LP pivots and rounding accumulate real error).
pub const VALUE_TOL: f64 = 1e-6;

/// Absolute tolerance for equality relations whose two sides perform the
/// same arithmetic in a different order.
pub const EXACT_TOL: f64 = 1e-9;

/// Oracle knobs.
#[derive(Clone, Copy, Debug)]
pub struct OracleSettings {
    /// Rounding trials for the LP scheduler.
    pub lp_trials: usize,
    /// Required greedy/optimal ratio on tiny cases. Lemma 4.1 proves ½ for
    /// this partition-matroid setting; the classic `1 − 1/e` holds only
    /// for cardinality constraints, so asserting it here would be wrong —
    /// the default stays at the proven bound.
    pub ratio: f64,
}

impl Default for OracleSettings {
    fn default() -> Self {
        OracleSettings {
            lp_trials: 8,
            ratio: 0.5,
        }
    }
}

/// One violated relation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The stable diagnostic code (`COOL-E020`…`E022`, or the replayed
    /// lint diagnostic's own code).
    pub code: CoolCode,
    /// The relation slug from the module-level table.
    pub relation: &'static str,
    /// Human-readable specifics: the values on both sides.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: {}",
            self.code.as_str(),
            self.relation,
            self.detail
        )
    }
}

/// The oracle's verdict on one case.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// Relations actually evaluated (tiny-only relations are skipped on
    /// large cases).
    pub relations_checked: usize,
    /// Every violated relation, in check order.
    pub violations: Vec<Violation>,
    /// Whether the exhaustive-optimal relations ran.
    pub tiny: bool,
    /// Greedy period value (reported for the run summary).
    pub greedy_value: f64,
    /// LP relaxation value.
    pub lp_value: f64,
}

impl CaseOutcome {
    /// `true` when every checked relation held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Dispatches the naive greedy matching [`try_greedy_schedule`]'s regime
/// choice, but on a bare utility (used for transformed variants that share
/// the case's cycle).
fn naive_for_mode(
    utility: &SumUtility,
    slots: usize,
    mode: ScheduleMode,
) -> Result<PeriodSchedule, String> {
    let result = match mode {
        ScheduleMode::ActiveSlot => greedy_active_naive(utility, slots),
        ScheduleMode::PassiveSlot => greedy_passive_naive(utility, slots),
    };
    result.map_err(|e| e.to_string())
}

/// Folds every error-severity diagnostic of a lint replay into violations
/// that carry the lint diagnostic's own code.
fn replay(violations: &mut Vec<Violation>, relation: &'static str, label: &str, report: &Report) {
    for d in report.diagnostics() {
        if d.severity() == cool_lint::Severity::Error {
            violations.push(Violation {
                code: d.code,
                relation,
                detail: format!("{label}: {}", d.message),
            });
        }
    }
}

/// The `baseline-sound` (`COOL-E029`) contract for one grid baseline: a
/// clean per-sensor energy replay, a hyperperiod value at or below the
/// duty-cycle upper bound, and — when `lp_cap` applies (uniform fleets,
/// whose hyperperiod is one period) — at or below the LP relaxation value.
fn check_baseline_sound(
    violations: &mut Vec<Violation>,
    name: &str,
    schedule: &cool_core::GridSchedule,
    grid: &FleetGrid,
    utility: &SumUtility,
    bound: f64,
    lp_cap: Option<f64>,
) {
    let report = lint_grid_schedule(schedule, grid);
    for d in report.diagnostics() {
        if d.severity() == cool_lint::Severity::Error {
            violations.push(Violation {
                code: CoolCode::BaselineUnsound,
                relation: "baseline-sound",
                detail: format!("{name}: {}", d.message),
            });
        }
    }
    let value = schedule.hyperperiod_utility(utility);
    if value > bound + VALUE_TOL {
        violations.push(Violation {
            code: CoolCode::BaselineUnsound,
            relation: "baseline-sound",
            detail: format!("{name}: value {value} > duty bound {bound}"),
        });
    }
    if let Some(cap) = lp_cap {
        if value > cap + VALUE_TOL {
            violations.push(Violation {
                code: CoolCode::BaselineUnsound,
                relation: "baseline-sound",
                detail: format!("{name}: value {value} > lp {cap}"),
            });
        }
    }
}

/// Runs every applicable relation on one case.
///
/// # Errors
///
/// Returns a rendered message when the case itself cannot be materialised
/// or a scheduler fails outright (distinct from an oracle violation: the
/// harness treats it as a violation of the `schedulers-run` meta-relation
/// at the call site).
#[allow(clippy::too_many_lines)] // one relation after another, linear and flat
pub fn check_case(case: &CheckCase, settings: &OracleSettings) -> Result<CaseOutcome, String> {
    if case.scenario.has_profiles() {
        return check_fleet_case(case);
    }
    let instance = case.build()?;
    let problem = &instance.problem;
    let utility = problem.utility();
    let t = problem.slots_per_period();
    let mut violations = Vec::new();
    let mut checked = 0usize;

    // --- E020: the two greedy implementations are interchangeable. ---
    let naive = try_greedy_schedule(problem).map_err(|e| e.to_string())?;
    let lazy = try_greedy_schedule_lazy(problem).map_err(|e| e.to_string())?;
    checked += 1;
    if naive.assignment() != lazy.assignment() || naive.mode() != lazy.mode() {
        violations.push(Violation {
            code: CoolCode::DifferentialMismatch,
            relation: "naive-lazy-equal",
            detail: format!(
                "naive {:?} vs lazy {:?} (modes {:?}/{:?})",
                naive.assignment(),
                lazy.assignment(),
                naive.mode(),
                lazy.mode()
            ),
        });
    }
    let greedy_value = naive.period_utility(utility);

    // --- LP relaxation and rounding (stream 2 by workspace convention). ---
    let mut lp_rng = SeedSequence::new(case.scenario.seed).nth_rng(2);
    let lp = LpScheduler::new(settings.lp_trials)
        .schedule(problem, &mut lp_rng)
        .map_err(|e| format!("LP scheduler failed: {e:?}"))?;
    checked += 2;
    if lp.rounded_value > lp.lp_value + VALUE_TOL {
        violations.push(Violation {
            code: CoolCode::OracleBoundViolated,
            relation: "rounded-le-lp",
            detail: format!("rounded {} > lp {}", lp.rounded_value, lp.lp_value),
        });
    }
    if greedy_value > lp.lp_value + VALUE_TOL {
        violations.push(Violation {
            code: CoolCode::OracleBoundViolated,
            relation: "greedy-le-lp",
            detail: format!("greedy {} > lp {}", greedy_value, lp.lp_value),
        });
    }

    // --- Energy-feasibility replay through cool-lint. ---
    checked += 2;
    replay(
        &mut violations,
        "schedule-replay",
        "greedy",
        &lint_schedule(&naive, instance.cycle),
    );
    replay(
        &mut violations,
        "schedule-replay",
        "lp-rounded",
        &lint_schedule(&lp.schedule, instance.cycle),
    );

    // --- Exhaustive optimum on tiny cases. ---
    if instance.tiny {
        let opt = exhaustive_optimal(utility, t, naive.mode());
        let opt_value = opt.period_utility(utility);
        checked += 4;
        if opt_value + VALUE_TOL < greedy_value {
            violations.push(Violation {
                code: CoolCode::OracleBoundViolated,
                relation: "optimal-ge-greedy",
                detail: format!("opt {opt_value} < greedy {greedy_value}"),
            });
        }
        if opt_value + VALUE_TOL < lp.rounded_value {
            violations.push(Violation {
                code: CoolCode::OracleBoundViolated,
                relation: "optimal-ge-rounded",
                detail: format!("opt {opt_value} < rounded {}", lp.rounded_value),
            });
        }
        if opt_value > lp.lp_value + VALUE_TOL {
            violations.push(Violation {
                code: CoolCode::OracleBoundViolated,
                relation: "optimal-le-lp",
                detail: format!("opt {opt_value} > lp {}", lp.lp_value),
            });
        }
        if greedy_value + VALUE_TOL < settings.ratio * opt_value {
            violations.push(Violation {
                code: CoolCode::OracleBoundViolated,
                relation: "greedy-ratio",
                detail: format!(
                    "greedy {greedy_value} < {} × opt {opt_value}",
                    settings.ratio
                ),
            });
        }
    }

    // --- Per-sensor horizon greedy: feasible and bounded. ---
    let cycles = vec![instance.cycle; problem.n_sensors()];
    let horizon = greedy_horizon(utility, &cycles, problem.horizon_slots());
    checked += 2;
    replay(
        &mut violations,
        "horizon-replay",
        "horizon",
        &lint_horizon(&horizon, &cycles),
    );
    let horizon_cap = problem.horizon_slots() as f64 * utility.max_value();
    let horizon_total = horizon.total_utility(utility);
    if horizon_total > horizon_cap + VALUE_TOL {
        violations.push(Violation {
            code: CoolCode::OracleBoundViolated,
            relation: "horizon-le-max",
            detail: format!("horizon {horizon_total} > cap {horizon_cap}"),
        });
    }

    // --- Metamorphic: slot rotation within the period. ---
    for offset in [1, t.saturating_sub(1)] {
        if offset == 0 || offset >= t {
            continue;
        }
        checked += 1;
        let rotated = naive.rotated(offset);
        let rotated_value = rotated.period_utility(utility);
        if (rotated_value - greedy_value).abs() > EXACT_TOL {
            violations.push(Violation {
                code: CoolCode::MetamorphicVariance,
                relation: "rotate-invariant",
                detail: format!(
                    "rotation by {offset} changed value {greedy_value} → {rotated_value}"
                ),
            });
        }
        if !rotated.is_feasible(instance.cycle) {
            violations.push(Violation {
                code: CoolCode::MetamorphicVariance,
                relation: "rotate-invariant",
                detail: format!("rotation by {offset} broke feasibility"),
            });
        }
        if offset == t - 1 {
            break; // t == 2: both offsets coincide
        }
    }

    // --- Metamorphic: sensor relabeling. ---
    let perm = case.relabeling();
    let permuted_utility = case.permuted_utility(&perm);
    // (a) Evaluation invariance: relabeling the schedule and the utility
    // together is a pure renaming, so the value is identical.
    let mut permuted_assignment = vec![0usize; naive.n_sensors()];
    for (old, &slot) in naive.assignment().iter().enumerate() {
        permuted_assignment[perm[old]] = slot;
    }
    let permuted_schedule = PeriodSchedule::new(naive.mode(), t, permuted_assignment);
    let permuted_value = permuted_schedule.period_utility(&permuted_utility);
    checked += 1;
    if (permuted_value - greedy_value).abs() > EXACT_TOL {
        violations.push(Violation {
            code: CoolCode::MetamorphicVariance,
            relation: "relabel-eval",
            detail: format!("relabeled schedule value {permuted_value} ≠ {greedy_value}"),
        });
    }
    // Greedy-value invariance under relabeling is deliberately NOT
    // asserted — see the module doc (tie cascades make it false).

    // --- Metamorphic: exact power-of-two weight scaling. ---
    if case.family.is_scalable() {
        const SCALE: f64 = 4.0;
        let scaled_utility = case.scaled_utility(SCALE);
        let scaled = naive_for_mode(&scaled_utility, t, naive.mode())?;
        checked += 1;
        // Greedy compares gains exactly (no epsilon), and scaling by a
        // power of two commutes with every rounding step, so both the
        // assignment and the (scaled) value must match bit-for-bit.
        if scaled.assignment() == naive.assignment() {
            let scaled_value = scaled.period_utility(&scaled_utility);
            if scaled_value != SCALE * greedy_value {
                violations.push(Violation {
                    code: CoolCode::MetamorphicVariance,
                    relation: "scale-exact",
                    detail: format!(
                        "×{SCALE} scaling: value {scaled_value} ≠ {SCALE} × {greedy_value}"
                    ),
                });
            }
        } else {
            violations.push(Violation {
                code: CoolCode::MetamorphicVariance,
                relation: "scale-exact",
                detail: format!(
                    "×{SCALE} scaling changed the assignment: {:?} → {:?}",
                    naive.assignment(),
                    scaled.assignment()
                ),
            });
        }
    }

    // --- E024: sparse (incidence-indexed) vs dense evaluator agreement. ---
    // A seeded random insert/remove/gain/loss trace over the case's own
    // (mixed-family) sum utility. Gains/losses must match bitwise — the
    // sparse walk visits the incident parts in the dense walk's order and
    // skipped parts contribute an exact 0.0 — and the running Kahan value
    // must track the dense from-scratch sum within EXACT_TOL. Outside the
    // support, sparse gain/loss must be *exactly* zero at every state.
    {
        let n = utility.universe();
        let support = utility.support();
        let mut trace_rng = SeedSequence::new(case.scenario.seed).nth_rng(13);
        let mut sparse = utility.evaluator();
        let mut dense = utility.dense_evaluator();
        checked += 2;
        'trace: for step in 0..64u32 {
            let v = SensorId(trace_rng.random_range(0..n));
            let add: bool = trace_rng.random();
            let (s, d) = if add {
                (sparse.insert(v), dense.insert(v))
            } else {
                (sparse.remove(v), dense.remove(v))
            };
            let probe = SensorId(trace_rng.random_range(0..n));
            // Deltas and gains/losses must be *exactly* equal (IEEE `==`,
            // no tolerance — only the sign of zero may differ, from empty
            // vs. non-empty summation); the running value gets EXACT_TOL
            // for Kahan-vs-from-scratch accumulation order.
            #[allow(clippy::float_cmp)]
            let diverged = s != d
                || sparse.gain(probe) != dense.gain(probe)
                || sparse.loss(probe) != dense.loss(probe)
                || (sparse.value() - dense.value()).abs() > EXACT_TOL;
            if diverged {
                violations.push(Violation {
                    code: CoolCode::EvaluatorDivergence,
                    relation: "sparse-dense-equal",
                    detail: format!(
                        "step {step} ({}{}): delta {s} vs {d}, value {} vs {}",
                        if add { "+" } else { "-" },
                        v.index(),
                        sparse.value(),
                        dense.value()
                    ),
                });
                break 'trace;
            }
            for raw in 0..n {
                let w = SensorId(raw);
                if support.contains(w) {
                    continue;
                }
                let g = if sparse.contains(w) {
                    sparse.loss(w)
                } else {
                    sparse.gain(w)
                };
                if g != 0.0 {
                    violations.push(Violation {
                        code: CoolCode::EvaluatorDivergence,
                        relation: "support-zero-gain",
                        detail: format!(
                            "step {step}: sensor {raw} outside support has gain/loss {g}"
                        ),
                    });
                    break 'trace;
                }
            }
        }
    }

    // --- E026: abstract energy interpreter vs. sampled concrete replay. ---
    // `feasible_region` bisects each sensor's minimal feasible initial
    // charge θ with concretely verified endpoints; differential sampling
    // checks its claims against the shared `slot_transition` function:
    // charges inside the verified-failing interval `[0, last_failing]`
    // must fail the concrete replay, charges in `[θ, 1]` must replay
    // clean, and an interval-interpreter ∀-feasibility proof must imply
    // every sensor's region is `All`.
    {
        const REGION_SAMPLES: usize = 4;
        let cycle = instance.cycle;
        let mut abs_rng = SeedSequence::new(case.scenario.seed).nth_rng(17);
        checked += 1;
        let for_all = proves_feasible_for_all(&naive, cycle, Interval::UNIT);
        let mut regions_all_clean = true;
        'sensors: for sensor in 0..naive.n_sensors() {
            let region = feasible_region(&naive, cycle, sensor);
            if region != FeasibleRegion::All {
                regions_all_clean = false;
            }
            match region {
                FeasibleRegion::All => {
                    // Clean from an empty battery: by the monotone-threshold
                    // structure, every initial charge must replay clean.
                    for _ in 0..REGION_SAMPLES {
                        let init = abs_rng.random::<f64>();
                        if !sensor_replay_clean(&naive, cycle, sensor, init) {
                            violations.push(Violation {
                                code: CoolCode::AbstractReplayUnsound,
                                relation: "abstract-unsound",
                                detail: format!(
                                    "sensor {sensor}: region is All but concrete replay \
                                     fails from initial charge {init}"
                                ),
                            });
                            break 'sensors;
                        }
                    }
                }
                FeasibleRegion::Above {
                    theta,
                    last_failing,
                } => {
                    for _ in 0..REGION_SAMPLES {
                        let failing = abs_rng.random::<f64>() * last_failing;
                        if sensor_replay_clean(&naive, cycle, sensor, failing) {
                            violations.push(Violation {
                                code: CoolCode::AbstractReplayUnsound,
                                relation: "abstract-unsound",
                                detail: format!(
                                    "sensor {sensor}: {failing} ≤ verified-failing bound \
                                     {last_failing} but the concrete replay succeeds"
                                ),
                            });
                            break 'sensors;
                        }
                        let clean = theta + abs_rng.random::<f64>() * (1.0 - theta);
                        if !sensor_replay_clean(&naive, cycle, sensor, clean) {
                            violations.push(Violation {
                                code: CoolCode::AbstractReplayUnsound,
                                relation: "abstract-unsound",
                                detail: format!(
                                    "sensor {sensor}: {clean} ≥ θ = {theta} but the \
                                     concrete replay fails"
                                ),
                            });
                            break 'sensors;
                        }
                    }
                }
                FeasibleRegion::None => {
                    // Fails even from a full battery ⇒ fails from every
                    // initial charge (downward-closed failing set).
                    for _ in 0..REGION_SAMPLES {
                        let init = abs_rng.random::<f64>();
                        if sensor_replay_clean(&naive, cycle, sensor, init) {
                            violations.push(Violation {
                                code: CoolCode::AbstractReplayUnsound,
                                relation: "abstract-unsound",
                                detail: format!(
                                    "sensor {sensor}: region is None but concrete replay \
                                     succeeds from initial charge {init}"
                                ),
                            });
                            break 'sensors;
                        }
                    }
                }
            }
        }
        if for_all && !regions_all_clean {
            violations.push(Violation {
                code: CoolCode::AbstractReplayUnsound,
                relation: "abstract-unsound",
                detail: "interval interpreter proved ∀-feasibility but some sensor's \
                         bisected feasible region excludes low charges"
                    .to_string(),
            });
        }
        // E025 must fire over [0, 1] exactly when some region is not All.
        let report = lint_schedule_abstract(&naive, cycle, Interval::UNIT);
        let flagged = report.has_code(CoolCode::AbstractEnergyInfeasible);
        if flagged == regions_all_clean {
            violations.push(Violation {
                code: CoolCode::AbstractReplayUnsound,
                relation: "abstract-unsound",
                detail: format!(
                    "lint_schedule_abstract over [0, 1] {} COOL-E025 but bisection says \
                     every region is {}",
                    if flagged { "reports" } else { "omits" },
                    if regions_all_clean { "All" } else { "not All" },
                ),
            });
        }
    }

    // --- E028/E029: the heterogeneous layer against the uniform fleet. ---
    // A fleet synthesised from the case's own cycle must reduce the
    // heterogeneous greedy — naive AND lazy — to the homogeneous schedule
    // bit-for-bit through the phase embedding (this is the new code path
    // homogeneous scenarios take, so the reduction IS the compatibility
    // guarantee). The grid baselines must be sound: clean per-sensor
    // replays, below the duty-cycle bound, and — because a uniform fleet's
    // hyperperiod is exactly one period — below the LP relaxation value.
    {
        let fleet = Fleet::uniform_from_cycle(problem.n_sensors(), instance.cycle)
            .map_err(|e| e.to_string())?;
        let grid = FleetGrid::build(&fleet).map_err(|e| e.to_string())?;
        let hetero_naive = hetero_greedy_naive(utility, &grid).map_err(|e| e.to_string())?;
        let hetero_lazy = hetero_greedy_lazy(utility, &grid).map_err(|e| e.to_string())?;
        let expected = phases_from_period_schedule(&grid, &naive);
        checked += 1;
        if hetero_naive.phases() != expected.as_slice()
            || hetero_lazy.phases() != expected.as_slice()
        {
            violations.push(Violation {
                code: CoolCode::HeteroReductionMismatch,
                relation: "hetero-homog-reduce",
                detail: format!(
                    "homogeneous phases {:?} vs hetero naive {:?} / lazy {:?}",
                    expected,
                    hetero_naive.phases(),
                    hetero_lazy.phases()
                ),
            });
        }
        let bound = grid_duty_upper_bound(utility, &grid);
        let hef = hef_schedule(utility, &fleet, &grid)
            .map_err(|e| e.to_string())?
            .to_grid_schedule();
        let rsc = rsc_schedule(utility, &grid).map_err(|e| e.to_string())?;
        let once = set_once_schedule(&grid);
        checked += 9; // three baselines × (replay, duty bound, LP cap)
        for (name, schedule) in [("hef", &hef), ("rsc", &rsc), ("set-once", &once)] {
            check_baseline_sound(
                &mut violations,
                name,
                schedule,
                &grid,
                utility,
                bound,
                Some(lp.lp_value),
            );
        }
    }

    // --- E027: warm-start session repair vs. from-scratch solve. ---
    // The scenario's own detection instance becomes a live session; a
    // seeded delta script (stream 19 by workspace convention) mutates it
    // patch by patch. Contracts: an empty dirty set reproduces the
    // previous schedule bit-for-bit at zero cost; every patched schedule
    // is energy-feasible and its value is within the greedy approximation
    // ratio of a from-scratch solve of the *mutated* instance; and when
    // the repair engine decided on a full re-solve, the result IS the
    // scratch solve — identical assignment, not just equal value.
    {
        let mut entry = SessionInstance::from_scenario(&case.scenario)
            .and_then(SessionEntry::solve)
            .map_err(|e| format!("session solve failed: {e}"))?;
        checked += 2;

        let n = entry.instance().n();
        let base_utility = entry.instance().utility();
        let untouched = repair_schedule(
            &base_utility,
            entry.instance().cycle(),
            entry.schedule(),
            &SensorSet::new(n),
            &RepairConfig::default(),
        )
        .map_err(|e| format!("empty-dirty repair failed: {e}"))?;
        if untouched.schedule.assignment() != entry.schedule().assignment()
            || untouched.mode != RepairMode::Incremental
            || untouched.cells_touched != 0
        {
            violations.push(Violation {
                code: CoolCode::SessionRepairMismatch,
                relation: "session-repair-equal",
                detail: format!(
                    "empty dirty set was not a {}-cost bit-for-bit no-op (mode {:?}, {} cells)",
                    0, untouched.mode, untouched.cells_touched
                ),
            });
        }

        let mut delta_rng = SeedSequence::new(case.scenario.seed).nth_rng(19);
        let script_len = 1 + delta_rng.random_range(0..3usize);
        'patches: for step in 0..script_len {
            let delta = random_session_delta(&mut delta_rng, entry.instance());
            let stats = entry
                .patch(&delta, &RepairConfig::default())
                .map_err(|e| format!("session patch `{}` failed: {e}", delta.render()))?;
            let scratch = entry
                .instance()
                .solve()
                .map_err(|e| format!("scratch solve failed: {e}"))?;
            let scratch_value = scratch.period_utility(&entry.instance().utility());
            if !entry.schedule().is_feasible(entry.instance().cycle()) {
                violations.push(Violation {
                    code: CoolCode::SessionRepairMismatch,
                    relation: "session-repair-equal",
                    detail: format!(
                        "step {step} `{}`: repaired schedule is energy-infeasible",
                        delta.render()
                    ),
                });
                break 'patches;
            }
            if stats.value + VALUE_TOL < settings.ratio * scratch_value {
                violations.push(Violation {
                    code: CoolCode::SessionRepairMismatch,
                    relation: "session-repair-equal",
                    detail: format!(
                        "step {step} `{}` ({}): repaired {} < {} × scratch {scratch_value}",
                        delta.render(),
                        stats.mode.as_str(),
                        stats.value,
                        settings.ratio
                    ),
                });
                break 'patches;
            }
            if stats.mode == RepairMode::Full
                && entry.schedule().assignment() != scratch.assignment()
            {
                violations.push(Violation {
                    code: CoolCode::SessionRepairMismatch,
                    relation: "session-repair-equal",
                    detail: format!(
                        "step {step} `{}`: full re-solve diverged from scratch: {:?} vs {:?}",
                        delta.render(),
                        entry.schedule().assignment(),
                        scratch.assignment()
                    ),
                });
                break 'patches;
            }
        }
    }

    Ok(CaseOutcome {
        relations_checked: checked,
        violations,
        tiny: instance.tiny,
        greedy_value,
        lp_value: lp.lp_value,
    })
}

/// The heterogeneous battery run on profile-list cases (see module docs):
/// naive/lazy fleet-greedy equality, concrete per-sensor grid replay, the
/// duty-cycle bound, baseline soundness, a sampled soundness check of the
/// per-sensor abstract interpreter, and — when the drawn palette happens
/// to be cycle-uniform — the homogeneous reduction.
#[allow(clippy::too_many_lines)] // one relation after another, linear and flat
fn check_fleet_case(case: &CheckCase) -> Result<CaseOutcome, String> {
    let instance = case.build_fleet()?;
    let utility = &instance.utility;
    let grid = &instance.grid;
    let mut violations = Vec::new();
    let mut checked = 0usize;

    // --- E020: naive and lazy fleet greedy are interchangeable. ---
    let naive = hetero_greedy_naive(utility, grid).map_err(|e| e.to_string())?;
    let lazy = hetero_greedy_lazy(utility, grid).map_err(|e| e.to_string())?;
    checked += 1;
    if naive.phases() != lazy.phases() {
        violations.push(Violation {
            code: CoolCode::DifferentialMismatch,
            relation: "naive-lazy-equal",
            detail: format!(
                "naive phases {:?} vs lazy {:?}",
                naive.phases(),
                lazy.phases()
            ),
        });
    }
    let greedy = naive.to_grid_schedule();
    let greedy_value = greedy.hyperperiod_utility(utility);

    // --- Per-sensor energy replay through cool-lint. ---
    checked += 1;
    replay(
        &mut violations,
        "schedule-replay",
        "hetero-greedy",
        &lint_grid_schedule(&greedy, grid),
    );

    // --- E021: the duty-cycle upper bound dominates greedy. ---
    let bound = grid_duty_upper_bound(utility, grid);
    checked += 1;
    if greedy_value > bound + VALUE_TOL {
        violations.push(Violation {
            code: CoolCode::OracleBoundViolated,
            relation: "greedy-le-duty",
            detail: format!("greedy {greedy_value} > duty bound {bound}"),
        });
    }

    // --- E029: the literature baselines are sound. ---
    let hef = hef_schedule(utility, &instance.fleet, grid)
        .map_err(|e| e.to_string())?
        .to_grid_schedule();
    let rsc = rsc_schedule(utility, grid).map_err(|e| e.to_string())?;
    let once = set_once_schedule(grid);
    checked += 6; // three baselines × (replay, duty bound)
    for (name, schedule) in [("hef", &hef), ("rsc", &rsc), ("set-once", &once)] {
        check_baseline_sound(&mut violations, name, schedule, grid, utility, bound, None);
    }

    // --- E026: per-sensor abstract interpreter vs. sampled replays. ---
    // Same contract as the homogeneous relation, but every sensor is
    // bisected against its own drain/refill rates (fractions of its own
    // capacity). Stream 17 by workspace convention.
    {
        const REGION_SAMPLES: usize = 4;
        let mut abs_rng = SeedSequence::new(case.scenario.seed).nth_rng(17);
        checked += 1;
        let for_all = proves_grid_feasible_for_all(&greedy, grid, Interval::UNIT);
        let mut regions_all_clean = true;
        'sensors: for sensor in 0..grid.n_sensors() {
            let region = grid_feasible_region(&greedy, grid, sensor);
            if region != FeasibleRegion::All {
                regions_all_clean = false;
            }
            match region {
                FeasibleRegion::All => {
                    for _ in 0..REGION_SAMPLES {
                        let init = abs_rng.random::<f64>();
                        if !grid_sensor_replay_clean(&greedy, grid, sensor, init) {
                            violations.push(Violation {
                                code: CoolCode::AbstractReplayUnsound,
                                relation: "abstract-unsound",
                                detail: format!(
                                    "sensor {sensor}: region is All but concrete replay \
                                     fails from initial charge {init}"
                                ),
                            });
                            break 'sensors;
                        }
                    }
                }
                FeasibleRegion::Above {
                    theta,
                    last_failing,
                } => {
                    for _ in 0..REGION_SAMPLES {
                        let failing = abs_rng.random::<f64>() * last_failing;
                        if grid_sensor_replay_clean(&greedy, grid, sensor, failing) {
                            violations.push(Violation {
                                code: CoolCode::AbstractReplayUnsound,
                                relation: "abstract-unsound",
                                detail: format!(
                                    "sensor {sensor}: {failing} ≤ verified-failing bound \
                                     {last_failing} but the concrete replay succeeds"
                                ),
                            });
                            break 'sensors;
                        }
                        let clean = theta + abs_rng.random::<f64>() * (1.0 - theta);
                        if !grid_sensor_replay_clean(&greedy, grid, sensor, clean) {
                            violations.push(Violation {
                                code: CoolCode::AbstractReplayUnsound,
                                relation: "abstract-unsound",
                                detail: format!(
                                    "sensor {sensor}: {clean} ≥ θ = {theta} but the \
                                     concrete replay fails"
                                ),
                            });
                            break 'sensors;
                        }
                    }
                }
                FeasibleRegion::None => {
                    violations.push(Violation {
                        code: CoolCode::AbstractReplayUnsound,
                        relation: "abstract-unsound",
                        detail: format!(
                            "sensor {sensor}: greedy schedule fails even from a full \
                             battery, yet its replay lint was clean"
                        ),
                    });
                    break 'sensors;
                }
            }
        }
        if for_all && !regions_all_clean {
            violations.push(Violation {
                code: CoolCode::AbstractReplayUnsound,
                relation: "abstract-unsound",
                detail: "interval interpreter proved ∀-feasibility but some sensor's \
                         bisected feasible region excludes low charges"
                    .to_string(),
            });
        }
    }

    // --- E028 when the drawn palette is cycle-uniform. ---
    // Profiles may differ (battery 30 vs 45, or a solar_eff rescale) while
    // inducing the same charge cycle; the schedulers only see the cycles,
    // so the homogeneous reduction must still hold bit-for-bit.
    if let Some(cycle) = instance.fleet.uniform_cycle() {
        let mode = if cycle.rho() > 1.0 {
            ScheduleMode::ActiveSlot
        } else {
            ScheduleMode::PassiveSlot
        };
        let homog = naive_for_mode(utility, cycle.slots_per_period(), mode)?;
        let expected = phases_from_period_schedule(grid, &homog);
        checked += 1;
        if naive.phases() != expected.as_slice() {
            violations.push(Violation {
                code: CoolCode::HeteroReductionMismatch,
                relation: "hetero-homog-reduce",
                detail: format!(
                    "uniform-cycle fleet: homogeneous phases {:?} vs hetero {:?}",
                    expected,
                    naive.phases()
                ),
            });
        }
    }

    Ok(CaseOutcome {
        relations_checked: checked,
        violations,
        tiny: false,
        greedy_value,
        // No LP relaxation runs on the heterogeneous path; the duty-cycle
        // bound is the reported upper envelope.
        lp_value: bound,
    })
}

/// Draws one delta that is valid for the session's current state: sensor
/// toggles respect liveness, target indices stay in range, the last
/// target is never removed, and ρ changes stay on quantised minute pairs
/// spanning both regimes (so period reshapes exercise the full-repair
/// fallback).
fn random_session_delta<R: Rng + ?Sized>(rng: &mut R, instance: &SessionInstance) -> Delta {
    let n = instance.n();
    let targets = instance.targets().len();
    loop {
        match rng.random_range(0..6u32) {
            0 | 1 => {
                // Toggle a random sensor's liveness (the common failure).
                let sensor = rng.random_range(0..n);
                return if instance.alive().contains(SensorId(sensor)) {
                    Delta::RemoveSensor { sensor }
                } else {
                    Delta::AddSensor { sensor }
                };
            }
            2 => {
                return Delta::Reweight {
                    target: rng.random_range(0..targets),
                    p: [0.3, 0.45, 0.6][rng.random_range(0..3usize)],
                }
            }
            3 => {
                let size = 1 + rng.random_range(0..3usize);
                return Delta::AddTarget {
                    p: 0.4,
                    coverage: (0..size).map(|_| rng.random_range(0..n)).collect(),
                };
            }
            4 if targets > 1 => {
                return Delta::RemoveTarget {
                    target: rng.random_range(0..targets),
                }
            }
            5 => {
                let (discharge_minutes, recharge_minutes) =
                    [(15.0, 30.0), (15.0, 45.0), (30.0, 15.0), (15.0, 15.0)]
                        [rng.random_range(0..4usize)];
                return Delta::RhoChange {
                    discharge_minutes,
                    recharge_minutes,
                };
            }
            _ => {} // RemoveTarget drawn with a single target: redraw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_cases;

    #[test]
    fn default_cases_are_clean() {
        for case in generate_cases(42, 12) {
            let outcome = check_case(&case, &OracleSettings::default())
                .unwrap_or_else(|e| panic!("case {} ({}): {e}", case.index, case.family));
            assert!(
                outcome.is_clean(),
                "case {} ({}): {:?}",
                case.index,
                case.family,
                outcome.violations
            );
            assert!(outcome.relations_checked >= 8);
        }
    }

    #[test]
    fn tiny_cases_exercise_the_optimal_relations() {
        let cases = generate_cases(42, 12);
        let outcomes: Vec<CaseOutcome> = cases
            .iter()
            .map(|c| check_case(c, &OracleSettings::default()).unwrap())
            .collect();
        assert!(outcomes.iter().any(|o| o.tiny));
        assert!(outcomes.iter().any(|o| !o.tiny));
    }

    #[test]
    fn impossible_ratio_is_caught_on_tiny_cases() {
        // ratio = 1.01 demands greedy beat the optimum — every tiny case
        // with a non-trivial gap must flag it, proving the relation is live.
        let settings = OracleSettings {
            ratio: 1.01,
            ..OracleSettings::default()
        };
        let flagged = generate_cases(42, 12)
            .iter()
            .filter(|c| c.build().unwrap().tiny)
            .map(|c| check_case(c, &settings).unwrap())
            .any(|o| o.violations.iter().any(|v| v.relation == "greedy-ratio"));
        assert!(flagged, "no tiny case flagged an impossible ratio");
    }

    #[test]
    fn fleet_cases_run_the_hetero_battery_clean() {
        let cases = generate_cases(42, 12);
        let fleet_cases: Vec<_> = cases.iter().filter(|c| c.scenario.has_profiles()).collect();
        assert_eq!(fleet_cases.len(), 3, "every fourth case is a fleet");
        for case in fleet_cases {
            let outcome = check_case(case, &OracleSettings::default())
                .unwrap_or_else(|e| panic!("case {} ({}): {e}", case.index, case.family));
            assert!(
                outcome.is_clean(),
                "case {} ({}): {:?}",
                case.index,
                case.family,
                outcome.violations
            );
            assert!(outcome.relations_checked >= 6);
            assert!(!outcome.tiny, "fleet cases skip the exhaustive oracle");
            assert!(
                outcome.greedy_value <= outcome.lp_value + VALUE_TOL,
                "greedy must sit below the duty envelope"
            );
        }
    }

    #[test]
    fn baseline_sound_relation_is_live() {
        // An always-on "baseline" violates both halves of the contract:
        // the per-sensor replay refuses and the value beats the duty
        // bound. Every resulting violation must carry COOL-E029.
        use cool_energy::ChargeCycle;
        use cool_utility::LinearUtility;
        let fleet = Fleet::uniform_from_cycle(3, ChargeCycle::paper_sunny()).unwrap();
        let grid = FleetGrid::build(&fleet).unwrap();
        let utility = SumUtility::new(vec![LinearUtility::new(vec![1.0; 3]).into()]);
        let bad = cool_core::GridSchedule::new(vec![SensorSet::full(3); grid.hyperperiod()]);
        let bound = grid_duty_upper_bound(&utility, &grid);
        let mut violations = Vec::new();
        check_baseline_sound(&mut violations, "bogus", &bad, &grid, &utility, bound, None);
        assert!(!violations.is_empty());
        assert!(violations
            .iter()
            .all(|v| v.relation == "baseline-sound" && v.code == CoolCode::BaselineUnsound));
    }

    #[test]
    fn violation_renders_code_and_relation() {
        let v = Violation {
            code: CoolCode::OracleBoundViolated,
            relation: "greedy-le-lp",
            detail: "greedy 2 > lp 1".into(),
        };
        assert_eq!(v.to_string(), "COOL-E021 greedy-le-lp: greedy 2 > lp 1");
    }
}
