//! Greedy counterexample shrinking: given a failing case, search for the
//! smallest scenario that still violates the *same* relation, and render it
//! as a reproducible `scenarios/`-format file.
//!
//! The shrinker is a deterministic greedy fixpoint: at each step it tries a
//! fixed list of reductions (fewer sensors, fewer targets, one period,
//! smaller region); a reduction is kept iff the reduced case still fails
//! the same relation. Candidates that fail a *different* relation (or
//! fail to build) are rejected — the minimised file must reproduce the
//! original finding, not merely *a* finding.

use crate::gen::{CheckCase, UtilityFamily};
use crate::oracle::{check_case, OracleSettings};
use cool_scenario::Scenario;

/// Directive key naming the utility family in a counterexample file.
pub const FAMILY_DIRECTIVE: &str = "check_family";
/// Directive key naming the violated relation in a counterexample file.
pub const RELATION_DIRECTIVE: &str = "check_relation";

/// Does `case` still violate `relation`?
fn still_fails(case: &CheckCase, relation: &str, settings: &OracleSettings) -> bool {
    check_case(case, settings).is_ok_and(|o| o.violations.iter().any(|v| v.relation == relation))
}

/// All single-step reductions of a scenario, in the order they are tried
/// (large bites first, then single steps).
fn reductions(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut Scenario)| {
        let mut r = s.clone();
        f(&mut r);
        if r != *s {
            out.push(r);
        }
    };
    if s.sensors > 1 {
        push(&|r| r.sensors = (r.sensors / 2).max(1));
        push(&|r| r.sensors -= 1);
    }
    if s.targets > 1 {
        push(&|r| r.targets = (r.targets / 2).max(1));
        push(&|r| r.targets -= 1);
    }
    // One period is the shortest meaningful horizon.
    let one_period_hours = (s.discharge_minutes + s.recharge_minutes + 1.0) / 60.0;
    if s.hours > one_period_hours {
        push(&|r| r.hours = (r.discharge_minutes + r.recharge_minutes + 1.0) / 60.0);
    }
    if s.region > 100.0 {
        push(&|r| r.region = (r.region / 2.0).max(100.0));
    }
    out
}

/// Greedily shrinks `case` while it keeps violating `relation`. Returns
/// the smallest failing case found (possibly the input itself) and the
/// number of successful reduction steps.
pub fn shrink_case(
    case: &CheckCase,
    relation: &str,
    settings: &OracleSettings,
) -> (CheckCase, usize) {
    debug_assert!(still_fails(case, relation, settings));
    let mut current = case.clone();
    let mut steps = 0usize;
    loop {
        let mut advanced = false;
        for scenario in reductions(&current.scenario) {
            let candidate = CheckCase {
                index: current.index,
                scenario,
                family: current.family,
            };
            if still_fails(&candidate, relation, settings) {
                current = candidate;
                steps += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return (current, steps);
        }
    }
}

/// Renders a shrunk case as a `scenarios/`-format file. The family and
/// relation ride in comment directives [`Scenario::parse`] ignores, so the
/// file is simultaneously a valid scenario and a self-describing
/// counterexample.
pub fn render_counterexample(case: &CheckCase, relation: &str) -> String {
    format!(
        "# cool-check counterexample — reproduce with: cool check --replay <this file>\n\
         # {FAMILY_DIRECTIVE} = {}\n\
         # {RELATION_DIRECTIVE} = {}\n\
         {}",
        case.family.slug(),
        relation,
        case.scenario.canonical()
    )
}

/// Parses a counterexample file back into a case plus the relation it
/// reproduces (`None` when the file carries no relation directive — plain
/// scenario files are accepted and checked against every relation).
///
/// # Errors
///
/// Returns a rendered message for an unparsable scenario or an unknown
/// family slug.
pub fn parse_counterexample(text: &str) -> Result<(CheckCase, Option<String>), String> {
    let scenario = Scenario::parse(text).map_err(|e| e.to_string())?;
    let mut family = UtilityFamily::Detection;
    let mut relation = None;
    for line in text.lines() {
        let Some(comment) = line.trim().strip_prefix('#') else {
            continue;
        };
        let Some((key, value)) = comment.split_once('=') else {
            continue;
        };
        match key.trim() {
            FAMILY_DIRECTIVE => family = value.trim().parse()?,
            RELATION_DIRECTIVE => relation = Some(value.trim().to_string()),
            _ => {}
        }
    }
    Ok((
        CheckCase {
            index: 0,
            scenario,
            family,
        },
        relation,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_cases;

    #[test]
    fn counterexample_round_trips() {
        let case = &generate_cases(9, 5)[4];
        let text = render_counterexample(case, "greedy-ratio");
        let (parsed, relation) = parse_counterexample(&text).unwrap();
        assert_eq!(parsed.scenario, case.scenario);
        assert_eq!(parsed.family, case.family);
        assert_eq!(relation.as_deref(), Some("greedy-ratio"));
    }

    #[test]
    fn plain_scenario_files_are_accepted() {
        let (case, relation) = parse_counterexample("sensors = 5\nseed = 3\n").unwrap();
        assert_eq!(case.scenario.sensors, 5);
        assert_eq!(case.family, UtilityFamily::Detection);
        assert!(relation.is_none());
    }

    #[test]
    fn unknown_family_directive_is_an_error() {
        let err = parse_counterexample("# check_family = quantum\nsensors = 5\n").unwrap_err();
        assert!(err.contains("quantum"));
    }

    #[test]
    fn shrinker_minimises_an_impossible_ratio_failure() {
        // ratio > 1 fails on (almost) every tiny case, so the shrinker has
        // room to bite: it must reach a strictly smaller scenario and every
        // intermediate acceptance must preserve the failing relation.
        let settings = OracleSettings {
            ratio: 1.01,
            ..OracleSettings::default()
        };
        let case = generate_cases(42, 12)
            .into_iter()
            .filter(|c| c.build().unwrap().tiny)
            .find(|c| {
                check_case(c, &settings)
                    .is_ok_and(|o| o.violations.iter().any(|v| v.relation == "greedy-ratio"))
            })
            .expect("an impossible ratio must fail somewhere");
        let (small, steps) = shrink_case(&case, "greedy-ratio", &settings);
        assert!(still_fails(&small, "greedy-ratio", &settings));
        assert!(small.scenario.sensors <= case.scenario.sensors);
        assert!(steps == 0 || small.scenario != case.scenario);
        // Fixpoint: no reduction of the result still fails.
        for scenario in reductions(&small.scenario) {
            let candidate = CheckCase {
                index: 0,
                scenario,
                family: small.family,
            };
            assert!(!still_fails(&candidate, "greedy-ratio", &settings));
        }
    }
}
