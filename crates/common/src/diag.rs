//! The stable `COOL-Exxx` / `COOL-Wxxx` diagnostic code table.
//!
//! Every machine-readable diagnostic the workspace emits — from the
//! `cool-lint` static analyser, from typed scheduler errors in `cool-core`,
//! or from the `cool-testbed` simulation pre-flight — carries one of these
//! codes. The table is append-only: codes are never renumbered or reused,
//! so downstream tooling can match on them across releases.
//!
//! `E` codes are errors (the input is rejected); `W` codes are warnings
//! (the input is suspicious but simulable).

use std::fmt;

/// A stable diagnostic code.
///
/// # Examples
///
/// ```
/// use cool_common::CoolCode;
///
/// assert_eq!(CoolCode::InfeasiblePeriodStructure.as_str(), "COOL-E001");
/// assert_eq!(CoolCode::InfeasiblePeriodStructure.name(), "infeasible-period-structure");
/// assert!(CoolCode::InfeasiblePeriodStructure.is_error());
/// assert!(!CoolCode::UnknownScenarioKey.is_error());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CoolCode {
    /// COOL-E001: a schedule's slot/period/mode structure contradicts `ρ`
    /// (e.g. `ρ > 1` but a sensor is active in more than one slot per
    /// period, or the slot count differs from the cycle's `T`).
    InfeasiblePeriodStructure,
    /// COOL-E002: a schedule over zero slots was requested.
    EmptySlotCount,
    /// COOL-E003: a sensor is activated in more slots per period than its
    /// energy budget allows.
    ActivationBudgetExceeded,
    /// COOL-E004: replaying the schedule against the battery state machine
    /// found an activation the battery cannot honour.
    EnergyInfeasibleSchedule,
    /// COOL-E005: a detection probability is NaN, negative, or above 1.
    InvalidProbability,
    /// COOL-E006: a sensing disk is degenerate (non-positive or non-finite
    /// radius, or a non-finite centre).
    DegenerateSensingDisk,
    /// COOL-E007: a scenario field holds an out-of-range or unparsable
    /// value.
    ScenarioFieldInvalid,
    /// COOL-E008: a scenario line is not `key = value` or a comment.
    ScenarioLineMalformed,
    /// COOL-E009: a utility function decreased when its argument set grew.
    NonMonotoneUtility,
    /// COOL-E010: a utility function violated diminishing returns — the
    /// greedy `½`-approximation (and the `1 − 1/e` regime) would be void.
    NonSubmodularUtility,
    /// COOL-E011: `U(∅) ≠ 0`.
    NonNormalizedUtility,
    /// COOL-E012: neither `ρ` nor `1/ρ` is an integer, so the charging
    /// period does not decompose into equal slots.
    NonIntegralRho,
    /// COOL-E013: a charge/discharge duration is zero, negative, or not
    /// finite.
    NonPositiveDuration,
    /// COOL-E014: the working time spans zero whole charging periods.
    DegenerateHorizon,
    /// COOL-E015: a utility evaluation returned NaN or an infinity.
    NonFiniteUtility,
    /// COOL-E016: a utility universe does not match the sensor count it is
    /// used with.
    UniverseMismatch,
    /// COOL-E017: a service request exceeded its wall-clock budget and was
    /// abandoned (HTTP 408 in `cool-serve`).
    RequestTimeout,
    /// COOL-E018: the service's bounded work queue is full and the request
    /// was shed (HTTP 429 in `cool-serve`).
    ServiceOverloaded,
    /// COOL-E019: a service request body is not valid JSON, misses a
    /// required field, or names an unknown algorithm (HTTP 400).
    MalformedRequest,
    /// COOL-E020: two scheduler implementations required to agree exactly
    /// (naive vs lazy greedy, including tie-break order) produced different
    /// schedules on the same instance.
    DifferentialMismatch,
    /// COOL-E021: a proven dominance or bound relation between schedulers
    /// was violated (e.g. a rounded schedule above its LP relaxation, or
    /// greedy below its approximation factor of the exhaustive optimum).
    OracleBoundViolated,
    /// COOL-E022: a value-preserving transformation (sensor relabeling,
    /// slot rotation, uniform weight scaling) changed a schedule's value.
    MetamorphicVariance,
    /// COOL-E023: the serving daemon violated its fault-handling contract —
    /// a fault probe got no typed `COOL` status, or a fault corrupted the
    /// schedule cache.
    FaultContractViolated,
    /// COOL-E024: the sparse (incidence-indexed) and dense utility
    /// evaluators diverged — a gain/loss/value disagreed beyond the pinned
    /// tolerance, or a sensor outside a part's support reported a nonzero
    /// marginal gain.
    EvaluatorDivergence,
    /// COOL-W001: an unknown scenario key (ignored by the parser).
    UnknownScenarioKey,
    /// COOL-W002: a scenario key assigned more than once (last wins).
    DuplicateScenarioKey,
    /// COOL-W003: the sensing radius covers the whole region — coverage is
    /// trivially complete and the instance degenerates.
    DiskCoversRegion,
    /// COOL-W004: a target no sensor can ever observe.
    UnreachableTarget,
    /// COOL-W005: a target (utility part) whose weight or attainable value
    /// is zero — it cannot influence scheduling.
    ZeroWeightTarget,
    /// COOL-W006: a sensor deployed outside the declared region.
    SensorOutsideRegion,
    /// COOL-E025: the interval abstract interpreter proved the schedule
    /// energy-infeasible for some initial battery charge in the audited
    /// interval (a strict generalisation of the single-trajectory
    /// COOL-E004 replay, which starts from a full battery).
    AbstractEnergyInfeasible,
    /// COOL-E026: the abstract energy replay is unsound against the
    /// concrete automaton — a sampled initial charge inside a reported
    /// infeasible sub-interval replayed cleanly, or one inside the proven
    /// feasible region failed (emitted by the `cool-check` differential
    /// harness, never by the analyser itself).
    AbstractReplayUnsound,
    /// COOL-W007: a sensor whose incident utility parts are a subset of
    /// another sensor's with pointwise no-larger contributions (and no
    /// better energy position) — it can never beat its dominator.
    DominatedSensor,
    /// COOL-W008: a slot in which no sensor is active — the structure
    /// (e.g. fewer sensors than slots under `ρ ≥ 1`) leaves it statically
    /// dead and coverage drops to zero there.
    StaticallyDeadSlot,
    /// COOL-W009: a slot's active set is coverage-complete but disconnected
    /// under the communication radius — detections cannot be relayed
    /// (coverage implies connectivity only when `comms_radius ≥ 2 ×`
    /// sensing radius, Khasteh et al.).
    DisconnectedCover,
    /// COOL-E027: warm-start session repair diverged from a from-scratch
    /// solve — an empty delta did not reproduce the stored schedule
    /// bit-for-bit, or a patched schedule fell below the approximation
    /// bound of (or was infeasible against) a from-scratch solve of the
    /// mutated instance.
    SessionRepairMismatch,
    /// COOL-E028: a heterogeneous-fleet instance whose per-sensor profiles
    /// are all identical did not reduce bit-for-bit to the homogeneous
    /// scheduling path (LCM-grid schedule differs from the uniform-slot
    /// schedule under the canonical phase mapping).
    HeteroReductionMismatch,
    /// COOL-E029: a literature baseline (RSC, Set-Once Strip Cover, HEF)
    /// produced a schedule that is energy-infeasible under replay or whose
    /// value exceeds a proven upper bound.
    BaselineUnsound,
}

impl CoolCode {
    /// The stable code string, e.g. `"COOL-E001"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CoolCode::InfeasiblePeriodStructure => "COOL-E001",
            CoolCode::EmptySlotCount => "COOL-E002",
            CoolCode::ActivationBudgetExceeded => "COOL-E003",
            CoolCode::EnergyInfeasibleSchedule => "COOL-E004",
            CoolCode::InvalidProbability => "COOL-E005",
            CoolCode::DegenerateSensingDisk => "COOL-E006",
            CoolCode::ScenarioFieldInvalid => "COOL-E007",
            CoolCode::ScenarioLineMalformed => "COOL-E008",
            CoolCode::NonMonotoneUtility => "COOL-E009",
            CoolCode::NonSubmodularUtility => "COOL-E010",
            CoolCode::NonNormalizedUtility => "COOL-E011",
            CoolCode::NonIntegralRho => "COOL-E012",
            CoolCode::NonPositiveDuration => "COOL-E013",
            CoolCode::DegenerateHorizon => "COOL-E014",
            CoolCode::NonFiniteUtility => "COOL-E015",
            CoolCode::UniverseMismatch => "COOL-E016",
            CoolCode::RequestTimeout => "COOL-E017",
            CoolCode::ServiceOverloaded => "COOL-E018",
            CoolCode::MalformedRequest => "COOL-E019",
            CoolCode::DifferentialMismatch => "COOL-E020",
            CoolCode::OracleBoundViolated => "COOL-E021",
            CoolCode::MetamorphicVariance => "COOL-E022",
            CoolCode::FaultContractViolated => "COOL-E023",
            CoolCode::EvaluatorDivergence => "COOL-E024",
            CoolCode::AbstractEnergyInfeasible => "COOL-E025",
            CoolCode::AbstractReplayUnsound => "COOL-E026",
            CoolCode::UnknownScenarioKey => "COOL-W001",
            CoolCode::DuplicateScenarioKey => "COOL-W002",
            CoolCode::DiskCoversRegion => "COOL-W003",
            CoolCode::UnreachableTarget => "COOL-W004",
            CoolCode::ZeroWeightTarget => "COOL-W005",
            CoolCode::SensorOutsideRegion => "COOL-W006",
            CoolCode::DominatedSensor => "COOL-W007",
            CoolCode::StaticallyDeadSlot => "COOL-W008",
            CoolCode::DisconnectedCover => "COOL-W009",
            CoolCode::SessionRepairMismatch => "COOL-E027",
            CoolCode::HeteroReductionMismatch => "COOL-E028",
            CoolCode::BaselineUnsound => "COOL-E029",
        }
    }

    /// The human-readable slug, e.g. `"infeasible-period-structure"`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CoolCode::InfeasiblePeriodStructure => "infeasible-period-structure",
            CoolCode::EmptySlotCount => "empty-slot-count",
            CoolCode::ActivationBudgetExceeded => "activation-budget-exceeded",
            CoolCode::EnergyInfeasibleSchedule => "energy-infeasible-schedule",
            CoolCode::InvalidProbability => "invalid-probability",
            CoolCode::DegenerateSensingDisk => "degenerate-sensing-disk",
            CoolCode::ScenarioFieldInvalid => "scenario-field-invalid",
            CoolCode::ScenarioLineMalformed => "scenario-line-malformed",
            CoolCode::NonMonotoneUtility => "non-monotone-utility",
            CoolCode::NonSubmodularUtility => "non-submodular-utility",
            CoolCode::NonNormalizedUtility => "non-normalized-utility",
            CoolCode::NonIntegralRho => "non-integral-rho",
            CoolCode::NonPositiveDuration => "non-positive-duration",
            CoolCode::DegenerateHorizon => "degenerate-horizon",
            CoolCode::NonFiniteUtility => "non-finite-utility",
            CoolCode::UniverseMismatch => "universe-mismatch",
            CoolCode::RequestTimeout => "request-timeout",
            CoolCode::ServiceOverloaded => "service-overloaded",
            CoolCode::MalformedRequest => "malformed-request",
            CoolCode::DifferentialMismatch => "differential-mismatch",
            CoolCode::OracleBoundViolated => "oracle-bound-violated",
            CoolCode::MetamorphicVariance => "metamorphic-variance",
            CoolCode::FaultContractViolated => "fault-contract-violated",
            CoolCode::EvaluatorDivergence => "evaluator-divergence",
            CoolCode::AbstractEnergyInfeasible => "abstract-energy-infeasible",
            CoolCode::AbstractReplayUnsound => "abstract-unsound",
            CoolCode::UnknownScenarioKey => "unknown-scenario-key",
            CoolCode::DuplicateScenarioKey => "duplicate-scenario-key",
            CoolCode::DiskCoversRegion => "disk-covers-region",
            CoolCode::UnreachableTarget => "unreachable-target",
            CoolCode::ZeroWeightTarget => "zero-weight-target",
            CoolCode::SensorOutsideRegion => "sensor-outside-region",
            CoolCode::DominatedSensor => "dominated-sensor",
            CoolCode::StaticallyDeadSlot => "statically-dead-slot",
            CoolCode::DisconnectedCover => "disconnected-cover",
            CoolCode::SessionRepairMismatch => "session-repair-mismatch",
            CoolCode::HeteroReductionMismatch => "hetero-reduction-mismatch",
            CoolCode::BaselineUnsound => "baseline-unsound",
        }
    }

    /// A one-line, instance-independent human summary of what the code
    /// means — the `shortDescription` of the SARIF rule and the `summary`
    /// field of the JSON diagnostics, so both renderings draw from the
    /// same table.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            CoolCode::InfeasiblePeriodStructure => {
                "schedule slot/period/mode structure contradicts the charge ratio rho"
            }
            CoolCode::EmptySlotCount => "schedule or horizon spans zero slots",
            CoolCode::ActivationBudgetExceeded => {
                "sensor activated more often per period than its energy budget sustains"
            }
            CoolCode::EnergyInfeasibleSchedule => {
                "battery replay found an activation the battery cannot honour"
            }
            CoolCode::InvalidProbability => "detection probability outside [0, 1] or not finite",
            CoolCode::DegenerateSensingDisk => {
                "sensing disk has a non-positive or non-finite radius"
            }
            CoolCode::ScenarioFieldInvalid => {
                "scenario field holds an out-of-range or unparsable value"
            }
            CoolCode::ScenarioLineMalformed => "scenario line is not `key = value` or a comment",
            CoolCode::NonMonotoneUtility => "utility decreased when its argument set grew",
            CoolCode::NonSubmodularUtility => "utility violated diminishing returns",
            CoolCode::NonNormalizedUtility => "utility of the empty set is not zero",
            CoolCode::NonIntegralRho => "neither rho nor 1/rho is an integer",
            CoolCode::NonPositiveDuration => {
                "charge/discharge duration is zero, negative, or not finite"
            }
            CoolCode::DegenerateHorizon => "working time spans zero whole charging periods",
            CoolCode::NonFiniteUtility => "utility evaluation returned NaN or an infinity",
            CoolCode::UniverseMismatch => "utility universe does not match the sensor count",
            CoolCode::RequestTimeout => "service request exceeded its wall-clock budget",
            CoolCode::ServiceOverloaded => "service work queue is full; request shed",
            CoolCode::MalformedRequest => {
                "service request body is malformed or names an unknown algorithm"
            }
            CoolCode::DifferentialMismatch => {
                "two schedulers required to agree produced different schedules"
            }
            CoolCode::OracleBoundViolated => {
                "a proven dominance or bound relation between schedulers failed"
            }
            CoolCode::MetamorphicVariance => {
                "a value-preserving transformation changed a schedule's value"
            }
            CoolCode::FaultContractViolated => {
                "the serving daemon violated its fault-handling contract"
            }
            CoolCode::EvaluatorDivergence => "sparse and dense utility evaluators diverged",
            CoolCode::AbstractEnergyInfeasible => {
                "interval replay proved the schedule infeasible for some initial charge"
            }
            CoolCode::AbstractReplayUnsound => {
                "abstract energy replay contradicted a concrete battery replay"
            }
            CoolCode::UnknownScenarioKey => "unknown scenario key (ignored)",
            CoolCode::DuplicateScenarioKey => "scenario key assigned more than once; last wins",
            CoolCode::DiskCoversRegion => {
                "sensing radius covers the whole region; geometry degenerates"
            }
            CoolCode::UnreachableTarget => "target no sensor can ever observe",
            CoolCode::ZeroWeightTarget => "target whose weight or attainable value is zero",
            CoolCode::SensorOutsideRegion => "sensor deployed outside the declared region",
            CoolCode::DominatedSensor => {
                "sensor covered pointwise by another sensor with the same energy position"
            }
            CoolCode::StaticallyDeadSlot => {
                "slot in which no sensor is active; coverage is zero there"
            }
            CoolCode::DisconnectedCover => {
                "active set is coverage-complete but disconnected under the communication radius"
            }
            CoolCode::SessionRepairMismatch => {
                "warm-start session repair diverged from a from-scratch solve"
            }
            CoolCode::HeteroReductionMismatch => {
                "uniform-profile fleet did not reduce bit-for-bit to the homogeneous path"
            }
            CoolCode::BaselineUnsound => {
                "baseline schedule is energy-infeasible or exceeds a proven upper bound"
            }
        }
    }

    /// `true` for `COOL-E` codes, `false` for `COOL-W` codes.
    #[must_use]
    pub fn is_error(self) -> bool {
        self.as_str().starts_with("COOL-E")
    }

    /// Every defined code, in numbering order — the source of truth for the
    /// documentation table and the exhaustiveness tests.
    #[must_use]
    pub fn all() -> &'static [CoolCode] {
        &[
            CoolCode::InfeasiblePeriodStructure,
            CoolCode::EmptySlotCount,
            CoolCode::ActivationBudgetExceeded,
            CoolCode::EnergyInfeasibleSchedule,
            CoolCode::InvalidProbability,
            CoolCode::DegenerateSensingDisk,
            CoolCode::ScenarioFieldInvalid,
            CoolCode::ScenarioLineMalformed,
            CoolCode::NonMonotoneUtility,
            CoolCode::NonSubmodularUtility,
            CoolCode::NonNormalizedUtility,
            CoolCode::NonIntegralRho,
            CoolCode::NonPositiveDuration,
            CoolCode::DegenerateHorizon,
            CoolCode::NonFiniteUtility,
            CoolCode::UniverseMismatch,
            CoolCode::RequestTimeout,
            CoolCode::ServiceOverloaded,
            CoolCode::MalformedRequest,
            CoolCode::DifferentialMismatch,
            CoolCode::OracleBoundViolated,
            CoolCode::MetamorphicVariance,
            CoolCode::FaultContractViolated,
            CoolCode::EvaluatorDivergence,
            CoolCode::AbstractEnergyInfeasible,
            CoolCode::AbstractReplayUnsound,
            CoolCode::UnknownScenarioKey,
            CoolCode::DuplicateScenarioKey,
            CoolCode::DiskCoversRegion,
            CoolCode::UnreachableTarget,
            CoolCode::ZeroWeightTarget,
            CoolCode::SensorOutsideRegion,
            CoolCode::DominatedSensor,
            CoolCode::StaticallyDeadSlot,
            CoolCode::DisconnectedCover,
            CoolCode::SessionRepairMismatch,
            CoolCode::HeteroReductionMismatch,
            CoolCode::BaselineUnsound,
        ]
    }
}

impl fmt::Display for CoolCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.as_str(), self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = HashSet::new();
        let mut names = HashSet::new();
        for &code in CoolCode::all() {
            let s = code.as_str();
            assert!(
                s.starts_with("COOL-E") || s.starts_with("COOL-W"),
                "malformed code {s}"
            );
            assert_eq!(
                s.len(),
                "COOL-E001".len(),
                "code {s} must be zero-padded to 3 digits"
            );
            assert!(seen.insert(s), "duplicate code {s}");
            assert!(names.insert(code.name()), "duplicate name {}", code.name());
            assert!(code
                .name()
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }

    #[test]
    fn errors_and_warnings_split() {
        assert!(CoolCode::EnergyInfeasibleSchedule.is_error());
        assert!(!CoolCode::ZeroWeightTarget.is_error());
        let errors = CoolCode::all().iter().filter(|c| c.is_error()).count();
        let warnings = CoolCode::all().iter().filter(|c| !c.is_error()).count();
        assert_eq!(errors, 29);
        assert_eq!(warnings, 9);
    }

    #[test]
    fn every_code_has_a_nonempty_summary() {
        for &code in CoolCode::all() {
            let s = code.summary();
            assert!(!s.is_empty(), "{code} has no summary");
            assert!(!s.contains('\n'), "{code} summary must be one line");
            assert!(s.len() < 100, "{code} summary too long for a rule table");
        }
    }

    #[test]
    fn display_combines_code_and_name() {
        let text = CoolCode::NonSubmodularUtility.to_string();
        assert!(text.contains("COOL-E010") && text.contains("non-submodular-utility"));
    }
}
