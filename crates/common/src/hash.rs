//! Stable, portable content hashing.
//!
//! `std::collections::hash_map::DefaultHasher` is explicitly *not*
//! guaranteed to produce the same digests across Rust releases, so anything
//! that persists or compares hashes over time — the `cool-serve` schedule
//! cache keys, golden files, sharding decisions — must not use it. This
//! module pins the 64-bit FNV-1a function instead: trivially simple, well
//! distributed for short keys, and byte-for-byte identical everywhere.

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
///
/// # Examples
///
/// ```
/// use cool_common::hash::fnv1a_64;
///
/// // Stable across processes, platforms, and Rust releases.
/// assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
/// assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
/// assert_ne!(fnv1a_64(b"sensors=100"), fnv1a_64(b"seed=100"));
/// ```
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// An incremental FNV-1a hasher for multi-part keys.
///
/// Feeding parts one by one is equivalent to feeding their concatenation,
/// so callers that need injective multi-field keys should interpose an
/// explicit separator via [`StableHasher::write_sep`].
///
/// # Examples
///
/// ```
/// use cool_common::hash::{fnv1a_64, StableHasher};
///
/// let mut h = StableHasher::new();
/// h.write(b"scenario");
/// h.write_sep();
/// h.write(b"greedy");
/// assert_ne!(h.finish(), fnv1a_64(b"scenariogreedy"));
/// ```
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feeds `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a field separator that cannot appear in UTF-8 text (byte
    /// `0xFF`), making `("ab","c")` hash differently from `("a","bc")`.
    pub fn write_sep(&mut self) {
        self.write(&[0xff]);
    }

    /// Feeds an integer in fixed-width little-endian form.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// The current digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = StableHasher::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
    }

    #[test]
    fn separator_distinguishes_field_splits() {
        let digest = |a: &[u8], b: &[u8]| {
            let mut h = StableHasher::new();
            h.write(a);
            h.write_sep();
            h.write(b);
            h.finish()
        };
        assert_ne!(digest(b"ab", b"c"), digest(b"a", b"bc"));
    }

    #[test]
    fn u64_fields_are_fixed_width() {
        let mut a = StableHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = StableHasher::new();
        b.write(&1u64.to_le_bytes());
        b.write(&2u64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
        let mut c = StableHasher::new();
        c.write_u64(2);
        c.write_u64(1);
        assert_ne!(a.finish(), c.finish());
    }
}
