//! Typed index newtypes.
//!
//! The scheduling model juggles three kinds of indices — sensors `v_i`,
//! targets `O_j` and time slots `t_k` — that are all "small integers".
//! Newtypes keep them from being confused ([C-NEWTYPE]) while staying
//! zero-cost.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

/// Index of a sensor node `v_i` in the deployment, `0..n`.
///
/// # Examples
///
/// ```
/// use cool_common::SensorId;
/// let v = SensorId(4);
/// assert_eq!(v.index(), 4);
/// assert_eq!(v.to_string(), "v4");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SensorId(pub usize);

/// Index of a monitored target `O_j`, `0..m`.
///
/// # Examples
///
/// ```
/// use cool_common::TargetId;
/// assert_eq!(TargetId(0).to_string(), "O0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TargetId(pub usize);

/// Index of a time slot within the working time `L` (or within one charging
/// period `T`, depending on context — the owner documents which).
///
/// # Examples
///
/// ```
/// use cool_common::SlotId;
/// assert_eq!(SlotId(2).to_string(), "t2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SlotId(pub usize);

/// Index of a subregion `A_i` in the arrangement of sensing regions
/// (Fig. 3(b) of the paper).
///
/// # Examples
///
/// ```
/// use cool_common::SubregionId;
/// assert_eq!(SubregionId(7).to_string(), "A7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SubregionId(pub usize);

macro_rules! impl_id {
    ($ty:ident, $prefix:literal) => {
        impl $ty {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $ty {
            #[inline]
            fn from(value: usize) -> Self {
                $ty(value)
            }
        }

        impl From<$ty> for usize {
            #[inline]
            fn from(value: $ty) -> usize {
                value.0
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

impl_id!(SensorId, "v");
impl_id!(TargetId, "O");
impl_id!(SlotId, "t");
impl_id!(SubregionId, "A");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_usize() {
        let v: SensorId = 12usize.into();
        assert_eq!(usize::from(v), 12);
        let o: TargetId = 3usize.into();
        assert_eq!(o.index(), 3);
        let t: SlotId = 9usize.into();
        assert_eq!(t.index(), 9);
        let a: SubregionId = 1usize.into();
        assert_eq!(a.index(), 1);
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(SensorId(1).to_string(), "v1");
        assert_eq!(TargetId(2).to_string(), "O2");
        assert_eq!(SlotId(3).to_string(), "t3");
        assert_eq!(SubregionId(4).to_string(), "A4");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(SensorId(1) < SensorId(2));
        assert!(SlotId(0) < SlotId(10));
    }

    #[test]
    fn ids_are_distinct_types() {
        // Compile-time property: SensorId and TargetId cannot be compared.
        // (This test documents intent; the type system enforces it.)
        fn takes_sensor(_: SensorId) {}
        takes_sensor(SensorId(0));
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", SensorId::default()).is_empty());
    }
}
