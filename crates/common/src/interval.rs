//! A closed-interval domain `[lo, hi] ⊆ ℝ` for abstract interpretation.
//!
//! The battery automaton of §II-B operates on a normalised charge fraction
//! in `[0, 1]`; the abstract energy interpreter in `cool-lint` replays a
//! schedule over a *set* of battery states represented as one closed
//! interval. The operations here are the sound counterparts of the concrete
//! arithmetic: for every concrete point `x ∈ I` and shift `d`,
//! `x + d ∈ I.shift(d)`, `clamp(x, a, b) ∈ I.clamp(a, b)`, and joins only
//! ever grow the set (`I ⊆ I.join(J)`).
//!
//! # Examples
//!
//! ```
//! use cool_common::Interval;
//!
//! let charge = Interval::UNIT;           // every initial battery state
//! let drained = charge.shift(-0.25).clamp(0.0, 1.0);
//! assert!(drained.contains(0.0));
//! assert!(drained.contains(0.75));
//! assert!(!drained.contains(0.76));
//! ```

use std::fmt;

/// A non-empty closed interval `[lo, hi]` with finite endpoints.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// The unit interval `[0, 1]` — every normalised battery state.
    pub const UNIT: Interval = Interval { lo: 0.0, hi: 1.0 };

    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when the endpoints are not finite or `lo > hi` — an empty or
    /// ill-formed interval is a caller bug, not a representable state.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "ill-formed interval [{lo}, {hi}]"
        );
        Interval { lo, hi }
    }

    /// The degenerate interval `[x, x]`.
    ///
    /// # Panics
    ///
    /// Panics when `x` is not finite.
    #[must_use]
    pub fn point(x: f64) -> Self {
        Interval::new(x, x)
    }

    /// Lower endpoint.
    #[must_use]
    pub fn lo(self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    #[must_use]
    pub fn hi(self) -> f64 {
        self.hi
    }

    /// `hi − lo`.
    #[must_use]
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// `true` when `lo == hi`.
    #[must_use]
    pub fn is_point(self) -> bool {
        self.lo == self.hi
    }

    /// The arithmetic midpoint, computed without overflow.
    #[must_use]
    pub fn midpoint(self) -> f64 {
        self.lo + (self.hi - self.lo) / 2.0
    }

    /// `x ∈ [lo, hi]`.
    #[must_use]
    pub fn contains(self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// `other ⊆ self`.
    #[must_use]
    pub fn contains_interval(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Translates both endpoints by `d` — the abstract counterpart of a
    /// fixed charge or discharge applied to every state in the set.
    ///
    /// # Panics
    ///
    /// Panics when `d` is not finite.
    #[must_use]
    pub fn shift(self, d: f64) -> Self {
        Interval::new(self.lo + d, self.hi + d)
    }

    /// Clamps both endpoints into `[min, max]` — the abstract counterpart
    /// of battery depletion (floor) and refill (ceiling).
    ///
    /// # Panics
    ///
    /// Panics when `min > max` or either bound is not finite.
    #[must_use]
    pub fn clamp(self, min: f64, max: f64) -> Self {
        assert!(
            min.is_finite() && max.is_finite() && min <= max,
            "ill-formed clamp range [{min}, {max}]"
        );
        Interval::new(self.lo.clamp(min, max), self.hi.clamp(min, max))
    }

    /// The convex hull of both intervals — the smallest interval containing
    /// every state of either. Joining is how the abstract interpreter stays
    /// sound when a transition's branches diverge.
    #[must_use]
    pub fn join(self, other: Interval) -> Self {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The intersection, or `None` when the intervals are disjoint.
    #[must_use]
    pub fn meet(self, other: Interval) -> Option<Self> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let i = Interval::new(0.25, 0.75);
        assert_eq!(i.lo(), 0.25);
        assert_eq!(i.hi(), 0.75);
        assert_eq!(i.width(), 0.5);
        assert_eq!(i.midpoint(), 0.5);
        assert!(!i.is_point());
        assert!(Interval::point(0.3).is_point());
    }

    #[test]
    #[should_panic(expected = "ill-formed interval")]
    fn inverted_endpoints_panic() {
        let _ = Interval::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "ill-formed interval")]
    fn nan_endpoint_panics() {
        let _ = Interval::new(f64::NAN, 1.0);
    }

    #[test]
    fn shift_and_clamp_model_charge_arithmetic() {
        let i = Interval::new(0.2, 0.9).shift(0.3).clamp(0.0, 1.0);
        assert_eq!(i, Interval::new(0.5, 1.0));
        let d = Interval::new(0.2, 0.9).shift(-0.5).clamp(0.0, 1.0);
        assert_eq!(d, Interval::new(0.0, 0.4));
    }

    #[test]
    fn join_is_the_convex_hull() {
        let a = Interval::new(0.0, 0.3);
        let b = Interval::new(0.6, 1.0);
        let j = a.join(b);
        assert_eq!(j, Interval::UNIT);
        assert!(j.contains_interval(a) && j.contains_interval(b));
        assert_eq!(a.join(a), a, "join is idempotent");
    }

    #[test]
    fn meet_is_the_intersection() {
        let a = Interval::new(0.0, 0.5);
        let b = Interval::new(0.3, 1.0);
        assert_eq!(a.meet(b), Some(Interval::new(0.3, 0.5)));
        assert_eq!(a.meet(Interval::new(0.6, 1.0)), None);
        assert_eq!(
            a.meet(Interval::new(0.5, 1.0)),
            Some(Interval::point(0.5)),
            "touching endpoints meet in a point"
        );
    }

    #[test]
    fn display_renders_both_endpoints() {
        assert_eq!(Interval::new(0.0, 0.5).to_string(), "[0, 0.5]");
    }
}
