//! Hot-path invariant checks that CI can promote to hard assertions.
//!
//! The schedulers carry correctness invariants (monotone gains, CELF
//! staleness, LP probability rows) that are too hot to assert in release
//! builds but too valuable to only ever check in `debug_assertions`
//! builds. [`invariant!`] is `debug_assert!` by default and becomes a hard
//! `assert!` — in **every** profile, including `--release` — when
//! `cool-common` is built with the `hard-invariants` cargo feature. CI runs
//! a dedicated lane with the feature enabled so the release-optimised code
//! paths are exercised with the invariants live.

/// `true` when the `hard-invariants` feature is enabled on `cool-common`.
///
/// Exposed as a `const` (rather than gating the macro body on the consumer
/// crate's own features) so one feature flag on `cool-common` switches every
/// crate in the workspace at once.
pub const HARD_INVARIANTS: bool = cfg!(feature = "hard-invariants");

/// Asserts a scheduler invariant: `debug_assert!` in ordinary builds, a
/// hard `assert!` when `cool-common`'s `hard-invariants` feature is on.
///
/// # Examples
///
/// ```
/// use cool_common::invariant;
///
/// let gain = 0.25_f64;
/// invariant!(gain >= -1e-9, "monotone utility produced negative gain {gain}");
/// ```
#[macro_export]
macro_rules! invariant {
    ($($arg:tt)*) => {
        if $crate::HARD_INVARIANTS {
            assert!($($arg)*);
        } else {
            debug_assert!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn passing_invariant_is_silent() {
        invariant!(1 + 1 == 2, "arithmetic holds");
    }

    #[test]
    #[cfg_attr(
        not(any(debug_assertions, feature = "hard-invariants")),
        ignore = "invariants compiled out in plain release builds"
    )]
    #[should_panic(expected = "deliberate")]
    fn failing_invariant_panics_when_checked() {
        invariant!(false, "deliberate");
    }
}
