//! Dependency-free JSON: RFC 8259 string escaping, a [`Value`] tree, and a
//! recursive-descent parser.
//!
//! The workspace talks JSON in two places — `cool-lint` renders reports for
//! tooling, and `cool-serve` speaks a JSON request/response protocol — and
//! the offline build cannot pull `serde`. This module is the shared
//! minimal implementation: strict enough for the service protocol
//! (rejects trailing garbage, duplicate handling is last-wins like most
//! parsers), small enough to audit.
//!
//! # Examples
//!
//! ```
//! use cool_common::json::{parse, Value};
//!
//! let v = parse(r#"{"algorithm":"greedy","sensors":100,"batch":[1,2]}"#).unwrap();
//! assert_eq!(v.get("algorithm").and_then(Value::as_str), Some("greedy"));
//! assert_eq!(v.get("sensors").and_then(Value::as_f64), Some(100.0));
//! assert_eq!(v.get("batch").and_then(Value::as_array).map(<[Value]>::len), Some(2));
//! ```

use std::fmt::Write as _;

/// Escapes `s` as a JSON string literal, including the surrounding quotes.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order (duplicate keys: last wins on lookup).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup; `None` on non-objects and missing keys.
    /// Duplicate keys resolve to the last occurrence, matching the common
    /// last-wins convention.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members
                .iter()
                .rev()
                .find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members in source order, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure: byte offset and description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first syntax problem.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

/// Nesting guard: deeper documents than this are rejected rather than
/// risking a stack overflow on hostile service input.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", char::from(byte))))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` + low surrogate.
                            let c = if (0xD800..=0xDBFF).contains(&unit) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000
                                        + ((u32::from(unit) - 0xD800) << 10)
                                        + (u32::from(low) - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..=0xDFFF).contains(&unit) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(u32::from(unit))
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar; the input is a &str so the
                    // encoding is already valid.
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk =
                        std::str::from_utf8(&rest[..len]).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    /// Reads exactly four hex digits starting at `pos`, advancing past them.
    fn hex4(&mut self) -> Result<u16, JsonError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(digits).map_err(|_| self.err("invalid \\u escape"))?;
        let unit = u16::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Value::Number)
            .ok_or_else(|| self.err("invalid number"))
    }
}

/// Length in bytes of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_matches_rfc8259() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
        assert_eq!(escape("héllo"), "\"héllo\"");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0], Value::Number(1.0));
        assert_eq!(a[1].get("b"), Some(&Value::Null));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        for s in ["", "plain", "a\"b\\c\nd\t", "héllo ✓", "\u{1}\u{1f}"] {
            let parsed = parse(&escape(s)).unwrap();
            assert_eq!(parsed, Value::String(s.into()), "round trip of {s:?}");
        }
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(
            parse("\"\\u00e9\"").unwrap(),
            Value::String("\u{e9}".into())
        );
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".into())
        );
        assert!(parse("\"\\ud83d\"").is_err(), "lone high surrogate");
        assert!(parse("\"\\ude00\"").is_err(), "lone low surrogate");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1 2", "{,}", "\"\\x\"", "nan", "01a",
            "--1",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
