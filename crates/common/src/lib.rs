//! Shared primitives for the `cool` workspace.
//!
//! This crate hosts the small, dependency-light building blocks used by every
//! other crate in the reproduction of *"Cool: On Coverage with Solar-Powered
//! Sensors"* (Tang et al., ICDCS 2011):
//!
//! * [`SensorId`], [`TargetId`], [`SlotId`] — typed indices ([`id`]);
//! * [`SensorSet`] — a compact growable bitset over sensor indices, the
//!   universal "set of activated sensors" representation consumed by the
//!   submodular utility functions ([`set`]);
//! * [`stats`] — streaming and batch summary statistics used by the
//!   experiment harness;
//! * [`rng`] — deterministic seed derivation so every experiment is
//!   reproducible from a single root seed;
//! * [`table`] — fixed-width ASCII table rendering for the `repro` binaries.
//!
//! # Examples
//!
//! ```
//! use cool_common::{SensorId, SensorSet};
//!
//! let mut active = SensorSet::new(8);
//! active.insert(SensorId(3));
//! active.insert(SensorId(5));
//! assert_eq!(active.len(), 2);
//! assert!(active.contains(SensorId(3)));
//! ```

pub mod diag;
pub mod hash;
pub mod id;
pub mod interval;
pub mod invariant;
pub mod json;
pub mod metrics;
pub mod parallel;
pub mod rng;
pub mod set;
pub mod stats;
pub mod table;
pub mod unionfind;

pub use diag::CoolCode;
pub use hash::{fnv1a_64, StableHasher};
pub use id::{SensorId, SlotId, SubregionId, TargetId};
pub use interval::Interval;
pub use invariant::HARD_INVARIANTS;
pub use metrics::{Counter, CounterVec, Gauge, Histogram};
pub use parallel::{default_sweep_threads, parallel_map, SubmitError, WorkerPool};
pub use rng::SeedSequence;
pub use set::SensorSet;
pub use stats::{OnlineStats, Summary};
pub use table::Table;
pub use unionfind::UnionFind;
