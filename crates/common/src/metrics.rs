//! Lock-light service metrics with Prometheus text rendering.
//!
//! `cool-serve` exposes operational counters on `GET /metrics`; this module
//! holds the primitives so any future daemon (sweep coordinator, testbed
//! farm) reports the same way. Three shapes cover everything the workspace
//! needs:
//!
//! * [`Counter`] — a monotone `u64` (`_total` series);
//! * [`Gauge`] — a signed level (queue depth, in-flight requests);
//! * [`Histogram`] — fixed cumulative buckets plus `_sum`/`_count`, the
//!   Prometheus histogram contract;
//! * [`CounterVec`] — a labelled counter family for low-cardinality labels
//!   (endpoint, status code).
//!
//! All types are internally synchronised: `&self` methods are safe from any
//! thread. Rendering follows the Prometheus text exposition format v0.0.4
//! (`# HELP`/`# TYPE` headers, cumulative `le` buckets, `+Inf` bucket equal
//! to `_count`).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Renders `# HELP`/`# TYPE` plus the sample line.
    pub fn render(&self, out: &mut String, name: &str, help: &str) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", self.get());
    }
}

/// A settable signed level.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Renders `# HELP`/`# TYPE` plus the sample line.
    pub fn render(&self, out: &mut String, name: &str, help: &str) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", self.get());
    }
}

/// A fixed-bucket cumulative histogram of `f64` observations (typically
/// seconds of latency).
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds, strictly increasing; `+Inf` is implicit.
    bounds: Vec<f64>,
    /// Non-cumulative per-bucket hit counts (cumulated at render time).
    counts: Vec<AtomicU64>,
    /// Count of observations above the last bound.
    overflow: AtomicU64,
    /// Sum of observations in micro-units to keep atomics integral.
    sum_micros: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    /// A histogram with the given strictly-increasing upper bounds.
    ///
    /// # Panics
    ///
    /// Panics on an empty or non-increasing bound list.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// Default latency buckets: 1 ms … 10 s, roughly log-spaced.
    #[must_use]
    pub fn latency_seconds() -> Self {
        Histogram::new(&[
            0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
        ])
    }

    /// Records one observation (negative or non-finite values clamp to 0).
    pub fn observe(&self, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        match self.bounds.iter().position(|&b| v <= b) {
            Some(i) => self.counts[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum_micros
            .fetch_add((v * 1e6).round() as u64, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Renders the full histogram family (`_bucket`, `_sum`, `_count`).
    pub fn render(&self, out: &mut String, name: &str, help: &str) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in self.bounds.iter().zip(&self.counts) {
            cumulative += count.load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", self.count());
        let _ = writeln!(out, "{name}_sum {}", self.sum());
        let _ = writeln!(out, "{name}_count {}", self.count());
    }
}

/// A labelled counter family, for small, bounded label sets.
///
/// Keys are pre-rendered label strings such as
/// `endpoint="schedule",status="200"` — the caller owns cardinality
/// discipline.
#[derive(Debug, Default)]
pub struct CounterVec {
    cells: Mutex<BTreeMap<String, u64>>,
}

impl CounterVec {
    /// An empty family.
    #[must_use]
    pub fn new() -> Self {
        CounterVec::default()
    }

    /// Adds one to the cell keyed by `labels`.
    pub fn inc(&self, labels: &str) {
        let mut cells = self
            .cells
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *cells.entry(labels.to_string()).or_insert(0) += 1;
    }

    /// The count of the cell keyed by `labels` (0 when absent).
    pub fn get(&self, labels: &str) -> u64 {
        let cells = self
            .cells
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        cells.get(labels).copied().unwrap_or(0)
    }

    /// Sum across every cell.
    pub fn total(&self) -> u64 {
        let cells = self
            .cells
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        cells.values().sum()
    }

    /// Renders one sample line per cell, in sorted label order.
    pub fn render(&self, out: &mut String, name: &str, help: &str) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let cells = self
            .cells
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (labels, count) in cells.iter() {
            let _ = writeln!(out, "{name}{{{labels}}} {count}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut out = String::new();
        c.render(&mut out, "x_total", "things");
        assert!(out.contains("# TYPE x_total counter"));
        assert!(out.contains("x_total 5"));
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
        let mut out = String::new();
        g.render(&mut out, "depth", "queue depth");
        assert!(out.contains("# TYPE depth gauge"));
        assert!(out.contains("depth -3"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new(&[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(0.5);
        h.observe(5.0); // overflow
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 6.05).abs() < 1e-6);
        let mut out = String::new();
        h.render(&mut out, "lat", "latency");
        assert!(out.contains("lat_bucket{le=\"0.1\"} 1"));
        assert!(out.contains("lat_bucket{le=\"1\"} 3"));
        assert!(out.contains("lat_bucket{le=\"+Inf\"} 4"));
        assert!(out.contains("lat_count 4"));
    }

    #[test]
    fn histogram_tolerates_garbage_observations() {
        let h = Histogram::latency_seconds();
        h.observe(f64::NAN);
        h.observe(-2.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 0.0);
    }

    /// Each degenerate observation must be clamped *consistently* across
    /// `_bucket`, `_sum`, and `_count`: it lands in the first bucket
    /// (clamped value 0), contributes 0 to the sum, and bumps the count,
    /// so the `+Inf` bucket always equals `_count`. One case per input
    /// class.
    #[test]
    fn histogram_clamps_each_degenerate_case_consistently() {
        for (label, garbage) in [
            ("NaN", f64::NAN),
            ("negative", -7.5),
            ("-Inf", f64::NEG_INFINITY),
            ("+Inf", f64::INFINITY),
        ] {
            let h = Histogram::new(&[0.1, 1.0]);
            h.observe(garbage);
            assert_eq!(h.count(), 1, "{label}: count");
            assert_eq!(h.sum(), 0.0, "{label}: sum");
            let mut out = String::new();
            h.render(&mut out, "lat", "latency");
            assert!(
                out.contains("lat_bucket{le=\"0.1\"} 1"),
                "{label}: clamped value must land in the first bucket:\n{out}"
            );
            assert!(
                out.contains("lat_bucket{le=\"+Inf\"} 1"),
                "{label}: +Inf bucket must equal _count:\n{out}"
            );
            assert!(out.contains("lat_sum 0"), "{label}: sum renders 0:\n{out}");
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[1.0, 0.5]);
    }

    #[test]
    fn counter_vec_tracks_cells_independently() {
        let v = CounterVec::new();
        v.inc("endpoint=\"a\"");
        v.inc("endpoint=\"a\"");
        v.inc("endpoint=\"b\"");
        assert_eq!(v.get("endpoint=\"a\""), 2);
        assert_eq!(v.get("endpoint=\"b\""), 1);
        assert_eq!(v.get("endpoint=\"c\""), 0);
        assert_eq!(v.total(), 3);
        let mut out = String::new();
        v.render(&mut out, "req_total", "requests");
        assert!(out.contains("req_total{endpoint=\"a\"} 2"));
        assert!(out.contains("req_total{endpoint=\"b\"} 1"));
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let c = Counter::new();
        let h = Histogram::new(&[0.5]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                        h.observe(0.1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
    }
}
