//! Fork-join and long-lived worker-pool primitives.
//!
//! Two execution shapes, both dependency-free:
//!
//! * [`parallel_map`] — deterministic fork-join for experiment sweeps: fan
//!   a `Vec` of independent (instance, seed) cells over scoped threads and
//!   return results in input order.
//! * [`WorkerPool`] — a long-lived pool draining a **bounded** job queue,
//!   the execution backbone of the `cool-serve` daemon: submission is
//!   non-blocking and reports "full" so callers can apply backpressure
//!   (HTTP 429) instead of queueing without bound, and shutdown drains
//!   every accepted job before joining the workers.

/// Maps `f` over `items` using up to `threads` OS threads, preserving
/// input order. Falls back to a plain sequential map for `threads <= 1` or
/// tiny inputs.
///
/// # Panics
///
/// Propagates panics from `f` (the first panicking worker aborts the
/// join with that panic).
///
/// # Examples
///
/// ```
/// use cool_common::parallel_map;
///
/// let squares = parallel_map(4, (0..100).collect(), |x: usize| x * x);
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 100);
/// ```
// The `expect`s below state invariants of the cursor protocol (each slot
// taken and filled exactly once) and of mutex poisoning, which can only
// follow a worker panic that `scope` already propagates.
#[allow(clippy::expect_used)]
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let workers = threads.min(n);
    // Hand out items with their indices through a shared cursor.
    let work: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| std::sync::Mutex::new(Some(t)))
        .collect();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<R>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each slot is taken exactly once");
                let result = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot was filled")
        })
        .collect()
}

/// Default worker count for sweeps: the available parallelism, capped at 8
/// (experiment cells are memory-light; more threads stop paying off).
#[must_use]
pub fn default_sweep_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

/// Why [`WorkerPool::try_submit`] refused a job.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError<J> {
    /// The bounded queue is at capacity — apply backpressure. The job is
    /// handed back untouched.
    QueueFull(J),
    /// The pool is shutting down and accepts no new work.
    ShuttingDown(J),
}

impl<J> SubmitError<J> {
    /// Recovers the rejected job.
    pub fn into_job(self) -> J {
        match self {
            SubmitError::QueueFull(j) | SubmitError::ShuttingDown(j) => j,
        }
    }
}

struct PoolState<J> {
    jobs: std::collections::VecDeque<J>,
    shutting_down: bool,
    /// Jobs currently being executed by a worker (popped but not finished).
    in_flight: usize,
}

struct PoolShared<J> {
    state: std::sync::Mutex<PoolState<J>>,
    /// Signals workers that a job arrived or shutdown began.
    wake: std::sync::Condvar,
    capacity: usize,
}

/// A fixed-size thread pool draining a bounded FIFO job queue.
///
/// Submission never blocks: when the queue holds `capacity` jobs,
/// [`WorkerPool::try_submit`] returns the job back so the caller can shed
/// load. [`WorkerPool::shutdown`] stops intake, lets the workers drain
/// every accepted job, and joins them — the graceful-shutdown contract the
/// serving layer builds on.
///
/// # Examples
///
/// ```
/// use cool_common::parallel::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let done = Arc::new(AtomicUsize::new(0));
/// let counter = Arc::clone(&done);
/// let pool = WorkerPool::new(2, 16, move |n: usize| {
///     counter.fetch_add(n, Ordering::SeqCst);
/// });
/// for _ in 0..10 {
///     pool.try_submit(1).unwrap();
/// }
/// pool.shutdown(); // drains the queue before returning
/// assert_eq!(done.load(Ordering::SeqCst), 10);
/// ```
pub struct WorkerPool<J: Send + 'static> {
    shared: std::sync::Arc<PoolShared<J>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `threads` workers (at least one) over a queue bounded at
    /// `capacity` jobs (at least one). Each worker runs `handler` on the
    /// jobs it pops, in FIFO order across the pool.
    pub fn new<F>(threads: usize, capacity: usize, handler: F) -> Self
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let shared = std::sync::Arc::new(PoolShared {
            state: std::sync::Mutex::new(PoolState {
                jobs: std::collections::VecDeque::new(),
                shutting_down: false,
                in_flight: 0,
            }),
            wake: std::sync::Condvar::new(),
            capacity: capacity.max(1),
        });
        let handler = std::sync::Arc::new(handler);
        let handles = (0..threads.max(1))
            .map(|_| {
                let shared = std::sync::Arc::clone(&shared);
                let handler = std::sync::Arc::clone(&handler);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut state = shared
                            .state
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        loop {
                            if let Some(job) = state.jobs.pop_front() {
                                state.in_flight += 1;
                                break job;
                            }
                            if state.shutting_down {
                                return;
                            }
                            state = shared
                                .wake
                                .wait(state)
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                        }
                    };
                    handler(job);
                    let mut state = shared
                        .state
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    state.in_flight -= 1;
                })
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Enqueues `job` if the queue has room and the pool is accepting.
    ///
    /// # Errors
    ///
    /// Returns the job back inside a [`SubmitError`] when the queue is at
    /// capacity or the pool is shutting down.
    pub fn try_submit(&self, job: J) -> Result<(), SubmitError<J>> {
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.shutting_down {
            return Err(SubmitError::ShuttingDown(job));
        }
        if state.jobs.len() >= self.shared.capacity {
            return Err(SubmitError::QueueFull(job));
        }
        state.jobs.push_back(job);
        drop(state);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Number of jobs waiting in the queue (excluding in-flight ones).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .jobs
            .len()
    }

    /// Number of jobs a worker has popped but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .in_flight
    }

    /// Stops intake, drains every queued job, and joins the workers.
    /// Jobs already accepted are guaranteed to run to completion.
    pub fn shutdown(mut self) {
        {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.shutting_down = true;
        }
        self.shared.wake.notify_all();
        for handle in self.handles.drain(..) {
            // A worker that panicked already poisoned nothing we rely on;
            // keep joining the rest.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map(4, (0..1000).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback() {
        assert_eq!(parallel_map(1, vec![1, 2, 3], |x| x + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map(8, vec![5], |x| x + 1), vec![6]);
        assert_eq!(
            parallel_map(8, Vec::<i32>::new(), |x| x + 1),
            Vec::<i32>::new()
        );
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map(64, vec![1, 2], |x| x), vec![1, 2]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_sweep_threads() >= 1);
    }

    #[test]
    fn pool_runs_every_accepted_job() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let done = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&done);
        let pool = WorkerPool::new(3, 64, move |n: usize| {
            counter.fetch_add(n, Ordering::SeqCst);
        });
        let mut accepted = 0usize;
        for _ in 0..50 {
            if pool.try_submit(1).is_ok() {
                accepted += 1;
            }
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), accepted);
    }

    #[test]
    fn pool_applies_backpressure_when_full() {
        use std::sync::mpsc;
        // A single worker blocked on a channel keeps the queue occupied.
        let (unblock_tx, unblock_rx) = mpsc::channel::<()>();
        let rx = std::sync::Mutex::new(unblock_rx);
        let pool = WorkerPool::new(1, 1, move |(): ()| {
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let _ = guard.recv();
        });
        // First job occupies the worker; second fills the queue; the
        // worker may or may not have popped the first yet, so allow one
        // extra accept before demanding a rejection.
        let mut rejections = 0;
        let mut accepts = 0;
        for _ in 0..4 {
            match pool.try_submit(()) {
                Ok(()) => accepts += 1,
                Err(SubmitError::QueueFull(())) => rejections += 1,
                Err(SubmitError::ShuttingDown(())) => panic!("pool is live"),
            }
            // Give the worker a moment to pop the first job.
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(rejections >= 1, "bounded queue never pushed back");
        assert!(accepts >= 2);
        for _ in 0..accepts {
            let _ = unblock_tx.send(());
        }
        pool.shutdown();
    }

    #[test]
    fn pool_rejects_after_shutdown_begins() {
        let pool = WorkerPool::new(1, 4, |(): ()| {});
        pool.try_submit(()).unwrap();
        // Depth/in-flight introspection stays callable while live.
        let _ = pool.queue_depth() + pool.in_flight();
        pool.shutdown();
        // `shutdown` consumes the pool, so post-shutdown submission is a
        // compile-time impossibility; the runtime flag is still exercised
        // via the worker loop above.
    }

    #[test]
    fn results_match_sequential_for_stateful_work() {
        // Each cell derives data from its input alone — determinism check.
        let seq: Vec<u64> = (0..200u64)
            .map(|x| x.wrapping_mul(x).rotate_left(7))
            .collect();
        let par = parallel_map(6, (0..200u64).collect(), |x| {
            x.wrapping_mul(x).rotate_left(7)
        });
        assert_eq!(seq, par);
    }
}
