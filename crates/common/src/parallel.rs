//! Tiny deterministic fork-join helper for experiment sweeps.
//!
//! The experiment harness runs many independent (instance, seed) cells;
//! [`parallel_map`] fans them out over scoped threads and returns results
//! in input order, so sweeps parallelise without any change to their
//! deterministic seeding. No dependency needed — `std::thread::scope`
//! suffices at this scale.

/// Maps `f` over `items` using up to `threads` OS threads, preserving
/// input order. Falls back to a plain sequential map for `threads <= 1` or
/// tiny inputs.
///
/// # Panics
///
/// Propagates panics from `f` (the first panicking worker aborts the
/// join with that panic).
///
/// # Examples
///
/// ```
/// use cool_common::parallel_map;
///
/// let squares = parallel_map(4, (0..100).collect(), |x: usize| x * x);
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 100);
/// ```
// The `expect`s below state invariants of the cursor protocol (each slot
// taken and filled exactly once) and of mutex poisoning, which can only
// follow a worker panic that `scope` already propagates.
#[allow(clippy::expect_used)]
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let workers = threads.min(n);
    // Hand out items with their indices through a shared cursor.
    let work: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| std::sync::Mutex::new(Some(t)))
        .collect();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<R>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each slot is taken exactly once");
                let result = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot was filled")
        })
        .collect()
}

/// Default worker count for sweeps: the available parallelism, capped at 8
/// (experiment cells are memory-light; more threads stop paying off).
#[must_use]
pub fn default_sweep_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map(4, (0..1000).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback() {
        assert_eq!(parallel_map(1, vec![1, 2, 3], |x| x + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map(8, vec![5], |x| x + 1), vec![6]);
        assert_eq!(
            parallel_map(8, Vec::<i32>::new(), |x| x + 1),
            Vec::<i32>::new()
        );
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map(64, vec![1, 2], |x| x), vec![1, 2]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_sweep_threads() >= 1);
    }

    #[test]
    fn results_match_sequential_for_stateful_work() {
        // Each cell derives data from its input alone — determinism check.
        let seq: Vec<u64> = (0..200u64)
            .map(|x| x.wrapping_mul(x).rotate_left(7))
            .collect();
        let par = parallel_map(6, (0..200u64).collect(), |x| {
            x.wrapping_mul(x).rotate_left(7)
        });
        assert_eq!(seq, par);
    }
}
