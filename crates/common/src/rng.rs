//! Deterministic seed derivation.
//!
//! Every experiment in the harness must be exactly reproducible from a single
//! root seed, while sub-experiments (each trial, each node's harvest noise,
//! each rounding pass) need statistically independent streams.
//! [`SeedSequence`] derives child seeds with SplitMix64, the standard
//! generator-initialisation mixer.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent child seeds from a root seed.
///
/// The derivation is pure: `SeedSequence::new(s).nth_seed(k)` is a function
/// of `(s, k)` only, so experiments can be re-run or parallelised without
/// changing their random streams.
///
/// # Examples
///
/// ```
/// use cool_common::SeedSequence;
///
/// let seq = SeedSequence::new(42);
/// let a = seq.nth_seed(0);
/// let b = seq.nth_seed(1);
/// assert_ne!(a, b);
/// assert_eq!(a, SeedSequence::new(42).nth_seed(0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `root`.
    pub fn new(root: u64) -> Self {
        SeedSequence { root }
    }

    /// Returns the root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Returns the `n`-th derived seed.
    pub fn nth_seed(&self, n: u64) -> u64 {
        // SplitMix64 over root ⊕ golden-ratio-striped index.
        let mut z = self
            .root
            .wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a ready-to-use [`StdRng`] for the `n`-th stream.
    ///
    /// # Examples
    ///
    /// ```
    /// use cool_common::SeedSequence;
    /// use rand::Rng;
    ///
    /// let mut rng = SeedSequence::new(7).nth_rng(3);
    /// let _: f64 = rng.random();
    /// ```
    pub fn nth_rng(&self, n: u64) -> StdRng {
        StdRng::seed_from_u64(self.nth_seed(n))
    }

    /// Returns a derived sub-sequence, for hierarchical experiments
    /// (experiment → trial → node).
    ///
    /// # Examples
    ///
    /// ```
    /// use cool_common::SeedSequence;
    /// let trials = SeedSequence::new(1).child(5);
    /// assert_ne!(trials.root(), SeedSequence::new(1).root());
    /// ```
    #[must_use]
    pub fn child(&self, n: u64) -> SeedSequence {
        SeedSequence::new(self.nth_seed(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_across_instances() {
        let a = SeedSequence::new(123);
        let b = SeedSequence::new(123);
        for n in 0..32 {
            assert_eq!(a.nth_seed(n), b.nth_seed(n));
        }
    }

    #[test]
    fn distinct_roots_give_distinct_streams() {
        assert_ne!(
            SeedSequence::new(1).nth_seed(0),
            SeedSequence::new(2).nth_seed(0)
        );
    }

    #[test]
    fn no_collisions_in_small_range() {
        let seq = SeedSequence::new(0xDEADBEEF);
        let seeds: HashSet<u64> = (0..10_000).map(|n| seq.nth_seed(n)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn children_do_not_alias_parent_streams() {
        let parent = SeedSequence::new(99);
        let child = parent.child(0);
        let parent_seeds: HashSet<u64> = (0..100).map(|n| parent.nth_seed(n)).collect();
        let overlap = (0..100)
            .filter(|&n| parent_seeds.contains(&child.nth_seed(n)))
            .count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn rng_streams_are_reproducible() {
        use rand::Rng;
        let mut r1 = SeedSequence::new(5).nth_rng(2);
        let mut r2 = SeedSequence::new(5).nth_rng(2);
        let xs: Vec<u64> = (0..16).map(|_| r1.random()).collect();
        let ys: Vec<u64> = (0..16).map(|_| r2.random()).collect();
        assert_eq!(xs, ys);
    }
}
