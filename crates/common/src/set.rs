//! [`SensorSet`]: a fixed-universe bitset over sensor indices.
//!
//! Every utility function in the paper is a set function `U : 2^V -> R`, so
//! the representation of "a set of sensors" is on the hot path of every
//! scheduler. A `Vec<u64>` bitset gives O(n/64) union/intersection, O(1)
//! insert/remove/contains and cheap iteration, while staying ordinary safe
//! Rust.

use crate::SensorId;
use std::fmt;

const WORD_BITS: usize = 64;

/// A set of sensors drawn from a fixed universe `{v_0, ..., v_{n-1}}`.
///
/// The universe size is fixed at construction; all binary operations require
/// both operands to share the same universe size and panic otherwise (they
/// would otherwise silently conflate different deployments).
///
/// # Examples
///
/// ```
/// use cool_common::{SensorId, SensorSet};
///
/// let mut s = SensorSet::new(10);
/// s.insert(SensorId(1));
/// s.insert(SensorId(4));
/// let t = SensorSet::from_indices(10, [4, 7]);
/// assert_eq!(s.union(&t).len(), 3);
/// assert_eq!(s.intersection(&t).len(), 1);
/// assert!(s.intersection(&t).contains(SensorId(4)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct SensorSet {
    universe: usize,
    words: Vec<u64>,
    len: usize,
}

impl SensorSet {
    /// Creates an empty set over a universe of `universe` sensors.
    ///
    /// # Examples
    ///
    /// ```
    /// use cool_common::SensorSet;
    /// let s = SensorSet::new(100);
    /// assert!(s.is_empty());
    /// assert_eq!(s.universe(), 100);
    /// ```
    pub fn new(universe: usize) -> Self {
        SensorSet {
            universe,
            words: vec![0; universe.div_ceil(WORD_BITS)],
            len: 0,
        }
    }

    /// Creates the full set `{v_0, ..., v_{n-1}}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cool_common::SensorSet;
    /// assert_eq!(SensorSet::full(5).len(), 5);
    /// ```
    pub fn full(universe: usize) -> Self {
        let mut set = SensorSet::new(universe);
        for i in 0..universe {
            set.insert(SensorId(i));
        }
        set
    }

    /// Creates a set from raw indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= universe`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cool_common::SensorSet;
    /// let s = SensorSet::from_indices(8, [0, 3, 3, 7]);
    /// assert_eq!(s.len(), 3);
    /// ```
    pub fn from_indices<I: IntoIterator<Item = usize>>(universe: usize, indices: I) -> Self {
        let mut set = SensorSet::new(universe);
        for i in indices {
            set.insert(SensorId(i));
        }
        set
    }

    /// Number of sensors in the universe (not in the set).
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of sensors in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set contains no sensors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `sensor` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `sensor` is outside the universe.
    #[inline]
    pub fn contains(&self, sensor: SensorId) -> bool {
        assert!(
            sensor.0 < self.universe,
            "sensor {sensor} outside universe of {}",
            self.universe
        );
        self.words[sensor.0 / WORD_BITS] >> (sensor.0 % WORD_BITS) & 1 == 1
    }

    /// Inserts `sensor`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `sensor` is outside the universe.
    #[inline]
    pub fn insert(&mut self, sensor: SensorId) -> bool {
        assert!(
            sensor.0 < self.universe,
            "sensor {sensor} outside universe of {}",
            self.universe
        );
        let word = &mut self.words[sensor.0 / WORD_BITS];
        let mask = 1u64 << (sensor.0 % WORD_BITS);
        let fresh = *word & mask == 0;
        *word |= mask;
        self.len += usize::from(fresh);
        fresh
    }

    /// Removes `sensor`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `sensor` is outside the universe.
    #[inline]
    pub fn remove(&mut self, sensor: SensorId) -> bool {
        assert!(
            sensor.0 < self.universe,
            "sensor {sensor} outside universe of {}",
            self.universe
        );
        let word = &mut self.words[sensor.0 / WORD_BITS];
        let mask = 1u64 << (sensor.0 % WORD_BITS);
        let present = *word & mask != 0;
        *word &= !mask;
        self.len -= usize::from(present);
        present
    }

    /// Removes all sensors.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Returns the union `self ∪ other`.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    #[must_use]
    pub fn union(&self, other: &SensorSet) -> SensorSet {
        self.check_universe(other);
        let words: Vec<u64> = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        SensorSet::from_words(self.universe, words)
    }

    /// Returns the intersection `self ∩ other`.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    #[must_use]
    pub fn intersection(&self, other: &SensorSet) -> SensorSet {
        self.check_universe(other);
        let words: Vec<u64> = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        SensorSet::from_words(self.universe, words)
    }

    /// Returns the difference `self \ other`.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    #[must_use]
    pub fn difference(&self, other: &SensorSet) -> SensorSet {
        self.check_universe(other);
        let words: Vec<u64> = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & !b)
            .collect();
        SensorSet::from_words(self.universe, words)
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    pub fn union_with(&mut self, other: &SensorSet) {
        self.check_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
        self.recount();
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    pub fn intersect_with(&mut self, other: &SensorSet) {
        self.check_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
        self.recount();
    }

    /// Returns `true` if every sensor of `self` is in `other`.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    pub fn is_subset(&self, other: &SensorSet) -> bool {
        self.check_universe(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if the sets share no sensor.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    pub fn is_disjoint(&self, other: &SensorSet) -> bool {
        self.check_universe(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Size of the intersection without materialising it.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    pub fn intersection_len(&self, other: &SensorSet) -> usize {
        self.check_universe(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates over members in increasing index order.
    ///
    /// # Examples
    ///
    /// ```
    /// use cool_common::SensorSet;
    /// let s = SensorSet::from_indices(70, [69, 0, 33]);
    /// let ids: Vec<usize> = s.iter().map(|v| v.index()).collect();
    /// assert_eq!(ids, [0, 33, 69]);
    /// ```
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    fn from_words(universe: usize, words: Vec<u64>) -> SensorSet {
        let len = words.iter().map(|w| w.count_ones() as usize).sum();
        SensorSet {
            universe,
            words,
            len,
        }
    }

    fn recount(&mut self) {
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }

    #[inline]
    fn check_universe(&self, other: &SensorSet) {
        assert_eq!(
            self.universe, other.universe,
            "sensor sets drawn from different universes ({} vs {})",
            self.universe, other.universe
        );
    }
}

impl fmt::Debug for SensorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SensorSet{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}/{}", self.universe)
    }
}

impl Extend<SensorId> for SensorSet {
    fn extend<I: IntoIterator<Item = SensorId>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

/// Iterator over the members of a [`SensorSet`], produced by
/// [`SensorSet::iter`].
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    set: &'a SensorSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = SensorId;

    fn next(&mut self) -> Option<SensorId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(SensorId(self.word_idx * WORD_BITS + bit));
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a SensorSet {
    type Item = SensorId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = SensorSet::new(130);
        assert!(s.insert(SensorId(0)));
        assert!(s.insert(SensorId(64)));
        assert!(s.insert(SensorId(129)));
        assert!(!s.insert(SensorId(129)), "re-insert reports not-fresh");
        assert_eq!(s.len(), 3);
        assert!(s.contains(SensorId(64)));
        assert!(!s.contains(SensorId(63)));
        assert!(s.remove(SensorId(64)));
        assert!(!s.remove(SensorId(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn full_and_clear() {
        let mut s = SensorSet::full(100);
        assert_eq!(s.len(), 100);
        assert!((0..100).all(|i| s.contains(SensorId(i))));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra_small() {
        let a = SensorSet::from_indices(10, [1, 2, 3]);
        let b = SensorSet::from_indices(10, [3, 4]);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b).len(), 1);
        assert_eq!(a.difference(&b).len(), 2);
        assert_eq!(a.intersection_len(&b), 1);
        assert!(!a.is_subset(&b));
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.difference(&b).is_disjoint(&b));
    }

    #[test]
    fn in_place_ops_match_pure_ops() {
        let a = SensorSet::from_indices(200, [0, 63, 64, 65, 199]);
        let b = SensorSet::from_indices(200, [63, 65, 100]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u, a.union(&b));
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i, a.intersection(&b));
    }

    #[test]
    fn iterates_in_order_across_words() {
        let s = SensorSet::from_indices(300, [299, 0, 64, 128, 5]);
        let got: Vec<usize> = s.iter().map(super::super::id::SensorId::index).collect();
        assert_eq!(got, [0, 5, 64, 128, 299]);
    }

    #[test]
    fn extend_collects_ids() {
        let mut s = SensorSet::new(16);
        s.extend([SensorId(1), SensorId(2), SensorId(1)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn contains_out_of_universe_panics() {
        SensorSet::new(4).contains(SensorId(4));
    }

    #[test]
    #[should_panic(expected = "different universes")]
    fn union_of_mismatched_universes_panics() {
        let a = SensorSet::new(4);
        let b = SensorSet::new(5);
        let _ = a.union(&b);
    }

    #[test]
    fn debug_is_nonempty_for_empty_set() {
        let s = SensorSet::new(3);
        assert_eq!(format!("{s:?}"), "SensorSet{}/3");
    }

    #[test]
    fn empty_universe_is_fine() {
        let s = SensorSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    proptest! {
        #[test]
        fn matches_reference_hashset(xs in proptest::collection::vec(0usize..256, 0..60),
                                     ys in proptest::collection::vec(0usize..256, 0..60)) {
            use std::collections::BTreeSet;
            let a = SensorSet::from_indices(256, xs.iter().copied());
            let b = SensorSet::from_indices(256, ys.iter().copied());
            let ra: BTreeSet<usize> = xs.into_iter().collect();
            let rb: BTreeSet<usize> = ys.into_iter().collect();

            let union: Vec<usize> = a.union(&b).iter().map(super::super::id::SensorId::index).collect();
            let runion: Vec<usize> = ra.union(&rb).copied().collect();
            prop_assert_eq!(union, runion);

            let inter: Vec<usize> = a.intersection(&b).iter().map(super::super::id::SensorId::index).collect();
            let rinter: Vec<usize> = ra.intersection(&rb).copied().collect();
            prop_assert_eq!(inter, rinter);

            let diff: Vec<usize> = a.difference(&b).iter().map(super::super::id::SensorId::index).collect();
            let rdiff: Vec<usize> = ra.difference(&rb).copied().collect();
            prop_assert_eq!(diff, rdiff);

            prop_assert_eq!(a.is_subset(&b), ra.is_subset(&rb));
            prop_assert_eq!(a.is_disjoint(&b), ra.is_disjoint(&rb));
            prop_assert_eq!(a.intersection_len(&b), ra.intersection(&rb).count());
        }

        #[test]
        fn len_tracks_membership(ops in proptest::collection::vec((0usize..128, any::<bool>()), 0..200)) {
            let mut s = SensorSet::new(128);
            let mut reference = std::collections::BTreeSet::new();
            for (idx, add) in ops {
                if add {
                    s.insert(SensorId(idx));
                    reference.insert(idx);
                } else {
                    s.remove(SensorId(idx));
                    reference.remove(&idx);
                }
                prop_assert_eq!(s.len(), reference.len());
            }
        }
    }
}
