//! Summary statistics for the experiment harness.
//!
//! The evaluation section reports averages over many slots/days/trials
//! (e.g. "average utility per target per time-slot"). [`OnlineStats`]
//! accumulates mean/variance in one pass (Welford's algorithm) and
//! [`Summary`] captures a batch snapshot with percentiles.

use std::fmt;

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use cool_common::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    /// Same as [`OnlineStats::new`] (an explicit impl because the derived
    /// default would zero the running min/max instead of using ±∞).
    fn default() -> Self {
        OnlineStats::new()
    }
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; `0.0` for fewer than two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation; `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation; `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval on the
    /// mean (`1.96 · s/√count`); `0.0` for fewer than two observations.
    pub fn ci95_halfwidth(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.sample_std() / (self.count as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    ///
    /// # Examples
    ///
    /// ```
    /// use cool_common::OnlineStats;
    /// let mut a = OnlineStats::new();
    /// let mut b = OnlineStats::new();
    /// a.push(1.0);
    /// a.push(2.0);
    /// b.push(3.0);
    /// a.merge(&b);
    /// assert_eq!(a.count(), 3);
    /// assert!((a.mean() - 2.0).abs() < 1e-12);
    /// ```
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean={:.6} ±{:.6} (n={}, min={:.6}, max={:.6})",
            self.mean(),
            self.ci95_halfwidth(),
            self.count,
            self.min(),
            self.max()
        )
    }
}

/// Batch snapshot of a sample: mean, std, extremes and percentiles.
///
/// # Examples
///
/// ```
/// use cool_common::Summary;
///
/// let s = Summary::from_samples(&[4.0, 1.0, 3.0, 2.0]);
/// assert!((s.mean - 2.5).abs() < 1e-12);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// assert!((s.median - 2.5).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// 50th percentile (linear interpolation).
    pub median: f64,
    /// 5th percentile (linear interpolation).
    pub p05: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
}

impl Summary {
    /// Summarises a slice of samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains a NaN.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarise an empty sample");
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "cannot summarise a sample containing NaN"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp); // NaN ruled out above
        let stats: OnlineStats = samples.iter().copied().collect();
        Summary {
            count: samples.len(),
            mean: stats.mean(),
            std: stats.sample_std(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            median: percentile(&sorted, 0.50),
            p05: percentile(&sorted, 0.05),
            p95: percentile(&sorted, 0.95),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.6} std={:.6} min={:.6} p05={:.6} median={:.6} p95={:.6} max={:.6}",
            self.count, self.mean, self.std, self.min, self.p05, self.median, self.p95, self.max
        )
    }
}

/// Linear-interpolation percentile of an ascending-sorted slice.
///
/// `q` is a fraction in `[0, 1]`.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use cool_common::stats::percentile;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
/// assert_eq!(percentile(&xs, 0.0), 1.0);
/// assert_eq!(percentile(&xs, 1.0), 4.0);
/// ```
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_benign() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn default_matches_new() {
        // The derived Default would zero min/max; the explicit impl must
        // behave exactly like `new` so `entry().or_default()` is safe.
        let mut s = OnlineStats::default();
        s.push(5.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(7.0);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 7.0);
        assert_eq!(s.max(), 7.0);
        assert_eq!(s.ci95_halfwidth(), 0.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs = [0.3, -1.2, 5.5, 2.2, 0.0, 9.1, -3.3];
        let s: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut b = OnlineStats::new();
        b.merge(&before);
        assert_eq!(b, before);
    }

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::from_samples(&[2.0; 10]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.p05, 2.0);
        assert_eq!(s.p95, 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_of_empty_panics() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    fn display_is_nonempty() {
        let s: OnlineStats = [1.0].into_iter().collect();
        assert!(s.to_string().contains("mean="));
        let sum = Summary::from_samples(&[1.0, 2.0]);
        assert!(sum.to_string().contains("median="));
    }

    proptest! {
        #[test]
        fn merge_equals_sequential(xs in proptest::collection::vec(-1e6f64..1e6, 1..50),
                                   ys in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
            let mut merged: OnlineStats = xs.iter().copied().collect();
            let other: OnlineStats = ys.iter().copied().collect();
            merged.merge(&other);

            let all: OnlineStats = xs.iter().chain(ys.iter()).copied().collect();
            let mean_scale = all.mean().abs().max(1.0);
            prop_assert!((merged.mean() - all.mean()).abs() < 1e-9 * mean_scale);
            let var_scale = all.sample_variance().abs().max(1.0);
            prop_assert!((merged.sample_variance() - all.sample_variance()).abs() < 1e-9 * var_scale);
            prop_assert_eq!(merged.count(), all.count());
            prop_assert_eq!(merged.min(), all.min());
            prop_assert_eq!(merged.max(), all.max());
        }

        #[test]
        fn percentiles_are_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
            let s = Summary::from_samples(&xs);
            prop_assert!(s.min <= s.p05 + 1e-12);
            prop_assert!(s.p05 <= s.median + 1e-12);
            prop_assert!(s.median <= s.p95 + 1e-12);
            prop_assert!(s.p95 <= s.max + 1e-12);
            prop_assert!(s.min <= s.mean && s.mean <= s.max);
        }
    }
}
