//! Fixed-width ASCII tables for the experiment binaries.
//!
//! The `repro` harness prints the same rows/series the paper reports; a tiny
//! table renderer keeps that output legible without pulling in a formatting
//! dependency.

use std::fmt;

/// A column-aligned ASCII table.
///
/// # Examples
///
/// ```
/// use cool_common::Table;
///
/// let mut t = Table::new(["n", "greedy", "bound"]);
/// t.row(["20", "0.9397", "0.9590"]);
/// t.row(["40", "0.9523", "0.9832"]);
/// let s = t.to_string();
/// assert!(s.contains("greedy"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} does not match header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header + rows), for machine-readable output
    /// alongside the human-readable `Display`.
    ///
    /// Cells containing commas or quotes are quoted per RFC 4180.
    ///
    /// # Examples
    ///
    /// ```
    /// use cool_common::Table;
    /// let mut t = Table::new(["a", "b"]);
    /// t.row(["1", "x,y"]);
    /// assert_eq!(t.to_csv(), "a,b\n1,\"x,y\"\n");
    /// ```
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| field(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, w) in cells.iter().zip(&widths) {
                write!(f, " {cell:>w$} |")?;
            }
            writeln!(f)
        };
        let rule: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        writeln!(f, "{rule}")?;
        write_row(f, &self.header)?;
        writeln!(f, "{rule}")?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        writeln!(f, "{rule}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["x", "1"]);
        t.row(["longer", "23456"]);
        let rendered = t.to_string();
        let lines: Vec<&str> = rendered.lines().collect();
        // rule, header, rule, two rows, rule
        assert_eq!(lines.len(), 6);
        let len = lines[0].len();
        assert!(
            lines.iter().all(|l| l.len() == len),
            "all lines same width:\n{rendered}"
        );
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(["a"]);
        t.row(["he said \"hi\""]);
        assert_eq!(t.to_csv(), "a\n\"he said \"\"hi\"\"\"\n");
    }

    #[test]
    fn empty_table_still_renders_header() {
        let t = Table::new(["col"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.to_string().contains("col"));
    }
}
