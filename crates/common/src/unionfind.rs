//! Disjoint-set forest (union-find) with path halving and union by size.
//!
//! Used by the `cool-lint` connectivity pass to count connected components
//! of the communication graph restricted to a slot's active sensors
//! (the coverage-implies-connectivity check after Khasteh et al.).

/// A disjoint-set forest over `0..len` elements.
///
/// # Examples
///
/// ```
/// use cool_common::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert_eq!(uf.components(), 4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert_eq!(uf.components(), 2);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// `len` singleton components.
    #[must_use]
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len).collect(),
            size: vec![1; len],
            components: len,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the forest holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint components.
    #[must_use]
    pub fn components(&self) -> usize {
        self.components
    }

    /// The canonical representative of `x`'s component (path halving).
    ///
    /// # Panics
    ///
    /// Panics when `x >= len`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x;
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the components of `a` and `b`; returns `true` when they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics when `a >= len` or `b >= len`.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// `true` when `a` and `b` are in the same component.
    ///
    /// # Panics
    ///
    /// Panics when `a >= len` or `b >= len`.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_chain() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
        for i in 0..4 {
            assert!(uf.union(i, i + 1));
        }
        assert_eq!(uf.components(), 1);
        assert!(uf.connected(0, 4));
        assert!(!uf.union(0, 4), "already connected");
    }

    #[test]
    fn union_by_size_keeps_components_exact() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(4, 5);
        assert_eq!(uf.components(), 3);
        uf.union(1, 3);
        assert_eq!(uf.components(), 2);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn empty_forest_is_degenerate_but_valid() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.components(), 0);
    }
}
