//! Property tests for the [`Interval`] abstract domain.
//!
//! The abstract energy interpreter in `cool-lint` is sound only if every
//! interval operation over-approximates its concrete counterpart; these
//! properties pin exactly that contract, plus the lattice algebra (join as
//! least upper bound, meet as greatest lower bound) the interpreter's
//! branch handling relies on.

use cool_common::Interval;
use proptest::prelude::*;

/// A well-formed interval inside a battery-sized range, plus a point in it
/// (sampled as a convex combination of the endpoints, so every generated
/// concrete state really belongs to the abstract one).
fn interval_with_point() -> impl Strategy<Value = (Interval, f64)> {
    (-2.0f64..2.0, -2.0f64..2.0, 0.0f64..=1.0).prop_map(|(a, b, t)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let iv = Interval::new(lo, hi);
        (iv, lo + t * (hi - lo))
    })
}

fn interval() -> impl Strategy<Value = Interval> {
    interval_with_point().prop_map(|(iv, _)| iv)
}

proptest! {
    /// Soundness of `shift`: `x ∈ I ⇒ x + d ∈ I.shift(d)`.
    #[test]
    fn shift_is_sound((iv, x) in interval_with_point(), d in -1.0f64..1.0) {
        prop_assert!(iv.shift(d).contains(x + d));
    }

    /// Soundness of `clamp`: `x ∈ I ⇒ clamp(x) ∈ I.clamp(..)`.
    #[test]
    fn clamp_is_sound((iv, x) in interval_with_point()) {
        prop_assert!(iv.clamp(0.0, 1.0).contains(x.clamp(0.0, 1.0)));
    }

    /// `clamp` output always lies inside the clamp range.
    #[test]
    fn clamp_lands_in_range(iv in interval()) {
        let c = iv.clamp(0.0, 1.0);
        prop_assert!(Interval::UNIT.contains_interval(c));
    }

    /// `join` is an upper bound of both operands.
    #[test]
    fn join_is_an_upper_bound(a in interval(), b in interval()) {
        let j = a.join(b);
        prop_assert!(j.contains_interval(a));
        prop_assert!(j.contains_interval(b));
    }

    /// `join` is the *least* upper bound: any interval containing both
    /// operands contains their join.
    #[test]
    fn join_is_least(a in interval(), b in interval(), c in interval()) {
        if c.contains_interval(a) && c.contains_interval(b) {
            prop_assert!(c.contains_interval(a.join(b)));
        }
    }

    /// Join is commutative, idempotent, and associative.
    #[test]
    fn join_algebra(a in interval(), b in interval(), c in interval()) {
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.join(a), a);
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
    }

    /// `meet` is a lower bound when it exists, and membership in both
    /// operands is exactly membership in the meet.
    #[test]
    fn meet_is_the_intersection((a, x) in interval_with_point(), b in interval()) {
        match a.meet(b) {
            Some(m) => {
                prop_assert!(a.contains_interval(m));
                prop_assert!(b.contains_interval(m));
                prop_assert_eq!(m.contains(x), b.contains(x));
            }
            None => prop_assert!(!b.contains(x)),
        }
    }

    /// Absorption ties the lattice together: `a ⊓ (a ⊔ b) = a`.
    #[test]
    fn meet_absorbs_join(a in interval(), b in interval()) {
        prop_assert_eq!(a.meet(a.join(b)), Some(a));
    }

    /// Points behave like their single member.
    #[test]
    fn point_membership(x in -2.0f64..2.0, y in -2.0f64..2.0) {
        let p = Interval::point(x);
        prop_assert!(p.contains(x));
        prop_assert_eq!(p.contains(y), x == y);
        prop_assert_eq!(p.midpoint(), x);
        prop_assert_eq!(p.width(), 0.0);
    }

    /// The midpoint is a member, and containment is transitive through it.
    #[test]
    fn midpoint_is_a_member(iv in interval()) {
        prop_assert!(iv.contains(iv.midpoint()));
    }
}
