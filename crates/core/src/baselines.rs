//! Baseline schedulers the greedy is compared against.
//!
//! The paper's testbed evaluation reports greedy vs. the optimal/upper
//! bound; the ablation harness additionally contrasts these standard
//! baselines:
//!
//! * [`random_schedule`] — each sensor picks a uniform slot (what naive
//!   duty-cycling without coordination does);
//! * [`round_robin_schedule`] — sensor `i` takes slot `i mod T`
//!   (coordination by index only, coverage-blind);
//! * [`static_schedule`] — everyone activates in slot 0 (the "no
//!   scheduling" strawman: burn together, recharge together).
//!
//! For heterogeneous fleets on the LCM tick grid the harness also carries
//! the duty-cycling literature's strip-cover family (sensors as "strips"
//! of battery lifetime laid over the timeline):
//!
//! * [`rsc_schedule`] — Restricted Strip Covering (Buchsbaum, Efrat, Jain,
//!   Venkatasubramanian, Yi, *SODA 2007* / Algorithmica 2009): sensors in
//!   decreasing lifetime order each place **one** contiguous active run,
//!   greedily maximising marginal utility;
//! * [`set_once_schedule`] — Set-Once Strip Cover (Bar-Noy, Baumer,
//!   Rawitz, *Theory Comput. Syst.* 2017): each sensor commits to a single
//!   activation time irrevocably, in index order, load-balancing the
//!   timeline without looking at the utility;
//! * [`hef_schedule`] — High-Energy-First (Manju & Pujari's battery-aware
//!   target-coverage heuristic, *ICDCIT 2011* lineage): sensors in
//!   decreasing battery-capacity order each pick the periodic phase of
//!   maximum marginal utility.
//!
//! RSC and Set-Once return a [`GridSchedule`] (one run per hyperperiod is
//! always energy-feasible since `H − d_v ≥ r_v`); HEF returns a periodic
//! [`FleetSchedule`] like the greedy. `cool-check` relation
//! `baseline-sound` (COOL-E029) replays all three through the energy
//! automaton and caps them by the duty-cycle upper bound.

use crate::errors::ScheduleBuildError;
use crate::hetero::{FleetSchedule, GridSchedule};
use crate::problem::Problem;
use crate::schedule::{PeriodSchedule, ScheduleMode};
use cool_common::{SensorId, SensorSet};
use cool_energy::{Fleet, FleetGrid};
use cool_utility::{Evaluator, UtilityFunction};
use rand::Rng;

fn mode_for<U: UtilityFunction>(problem: &Problem<U>) -> ScheduleMode {
    if problem.cycle().rho() > 1.0 {
        ScheduleMode::ActiveSlot
    } else {
        ScheduleMode::PassiveSlot
    }
}

/// Uniform random slot per sensor.
///
/// # Examples
///
/// ```
/// use cool_core::{baselines::random_schedule, problem::Problem};
/// use cool_common::SeedSequence;
/// use cool_energy::ChargeCycle;
/// use cool_utility::DetectionUtility;
///
/// let p = Problem::new(DetectionUtility::uniform(10, 0.4),
///                      ChargeCycle::paper_sunny(), 1).unwrap();
/// let s = random_schedule(&p, &mut SeedSequence::new(0).nth_rng(0));
/// assert!(s.is_feasible(p.cycle()));
/// ```
pub fn random_schedule<U: UtilityFunction, R: Rng + ?Sized>(
    problem: &Problem<U>,
    rng: &mut R,
) -> PeriodSchedule {
    let t = problem.slots_per_period();
    let assignment = (0..problem.n_sensors())
        .map(|_| rng.random_range(0..t))
        .collect();
    PeriodSchedule::new(mode_for(problem), t, assignment)
}

/// Sensor `i` takes slot `i mod T`.
pub fn round_robin_schedule<U: UtilityFunction>(problem: &Problem<U>) -> PeriodSchedule {
    let t = problem.slots_per_period();
    let assignment = (0..problem.n_sensors()).map(|i| i % t).collect();
    PeriodSchedule::new(mode_for(problem), t, assignment)
}

/// Everyone in slot 0: all sensors active together (ρ > 1) or all passive
/// together (ρ ≤ 1).
pub fn static_schedule<U: UtilityFunction>(problem: &Problem<U>) -> PeriodSchedule {
    let t = problem.slots_per_period();
    PeriodSchedule::new(mode_for(problem), t, vec![0; problem.n_sensors()])
}

/// Queries a marginal gain, surfacing NaN/∞ as the scheduler's typed error.
fn finite_gain<E: Evaluator>(eval: &E, v: usize, tick: usize) -> Result<f64, ScheduleBuildError> {
    let g = eval.gain(SensorId(v));
    if !g.is_finite() {
        return Err(ScheduleBuildError::NonFiniteGain {
            sensor: v,
            slot: tick,
            value: g,
        });
    }
    Ok(g)
}

/// High-Energy-First: sensors in decreasing battery capacity (ties toward
/// the lower index) each commit to the periodic phase of maximum marginal
/// utility over their active run (ties toward the lower phase). The
/// intuition from the battery-aware coverage literature: big batteries
/// have the longest runs, so let them claim the best ticks first.
///
/// # Errors
///
/// [`ScheduleBuildError::NonFiniteGain`] when the utility produces a NaN
/// or infinite marginal value.
///
/// # Panics
///
/// Panics when the utility universe, fleet, and grid sizes disagree.
pub fn hef_schedule<U: UtilityFunction>(
    utility: &U,
    fleet: &Fleet,
    grid: &FleetGrid,
) -> Result<FleetSchedule, ScheduleBuildError> {
    let n = grid.n_sensors();
    assert_eq!(fleet.len(), n, "fleet does not match grid");
    assert_eq!(
        utility.universe(),
        n,
        "utility universe does not match grid"
    );
    let h = grid.hyperperiod();
    let mut evaluators: Vec<U::Evaluator> = (0..h).map(|_| utility.evaluator()).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        fleet.profiles()[b]
            .battery
            .partial_cmp(&fleet.profiles()[a].battery)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cmp(&b))
    });
    let mut phases = vec![0usize; n];
    for &v in &order {
        let (p, d) = (grid.period_ticks(v), grid.discharge_ticks(v));
        // (gain, phi); gains are finite, so phase 0 always replaces the seed.
        let mut best = (f64::NEG_INFINITY, 0usize);
        for phi in 0..p {
            let mut gain = 0.0;
            for k in 0..h / p {
                for j in 0..d {
                    let tick = k * p + (phi + j) % p;
                    gain += finite_gain(&evaluators[tick], v, tick)?;
                }
            }
            if gain > best.0 {
                best = (gain, phi);
            }
        }
        let phi = best.1;
        for k in 0..h / p {
            for j in 0..d {
                evaluators[k * p + (phi + j) % p].insert(SensorId(v));
            }
        }
        phases[v] = phi;
    }
    Ok(FleetSchedule::new(grid.clone(), phases))
}

/// Restricted Strip Covering: sensors ("strips" of lifetime `d_v` ticks)
/// in decreasing duration order (ties toward the lower index) each place
/// **one** contiguous active run per hyperperiod, at the start of maximum
/// marginal utility (ties toward the lower start; runs may wrap). Longest
/// strips place first, as in the RSC approximation's level ordering.
///
/// One run per hyperperiod is always energy-feasible: the cyclic gap
/// `H − d_v ≥ r_v` because `P_v | H`.
///
/// # Errors
///
/// [`ScheduleBuildError::NonFiniteGain`] when the utility produces a NaN
/// or infinite marginal value.
///
/// # Panics
///
/// Panics when the utility universe does not match the grid.
pub fn rsc_schedule<U: UtilityFunction>(
    utility: &U,
    grid: &FleetGrid,
) -> Result<GridSchedule, ScheduleBuildError> {
    let n = grid.n_sensors();
    assert_eq!(
        utility.universe(),
        n,
        "utility universe does not match grid"
    );
    let h = grid.hyperperiod();
    let mut evaluators: Vec<U::Evaluator> = (0..h).map(|_| utility.evaluator()).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(grid.discharge_ticks(v)), v));
    let mut active = vec![SensorSet::new(n); h];
    for &v in &order {
        let d = grid.discharge_ticks(v);
        // (gain, start); gains are finite, so start 0 always replaces the seed.
        let mut best = (f64::NEG_INFINITY, 0usize);
        for start in 0..h {
            let mut gain = 0.0;
            for j in 0..d {
                let tick = (start + j) % h;
                gain += finite_gain(&evaluators[tick], v, tick)?;
            }
            if gain > best.0 {
                best = (gain, start);
            }
        }
        let start = best.1;
        for j in 0..d {
            let tick = (start + j) % h;
            evaluators[tick].insert(SensorId(v));
            active[tick].insert(SensorId(v));
        }
    }
    Ok(GridSchedule::new(active))
}

/// Set-Once Strip Cover: each sensor, in index order, irrevocably commits
/// to **one** contiguous `d_v`-tick run per hyperperiod, choosing the
/// start where the timeline is currently thinnest (smallest summed active
/// count over the run; ties toward the lower start; runs may wrap). The
/// baseline is deliberately utility-blind — it models deployments that
/// balance load without a coverage model.
///
/// # Panics
///
/// Panics on an empty grid (never constructible).
pub fn set_once_schedule(grid: &FleetGrid) -> GridSchedule {
    let n = grid.n_sensors();
    let h = grid.hyperperiod();
    let mut counts = vec![0usize; h];
    let mut active = vec![SensorSet::new(n); h];
    for v in 0..n {
        let d = grid.discharge_ticks(v);
        // (load, start); any real load beats the usize::MAX seed.
        let mut best = (usize::MAX, 0usize);
        for start in 0..h {
            let load: usize = (0..d).map(|j| counts[(start + j) % h]).sum();
            if load < best.0 {
                best = (load, start);
            }
        }
        let start = best.1;
        for j in 0..d {
            let tick = (start + j) % h;
            counts[tick] += 1;
            active[tick].insert(SensorId(v));
        }
    }
    GridSchedule::new(active)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_schedule;
    use cool_common::SeedSequence;
    use cool_energy::ChargeCycle;
    use cool_utility::DetectionUtility;

    fn problem(n: usize) -> Problem<DetectionUtility> {
        Problem::new(
            DetectionUtility::uniform(n, 0.4),
            ChargeCycle::paper_sunny(),
            1,
        )
        .unwrap()
    }

    #[test]
    fn all_baselines_are_feasible() {
        let p = problem(13);
        let mut rng = SeedSequence::new(8).nth_rng(0);
        for s in [
            random_schedule(&p, &mut rng),
            round_robin_schedule(&p),
            static_schedule(&p),
        ] {
            assert!(s.is_feasible(p.cycle()));
        }
    }

    #[test]
    fn round_robin_is_balanced() {
        let p = problem(12);
        let s = round_robin_schedule(&p);
        for t in 0..4 {
            assert_eq!(s.active_set(t).len(), 3);
        }
    }

    #[test]
    fn static_wastes_slots() {
        let p = problem(8);
        let s = static_schedule(&p);
        assert_eq!(s.active_set(0).len(), 8);
        for t in 1..4 {
            assert!(s.active_set(t).is_empty());
        }
    }

    #[test]
    fn greedy_dominates_baselines_on_identical_sensors() {
        let p = problem(10);
        let mut rng = SeedSequence::new(9).nth_rng(0);
        let g = p.total_utility(&greedy_schedule(&p));
        assert!(g >= p.total_utility(&round_robin_schedule(&p)) - 1e-9);
        assert!(g >= p.total_utility(&static_schedule(&p)) - 1e-9);
        assert!(g >= p.total_utility(&random_schedule(&p, &mut rng)) - 1e-9);
    }

    #[test]
    fn baselines_respect_passive_mode() {
        let cycle = ChargeCycle::from_rho(0.5, 10.0).unwrap();
        let p = Problem::new(DetectionUtility::uniform(6, 0.4), cycle, 1).unwrap();
        let s = round_robin_schedule(&p);
        assert_eq!(s.mode(), ScheduleMode::PassiveSlot);
        assert!(s.is_feasible(cycle));
    }

    fn mixed_fleet() -> Fleet {
        Fleet::from_cycles(vec![
            ChargeCycle::from_minutes(15.0, 45.0).unwrap(),
            ChargeCycle::from_minutes(30.0, 90.0).unwrap(),
            ChargeCycle::from_minutes(15.0, 15.0).unwrap(),
            ChargeCycle::from_minutes(30.0, 15.0).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn grid_baselines_are_energy_feasible() {
        let fleet = mixed_fleet();
        let grid = FleetGrid::build(&fleet).unwrap();
        let u = DetectionUtility::uniform(4, 0.5);
        let hef = hef_schedule(&u, &fleet, &grid).unwrap();
        assert!(hef.is_feasible());
        let rsc = rsc_schedule(&u, &grid).unwrap();
        assert!(rsc.is_feasible(&grid));
        let set_once = set_once_schedule(&grid);
        assert!(set_once.is_feasible(&grid));
    }

    #[test]
    fn single_run_baselines_place_one_contiguous_run() {
        let fleet = mixed_fleet();
        let grid = FleetGrid::build(&fleet).unwrap();
        let u = DetectionUtility::uniform(4, 0.5);
        for schedule in [rsc_schedule(&u, &grid).unwrap(), set_once_schedule(&grid)] {
            let h = grid.hyperperiod();
            for v in 0..4 {
                let active: Vec<bool> = (0..h).map(|t| schedule.is_active(v, t)).collect();
                assert_eq!(
                    active.iter().filter(|&&a| a).count(),
                    grid.discharge_ticks(v),
                    "sensor {v} must burn exactly one lifetime"
                );
                // Contiguity mod H: exactly one false→true edge around the
                // cycle.
                let edges = (0..h)
                    .filter(|&t| !active[t] && active[(t + 1) % h])
                    .count();
                assert_eq!(edges, 1, "sensor {v} must activate exactly once");
            }
        }
    }

    #[test]
    fn hef_places_big_batteries_first() {
        // Same cycle (15, 45), different capacities: the 45 Wh sensor must
        // claim the solo-coverage phase before the 30 Wh ones fill in.
        let profiles = vec![
            cool_energy::SensorProfile::default(), // 30 Wh
            cool_energy::SensorProfile {
                battery: 45.0,
                mu_d: 180.0,
                mu_r: 60.0,
                solar_eff: 1.0,
            },
        ];
        let fleet = Fleet::new(profiles).unwrap();
        let grid = FleetGrid::build(&fleet).unwrap();
        let u = DetectionUtility::uniform(2, 0.9);
        let s = hef_schedule(&u, &fleet, &grid).unwrap();
        // Sensor 1 (45 Wh) picked first on an empty timeline → phase 0;
        // sensor 0 then avoids overlapping it.
        assert_eq!(s.phases()[1], 0);
        assert_ne!(s.phases()[0], 0);
        assert!(s.is_feasible());
    }

    #[test]
    fn greedy_dominates_grid_baselines_on_mixed_fleet() {
        let fleet = mixed_fleet();
        let grid = FleetGrid::build(&fleet).unwrap();
        let mut rng = SeedSequence::new(14).nth_rng(0);
        let u = crate::instances::random_multi_target(4, 3, 0.6, 0.5, &mut rng);
        let g = crate::hetero::hetero_greedy_naive(&u, &grid)
            .unwrap()
            .hyperperiod_utility(&u);
        let hef = hef_schedule(&u, &fleet, &grid)
            .unwrap()
            .hyperperiod_utility(&u);
        let rsc = rsc_schedule(&u, &grid).unwrap().hyperperiod_utility(&u);
        let so = set_once_schedule(&grid).hyperperiod_utility(&u);
        assert!(g >= hef - 1e-9, "greedy {g} < hef {hef}");
        // RSC and Set-Once activate each sensor once per hyperperiod, so
        // they trail the periodic schedulers structurally.
        assert!(g >= rsc - 1e-9, "greedy {g} < rsc {rsc}");
        assert!(g >= so - 1e-9, "greedy {g} < set-once {so}");
    }
}
