//! Baseline schedulers the greedy is compared against.
//!
//! The paper's testbed evaluation reports greedy vs. the optimal/upper
//! bound; the ablation harness additionally contrasts these standard
//! baselines:
//!
//! * [`random_schedule`] — each sensor picks a uniform slot (what naive
//!   duty-cycling without coordination does);
//! * [`round_robin_schedule`] — sensor `i` takes slot `i mod T`
//!   (coordination by index only, coverage-blind);
//! * [`static_schedule`] — everyone activates in slot 0 (the "no
//!   scheduling" strawman: burn together, recharge together).

use crate::problem::Problem;
use crate::schedule::{PeriodSchedule, ScheduleMode};
use cool_utility::UtilityFunction;
use rand::Rng;

fn mode_for<U: UtilityFunction>(problem: &Problem<U>) -> ScheduleMode {
    if problem.cycle().rho() > 1.0 {
        ScheduleMode::ActiveSlot
    } else {
        ScheduleMode::PassiveSlot
    }
}

/// Uniform random slot per sensor.
///
/// # Examples
///
/// ```
/// use cool_core::{baselines::random_schedule, problem::Problem};
/// use cool_common::SeedSequence;
/// use cool_energy::ChargeCycle;
/// use cool_utility::DetectionUtility;
///
/// let p = Problem::new(DetectionUtility::uniform(10, 0.4),
///                      ChargeCycle::paper_sunny(), 1).unwrap();
/// let s = random_schedule(&p, &mut SeedSequence::new(0).nth_rng(0));
/// assert!(s.is_feasible(p.cycle()));
/// ```
pub fn random_schedule<U: UtilityFunction, R: Rng + ?Sized>(
    problem: &Problem<U>,
    rng: &mut R,
) -> PeriodSchedule {
    let t = problem.slots_per_period();
    let assignment = (0..problem.n_sensors())
        .map(|_| rng.random_range(0..t))
        .collect();
    PeriodSchedule::new(mode_for(problem), t, assignment)
}

/// Sensor `i` takes slot `i mod T`.
pub fn round_robin_schedule<U: UtilityFunction>(problem: &Problem<U>) -> PeriodSchedule {
    let t = problem.slots_per_period();
    let assignment = (0..problem.n_sensors()).map(|i| i % t).collect();
    PeriodSchedule::new(mode_for(problem), t, assignment)
}

/// Everyone in slot 0: all sensors active together (ρ > 1) or all passive
/// together (ρ ≤ 1).
pub fn static_schedule<U: UtilityFunction>(problem: &Problem<U>) -> PeriodSchedule {
    let t = problem.slots_per_period();
    PeriodSchedule::new(mode_for(problem), t, vec![0; problem.n_sensors()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_schedule;
    use cool_common::SeedSequence;
    use cool_energy::ChargeCycle;
    use cool_utility::DetectionUtility;

    fn problem(n: usize) -> Problem<DetectionUtility> {
        Problem::new(
            DetectionUtility::uniform(n, 0.4),
            ChargeCycle::paper_sunny(),
            1,
        )
        .unwrap()
    }

    #[test]
    fn all_baselines_are_feasible() {
        let p = problem(13);
        let mut rng = SeedSequence::new(8).nth_rng(0);
        for s in [
            random_schedule(&p, &mut rng),
            round_robin_schedule(&p),
            static_schedule(&p),
        ] {
            assert!(s.is_feasible(p.cycle()));
        }
    }

    #[test]
    fn round_robin_is_balanced() {
        let p = problem(12);
        let s = round_robin_schedule(&p);
        for t in 0..4 {
            assert_eq!(s.active_set(t).len(), 3);
        }
    }

    #[test]
    fn static_wastes_slots() {
        let p = problem(8);
        let s = static_schedule(&p);
        assert_eq!(s.active_set(0).len(), 8);
        for t in 1..4 {
            assert!(s.active_set(t).is_empty());
        }
    }

    #[test]
    fn greedy_dominates_baselines_on_identical_sensors() {
        let p = problem(10);
        let mut rng = SeedSequence::new(9).nth_rng(0);
        let g = p.total_utility(&greedy_schedule(&p));
        assert!(g >= p.total_utility(&round_robin_schedule(&p)) - 1e-9);
        assert!(g >= p.total_utility(&static_schedule(&p)) - 1e-9);
        assert!(g >= p.total_utility(&random_schedule(&p, &mut rng)) - 1e-9);
    }

    #[test]
    fn baselines_respect_passive_mode() {
        let cycle = ChargeCycle::from_rho(0.5, 10.0).unwrap();
        let p = Problem::new(DetectionUtility::uniform(6, 0.4), cycle, 1).unwrap();
        let s = round_robin_schedule(&p);
        assert_eq!(s.mode(), ScheduleMode::PassiveSlot);
        assert!(s.is_feasible(cycle));
    }
}
