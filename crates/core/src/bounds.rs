//! Upper bounds on the optimal schedule utility.
//!
//! §VI-B computes the single-target bound
//! `Ū* = 1 − (1−p)^n̄` with `n̄ = ⌈n/T⌉`: no slot of an optimal schedule can
//! do better than concentrating an exact `1/T` share of the sensors, because
//! the per-slot utility is symmetric and concave in the active count.
//! [`trivial_period_bound`] generalises this to any utility via the
//! partition argument `OPT ≤ Σ_t U(S*_t) ≤ T · max_{|S| ≤ ⌈n/T⌉+…}` made
//! safe: we use the trivially-valid `OPT ≤ T · U(V)` cap plus the
//! cardinality bound when the utility exposes symmetric structure.

use cool_energy::FleetGrid;
use cool_utility::{AnyUtility, SumUtility, UtilityFunction};

/// The paper's single-target per-slot upper bound on **average utility per
/// slot**: `1 − (1−p)^⌈n/T⌉` (§VI-B).
///
/// Why it is a bound: per-period, the optimum assigns each sensor one of
/// the `T` slots; the per-slot utility `1−(1−p)^k` is concave in the slot's
/// sensor count `k`, so by Jensen the per-slot average is maximised by the
/// most balanced partition, whose largest share is `⌈n/T⌉`… and
/// `1−(1−p)^{⌈n/T⌉}` dominates the average of any feasible partition.
///
/// # Panics
///
/// Panics if `t == 0` or `p ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// use cool_core::bounds::single_target_upper_bound;
///
/// // The paper's headline setting: n = 100, T = 4, p = 0.4.
/// let bound = single_target_upper_bound(100, 4, 0.4);
/// assert!((bound - (1.0 - 0.6f64.powi(25))).abs() < 1e-12);
/// ```
///
/// Note: the paper prints `0.999380` for this bound, which the stated
/// formula with `p = 0.4` does not reproduce (it gives `0.9999972`); the
/// printed value corresponds to an effective per-sensor detection
/// probability of ≈ 0.256 — see EXPERIMENTS.md. We implement the formula
/// as stated.
pub fn single_target_upper_bound(n: usize, t: usize, p: f64) -> f64 {
    single_target_upper_bound_with_budget(n, t, 1, p)
}

/// Generalisation of [`single_target_upper_bound`] to sensors that may be
/// active `budget` slots per period (`budget = T − 1` for `ρ ≤ 1`): the
/// per-slot average active count is at most `n·budget/T`, and by concavity
/// the per-slot utility average is at most `1 − (1−p)^⌈n·budget/T⌉`.
///
/// # Panics
///
/// Panics if `t == 0`, `budget == 0`, `budget > t`, or `p ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// use cool_core::bounds::single_target_upper_bound_with_budget;
///
/// // ρ = 1/3 ⇒ T = 4 slots, 3 of them active: 8 sensors yield at most
/// // ⌈8·3/4⌉ = 6 simultaneously-active sensors on average.
/// let bound = single_target_upper_bound_with_budget(8, 4, 3, 0.3);
/// assert!((bound - (1.0 - 0.7f64.powi(6))).abs() < 1e-12);
/// ```
pub fn single_target_upper_bound_with_budget(n: usize, t: usize, budget: usize, p: f64) -> f64 {
    assert!(t > 0, "need at least one slot per period");
    assert!(budget > 0 && budget <= t, "budget must be in 1..=T");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let share = (n * budget).div_ceil(t);
    1.0 - (1.0 - p).powi(i32::try_from(share).unwrap_or(i32::MAX))
}

/// A universally-valid upper bound on the **per-period total utility** of
/// any feasible schedule: `T · U(V)` capped by the tighter
/// `Σ over the T best disjoint greedy shares` is not safely computable in
/// general, so this returns `min(T · U(V), n̄-balanced single-target bound)`
/// when applicable and `T · U(V)` otherwise.
///
/// For calibrated bounds on specific instances use
/// [`exhaustive_optimal`](crate::optimal::exhaustive_optimal) (small `n`)
/// or the LP relaxation value ([`crate::lp`]), which upper-bounds OPT for
/// coverage-style utilities.
pub fn trivial_period_bound<U: UtilityFunction>(utility: &U, slots: usize) -> f64 {
    assert!(slots > 0, "need at least one slot per period");
    slots as f64 * utility.max_value()
}

/// Sensor `v`'s maximum fraction of hyperperiod ticks it can spend active,
/// by battery accounting from a full charge: `a/d_v ≤ 1 + (H−a)/r_v` gives
/// `a ≤ d_v(r_v + H)/P_v`, i.e. the steady-state duty cycle `d_v/P_v` plus
/// the one-off full-battery slack `d_v·r_v/(P_v·H)`.
fn duty_fraction(grid: &FleetGrid, v: usize) -> f64 {
    let d = grid.discharge_ticks(v) as f64;
    let r = grid.recharge_ticks(v) as f64;
    let p = grid.period_ticks(v) as f64;
    let h = grid.hyperperiod() as f64;
    (d / p + d * r / (p * h)).min(1.0)
}

/// Jensen/duty-cycle upper bound on the **hyperperiod total utility** of
/// ANY energy-feasible schedule on a heterogeneous grid — periodic or not.
///
/// Per detection part with per-sensor probabilities `p_v`, write the
/// per-tick value as `h(Σ_{v active} c_v)` with `c_v = −ln(1−p_v)` and
/// `h(y) = 1 − e^{−y}` concave increasing. Averaging over the `H` ticks
/// and applying Jensen, the per-tick average is at most
/// `h(Σ_v c_v·x_v)` where `x_v` is the sensor's maximum active fraction
/// ([`duty_fraction`]). Non-detection parts are capped by their
/// `max_value()`. The bound needs no schedule — it dominates the optimum,
/// so it is what `cool-check` holds the baselines to (COOL-E029).
///
/// # Examples
///
/// ```
/// use cool_core::bounds::grid_duty_upper_bound;
/// use cool_core::hetero::hetero_greedy_naive;
/// use cool_energy::{ChargeCycle, Fleet, FleetGrid};
/// use cool_utility::{AnyUtility, DetectionUtility, SumUtility};
///
/// let fleet = Fleet::from_cycles(vec![
///     ChargeCycle::from_minutes(15.0, 45.0).unwrap(),
///     ChargeCycle::from_minutes(30.0, 90.0).unwrap(),
/// ]).unwrap();
/// let grid = FleetGrid::build(&fleet).unwrap();
/// let u = SumUtility::new(vec![
///     AnyUtility::Detection(DetectionUtility::uniform(2, 0.7)),
/// ]);
/// let greedy = hetero_greedy_naive(&u, &grid).unwrap();
/// assert!(greedy.hyperperiod_utility(&u) <= grid_duty_upper_bound(&u, &grid));
/// ```
pub fn grid_duty_upper_bound(utility: &SumUtility, grid: &FleetGrid) -> f64 {
    let h = grid.hyperperiod() as f64;
    let mut per_tick_total = 0.0;
    for part in utility.parts() {
        let per_tick = match part {
            AnyUtility::Detection(d) => {
                let mut y = 0.0;
                let mut saturated = false;
                for (v, &p) in d.probs().iter().enumerate() {
                    if p <= 0.0 {
                        continue;
                    }
                    if p >= 1.0 {
                        // x_v > 0 always (d_v ≥ 1), so a certain detector
                        // saturates the part outright; summing would hit
                        // ∞ · x and NaN.
                        saturated = true;
                        break;
                    }
                    y += -(1.0 - p).ln() * duty_fraction(grid, v);
                }
                if saturated {
                    1.0
                } else {
                    1.0 - (-y).exp()
                }
            }
            other => other.max_value(),
        };
        per_tick_total += per_tick;
    }
    h * per_tick_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_active_naive;
    use crate::schedule::ScheduleMode;
    use cool_common::SeedSequence;
    use cool_utility::DetectionUtility;
    use proptest::prelude::*;

    #[test]
    fn headline_bound_value() {
        // §VI-B claims an upper bound of 0.999380 for n = 100, T = 4,
        // p = 0.4; the formula as stated gives 1 − 0.6²⁵ ≈ 0.9999972. We
        // pin the formula's value and record the paper-number mismatch in
        // EXPERIMENTS.md (the printed value matches p ≈ 0.256).
        let bound = single_target_upper_bound(100, 4, 0.4);
        assert!(
            (bound - (1.0 - 0.6f64.powi(25))).abs() < 1e-12,
            "got {bound}"
        );
        assert!(
            bound > 0.99938,
            "the formula dominates the paper's printed bound"
        );
    }

    #[test]
    fn bound_dominates_exhaustive_optimum_per_slot() {
        // Small single-target instances: bound ≥ OPT average per slot.
        for n in 1..=6usize {
            let u = DetectionUtility::uniform(n, 0.4);
            let t = 3;
            let opt = crate::optimal::exhaustive_optimal(&u, t, ScheduleMode::ActiveSlot);
            let per_slot = opt.period_utility(&u) / t as f64;
            let bound = single_target_upper_bound(n, t, 0.4);
            assert!(per_slot <= bound + 1e-12, "n={n}: {per_slot} > {bound}");
        }
    }

    #[test]
    fn bound_is_tight_when_n_divides_t() {
        // n = kT: the balanced schedule achieves the bound exactly.
        let (n, t, p) = (8usize, 4usize, 0.4);
        let u = DetectionUtility::uniform(n, p);
        let greedy = greedy_active_naive(&u, t).unwrap();
        let per_slot = greedy.period_utility(&u) / t as f64;
        let bound = single_target_upper_bound(n, t, p);
        assert!((per_slot - bound).abs() < 1e-12, "{per_slot} vs {bound}");
    }

    #[test]
    fn trivial_bound_dominates_any_schedule() {
        let u = DetectionUtility::uniform(7, 0.5);
        let greedy = greedy_active_naive(&u, 3).unwrap();
        assert!(greedy.period_utility(&u) <= trivial_period_bound(&u, 3) + 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        let _ = single_target_upper_bound(5, 0, 0.4);
    }

    fn mixed_grid() -> cool_energy::FleetGrid {
        use cool_energy::{ChargeCycle, Fleet, FleetGrid};
        FleetGrid::build(
            &Fleet::from_cycles(vec![
                ChargeCycle::from_minutes(15.0, 45.0).unwrap(),
                ChargeCycle::from_minutes(30.0, 90.0).unwrap(),
                ChargeCycle::from_minutes(15.0, 15.0).unwrap(),
                ChargeCycle::from_minutes(30.0, 15.0).unwrap(),
            ])
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn duty_bound_dominates_greedy_and_baselines() {
        let grid = mixed_grid();
        let mut rng = SeedSequence::new(21).nth_rng(0);
        let u = crate::instances::random_multi_target(4, 3, 0.6, 0.5, &mut rng);
        let bound = grid_duty_upper_bound(&u, &grid);
        let greedy = crate::hetero::hetero_greedy_naive(&u, &grid)
            .unwrap()
            .hyperperiod_utility(&u);
        let rsc = crate::baselines::rsc_schedule(&u, &grid)
            .unwrap()
            .hyperperiod_utility(&u);
        let so = crate::baselines::set_once_schedule(&grid).hyperperiod_utility(&u);
        assert!(greedy <= bound + 1e-9, "greedy {greedy} > bound {bound}");
        assert!(rsc <= bound + 1e-9, "rsc {rsc} > bound {bound}");
        assert!(so <= bound + 1e-9, "set-once {so} > bound {bound}");
    }

    #[test]
    fn duty_bound_survives_certain_detection() {
        // p = 1 makes c_v = ∞; the bound must saturate at H per part, not
        // go NaN.
        let grid = mixed_grid();
        let u = cool_utility::SumUtility::multi_target_detection(
            &[cool_common::SensorSet::full(4)],
            1.0,
        );
        let bound = grid_duty_upper_bound(&u, &grid);
        assert!(bound.is_finite());
        assert!((bound - grid.hyperperiod() as f64).abs() < 1e-12);
    }

    #[test]
    fn duty_bound_on_uniform_grid_matches_slot_intuition() {
        // Uniform ρ = 3 fleet: x_v = (1 + 3/H)/4; one target covering
        // everyone. With H = P the bound is h(n·c·x) on a per-tick basis.
        use cool_energy::{ChargeCycle, Fleet, FleetGrid};
        let n = 8;
        let grid =
            FleetGrid::build(&Fleet::uniform_from_cycle(n, ChargeCycle::paper_sunny()).unwrap())
                .unwrap();
        let u = cool_utility::SumUtility::multi_target_detection(
            &[cool_common::SensorSet::full(n)],
            0.4,
        );
        let bound = grid_duty_upper_bound(&u, &grid);
        let x: f64 = (0.25 + 0.75 / 4.0_f64).min(1.0);
        let expected = 4.0 * (1.0 - (0.6f64.ln() * 8.0 * x).exp());
        assert!((bound - expected).abs() < 1e-12, "{bound} vs {expected}");
    }

    proptest! {
        /// The single-target bound dominates the greedy per-slot average on
        /// arbitrary (n, T, p).
        #[test]
        fn bound_dominates_greedy(n in 1usize..40, t in 1usize..6, p in 0.0f64..=1.0) {
            let u = DetectionUtility::uniform(n, p);
            let greedy = greedy_active_naive(&u, t).unwrap();
            let per_slot = greedy.period_utility(&u) / t as f64;
            prop_assert!(per_slot <= single_target_upper_bound(n, t, p) + 1e-9);
        }

        /// Proptest-checked exhaustive domination on tiny instances.
        #[test]
        fn bound_dominates_optimum(n in 1usize..5, t in 1usize..4, seed in any::<u64>()) {
            let mut rng = SeedSequence::new(seed).nth_rng(0);
            let p: f64 = rng.random_range(0.05..0.95);
            let u = DetectionUtility::uniform(n, p);
            let opt = crate::optimal::exhaustive_optimal(&u, t, ScheduleMode::ActiveSlot);
            prop_assert!(
                opt.period_utility(&u) / t as f64
                    <= single_target_upper_bound(n, t, p) + 1e-9
            );
        }
    }
}
