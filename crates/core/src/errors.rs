//! Typed, `COOL`-coded errors for schedule construction.
//!
//! Scheduler entry points used to `assert!` on malformed inputs, aborting
//! the process. They now return a [`ScheduleBuildError`] carrying a stable
//! [`CoolCode`], so callers (the `cool` CLI, the `cool-lint` analyser, the
//! testbed pre-flight) can surface machine-readable diagnostics instead of
//! an abort.

use cool_common::CoolCode;
use std::fmt;

/// Why a schedule could not be built.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScheduleBuildError {
    /// A schedule over zero slots was requested ([`CoolCode::EmptySlotCount`]).
    EmptySlotCount,
    /// The utility produced a NaN or infinite marginal gain/loss for this
    /// (sensor, slot) query ([`CoolCode::NonFiniteUtility`]): the greedy
    /// total order — and with it the approximation guarantee — is undefined.
    NonFiniteGain {
        /// The sensor whose query misbehaved.
        sensor: usize,
        /// The slot being evaluated.
        slot: usize,
        /// The offending value.
        value: f64,
    },
}

impl ScheduleBuildError {
    /// The stable diagnostic code for this error.
    #[must_use]
    pub fn code(&self) -> CoolCode {
        match self {
            ScheduleBuildError::EmptySlotCount => CoolCode::EmptySlotCount,
            ScheduleBuildError::NonFiniteGain { .. } => CoolCode::NonFiniteUtility,
        }
    }
}

impl fmt::Display for ScheduleBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleBuildError::EmptySlotCount => {
                write!(f, "{}: a schedule needs at least one slot per period", self.code())
            }
            ScheduleBuildError::NonFiniteGain { sensor, slot, value } => write!(
                f,
                "{}: utility returned non-finite marginal value {value} for sensor {sensor} in slot {slot}",
                self.code()
            ),
        }
    }
}

impl std::error::Error for ScheduleBuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_messages() {
        let e = ScheduleBuildError::EmptySlotCount;
        assert_eq!(e.code(), CoolCode::EmptySlotCount);
        assert!(e.to_string().contains("COOL-E002"));

        let e = ScheduleBuildError::NonFiniteGain {
            sensor: 3,
            slot: 1,
            value: f64::NAN,
        };
        assert_eq!(e.code(), CoolCode::NonFiniteUtility);
        let text = e.to_string();
        assert!(text.contains("COOL-E015") && text.contains("sensor 3"));
    }
}
