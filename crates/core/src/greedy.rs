//! The Greedy Hill-Climbing Activation Scheme (Algorithm 1, §IV).
//!
//! `ρ > 1`: schedule sensors one by one, each time assigning the
//! (sensor, slot) pair with the **maximum incremental utility** given
//! everything scheduled so far; ½-approximate for `L = T` (Lemma 4.1) and
//! for `L = αT` by repeating the period schedule (Theorem 4.3).
//!
//! `ρ ≤ 1`: start from "everyone active everywhere" and allocate each
//! sensor's **passive** slot with the **minimum decremental utility**
//! (§IV-B, Theorem 4.4) — also ½-approximate.
//!
//! Two implementations are provided with identical outputs:
//!
//! * [`greedy_schedule`] — the literal O(n²·T)-gain-query loop of
//!   Algorithm 1 (with incremental evaluators, each query is cheap);
//! * [`greedy_schedule_lazy`] — a lazy-evaluation (CELF-style) variant
//!   exploiting submodularity: stale heap entries only ever shrink, so most
//!   re-evaluations are skipped. Assigning a sensor to slot `t` only
//!   changes gains *within slot `t`*, which makes lazy evaluation
//!   particularly effective here.

use crate::errors::ScheduleBuildError;
use crate::problem::Problem;
use crate::schedule::{PeriodSchedule, ScheduleMode};
use cool_common::SensorId;
use cool_utility::{Evaluator, UtilityFunction};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Runs Algorithm 1 (or its `ρ ≤ 1` dual) and returns the per-period
/// schedule. Deterministic: ties break toward the lower slot, then lower
/// sensor index.
///
/// # Panics
///
/// Panics only if the utility produces a non-finite marginal gain
/// ([`Problem`] construction rules out every other failure mode); use
/// [`try_greedy_schedule`] for a `COOL`-coded error instead.
///
/// # Examples
///
/// ```
/// use cool_core::{greedy::greedy_schedule, problem::Problem};
/// use cool_energy::ChargeCycle;
/// use cool_utility::DetectionUtility;
///
/// let p = Problem::new(DetectionUtility::uniform(9, 0.4),
///                      ChargeCycle::from_rho(5.0, 15.0).unwrap(), 1).unwrap();
/// let s = greedy_schedule(&p);
/// assert!(s.is_feasible(p.cycle()));
/// ```
pub fn greedy_schedule<U: UtilityFunction>(problem: &Problem<U>) -> PeriodSchedule {
    try_greedy_schedule(problem).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`greedy_schedule`].
///
/// # Errors
///
/// Returns a [`ScheduleBuildError`] (with a stable `COOL` code) when the
/// utility produces a non-finite marginal value.
pub fn try_greedy_schedule<U: UtilityFunction>(
    problem: &Problem<U>,
) -> Result<PeriodSchedule, ScheduleBuildError> {
    if problem.cycle().rho() > 1.0 {
        greedy_active_naive(problem.utility(), problem.slots_per_period())
    } else {
        greedy_passive_naive(problem.utility(), problem.slots_per_period())
    }
}

/// Lazy (CELF-style) greedy; identical output to [`greedy_schedule`]
/// (asserted by the crate's property tests), asymptotically faster on large
/// instances.
///
/// # Panics
///
/// As [`greedy_schedule`]; use [`try_greedy_schedule_lazy`] for a
/// `COOL`-coded error instead.
pub fn greedy_schedule_lazy<U: UtilityFunction>(problem: &Problem<U>) -> PeriodSchedule {
    try_greedy_schedule_lazy(problem).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`greedy_schedule_lazy`].
///
/// # Errors
///
/// As [`try_greedy_schedule`].
pub fn try_greedy_schedule_lazy<U: UtilityFunction>(
    problem: &Problem<U>,
) -> Result<PeriodSchedule, ScheduleBuildError> {
    if problem.cycle().rho() > 1.0 {
        greedy_active_lazy(problem.utility(), problem.slots_per_period())
    } else {
        // Passive-slot allocation has no "stale entries only shrink"
        // structure for the *minimum* loss (losses can both grow and
        // shrink as sensors leave slots), so the lazy variant applies only
        // to the active case; fall back to the exact naive dual.
        greedy_passive_naive(problem.utility(), problem.slots_per_period())
    }
}

/// ρ > 1 greedy on raw parts (exposed for schedulers composing their own
/// horizon logic). `slots` is the period length `T`.
///
/// # Errors
///
/// Returns [`ScheduleBuildError::EmptySlotCount`] (`COOL-E002`) if
/// `slots == 0`, and [`ScheduleBuildError::NonFiniteGain`] (`COOL-E015`)
/// if the utility produces a NaN or infinite marginal gain.
pub fn greedy_active_naive<U: UtilityFunction>(
    utility: &U,
    slots: usize,
) -> Result<PeriodSchedule, ScheduleBuildError> {
    if slots == 0 {
        return Err(ScheduleBuildError::EmptySlotCount);
    }
    let n = utility.universe();
    let mut evaluators: Vec<U::Evaluator> = (0..slots).map(|_| utility.evaluator()).collect();
    let mut assignment = vec![usize::MAX; n];
    let mut unassigned: Vec<usize> = (0..n).collect();

    for _step in 0..n {
        let mut best: Option<(f64, usize, usize)> = None; // (gain, sensor, slot)
        for &v in &unassigned {
            for (t, eval) in evaluators.iter().enumerate() {
                let gain = eval.gain(SensorId(v));
                if !gain.is_finite() {
                    return Err(ScheduleBuildError::NonFiniteGain {
                        sensor: v,
                        slot: t,
                        value: gain,
                    });
                }
                let candidate = (gain, v, t);
                best = Some(match best {
                    None => candidate,
                    Some(current) => max_by_gain(current, candidate),
                });
            }
        }
        let Some((gain, v, t)) = best else {
            break; // n == 0: nothing to assign
        };
        // Monotonicity invariant: marginal gains of a monotone utility are
        // never negative (beyond roundoff).
        debug_assert!(
            gain >= -1e-9,
            "negative marginal gain {gain} for sensor {v} in slot {t}"
        );
        evaluators[t].insert(SensorId(v));
        assignment[v] = t;
        unassigned.retain(|&u| u != v);
    }
    Ok(PeriodSchedule::new(
        ScheduleMode::ActiveSlot,
        slots,
        assignment,
    ))
}

/// ρ ≤ 1 greedy: allocate passive slots by minimum decremental utility.
///
/// # Errors
///
/// As [`greedy_active_naive`].
pub fn greedy_passive_naive<U: UtilityFunction>(
    utility: &U,
    slots: usize,
) -> Result<PeriodSchedule, ScheduleBuildError> {
    if slots == 0 {
        return Err(ScheduleBuildError::EmptySlotCount);
    }
    let n = utility.universe();
    // Start with everyone active in every slot.
    let mut evaluators: Vec<U::Evaluator> = (0..slots)
        .map(|_| {
            let mut e = utility.evaluator();
            for v in 0..n {
                e.insert(SensorId(v));
            }
            e
        })
        .collect();
    let mut assignment = vec![usize::MAX; n];
    let mut unassigned: Vec<usize> = (0..n).collect();

    for _step in 0..n {
        let mut best: Option<(f64, usize, usize)> = None; // (loss, sensor, slot)
        for &v in &unassigned {
            for (t, eval) in evaluators.iter().enumerate() {
                let loss = eval.loss(SensorId(v));
                if !loss.is_finite() {
                    return Err(ScheduleBuildError::NonFiniteGain {
                        sensor: v,
                        slot: t,
                        value: loss,
                    });
                }
                let candidate = (loss, v, t);
                best = Some(match best {
                    None => candidate,
                    Some(current) => min_by_loss(current, candidate),
                });
            }
        }
        let Some((loss, v, t)) = best else {
            break; // n == 0: nothing to assign
        };
        debug_assert!(
            loss >= -1e-9,
            "negative marginal loss {loss} for sensor {v} in slot {t}"
        );
        evaluators[t].remove(SensorId(v));
        assignment[v] = t;
        unassigned.retain(|&u| u != v);
    }
    Ok(PeriodSchedule::new(
        ScheduleMode::PassiveSlot,
        slots,
        assignment,
    ))
}

/// Lazy-evaluation ρ > 1 greedy (CELF).
///
/// Key structural fact: inserting a sensor into slot `t` leaves the
/// evaluators of all other slots untouched, so a heap entry `(v, t', g)`
/// with `t' ≠ t` stays exact. We stamp entries with the per-slot version
/// and re-evaluate only entries whose slot has advanced.
///
/// # Errors
///
/// As [`greedy_active_naive`].
pub fn greedy_active_lazy<U: UtilityFunction>(
    utility: &U,
    slots: usize,
) -> Result<PeriodSchedule, ScheduleBuildError> {
    if slots == 0 {
        return Err(ScheduleBuildError::EmptySlotCount);
    }
    let n = utility.universe();
    let mut evaluators: Vec<U::Evaluator> = (0..slots).map(|_| utility.evaluator()).collect();
    let mut slot_version = vec![0u32; slots];
    let mut assigned = vec![false; n];
    let mut assignment = vec![usize::MAX; n];

    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(n * slots);
    for v in 0..n {
        for (t, eval) in evaluators.iter().enumerate() {
            let gain = eval.gain(SensorId(v));
            if !gain.is_finite() {
                return Err(ScheduleBuildError::NonFiniteGain {
                    sensor: v,
                    slot: t,
                    value: gain,
                });
            }
            heap.push(HeapEntry {
                gain,
                slot: t,
                sensor: v,
                version: 0,
            });
        }
    }

    let mut remaining = n;
    while remaining > 0 {
        let Some(entry) = heap.pop() else {
            // Unreachable: the heap always holds an entry per unassigned
            // (sensor, slot) pair. Guard anyway rather than panic.
            return Err(ScheduleBuildError::EmptySlotCount);
        };
        if assigned[entry.sensor] {
            continue;
        }
        if entry.version != slot_version[entry.slot] {
            // Stale: the slot advanced since this gain was computed.
            // Submodularity ⇒ the true gain is no larger; recompute, re-push.
            let gain = evaluators[entry.slot].gain(SensorId(entry.sensor));
            if !gain.is_finite() {
                return Err(ScheduleBuildError::NonFiniteGain {
                    sensor: entry.sensor,
                    slot: entry.slot,
                    value: gain,
                });
            }
            // The CELF correctness invariant: stale entries only shrink.
            debug_assert!(
                gain <= entry.gain + 1e-9,
                "stale gain grew from {} to {gain}: utility is not submodular",
                entry.gain
            );
            heap.push(HeapEntry {
                gain,
                slot: entry.slot,
                sensor: entry.sensor,
                version: slot_version[entry.slot],
            });
            continue;
        }
        // Fresh maximal entry: assign.
        evaluators[entry.slot].insert(SensorId(entry.sensor));
        slot_version[entry.slot] += 1;
        assigned[entry.sensor] = true;
        assignment[entry.sensor] = entry.slot;
        remaining -= 1;
    }
    Ok(PeriodSchedule::new(
        ScheduleMode::ActiveSlot,
        slots,
        assignment,
    ))
}

/// Greedy tie-breaking total order, shared by the naive loop and the lazy
/// heap so they produce identical schedules: larger gain wins; ties go to
/// the lower sensor index, then the lower slot.
fn max_by_gain(
    current: (f64, usize, usize),
    candidate: (f64, usize, usize),
) -> (f64, usize, usize) {
    let better = candidate.0 > current.0
        || (candidate.0 == current.0 && (candidate.1, candidate.2) < (current.1, current.2));
    if better {
        candidate
    } else {
        current
    }
}

/// Dual order for the passive allocation: smaller loss wins; ties go to the
/// lower sensor index, then the lower slot.
fn min_by_loss(
    current: (f64, usize, usize),
    candidate: (f64, usize, usize),
) -> (f64, usize, usize) {
    let better = candidate.0 < current.0
        || (candidate.0 == current.0 && (candidate.1, candidate.2) < (current.1, current.2));
    if better {
        candidate
    } else {
        current
    }
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    gain: f64,
    slot: usize,
    sensor: usize,
    version: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on gain; ties prefer LOWER sensor then LOWER slot —
        // the same total order as `max_by_gain` (components reversed
        // because BinaryHeap pops the maximum). Gains are checked finite
        // before entering the heap, so `partial_cmp` cannot fail; treat
        // the impossible NaN as equal rather than panic.
        self.gain
            .partial_cmp(&other.gain)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.sensor.cmp(&self.sensor))
            .then_with(|| other.slot.cmp(&self.slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::{SeedSequence, SensorSet};
    use cool_energy::ChargeCycle;
    use cool_utility::{DetectionUtility, LinearUtility, SumUtility};
    use proptest::prelude::*;

    fn sunny_problem(n: usize) -> Problem<DetectionUtility> {
        Problem::new(
            DetectionUtility::uniform(n, 0.4),
            ChargeCycle::paper_sunny(),
            1,
        )
        .unwrap()
    }

    #[test]
    fn greedy_balances_identical_sensors() {
        // 8 identical sensors over 4 slots → 2 per slot (any imbalance
        // would contradict diminishing returns).
        let p = sunny_problem(8);
        let s = greedy_schedule(&p);
        for t in 0..4 {
            assert_eq!(s.active_set(t).len(), 2, "slot {t}");
        }
        assert!(s.is_feasible(p.cycle()));
    }

    #[test]
    fn greedy_spreads_before_stacking() {
        // 3 sensors, 4 slots: each goes to its own slot.
        let p = sunny_problem(3);
        let s = greedy_schedule(&p);
        let sizes: Vec<usize> = (0..4).map(|t| s.active_set(t).len()).collect();
        assert_eq!(sizes.iter().filter(|&&x| x == 1).count(), 3);
        assert_eq!(sizes.iter().filter(|&&x| x == 0).count(), 1);
    }

    #[test]
    fn lazy_matches_naive_on_random_instances() {
        let seq = SeedSequence::new(33);
        for trial in 0..20u64 {
            let mut rng = seq.nth_rng(trial);
            let n = 3 + (trial as usize % 10);
            let m = 1 + (trial as usize % 4);
            let u = crate::instances::random_multi_target(n, m, 0.5, 0.4, &mut rng);
            let naive = greedy_active_naive(&u, 4).unwrap();
            let lazy = greedy_active_lazy(&u, 4).unwrap();
            assert_eq!(
                naive.assignment(),
                lazy.assignment(),
                "trial {trial}: naive and lazy greedy disagree"
            );
        }
    }

    #[test]
    fn passive_greedy_is_feasible_and_balanced() {
        // ρ = 1/3 → T = 4, one passive slot each; 8 identical sensors →
        // passive slots spread 2 per slot.
        let cycle = ChargeCycle::from_rho(1.0 / 3.0, 15.0).unwrap();
        let p = Problem::new(DetectionUtility::uniform(8, 0.4), cycle, 1).unwrap();
        let s = greedy_schedule(&p);
        assert_eq!(s.mode(), ScheduleMode::PassiveSlot);
        assert!(s.is_feasible(cycle));
        for t in 0..4 {
            assert_eq!(s.active_set(t).len(), 6, "slot {t}: 8 − 2 passive");
        }
    }

    #[test]
    fn single_sensor_gets_a_slot() {
        let p = sunny_problem(1);
        let s = greedy_schedule(&p);
        assert_eq!(s.n_sensors(), 1);
        assert!(s.assigned_slot(SensorId(0)).index() < 4);
    }

    #[test]
    fn linear_utility_greedy_achieves_everything() {
        // Modular utility: every assignment achieves Σw per period; greedy
        // must too.
        let u = LinearUtility::new(vec![1.0, 2.0, 3.0]);
        let s = greedy_active_naive(&u, 4).unwrap();
        assert!((s.period_utility(&u) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn multi_target_greedy_covers_each_target_every_slot_when_possible() {
        // Two disjoint targets with 4 sensors each over T=4: greedy should
        // leave no slot without coverage of either target.
        let cov0 = SensorSet::from_indices(8, 0..4);
        let cov1 = SensorSet::from_indices(8, 4..8);
        let u = SumUtility::multi_target_detection(&[cov0.clone(), cov1.clone()], 0.4);
        let s = greedy_active_naive(&u, 4).unwrap();
        for t in 0..4 {
            let active = s.active_set(t);
            assert!(!active.is_disjoint(&cov0), "target 0 uncovered at slot {t}");
            assert!(!active.is_disjoint(&cov1), "target 1 uncovered at slot {t}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Lemma 4.1 (empirical): greedy ≥ ½ · OPT on exhaustively solved
        /// instances.
        #[test]
        fn greedy_is_half_optimal(
            n in 2usize..7,
            m in 1usize..3,
            seed in any::<u64>(),
        ) {
            let mut rng = SeedSequence::new(seed).nth_rng(0);
            let u = crate::instances::random_multi_target(n, m, 0.6, 0.4, &mut rng);
            let slots = 3;
            let greedy = greedy_active_naive(&u, slots).unwrap();
            let opt = crate::optimal::exhaustive_optimal(&u, slots, ScheduleMode::ActiveSlot);
            let g = greedy.period_utility(&u);
            let o = opt.period_utility(&u);
            prop_assert!(g + 1e-9 >= 0.5 * o, "greedy {} < half of optimal {}", g, o);
            prop_assert!(g <= o + 1e-9, "greedy cannot beat optimal");
        }

        /// Theorem 4.4 (empirical): the passive-slot greedy is ≥ ½ · OPT.
        #[test]
        fn passive_greedy_is_half_optimal(
            n in 2usize..6,
            seed in any::<u64>(),
        ) {
            let mut rng = SeedSequence::new(seed).nth_rng(1);
            let u = crate::instances::random_multi_target(n, 2, 0.6, 0.4, &mut rng);
            let slots = 3;
            let greedy = greedy_passive_naive(&u, slots).unwrap();
            let opt = crate::optimal::exhaustive_optimal(&u, slots, ScheduleMode::PassiveSlot);
            let g = greedy.period_utility(&u);
            let o = opt.period_utility(&u);
            prop_assert!(g + 1e-9 >= 0.5 * o, "greedy {} < half of optimal {}", g, o);
        }

        /// Lazy and naive agree on every instance.
        #[test]
        fn lazy_equals_naive(
            n in 1usize..12,
            slots in 1usize..5,
            seed in any::<u64>(),
        ) {
            let mut rng = SeedSequence::new(seed).nth_rng(2);
            let u = crate::instances::random_multi_target(n, 2, 0.5, 0.5, &mut rng);
            let naive = greedy_active_naive(&u, slots).unwrap();
            let lazy = greedy_active_lazy(&u, slots).unwrap();
            prop_assert_eq!(naive.assignment(), lazy.assignment());
        }
    }
}
