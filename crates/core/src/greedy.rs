//! The Greedy Hill-Climbing Activation Scheme (Algorithm 1, §IV).
//!
//! `ρ > 1`: schedule sensors one by one, each time assigning the
//! (sensor, slot) pair with the **maximum incremental utility** given
//! everything scheduled so far; ½-approximate for `L = T` (Lemma 4.1) and
//! for `L = αT` by repeating the period schedule (Theorem 4.3).
//!
//! `ρ ≤ 1`: start from "everyone active everywhere" and allocate each
//! sensor's **passive** slot with the **minimum decremental utility**
//! (§IV-B, Theorem 4.4) — also ½-approximate.
//!
//! Two implementations are provided with identical outputs:
//!
//! * [`greedy_schedule`] — the literal O(n²·T)-gain-query loop of
//!   Algorithm 1 (with incremental evaluators, each query is cheap);
//! * [`greedy_schedule_lazy`] — a lazy-evaluation (CELF-style) variant
//!   exploiting submodularity. For `ρ > 1` stale heap entries only ever
//!   *shrink* (a max-heap of gains); for `ρ ≤ 1` stale entries only ever
//!   *grow* (a min-heap of losses), because removing sensors shrinks the
//!   base set and marginal contributions rise under diminishing returns.
//!   Either way, touching slot `t` only perturbs entries *within slot
//!   `t`*, which makes lazy evaluation particularly effective here.
//!
//! On large instances (`n·T ≥` [`PARALLEL_FANOUT_MIN_CELLS`]) the lazy
//! variants fan their `O(n·T)` initial gain/loss queries across the
//! worker threads of [`cool_common::parallel`]; results are written back
//! by sensor index, so the heap contents — and therefore the schedule —
//! are identical to a sequential run.
//!
//! All variants obtain their per-slot evaluators through
//! [`UtilityFunction::evaluator`], so a multi-target
//! [`SumUtility`](cool_utility::SumUtility) answers each gain/loss query
//! in O(deg(v)) incident parts via its CSR incidence index rather than
//! walking all `m` parts — sparse gains are bitwise equal to dense ones
//! (non-incident parts contribute an exact `0.0`), so this is purely a
//! representation change; schedules are unaffected.
//!
//! # Tie-breaking
//!
//! Every implementation in this module shares one total order, pinned by
//! the `tie_break_*` regression tests and the naive≡lazy property tests:
//! **the larger gain (or smaller loss) wins; exact ties go to the lower
//! sensor index, then the lower slot index.** DESIGN.md and the README
//! defer to this paragraph — it is the single normative statement of the
//! order.

use crate::errors::ScheduleBuildError;
use crate::problem::Problem;
use crate::schedule::{PeriodSchedule, ScheduleMode};
use cool_common::parallel::{default_sweep_threads, parallel_map};
use cool_common::SensorId;
use cool_utility::{Evaluator, UtilityFunction};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Cell count `n·T` above which the lazy variants parallelise their
/// initial gain/loss fan-out. Below it, thread start-up costs more than
/// the queries themselves.
pub const PARALLEL_FANOUT_MIN_CELLS: usize = 4096;

/// Worker threads the auto-tuned lazy entry points use for the initial
/// fan-out: sequential under the cell threshold, the sweep default above.
fn fanout_threads(n: usize, slots: usize) -> usize {
    if n.saturating_mul(slots) >= PARALLEL_FANOUT_MIN_CELLS {
        default_sweep_threads()
    } else {
        1
    }
}

/// Computes the initial query matrix `rows[v][t] = query(&evaluators[t],
/// v)` for a lazy variant, fanned across `threads` workers. Rows come back
/// indexed by sensor, so downstream heap construction is order-identical
/// to a sequential pass.
fn initial_rows<E, F>(evaluators: &[E], n: usize, threads: usize, query: F) -> Vec<Vec<f64>>
where
    E: Evaluator + Sync,
    F: Fn(&E, SensorId) -> f64 + Sync,
{
    parallel_map(threads, (0..n).collect(), |v| {
        evaluators
            .iter()
            .map(|eval| query(eval, SensorId(v)))
            .collect()
    })
}

/// Runs Algorithm 1 (or its `ρ ≤ 1` dual) and returns the per-period
/// schedule. Deterministic: ties break toward the lower sensor index,
/// then the lower slot (see the module-level *Tie-breaking* section).
///
/// # Panics
///
/// Panics only if the utility produces a non-finite marginal gain
/// ([`Problem`] construction rules out every other failure mode); use
/// [`try_greedy_schedule`] for a `COOL`-coded error instead.
///
/// # Examples
///
/// ```
/// use cool_core::{greedy::greedy_schedule, problem::Problem};
/// use cool_energy::ChargeCycle;
/// use cool_utility::DetectionUtility;
///
/// let p = Problem::new(DetectionUtility::uniform(9, 0.4),
///                      ChargeCycle::from_rho(5.0, 15.0).unwrap(), 1).unwrap();
/// let s = greedy_schedule(&p);
/// assert!(s.is_feasible(p.cycle()));
/// ```
pub fn greedy_schedule<U: UtilityFunction>(problem: &Problem<U>) -> PeriodSchedule {
    try_greedy_schedule(problem).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`greedy_schedule`].
///
/// # Errors
///
/// Returns a [`ScheduleBuildError`] (with a stable `COOL` code) when the
/// utility produces a non-finite marginal value.
pub fn try_greedy_schedule<U: UtilityFunction>(
    problem: &Problem<U>,
) -> Result<PeriodSchedule, ScheduleBuildError> {
    if problem.cycle().rho() > 1.0 {
        greedy_active_naive(problem.utility(), problem.slots_per_period())
    } else {
        greedy_passive_naive(problem.utility(), problem.slots_per_period())
    }
}

/// Lazy (CELF-style) greedy; identical output to [`greedy_schedule`]
/// (asserted by the crate's property tests), asymptotically faster on large
/// instances.
///
/// # Panics
///
/// As [`greedy_schedule`]; use [`try_greedy_schedule_lazy`] for a
/// `COOL`-coded error instead.
pub fn greedy_schedule_lazy<U>(problem: &Problem<U>) -> PeriodSchedule
where
    U: UtilityFunction + Sync,
    U::Evaluator: Send + Sync,
{
    try_greedy_schedule_lazy(problem).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`greedy_schedule_lazy`].
///
/// # Errors
///
/// As [`try_greedy_schedule`].
pub fn try_greedy_schedule_lazy<U>(
    problem: &Problem<U>,
) -> Result<PeriodSchedule, ScheduleBuildError>
where
    U: UtilityFunction + Sync,
    U::Evaluator: Send + Sync,
{
    if problem.cycle().rho() > 1.0 {
        greedy_active_lazy(problem.utility(), problem.slots_per_period())
    } else {
        greedy_passive_lazy(problem.utility(), problem.slots_per_period())
    }
}

/// ρ > 1 greedy on raw parts (exposed for schedulers composing their own
/// horizon logic). `slots` is the period length `T`.
///
/// # Errors
///
/// Returns [`ScheduleBuildError::EmptySlotCount`] (`COOL-E002`) if
/// `slots == 0`, and [`ScheduleBuildError::NonFiniteGain`] (`COOL-E015`)
/// if the utility produces a NaN or infinite marginal gain.
pub fn greedy_active_naive<U: UtilityFunction>(
    utility: &U,
    slots: usize,
) -> Result<PeriodSchedule, ScheduleBuildError> {
    if slots == 0 {
        return Err(ScheduleBuildError::EmptySlotCount);
    }
    let n = utility.universe();
    let mut evaluators: Vec<U::Evaluator> = (0..slots).map(|_| utility.evaluator()).collect();
    let mut assignment = vec![usize::MAX; n];
    let mut unassigned: Vec<usize> = (0..n).collect();

    for _step in 0..n {
        let mut best: Option<(f64, usize, usize)> = None; // (gain, sensor, slot)
        for &v in &unassigned {
            for (t, eval) in evaluators.iter().enumerate() {
                let gain = eval.gain(SensorId(v));
                if !gain.is_finite() {
                    return Err(ScheduleBuildError::NonFiniteGain {
                        sensor: v,
                        slot: t,
                        value: gain,
                    });
                }
                let candidate = (gain, v, t);
                best = Some(match best {
                    None => candidate,
                    Some(current) => max_by_gain(current, candidate),
                });
            }
        }
        let Some((gain, v, t)) = best else {
            break; // n == 0: nothing to assign
        };
        // Monotonicity invariant: marginal gains of a monotone utility are
        // never negative (beyond roundoff).
        cool_common::invariant!(
            gain >= -1e-9,
            "negative marginal gain {gain} for sensor {v} in slot {t}"
        );
        evaluators[t].insert(SensorId(v));
        assignment[v] = t;
        unassigned.retain(|&u| u != v);
    }
    Ok(PeriodSchedule::new(
        ScheduleMode::ActiveSlot,
        slots,
        assignment,
    ))
}

/// ρ ≤ 1 greedy: allocate passive slots by minimum decremental utility.
///
/// # Errors
///
/// As [`greedy_active_naive`].
pub fn greedy_passive_naive<U: UtilityFunction>(
    utility: &U,
    slots: usize,
) -> Result<PeriodSchedule, ScheduleBuildError> {
    if slots == 0 {
        return Err(ScheduleBuildError::EmptySlotCount);
    }
    let n = utility.universe();
    // Start with everyone active in every slot.
    let mut evaluators: Vec<U::Evaluator> = (0..slots)
        .map(|_| {
            let mut e = utility.evaluator();
            for v in 0..n {
                e.insert(SensorId(v));
            }
            e
        })
        .collect();
    let mut assignment = vec![usize::MAX; n];
    let mut unassigned: Vec<usize> = (0..n).collect();

    for _step in 0..n {
        let mut best: Option<(f64, usize, usize)> = None; // (loss, sensor, slot)
        for &v in &unassigned {
            for (t, eval) in evaluators.iter().enumerate() {
                let loss = eval.loss(SensorId(v));
                if !loss.is_finite() {
                    return Err(ScheduleBuildError::NonFiniteGain {
                        sensor: v,
                        slot: t,
                        value: loss,
                    });
                }
                let candidate = (loss, v, t);
                best = Some(match best {
                    None => candidate,
                    Some(current) => min_by_loss(current, candidate),
                });
            }
        }
        let Some((loss, v, t)) = best else {
            break; // n == 0: nothing to assign
        };
        cool_common::invariant!(
            loss >= -1e-9,
            "negative marginal loss {loss} for sensor {v} in slot {t}"
        );
        evaluators[t].remove(SensorId(v));
        assignment[v] = t;
        unassigned.retain(|&u| u != v);
    }
    Ok(PeriodSchedule::new(
        ScheduleMode::PassiveSlot,
        slots,
        assignment,
    ))
}

/// Lazy-evaluation ρ > 1 greedy (CELF).
///
/// Key structural fact: inserting a sensor into slot `t` leaves the
/// evaluators of all other slots untouched, so a heap entry `(v, t', g)`
/// with `t' ≠ t` stays exact. We stamp entries with the per-slot version
/// and re-evaluate only entries whose slot has advanced.
///
/// # Errors
///
/// As [`greedy_active_naive`].
pub fn greedy_active_lazy<U>(
    utility: &U,
    slots: usize,
) -> Result<PeriodSchedule, ScheduleBuildError>
where
    U: UtilityFunction + Sync,
    U::Evaluator: Send + Sync,
{
    let threads = fanout_threads(utility.universe(), slots);
    greedy_active_lazy_with_threads(utility, slots, threads)
}

/// [`greedy_active_lazy`] with an explicit worker-thread count for the
/// initial gain fan-out (`1` forces a sequential pass). Output is
/// independent of `threads`.
///
/// # Errors
///
/// As [`greedy_active_naive`].
pub fn greedy_active_lazy_with_threads<U>(
    utility: &U,
    slots: usize,
    threads: usize,
) -> Result<PeriodSchedule, ScheduleBuildError>
where
    U: UtilityFunction + Sync,
    U::Evaluator: Send + Sync,
{
    if slots == 0 {
        return Err(ScheduleBuildError::EmptySlotCount);
    }
    let n = utility.universe();
    let mut evaluators: Vec<U::Evaluator> = (0..slots).map(|_| utility.evaluator()).collect();
    let mut slot_version = vec![0u32; slots];
    let mut assigned = vec![false; n];
    let mut assignment = vec![usize::MAX; n];

    let rows = initial_rows(&evaluators, n, threads, Evaluator::gain);
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(n * slots);
    for (v, row) in rows.iter().enumerate() {
        for (t, &gain) in row.iter().enumerate() {
            if !gain.is_finite() {
                return Err(ScheduleBuildError::NonFiniteGain {
                    sensor: v,
                    slot: t,
                    value: gain,
                });
            }
            heap.push(HeapEntry {
                gain,
                slot: t,
                sensor: v,
                version: 0,
            });
        }
    }

    let mut remaining = n;
    while remaining > 0 {
        let Some(entry) = heap.pop() else {
            // Unreachable: the heap always holds an entry per unassigned
            // (sensor, slot) pair. Guard anyway rather than panic.
            return Err(ScheduleBuildError::EmptySlotCount);
        };
        if assigned[entry.sensor] {
            continue;
        }
        if entry.version != slot_version[entry.slot] {
            // Stale: the slot advanced since this gain was computed.
            // Submodularity ⇒ the true gain is no larger; recompute, re-push.
            let gain = evaluators[entry.slot].gain(SensorId(entry.sensor));
            if !gain.is_finite() {
                return Err(ScheduleBuildError::NonFiniteGain {
                    sensor: entry.sensor,
                    slot: entry.slot,
                    value: gain,
                });
            }
            // The CELF correctness invariant: stale entries only shrink.
            cool_common::invariant!(
                gain <= entry.gain + 1e-9,
                "stale gain grew from {} to {gain}: utility is not submodular",
                entry.gain
            );
            heap.push(HeapEntry {
                gain,
                slot: entry.slot,
                sensor: entry.sensor,
                version: slot_version[entry.slot],
            });
            continue;
        }
        // Fresh maximal entry: assign.
        evaluators[entry.slot].insert(SensorId(entry.sensor));
        slot_version[entry.slot] += 1;
        assigned[entry.sensor] = true;
        assignment[entry.sensor] = entry.slot;
        remaining -= 1;
    }
    Ok(PeriodSchedule::new(
        ScheduleMode::ActiveSlot,
        slots,
        assignment,
    ))
}

/// Lazy-evaluation ρ ≤ 1 greedy: the CELF *dual* of
/// [`greedy_active_lazy`], a min-heap over decremental losses.
///
/// Correctness mirrors the active case with the inequality flipped. The
/// loss of removing `v` from slot `t` equals the marginal gain of `v` on
/// the base set `S_t ∖ {v}`; every pop removes a sensor, so the base only
/// *shrinks*, and by submodularity marginal gains on smaller bases are
/// *larger* — a stale recorded loss is therefore a **lower bound** on the
/// true loss, and popping a fresh minimum is safe (every other entry's
/// true loss is at least its recorded one, which is at least the popped
/// minimum). As in the active case, removing from slot `t` only perturbs
/// `evaluators[t]`, so per-slot version stamps keep other slots exact.
///
/// # Errors
///
/// As [`greedy_active_naive`].
pub fn greedy_passive_lazy<U>(
    utility: &U,
    slots: usize,
) -> Result<PeriodSchedule, ScheduleBuildError>
where
    U: UtilityFunction + Sync,
    U::Evaluator: Send + Sync,
{
    let threads = fanout_threads(utility.universe(), slots);
    greedy_passive_lazy_with_threads(utility, slots, threads)
}

/// [`greedy_passive_lazy`] with an explicit worker-thread count for the
/// full-evaluator build and initial loss fan-out (`1` forces a sequential
/// pass). Output is independent of `threads`.
///
/// # Errors
///
/// As [`greedy_active_naive`].
pub fn greedy_passive_lazy_with_threads<U>(
    utility: &U,
    slots: usize,
    threads: usize,
) -> Result<PeriodSchedule, ScheduleBuildError>
where
    U: UtilityFunction + Sync,
    U::Evaluator: Send + Sync,
{
    if slots == 0 {
        return Err(ScheduleBuildError::EmptySlotCount);
    }
    let n = utility.universe();
    // Start with everyone active in every slot; the T full evaluators are
    // independent, so build them on the fan-out workers too.
    let mut evaluators: Vec<U::Evaluator> = parallel_map(threads, (0..slots).collect(), |_t| {
        let mut e = utility.evaluator();
        for v in 0..n {
            e.insert(SensorId(v));
        }
        e
    });
    let mut slot_version = vec![0u32; slots];
    let mut assigned = vec![false; n];
    let mut assignment = vec![usize::MAX; n];

    let rows = initial_rows(&evaluators, n, threads, Evaluator::loss);
    let mut heap: BinaryHeap<PassiveHeapEntry> = BinaryHeap::with_capacity(n * slots);
    for (v, row) in rows.iter().enumerate() {
        for (t, &loss) in row.iter().enumerate() {
            if !loss.is_finite() {
                return Err(ScheduleBuildError::NonFiniteGain {
                    sensor: v,
                    slot: t,
                    value: loss,
                });
            }
            heap.push(PassiveHeapEntry {
                loss,
                slot: t,
                sensor: v,
                version: 0,
            });
        }
    }

    let mut remaining = n;
    while remaining > 0 {
        let Some(entry) = heap.pop() else {
            // Unreachable: the heap always holds an entry per unassigned
            // (sensor, slot) pair. Guard anyway rather than panic.
            return Err(ScheduleBuildError::EmptySlotCount);
        };
        if assigned[entry.sensor] {
            continue;
        }
        if entry.version != slot_version[entry.slot] {
            // Stale: the slot advanced since this loss was computed.
            // Submodularity ⇒ the true loss is no smaller; recompute, re-push.
            let loss = evaluators[entry.slot].loss(SensorId(entry.sensor));
            if !loss.is_finite() {
                return Err(ScheduleBuildError::NonFiniteGain {
                    sensor: entry.sensor,
                    slot: entry.slot,
                    value: loss,
                });
            }
            // The dual CELF correctness invariant: stale losses only grow.
            cool_common::invariant!(
                loss >= entry.loss - 1e-9,
                "stale loss shrank from {} to {loss}: utility is not submodular",
                entry.loss
            );
            heap.push(PassiveHeapEntry {
                loss,
                slot: entry.slot,
                sensor: entry.sensor,
                version: slot_version[entry.slot],
            });
            continue;
        }
        // Fresh minimal entry: allocate this sensor's passive slot.
        evaluators[entry.slot].remove(SensorId(entry.sensor));
        slot_version[entry.slot] += 1;
        assigned[entry.sensor] = true;
        assignment[entry.sensor] = entry.slot;
        remaining -= 1;
    }
    Ok(PeriodSchedule::new(
        ScheduleMode::PassiveSlot,
        slots,
        assignment,
    ))
}

/// Greedy tie-breaking total order, shared by the naive loop, the lazy
/// heap and the warm-start repair engine so they produce identical
/// schedules: larger gain wins; ties go to the lower sensor index, then
/// the lower slot.
pub(crate) fn max_by_gain(
    current: (f64, usize, usize),
    candidate: (f64, usize, usize),
) -> (f64, usize, usize) {
    let better = candidate.0 > current.0
        || (candidate.0 == current.0 && (candidate.1, candidate.2) < (current.1, current.2));
    if better {
        candidate
    } else {
        current
    }
}

/// Dual order for the passive allocation: smaller loss wins; ties go to the
/// lower sensor index, then the lower slot.
pub(crate) fn min_by_loss(
    current: (f64, usize, usize),
    candidate: (f64, usize, usize),
) -> (f64, usize, usize) {
    let better = candidate.0 < current.0
        || (candidate.0 == current.0 && (candidate.1, candidate.2) < (current.1, current.2));
    if better {
        candidate
    } else {
        current
    }
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    gain: f64,
    slot: usize,
    sensor: usize,
    version: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on gain; ties prefer LOWER sensor then LOWER slot —
        // the same total order as `max_by_gain` (components reversed
        // because BinaryHeap pops the maximum). Gains are checked finite
        // before entering the heap, so `partial_cmp` cannot fail; treat
        // the impossible NaN as equal rather than panic.
        self.gain
            .partial_cmp(&other.gain)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.sensor.cmp(&self.sensor))
            .then_with(|| other.slot.cmp(&self.slot))
    }
}

#[derive(Debug, Clone, Copy)]
struct PassiveHeapEntry {
    loss: f64,
    slot: usize,
    sensor: usize,
    version: u32,
}

impl PartialEq for PassiveHeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for PassiveHeapEntry {}

impl PartialOrd for PassiveHeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PassiveHeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap pops the maximum, so reverse the loss comparison to
        // get a min-heap; ties prefer LOWER sensor then LOWER slot — the
        // same total order as `min_by_loss`. Losses are checked finite
        // before entering the heap.
        other
            .loss
            .partial_cmp(&self.loss)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.sensor.cmp(&self.sensor))
            .then_with(|| other.slot.cmp(&self.slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::{SeedSequence, SensorSet};
    use cool_energy::ChargeCycle;
    use cool_utility::{DetectionUtility, LinearUtility, SumUtility};
    use proptest::prelude::*;

    fn sunny_problem(n: usize) -> Problem<DetectionUtility> {
        Problem::new(
            DetectionUtility::uniform(n, 0.4),
            ChargeCycle::paper_sunny(),
            1,
        )
        .unwrap()
    }

    #[test]
    fn greedy_balances_identical_sensors() {
        // 8 identical sensors over 4 slots → 2 per slot (any imbalance
        // would contradict diminishing returns).
        let p = sunny_problem(8);
        let s = greedy_schedule(&p);
        for t in 0..4 {
            assert_eq!(s.active_set(t).len(), 2, "slot {t}");
        }
        assert!(s.is_feasible(p.cycle()));
    }

    #[test]
    fn greedy_spreads_before_stacking() {
        // 3 sensors, 4 slots: each goes to its own slot.
        let p = sunny_problem(3);
        let s = greedy_schedule(&p);
        let sizes: Vec<usize> = (0..4).map(|t| s.active_set(t).len()).collect();
        assert_eq!(sizes.iter().filter(|&&x| x == 1).count(), 3);
        assert_eq!(sizes.iter().filter(|&&x| x == 0).count(), 1);
    }

    #[test]
    fn lazy_matches_naive_on_random_instances() {
        let seq = SeedSequence::new(33);
        for trial in 0..20u64 {
            let mut rng = seq.nth_rng(trial);
            let n = 3 + (trial as usize % 10);
            let m = 1 + (trial as usize % 4);
            let u = crate::instances::random_multi_target(n, m, 0.5, 0.4, &mut rng);
            let naive = greedy_active_naive(&u, 4).unwrap();
            let lazy = greedy_active_lazy(&u, 4).unwrap();
            assert_eq!(
                naive.assignment(),
                lazy.assignment(),
                "trial {trial}: naive and lazy greedy disagree"
            );
        }
    }

    #[test]
    fn passive_lazy_matches_naive_on_random_instances() {
        let seq = SeedSequence::new(34);
        for trial in 0..20u64 {
            let mut rng = seq.nth_rng(trial);
            let n = 3 + (trial as usize % 10);
            let m = 1 + (trial as usize % 4);
            let u = crate::instances::random_multi_target(n, m, 0.5, 0.4, &mut rng);
            let naive = greedy_passive_naive(&u, 4).unwrap();
            let lazy = greedy_passive_lazy(&u, 4).unwrap();
            assert_eq!(
                naive.assignment(),
                lazy.assignment(),
                "trial {trial}: naive and lazy passive greedy disagree"
            );
            assert_eq!(lazy.mode(), ScheduleMode::PassiveSlot);
        }
    }

    #[test]
    fn tie_break_prefers_lower_sensor_then_lower_slot() {
        // The normative order (module doc): ties go to the lower SENSOR
        // first, then the lower slot. (sensor 0, slot 1) must beat
        // (sensor 2, slot 0) at equal gain/loss in every comparator.
        assert_eq!(max_by_gain((1.0, 2, 0), (1.0, 0, 1)), (1.0, 0, 1));
        assert_eq!(max_by_gain((1.0, 0, 1), (1.0, 2, 0)), (1.0, 0, 1));
        assert_eq!(max_by_gain((1.0, 0, 1), (1.0, 0, 2)), (1.0, 0, 1));
        assert_eq!(min_by_loss((1.0, 2, 0), (1.0, 0, 1)), (1.0, 0, 1));
        assert_eq!(min_by_loss((1.0, 0, 2), (1.0, 0, 1)), (1.0, 0, 1));
        // A strictly better value always wins regardless of indices.
        assert_eq!(max_by_gain((1.0, 0, 0), (2.0, 9, 9)), (2.0, 9, 9));
        assert_eq!(min_by_loss((1.0, 0, 0), (0.5, 9, 9)), (0.5, 9, 9));

        let entry = |gain, sensor, slot| HeapEntry {
            gain,
            sensor,
            slot,
            version: 0,
        };
        let mut heap = BinaryHeap::from([entry(1.0, 2, 0), entry(1.0, 0, 1), entry(1.0, 0, 2)]);
        let first = heap.pop().unwrap();
        assert_eq!((first.sensor, first.slot), (0, 1), "max-heap tie order");

        let pentry = |loss, sensor, slot| PassiveHeapEntry {
            loss,
            sensor,
            slot,
            version: 0,
        };
        let mut pheap = BinaryHeap::from([pentry(1.0, 2, 0), pentry(1.0, 0, 1), pentry(1.0, 0, 2)]);
        let pfirst = pheap.pop().unwrap();
        assert_eq!((pfirst.sensor, pfirst.slot), (0, 1), "min-heap tie order");
        let psecond = pheap.pop().unwrap();
        assert_eq!((psecond.sensor, psecond.slot), (0, 2));
    }

    #[test]
    fn tie_break_pins_assignment_across_all_variants() {
        // 6 identical sensors over T = 4: every greedy step is a mass tie,
        // so the schedule is determined entirely by the tie-break order.
        // Active: sensor v takes the lowest-index emptiest slot → v mod 4.
        // Passive (everyone starts active everywhere): same spread, since
        // removing from a fuller slot costs least and ties resolve the
        // same way.
        let u = DetectionUtility::uniform(6, 0.4);
        let expected = vec![0, 1, 2, 3, 0, 1];
        let runs: [(&str, PeriodSchedule); 4] = [
            ("active naive", greedy_active_naive(&u, 4).unwrap()),
            ("active lazy", greedy_active_lazy(&u, 4).unwrap()),
            (
                "active lazy threads=4",
                greedy_active_lazy_with_threads(&u, 4, 4).unwrap(),
            ),
            ("passive naive", greedy_passive_naive(&u, 4).unwrap()),
        ];
        for (label, s) in runs {
            assert_eq!(s.assignment(), expected.as_slice(), "{label}");
        }
        let passive_expected = greedy_passive_naive(&u, 4).unwrap();
        for threads in [1usize, 4] {
            let lazy = greedy_passive_lazy_with_threads(&u, 4, threads).unwrap();
            assert_eq!(
                lazy.assignment(),
                passive_expected.assignment(),
                "passive lazy threads={threads}"
            );
        }
    }

    #[test]
    fn threaded_fanout_is_deterministic() {
        let mut rng = SeedSequence::new(77).nth_rng(0);
        let u = crate::instances::random_multi_target(24, 3, 0.5, 0.4, &mut rng);
        let active_seq = greedy_active_lazy_with_threads(&u, 5, 1).unwrap();
        let active_par = greedy_active_lazy_with_threads(&u, 5, 4).unwrap();
        assert_eq!(active_seq.assignment(), active_par.assignment());
        let passive_seq = greedy_passive_lazy_with_threads(&u, 5, 1).unwrap();
        let passive_par = greedy_passive_lazy_with_threads(&u, 5, 4).unwrap();
        assert_eq!(passive_seq.assignment(), passive_par.assignment());
    }

    #[test]
    fn passive_greedy_is_feasible_and_balanced() {
        // ρ = 1/3 → T = 4, one passive slot each; 8 identical sensors →
        // passive slots spread 2 per slot.
        let cycle = ChargeCycle::from_rho(1.0 / 3.0, 15.0).unwrap();
        let p = Problem::new(DetectionUtility::uniform(8, 0.4), cycle, 1).unwrap();
        let s = greedy_schedule(&p);
        assert_eq!(s.mode(), ScheduleMode::PassiveSlot);
        assert!(s.is_feasible(cycle));
        for t in 0..4 {
            assert_eq!(s.active_set(t).len(), 6, "slot {t}: 8 − 2 passive");
        }
    }

    #[test]
    fn single_sensor_gets_a_slot() {
        let p = sunny_problem(1);
        let s = greedy_schedule(&p);
        assert_eq!(s.n_sensors(), 1);
        assert!(s.assigned_slot(SensorId(0)).index() < 4);
    }

    #[test]
    fn linear_utility_greedy_achieves_everything() {
        // Modular utility: every assignment achieves Σw per period; greedy
        // must too.
        let u = LinearUtility::new(vec![1.0, 2.0, 3.0]);
        let s = greedy_active_naive(&u, 4).unwrap();
        assert!((s.period_utility(&u) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn multi_target_greedy_covers_each_target_every_slot_when_possible() {
        // Two disjoint targets with 4 sensors each over T=4: greedy should
        // leave no slot without coverage of either target.
        let cov0 = SensorSet::from_indices(8, 0..4);
        let cov1 = SensorSet::from_indices(8, 4..8);
        let u = SumUtility::multi_target_detection(&[cov0.clone(), cov1.clone()], 0.4);
        let s = greedy_active_naive(&u, 4).unwrap();
        for t in 0..4 {
            let active = s.active_set(t);
            assert!(!active.is_disjoint(&cov0), "target 0 uncovered at slot {t}");
            assert!(!active.is_disjoint(&cov1), "target 1 uncovered at slot {t}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Lemma 4.1 (empirical): greedy ≥ ½ · OPT on exhaustively solved
        /// instances.
        #[test]
        fn greedy_is_half_optimal(
            n in 2usize..7,
            m in 1usize..3,
            seed in any::<u64>(),
        ) {
            let mut rng = SeedSequence::new(seed).nth_rng(0);
            let u = crate::instances::random_multi_target(n, m, 0.6, 0.4, &mut rng);
            let slots = 3;
            let greedy = greedy_active_naive(&u, slots).unwrap();
            let opt = crate::optimal::exhaustive_optimal(&u, slots, ScheduleMode::ActiveSlot);
            let g = greedy.period_utility(&u);
            let o = opt.period_utility(&u);
            prop_assert!(g + 1e-9 >= 0.5 * o, "greedy {} < half of optimal {}", g, o);
            prop_assert!(g <= o + 1e-9, "greedy cannot beat optimal");
        }

        /// Theorem 4.4 (empirical): the passive-slot greedy is ≥ ½ · OPT.
        #[test]
        fn passive_greedy_is_half_optimal(
            n in 2usize..6,
            seed in any::<u64>(),
        ) {
            let mut rng = SeedSequence::new(seed).nth_rng(1);
            let u = crate::instances::random_multi_target(n, 2, 0.6, 0.4, &mut rng);
            let slots = 3;
            let greedy = greedy_passive_naive(&u, slots).unwrap();
            let opt = crate::optimal::exhaustive_optimal(&u, slots, ScheduleMode::PassiveSlot);
            let g = greedy.period_utility(&u);
            let o = opt.period_utility(&u);
            prop_assert!(g + 1e-9 >= 0.5 * o, "greedy {} < half of optimal {}", g, o);
        }

        /// Lazy and naive agree on every instance.
        #[test]
        fn lazy_equals_naive(
            n in 1usize..12,
            slots in 1usize..5,
            seed in any::<u64>(),
        ) {
            let mut rng = SeedSequence::new(seed).nth_rng(2);
            let u = crate::instances::random_multi_target(n, 2, 0.5, 0.5, &mut rng);
            let naive = greedy_active_naive(&u, slots).unwrap();
            let lazy = greedy_active_lazy(&u, slots).unwrap();
            prop_assert_eq!(naive.assignment(), lazy.assignment());
        }

        /// The passive CELF dual and the naive minimum-loss loop agree on
        /// every instance (assignment-identical, not just equal utility).
        #[test]
        fn passive_lazy_equals_naive(
            n in 1usize..12,
            slots in 1usize..5,
            seed in any::<u64>(),
        ) {
            let mut rng = SeedSequence::new(seed).nth_rng(3);
            let u = crate::instances::random_multi_target(n, 2, 0.5, 0.5, &mut rng);
            let naive = greedy_passive_naive(&u, slots).unwrap();
            let lazy = greedy_passive_lazy(&u, slots).unwrap();
            prop_assert_eq!(naive.assignment(), lazy.assignment());
        }
    }
}
