//! Greedy scheduling of heterogeneous fleets on the LCM tick grid.
//!
//! With per-sensor energy profiles there is no single `ρ` and no uniform
//! slot grid; scheduling happens on the [`FleetGrid`]: every sensor `v`
//! repeats a `P_v = d_v + r_v`-tick period inside the hyperperiod
//! `H = lcm(P_v)`, being active in one contiguous run of `d_v` ticks per
//! period. A periodic schedule is therefore one **phase** `φ_v ∈ 0..P_v`
//! per sensor — the tick its active run starts at ([`FleetSchedule`]).
//! Any phase vector is energy-feasible from a full battery (the run drains
//! exactly the battery at `1/d_v` per tick, the complement refills it at
//! `1/r_v`), which generalises the paper's Theorem 4.3 structure.
//!
//! The greedy generalises both homogeneous regimes in one pass:
//!
//! * **Phase A** — sensors with `ρ_v ≤ 1` (recharge no slower than
//!   discharge) start active in *every* tick, and the greedy carves out
//!   each one's passive run by **minimum decremental utility**, exactly
//!   like §IV-B but over `r_v`-tick runs;
//! * **Phase B** — sensors with `ρ_v > 1` are inserted run-by-run by
//!   **maximum incremental utility**, exactly like Algorithm 1 but over
//!   `d_v`-tick runs.
//!
//! On a fleet whose profiles are all identical, Phase A candidates are
//! enumerated by passive-run start and Phase B candidates by active-run
//! start, in the same `(value, sensor, slot)` total order as
//! [`crate::greedy`] — so the schedule reduces **bit-for-bit** to
//! [`greedy_active_naive`]/[`greedy_passive_naive`] under the canonical
//! phase mapping ([`phases_from_period_schedule`]). `cool-check` pins this
//! as relation `hetero-homog-reduce` (COOL-E028).
//!
//! [`hetero_greedy_lazy`] is the CELF dual: per-tick version stamps
//! summed over a run detect staleness (versions only grow, so the sums
//! are equal iff every tick is unchanged), and the usual submodularity
//! argument — stale gains only shrink, stale losses only grow — makes the
//! first fresh pop exact, in the same tie order.

use crate::errors::ScheduleBuildError;
use crate::greedy::{max_by_gain, min_by_loss};
use crate::repair::{RepairConfig, RepairMode};
use crate::schedule::{PeriodSchedule, ScheduleMode};
use cool_common::{SensorId, SensorSet};
use cool_energy::{tick_transition, FleetGrid};
use cool_utility::{Evaluator, UtilityFunction};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// A periodic heterogeneous schedule: `phases[v] ∈ 0..P_v` is the tick
/// (within sensor `v`'s own period) where its active run starts.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSchedule {
    grid: FleetGrid,
    phases: Vec<usize>,
}

impl FleetSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics when the phase count differs from the grid's sensor count or
    /// any phase is outside its sensor's period.
    pub fn new(grid: FleetGrid, phases: Vec<usize>) -> Self {
        assert_eq!(phases.len(), grid.n_sensors(), "one phase per sensor");
        for (v, &phase) in phases.iter().enumerate() {
            assert!(
                phase < grid.period_ticks(v),
                "phase {phase} outside sensor {v}'s period {}",
                grid.period_ticks(v)
            );
        }
        FleetSchedule { grid, phases }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &FleetGrid {
        &self.grid
    }

    /// The per-sensor active-run start ticks.
    pub fn phases(&self) -> &[usize] {
        &self.phases
    }

    /// Number of sensors.
    pub fn n_sensors(&self) -> usize {
        self.phases.len()
    }

    /// Is sensor `v` active at grid tick `tick`?
    pub fn is_active(&self, v: usize, tick: usize) -> bool {
        self.grid.active_at(v, self.phases[v], tick)
    }

    /// The active set at grid tick `tick`.
    pub fn active_set(&self, tick: usize) -> SensorSet {
        let mut set = SensorSet::new(self.phases.len());
        for v in 0..self.phases.len() {
            if self.is_active(v, tick) {
                set.insert(SensorId(v));
            }
        }
        set
    }

    /// Total utility over one hyperperiod, `Σ_{t<H} U(S(t))`.
    ///
    /// # Panics
    ///
    /// Panics if the utility universe does not match the sensor count.
    pub fn hyperperiod_utility<U: UtilityFunction>(&self, utility: &U) -> f64 {
        assert_eq!(
            utility.universe(),
            self.phases.len(),
            "utility universe does not match schedule"
        );
        (0..self.grid.hyperperiod())
            .map(|t| utility.eval(&self.active_set(t)))
            .sum()
    }

    /// Materialises the periodic pattern as explicit per-tick sets.
    pub fn to_grid_schedule(&self) -> GridSchedule {
        GridSchedule::new(
            (0..self.grid.hyperperiod())
                .map(|t| self.active_set(t))
                .collect(),
        )
    }

    /// Replays every sensor's battery automaton (its own per-tick rates)
    /// through two hyperperiods from a full charge; `true` when every
    /// activation request is honoured, including across the wrap.
    pub fn is_feasible(&self) -> bool {
        self.to_grid_schedule().is_feasible(&self.grid)
    }
}

impl fmt::Display for FleetSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FleetSchedule (H={} ticks of {}min):",
            self.grid.hyperperiod(),
            self.grid.tick_minutes()
        )?;
        for t in 0..self.grid.hyperperiod() {
            let set = self.active_set(t);
            write!(f, "  t{t}: ")?;
            for (k, v) in set.iter().enumerate() {
                if k > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// An explicit per-tick activation table over one hyperperiod — the
/// representation for schedules that are *not* periodic per sensor period,
/// like the single-run literature baselines (RSC, Set-Once Strip Cover).
/// Replay is cyclic: tick `t` of hyperperiod `k` shows `active[t]`.
#[derive(Clone, Debug, PartialEq)]
pub struct GridSchedule {
    active: Vec<SensorSet>,
}

impl GridSchedule {
    /// Creates a schedule from per-tick active sets.
    ///
    /// # Panics
    ///
    /// Panics on an empty tick list or mismatched universes.
    pub fn new(active: Vec<SensorSet>) -> Self {
        assert!(!active.is_empty(), "need at least one tick");
        let universe = active[0].universe();
        assert!(
            active.iter().all(|s| s.universe() == universe),
            "all ticks must share one sensor universe"
        );
        GridSchedule { active }
    }

    /// Ticks per hyperperiod.
    pub fn hyperperiod(&self) -> usize {
        self.active.len()
    }

    /// Number of sensors.
    pub fn n_sensors(&self) -> usize {
        self.active[0].universe()
    }

    /// The active set at tick `tick`.
    pub fn active_set(&self, tick: usize) -> &SensorSet {
        &self.active[tick]
    }

    /// Is sensor `v` active at tick `tick`?
    pub fn is_active(&self, v: usize, tick: usize) -> bool {
        self.active[tick].contains(SensorId(v))
    }

    /// Total utility over one hyperperiod.
    ///
    /// # Panics
    ///
    /// Panics if the utility universe does not match the sensor count.
    pub fn hyperperiod_utility<U: UtilityFunction>(&self, utility: &U) -> f64 {
        assert_eq!(
            utility.universe(),
            self.n_sensors(),
            "utility universe does not match schedule"
        );
        self.active.iter().map(|s| utility.eval(s)).sum()
    }

    /// Replays every sensor's battery automaton (per-tick drain `1/d_v`,
    /// refill `1/r_v` of its own capacity) through two cyclic hyperperiods
    /// from a full charge; `true` when every activation is honoured.
    pub fn is_feasible(&self, grid: &FleetGrid) -> bool {
        if grid.n_sensors() != self.n_sensors() || grid.hyperperiod() != self.hyperperiod() {
            return false;
        }
        let h = self.hyperperiod();
        (0..self.n_sensors()).all(|v| {
            let need = grid.need_per_tick(v);
            let refill = grid.refill_per_tick(v);
            let mut fraction = 1.0;
            for tick in 0..2 * h {
                let want = self.is_active(v, tick % h);
                let out = tick_transition(need, refill, fraction, want, 0.0, 0.0);
                if want && !out.active {
                    return false;
                }
                fraction = out.fraction;
            }
            true
        })
    }
}

/// Maps a homogeneous [`PeriodSchedule`] onto a **uniform** fleet grid's
/// phase vector:
///
/// * active mode (`ρ > 1`, `d_v = 1`): the assigned slot *is* the active
///   run start, `φ_v = slot`;
/// * passive mode (`ρ ≤ 1`, `r_v = 1`): the active run starts right after
///   the assigned passive slot, `φ_v = (slot + 1) mod P`.
///
/// # Panics
///
/// Panics when the grid is not the schedule's uniform slot structure
/// (hyperperiod ≠ slots per period, or run lengths inconsistent with the
/// mode).
pub fn phases_from_period_schedule(grid: &FleetGrid, schedule: &PeriodSchedule) -> Vec<usize> {
    let p = schedule.slots_per_period();
    assert_eq!(grid.hyperperiod(), p, "grid is not the uniform slot grid");
    assert_eq!(grid.n_sensors(), schedule.n_sensors());
    (0..schedule.n_sensors())
        .map(|v| {
            assert_eq!(grid.period_ticks(v), p, "sensor {v} period mismatch");
            match schedule.mode() {
                ScheduleMode::ActiveSlot => {
                    assert_eq!(grid.discharge_ticks(v), 1, "active mode needs d_v = 1");
                    schedule.assignment()[v]
                }
                ScheduleMode::PassiveSlot => {
                    assert_eq!(grid.recharge_ticks(v), 1, "passive mode needs r_v = 1");
                    (schedule.assignment()[v] + 1) % p
                }
            }
        })
        .collect()
}

/// The grid ticks of one per-period run (start `start`, length `len`,
/// period `period`), repeated over every period in the hyperperiod, in
/// canonical order: period by period, then run-relative offset ascending
/// (wrapping within the period). Summation order over these ticks is part
/// of the bit-for-bit contract between the naive and lazy variants.
fn run_ticks(
    period: usize,
    start: usize,
    len: usize,
    hyperperiod: usize,
) -> impl Iterator<Item = usize> {
    (0..hyperperiod / period)
        .flat_map(move |k| (0..len).map(move |j| k * period + (start + j) % period))
}

/// Sums a per-tick query over a run, surfacing non-finite values as the
/// scheduler's typed error.
fn sum_run<E: Evaluator>(
    evaluators: &[E],
    v: usize,
    period: usize,
    start: usize,
    len: usize,
    hyperperiod: usize,
    query: impl Fn(&E, SensorId) -> f64,
) -> Result<f64, ScheduleBuildError> {
    let mut total = 0.0;
    for tick in run_ticks(period, start, len, hyperperiod) {
        let value = query(&evaluators[tick], SensorId(v));
        if !value.is_finite() {
            return Err(ScheduleBuildError::NonFiniteGain {
                sensor: v,
                slot: tick,
                value,
            });
        }
        total += value;
    }
    Ok(total)
}

/// Splits the fleet into the two greedy regimes, matching the homogeneous
/// dispatcher: `ρ_v > 1` → active-kind (Phase B), else passive-kind
/// (Phase A).
fn passive_kind(grid: &FleetGrid) -> Vec<bool> {
    (0..grid.n_sensors())
        .map(|v| grid.cycle(v).rho() <= 1.0)
        .collect()
}

/// The two-phase heterogeneous greedy (see the module docs). Deterministic:
/// ties break toward the lower sensor index, then the lower run-start tick
/// — the same total order as [`crate::greedy`].
///
/// # Errors
///
/// [`ScheduleBuildError::NonFiniteGain`] when the utility produces a NaN
/// or infinite marginal value.
///
/// # Panics
///
/// Panics when the utility universe does not match the grid.
pub fn hetero_greedy_naive<U: UtilityFunction>(
    utility: &U,
    grid: &FleetGrid,
) -> Result<FleetSchedule, ScheduleBuildError> {
    let n = grid.n_sensors();
    assert_eq!(
        utility.universe(),
        n,
        "utility universe does not match grid"
    );
    let h = grid.hyperperiod();
    let passive = passive_kind(grid);
    let mut evaluators: Vec<U::Evaluator> = (0..h)
        .map(|_| {
            let mut e = utility.evaluator();
            for (v, &is_passive) in passive.iter().enumerate() {
                if is_passive {
                    e.insert(SensorId(v));
                }
            }
            e
        })
        .collect();
    let mut phases = vec![usize::MAX; n];

    // Phase A: carve passive runs by minimum decremental utility.
    let mut unassigned: Vec<usize> = (0..n).filter(|&v| passive[v]).collect();
    for _step in 0..unassigned.len() {
        let mut best: Option<(f64, usize, usize)> = None; // (loss, sensor, psi)
        for &v in &unassigned {
            let p = grid.period_ticks(v);
            let r = grid.recharge_ticks(v);
            for psi in 0..p {
                let loss = sum_run(&evaluators, v, p, psi, r, h, E::loss_of)?;
                let candidate = (loss, v, psi);
                best = Some(match best {
                    None => candidate,
                    Some(current) => min_by_loss(current, candidate),
                });
            }
        }
        let Some((loss, v, psi)) = best else {
            break;
        };
        cool_common::invariant!(
            loss >= -1e-9,
            "negative run loss {loss} for sensor {v} at start {psi}"
        );
        let (p, r) = (grid.period_ticks(v), grid.recharge_ticks(v));
        for tick in run_ticks(p, psi, r, h) {
            evaluators[tick].remove(SensorId(v));
        }
        phases[v] = (psi + r) % p;
        unassigned.retain(|&u| u != v);
    }

    // Phase B: insert active runs by maximum incremental utility.
    let mut unassigned: Vec<usize> = (0..n).filter(|&v| !passive[v]).collect();
    for _step in 0..unassigned.len() {
        let mut best: Option<(f64, usize, usize)> = None; // (gain, sensor, phi)
        for &v in &unassigned {
            let p = grid.period_ticks(v);
            let d = grid.discharge_ticks(v);
            for phi in 0..p {
                let gain = sum_run(&evaluators, v, p, phi, d, h, E::gain_of)?;
                let candidate = (gain, v, phi);
                best = Some(match best {
                    None => candidate,
                    Some(current) => max_by_gain(current, candidate),
                });
            }
        }
        let Some((gain, v, phi)) = best else {
            break;
        };
        cool_common::invariant!(
            gain >= -1e-9,
            "negative run gain {gain} for sensor {v} at start {phi}"
        );
        let (p, d) = (grid.period_ticks(v), grid.discharge_ticks(v));
        for tick in run_ticks(p, phi, d, h) {
            evaluators[tick].insert(SensorId(v));
        }
        phases[v] = phi;
        unassigned.retain(|&u| u != v);
    }

    Ok(FleetSchedule::new(grid.clone(), phases))
}

/// Free-function forms of the [`Evaluator`] queries, so [`sum_run`] call
/// sites can name them without closure-type gymnastics.
struct E;
impl E {
    fn gain_of<Ev: Evaluator>(e: &Ev, v: SensorId) -> f64 {
        e.gain(v)
    }
    fn loss_of<Ev: Evaluator>(e: &Ev, v: SensorId) -> f64 {
        e.loss(v)
    }
}

#[derive(Debug, Clone, Copy)]
struct RunEntry {
    value: f64,
    sensor: usize,
    start: usize,
    /// Sum of the per-tick versions over the run at evaluation time.
    /// Versions only grow, so equal sums ⇒ every tick unchanged.
    stamp: u64,
}

/// Max-heap wrapper: pops the largest value, ties toward the lower sensor
/// then the lower run start (the [`max_by_gain`] order).
#[derive(Debug, Clone, Copy)]
struct MaxRunEntry(RunEntry);

impl PartialEq for MaxRunEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MaxRunEntry {}
impl PartialOrd for MaxRunEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MaxRunEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .value
            .partial_cmp(&other.0.value)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.0.sensor.cmp(&self.0.sensor))
            .then_with(|| other.0.start.cmp(&self.0.start))
    }
}

/// Min-heap wrapper: pops the smallest value, same tie order.
#[derive(Debug, Clone, Copy)]
struct MinRunEntry(RunEntry);

impl PartialEq for MinRunEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MinRunEntry {}
impl PartialOrd for MinRunEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MinRunEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .value
            .partial_cmp(&self.0.value)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.0.sensor.cmp(&self.0.sensor))
            .then_with(|| other.0.start.cmp(&self.0.start))
    }
}

/// Lazy (CELF-style) form of [`hetero_greedy_naive`]; identical output
/// (asserted by this module's property tests and the `cool-check`
/// differential relation).
///
/// # Errors
///
/// As [`hetero_greedy_naive`].
///
/// # Panics
///
/// Panics when the utility universe does not match the grid.
#[allow(clippy::too_many_lines)] // one linear recipe: seed heaps, drain phase A, drain phase B
pub fn hetero_greedy_lazy<U: UtilityFunction>(
    utility: &U,
    grid: &FleetGrid,
) -> Result<FleetSchedule, ScheduleBuildError> {
    let n = grid.n_sensors();
    assert_eq!(
        utility.universe(),
        n,
        "utility universe does not match grid"
    );
    let h = grid.hyperperiod();
    let passive = passive_kind(grid);
    let mut evaluators: Vec<U::Evaluator> = (0..h)
        .map(|_| {
            let mut e = utility.evaluator();
            for (v, &is_passive) in passive.iter().enumerate() {
                if is_passive {
                    e.insert(SensorId(v));
                }
            }
            e
        })
        .collect();
    let mut tick_version = vec![0u32; h];
    let mut phases = vec![usize::MAX; n];
    let mut assigned = vec![false; n];

    let stamp_of = |versions: &[u32], period: usize, start: usize, len: usize| -> u64 {
        run_ticks(period, start, len, h)
            .map(|t| u64::from(versions[t]))
            .sum()
    };

    // Phase A: min-heap over passive-run losses.
    let mut remaining = passive.iter().filter(|&&p| p).count();
    if remaining > 0 {
        let mut heap: BinaryHeap<MinRunEntry> = BinaryHeap::new();
        for (v, &is_passive) in passive.iter().enumerate() {
            if !is_passive {
                continue;
            }
            let (p, r) = (grid.period_ticks(v), grid.recharge_ticks(v));
            for psi in 0..p {
                let loss = sum_run(&evaluators, v, p, psi, r, h, E::loss_of)?;
                heap.push(MinRunEntry(RunEntry {
                    value: loss,
                    sensor: v,
                    start: psi,
                    stamp: stamp_of(&tick_version, p, psi, r),
                }));
            }
        }
        while remaining > 0 {
            let Some(MinRunEntry(entry)) = heap.pop() else {
                return Err(ScheduleBuildError::EmptySlotCount);
            };
            if assigned[entry.sensor] {
                continue;
            }
            let v = entry.sensor;
            let (p, r) = (grid.period_ticks(v), grid.recharge_ticks(v));
            let stamp = stamp_of(&tick_version, p, entry.start, r);
            if entry.stamp != stamp {
                let loss = sum_run(&evaluators, v, p, entry.start, r, h, E::loss_of)?;
                cool_common::invariant!(
                    loss >= entry.value - 1e-9,
                    "stale run loss shrank from {} to {loss}: utility is not submodular",
                    entry.value
                );
                heap.push(MinRunEntry(RunEntry {
                    value: loss,
                    sensor: v,
                    start: entry.start,
                    stamp,
                }));
                continue;
            }
            for tick in run_ticks(p, entry.start, r, h) {
                evaluators[tick].remove(SensorId(v));
                tick_version[tick] += 1;
            }
            phases[v] = (entry.start + r) % p;
            assigned[v] = true;
            remaining -= 1;
        }
    }

    // Phase B: max-heap over active-run gains.
    let mut remaining = passive.iter().filter(|&&p| !p).count();
    if remaining > 0 {
        let mut heap: BinaryHeap<MaxRunEntry> = BinaryHeap::new();
        for (v, &is_passive) in passive.iter().enumerate() {
            if is_passive {
                continue;
            }
            let (p, d) = (grid.period_ticks(v), grid.discharge_ticks(v));
            for phi in 0..p {
                let gain = sum_run(&evaluators, v, p, phi, d, h, E::gain_of)?;
                heap.push(MaxRunEntry(RunEntry {
                    value: gain,
                    sensor: v,
                    start: phi,
                    stamp: stamp_of(&tick_version, p, phi, d),
                }));
            }
        }
        while remaining > 0 {
            let Some(MaxRunEntry(entry)) = heap.pop() else {
                return Err(ScheduleBuildError::EmptySlotCount);
            };
            if assigned[entry.sensor] {
                continue;
            }
            let v = entry.sensor;
            let (p, d) = (grid.period_ticks(v), grid.discharge_ticks(v));
            let stamp = stamp_of(&tick_version, p, entry.start, d);
            if entry.stamp != stamp {
                let gain = sum_run(&evaluators, v, p, entry.start, d, h, E::gain_of)?;
                cool_common::invariant!(
                    gain <= entry.value + 1e-9,
                    "stale run gain grew from {} to {gain}: utility is not submodular",
                    entry.value
                );
                heap.push(MaxRunEntry(RunEntry {
                    value: gain,
                    sensor: v,
                    start: entry.start,
                    stamp,
                }));
                continue;
            }
            for tick in run_ticks(p, entry.start, d, h) {
                evaluators[tick].insert(SensorId(v));
                tick_version[tick] += 1;
            }
            phases[v] = entry.start;
            assigned[v] = true;
            remaining -= 1;
        }
    }

    Ok(FleetSchedule::new(grid.clone(), phases))
}

/// Result of a heterogeneous warm-start repair — the grid analogue of
/// [`crate::repair::RepairOutcome`].
#[derive(Debug, Clone)]
pub struct FleetRepairOutcome {
    /// The repaired schedule.
    pub schedule: FleetSchedule,
    /// Which path produced it.
    pub mode: RepairMode,
    /// Per-tick marginal-utility queries performed on the warm-start path.
    /// For [`RepairMode::Full`] this is the nominal from-scratch budget
    /// `H · n(n+1)/2`.
    pub cells_touched: u64,
    /// Size of the dirty set the caller passed in.
    pub dirty_sensors: usize,
}

/// Warm-start repair on the LCM grid, mirroring the contract of
/// [`crate::repair::repair_schedule`]:
///
/// * empty `dirty` on a compatible previous schedule → returned
///   bit-for-bit, zero cells;
/// * incompatible grid or dirty fraction above
///   [`RepairConfig::full_threshold`] → from-scratch
///   [`hetero_greedy_naive`] ([`RepairMode::Full`]);
/// * otherwise → clean sensors pinned to their previous phases, only the
///   dirty ones re-greedied (Phase A then Phase B over the dirty subset).
///
/// # Errors
///
/// As [`hetero_greedy_naive`].
///
/// # Panics
///
/// Panics when the utility universe does not match the grid.
#[allow(clippy::too_many_lines)] // one linear recipe: warm-start evaluators, then both greedy phases
pub fn repair_fleet_schedule<U: UtilityFunction>(
    utility: &U,
    grid: &FleetGrid,
    previous: &FleetSchedule,
    dirty: &SensorSet,
    config: &RepairConfig,
) -> Result<FleetRepairOutcome, ScheduleBuildError> {
    let n = grid.n_sensors();
    assert_eq!(
        utility.universe(),
        n,
        "utility universe does not match grid"
    );
    let h = grid.hyperperiod();
    let compatible = previous.grid() == grid && previous.n_sensors() == n && dirty.universe() == n;

    if compatible && dirty.is_empty() {
        return Ok(FleetRepairOutcome {
            schedule: previous.clone(),
            mode: RepairMode::Incremental,
            cells_touched: 0,
            dirty_sensors: 0,
        });
    }

    let dirty_fraction = if n == 0 {
        0.0
    } else {
        dirty.len() as f64 / n as f64
    };
    if !compatible || dirty_fraction > config.full_threshold {
        let schedule = hetero_greedy_naive(utility, grid)?;
        let n64 = n as u64;
        return Ok(FleetRepairOutcome {
            schedule,
            mode: RepairMode::Full,
            cells_touched: h as u64 * n64 * (n64 + 1) / 2,
            dirty_sensors: dirty.len(),
        });
    }

    let passive = passive_kind(grid);
    // Warm start: dirty passive-kind sensors re-enter "active everywhere";
    // clean sensors are pinned to their previous periodic pattern.
    let mut evaluators: Vec<U::Evaluator> = (0..h)
        .map(|t| {
            let mut e = utility.evaluator();
            for (v, &is_passive) in passive.iter().enumerate() {
                let member = if dirty.contains(SensorId(v)) {
                    is_passive
                } else {
                    previous.is_active(v, t)
                };
                if member {
                    e.insert(SensorId(v));
                }
            }
            e
        })
        .collect();
    let mut phases = previous.phases().to_vec();
    let mut cells = 0u64;

    // Phase A over dirty passive-kind sensors.
    let mut unassigned: Vec<usize> = (0..n)
        .filter(|&v| passive[v] && dirty.contains(SensorId(v)))
        .collect();
    for _step in 0..unassigned.len() {
        let mut best: Option<(f64, usize, usize)> = None;
        for &v in &unassigned {
            let (p, r) = (grid.period_ticks(v), grid.recharge_ticks(v));
            for psi in 0..p {
                let loss = sum_run(&evaluators, v, p, psi, r, h, E::loss_of)?;
                cells += (r * (h / p)) as u64;
                let candidate = (loss, v, psi);
                best = Some(match best {
                    None => candidate,
                    Some(current) => min_by_loss(current, candidate),
                });
            }
        }
        let Some((_, v, psi)) = best else {
            break;
        };
        let (p, r) = (grid.period_ticks(v), grid.recharge_ticks(v));
        for tick in run_ticks(p, psi, r, h) {
            evaluators[tick].remove(SensorId(v));
        }
        phases[v] = (psi + r) % p;
        unassigned.retain(|&u| u != v);
    }

    // Phase B over dirty active-kind sensors.
    let mut unassigned: Vec<usize> = (0..n)
        .filter(|&v| !passive[v] && dirty.contains(SensorId(v)))
        .collect();
    for _step in 0..unassigned.len() {
        let mut best: Option<(f64, usize, usize)> = None;
        for &v in &unassigned {
            let (p, d) = (grid.period_ticks(v), grid.discharge_ticks(v));
            for phi in 0..p {
                let gain = sum_run(&evaluators, v, p, phi, d, h, E::gain_of)?;
                cells += (d * (h / p)) as u64;
                let candidate = (gain, v, phi);
                best = Some(match best {
                    None => candidate,
                    Some(current) => max_by_gain(current, candidate),
                });
            }
        }
        let Some((_, v, phi)) = best else {
            break;
        };
        let (p, d) = (grid.period_ticks(v), grid.discharge_ticks(v));
        for tick in run_ticks(p, phi, d, h) {
            evaluators[tick].insert(SensorId(v));
        }
        phases[v] = phi;
        unassigned.retain(|&u| u != v);
    }

    Ok(FleetRepairOutcome {
        schedule: FleetSchedule::new(grid.clone(), phases),
        mode: RepairMode::Incremental,
        cells_touched: cells,
        dirty_sensors: dirty.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy_active_naive, greedy_passive_naive};
    use cool_common::SeedSequence;
    use cool_energy::{ChargeCycle, Fleet};
    use cool_utility::DetectionUtility;
    use proptest::prelude::*;

    fn uniform_grid(n: usize, cycle: ChargeCycle) -> FleetGrid {
        FleetGrid::build(&Fleet::uniform_from_cycle(n, cycle).unwrap()).unwrap()
    }

    fn mixed_grid() -> FleetGrid {
        // (15,45) ρ=3, (30,90) ρ=3 double battery, (15,15) ρ=1, (30,15) ρ=1/2.
        let cycles = vec![
            ChargeCycle::from_minutes(15.0, 45.0).unwrap(),
            ChargeCycle::from_minutes(30.0, 90.0).unwrap(),
            ChargeCycle::from_minutes(15.0, 15.0).unwrap(),
            ChargeCycle::from_minutes(30.0, 15.0).unwrap(),
        ];
        FleetGrid::build(&Fleet::from_cycles(cycles).unwrap()).unwrap()
    }

    #[test]
    fn uniform_active_fleet_reduces_to_homogeneous_greedy() {
        let seq = SeedSequence::new(91);
        let cycle = ChargeCycle::paper_sunny();
        for trial in 0..10u64 {
            let mut rng = seq.nth_rng(trial);
            let n = 3 + (trial as usize % 8);
            let u = crate::instances::random_multi_target(n, 2, 0.5, 0.4, &mut rng);
            let grid = uniform_grid(n, cycle);
            let homog = greedy_active_naive(&u, cycle.slots_per_period()).unwrap();
            let hetero = hetero_greedy_naive(&u, &grid).unwrap();
            assert_eq!(
                hetero.phases(),
                phases_from_period_schedule(&grid, &homog).as_slice(),
                "trial {trial}: hetero did not reduce to the homogeneous active greedy"
            );
        }
    }

    #[test]
    fn uniform_passive_fleet_reduces_to_homogeneous_greedy() {
        let seq = SeedSequence::new(92);
        let cycle = ChargeCycle::from_minutes(45.0, 15.0).unwrap(); // ρ = 1/3
        for trial in 0..10u64 {
            let mut rng = seq.nth_rng(trial);
            let n = 3 + (trial as usize % 8);
            let u = crate::instances::random_multi_target(n, 2, 0.5, 0.4, &mut rng);
            let grid = uniform_grid(n, cycle);
            let homog = greedy_passive_naive(&u, cycle.slots_per_period()).unwrap();
            let hetero = hetero_greedy_naive(&u, &grid).unwrap();
            assert_eq!(
                hetero.phases(),
                phases_from_period_schedule(&grid, &homog).as_slice(),
                "trial {trial}: hetero did not reduce to the homogeneous passive greedy"
            );
        }
    }

    #[test]
    fn mixed_fleet_schedule_is_feasible_and_periodic() {
        let grid = mixed_grid();
        let u = DetectionUtility::uniform(4, 0.5);
        let s = hetero_greedy_naive(&u, &grid).unwrap();
        assert!(s.is_feasible());
        let h = grid.hyperperiod();
        assert_eq!(h, 24); // lcm(4, 8, 2, 3)
        for v in 0..4 {
            let active = (0..h).filter(|&t| s.is_active(v, t)).count();
            assert_eq!(
                active,
                grid.discharge_ticks(v) * grid.runs_per_hyperperiod(v),
                "sensor {v} duty cycle"
            );
        }
        // The ρ ≤ 1 sensors went through Phase A, the ρ > 1 ones through
        // Phase B; every phase is in range (checked by the constructor).
        assert_eq!(s.phases().len(), 4);
    }

    #[test]
    fn grid_schedule_round_trip_and_feasibility() {
        let grid = mixed_grid();
        let u = DetectionUtility::uniform(4, 0.5);
        let s = hetero_greedy_naive(&u, &grid).unwrap();
        let g = s.to_grid_schedule();
        assert_eq!(g.hyperperiod(), grid.hyperperiod());
        assert!(g.is_feasible(&grid));
        assert!(
            (g.hyperperiod_utility(&u) - s.hyperperiod_utility(&u)).abs() < 1e-12,
            "materialised utility must match"
        );
        // An always-on sensor is energy-infeasible.
        let bad = GridSchedule::new(vec![SensorSet::full(4); grid.hyperperiod()]);
        assert!(!bad.is_feasible(&grid));
    }

    #[test]
    fn repair_empty_dirty_is_identity() {
        let grid = mixed_grid();
        let u = DetectionUtility::uniform(4, 0.5);
        let previous = hetero_greedy_naive(&u, &grid).unwrap();
        let outcome = repair_fleet_schedule(
            &u,
            &grid,
            &previous,
            &SensorSet::new(4),
            &RepairConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome.mode, RepairMode::Incremental);
        assert_eq!(outcome.cells_touched, 0);
        assert_eq!(outcome.schedule, previous);
    }

    #[test]
    fn repair_full_dirty_incremental_equals_scratch() {
        let grid = mixed_grid();
        let u = DetectionUtility::uniform(4, 0.5);
        let scratch = hetero_greedy_naive(&u, &grid).unwrap();
        let stale = FleetSchedule::new(grid.clone(), vec![0; 4]);
        let outcome = repair_fleet_schedule(
            &u,
            &grid,
            &stale,
            &SensorSet::full(4),
            &RepairConfig {
                full_threshold: 1.0,
            },
        )
        .unwrap();
        assert_eq!(outcome.mode, RepairMode::Incremental);
        assert_eq!(outcome.schedule.phases(), scratch.phases());
        assert!(outcome.cells_touched > 0);
    }

    #[test]
    fn repair_threshold_and_incompatibility_force_full() {
        let grid = mixed_grid();
        let u = DetectionUtility::uniform(4, 0.5);
        let previous = hetero_greedy_naive(&u, &grid).unwrap();
        // 50% dirty over a 25% threshold → Full.
        let outcome = repair_fleet_schedule(
            &u,
            &grid,
            &previous,
            &SensorSet::from_indices(4, [0, 1]),
            &RepairConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome.mode, RepairMode::Full);
        assert_eq!(outcome.schedule.phases(), previous.phases());
        // Previous schedule from a different grid → Full even when clean.
        let other = uniform_grid(4, ChargeCycle::paper_sunny());
        let foreign = hetero_greedy_naive(&u, &other).unwrap();
        let outcome = repair_fleet_schedule(
            &u,
            &grid,
            &foreign,
            &SensorSet::new(4),
            &RepairConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome.mode, RepairMode::Full);
    }

    #[test]
    fn repair_partial_dirty_keeps_clean_phases() {
        let grid = mixed_grid();
        let u = DetectionUtility::uniform(4, 0.5);
        let previous = hetero_greedy_naive(&u, &grid).unwrap();
        let dirty = SensorSet::from_indices(4, [2]);
        let outcome = repair_fleet_schedule(
            &u,
            &grid,
            &previous,
            &dirty,
            &RepairConfig {
                full_threshold: 0.5,
            },
        )
        .unwrap();
        assert_eq!(outcome.mode, RepairMode::Incremental);
        assert!(outcome.schedule.is_feasible());
        for v in [0usize, 1, 3] {
            assert_eq!(outcome.schedule.phases()[v], previous.phases()[v]);
        }
    }

    #[test]
    fn display_lists_ticks() {
        let grid = uniform_grid(2, ChargeCycle::paper_sunny());
        let s = hetero_greedy_naive(&DetectionUtility::uniform(2, 0.4), &grid).unwrap();
        let text = s.to_string();
        assert!(text.contains("H=4 ticks"));
        assert!(text.contains("t0:"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The lazy CELF variant agrees with the naive two-phase greedy on
        /// arbitrary mixed fleets (phase-identical, not just equal value).
        #[test]
        fn hetero_lazy_equals_naive(
            n_extra in 0usize..5,
            m in 1usize..3,
            seed in any::<u64>(),
        ) {
            let mut cycles = vec![
                ChargeCycle::from_minutes(15.0, 45.0).unwrap(),
                ChargeCycle::from_minutes(30.0, 90.0).unwrap(),
                ChargeCycle::from_minutes(15.0, 15.0).unwrap(),
                ChargeCycle::from_minutes(30.0, 15.0).unwrap(),
            ];
            for k in 0..n_extra {
                cycles.push(cycles[k % 4]);
            }
            let n = cycles.len();
            let grid = FleetGrid::build(&Fleet::from_cycles(cycles).unwrap()).unwrap();
            let mut rng = SeedSequence::new(seed).nth_rng(4);
            let u = crate::instances::random_multi_target(n, m, 0.5, 0.4, &mut rng);
            let naive = hetero_greedy_naive(&u, &grid).unwrap();
            let lazy = hetero_greedy_lazy(&u, &grid).unwrap();
            prop_assert_eq!(naive.phases(), lazy.phases());
            prop_assert!(naive.is_feasible());
        }

        /// Uniform fleets: the hetero path (naive AND lazy) reduces
        /// bit-for-bit to the homogeneous greedy of the matching regime.
        #[test]
        fn uniform_reduction_both_variants(
            n in 1usize..10,
            ratio in 1usize..4,
            invert in any::<bool>(),
            seed in any::<u64>(),
        ) {
            let rho = if invert { 1.0 / ratio as f64 } else { ratio as f64 };
            let cycle = ChargeCycle::from_rho(rho, 10.0).unwrap();
            let grid = uniform_grid(n, cycle);
            let mut rng = SeedSequence::new(seed).nth_rng(5);
            let u = crate::instances::random_multi_target(n, 2, 0.5, 0.5, &mut rng);
            let homog = if cycle.rho() > 1.0 {
                greedy_active_naive(&u, cycle.slots_per_period()).unwrap()
            } else {
                greedy_passive_naive(&u, cycle.slots_per_period()).unwrap()
            };
            let expected = phases_from_period_schedule(&grid, &homog);
            let naive = hetero_greedy_naive(&u, &grid).unwrap();
            let lazy = hetero_greedy_lazy(&u, &grid).unwrap();
            prop_assert_eq!(naive.phases(), expected.as_slice());
            prop_assert_eq!(lazy.phases(), expected.as_slice());
        }
    }
}
