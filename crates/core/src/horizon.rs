//! Horizon-level scheduling — the paper's §VIII future work, implemented.
//!
//! The paper's conclusion poses two open extensions:
//!
//! 1. **Partially-recharged activation** — "we assumed that a node can be
//!    activated only if it is fully charged. We would like to study the
//!    case that allow partially recharged sensors to be activated."
//! 2. **Heterogeneous sensors** — "different sensor may have different
//!    charging/recharging pattern even at the same time."
//!
//! Both break the per-period structure of §IV (sensors no longer share one
//! period, and a sensor may be active several times per horizon), so this
//! module schedules over the whole horizon `L` directly:
//!
//! * [`HorizonSchedule`] — an explicit `x(v, t)` activation matrix with
//!   energy-machine feasibility checking under **per-sensor** cycles;
//! * [`greedy_horizon`] — greedy hill-climbing over (sensor, slot) pairs
//!   with incremental feasibility: at each step, add the feasible pair of
//!   maximum marginal utility; stop when no feasible pair has positive
//!   gain. Under the energy machine a sensor may activate whenever its
//!   battery holds at least one active slot of energy — i.e. partially
//!   recharged activation at slot granularity.
//!
//! There is no known approximation proof for this variant (the paper
//! leaves it open); the experiment harness studies it empirically against
//! exhaustive optima on small instances and against period-repetition on
//! homogeneous ones.

use cool_common::{SensorId, SensorSet};
use cool_energy::{ChargeCycle, NodeEnergyMachine};
use cool_utility::{Evaluator, UtilityFunction};
use std::fmt;

/// An explicit activation matrix over a horizon of `L` slots, with
/// per-sensor charge cycles (heterogeneous fleets use different cycles).
#[derive(Clone, Debug, PartialEq)]
pub struct HorizonSchedule {
    /// `active[t]` is the set of sensors activated in slot `t`.
    active: Vec<SensorSet>,
    n: usize,
}

impl HorizonSchedule {
    /// Creates an empty schedule over `n` sensors and `slots` slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0` or `n == 0`.
    pub fn empty(n: usize, slots: usize) -> Self {
        assert!(n > 0, "need at least one sensor");
        assert!(slots > 0, "need at least one slot");
        HorizonSchedule {
            active: vec![SensorSet::new(n); slots],
            n,
        }
    }

    /// Unrolls a [`PeriodSchedule`](crate::schedule::PeriodSchedule) over
    /// `alpha` periods (Theorem 4.3's construction).
    pub fn from_period(schedule: &crate::schedule::PeriodSchedule, alpha: usize) -> Self {
        assert!(alpha > 0, "need at least one period");
        let t = schedule.slots_per_period();
        let per_period = schedule.active_sets();
        let active: Vec<SensorSet> = (0..alpha * t)
            .map(|slot| per_period[slot % t].clone())
            .collect();
        HorizonSchedule {
            active,
            n: schedule.n_sensors(),
        }
    }

    /// Number of sensors.
    pub fn n_sensors(&self) -> usize {
        self.n
    }

    /// Horizon length in slots.
    pub fn horizon(&self) -> usize {
        self.active.len()
    }

    /// The active set of slot `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn active_set(&self, t: usize) -> &SensorSet {
        &self.active[t]
    }

    /// Sets sensor `v` active in slot `t`; returns `true` if newly set.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn activate(&mut self, v: SensorId, t: usize) -> bool {
        self.active[t].insert(v)
    }

    /// Total utility `Σ_t U(S(t))`.
    ///
    /// # Panics
    ///
    /// Panics if the utility universe mismatches.
    pub fn total_utility<U: UtilityFunction>(&self, utility: &U) -> f64 {
        assert_eq!(utility.universe(), self.n, "utility universe mismatch");
        self.active.iter().map(|s| utility.eval(s)).sum()
    }

    /// Average utility per slot.
    pub fn average_utility<U: UtilityFunction>(&self, utility: &U) -> f64 {
        self.total_utility(utility) / self.horizon() as f64
    }

    /// Number of activations of sensor `v` across the horizon.
    pub fn activation_count(&self, v: SensorId) -> usize {
        self.active.iter().filter(|s| s.contains(v)).count()
    }

    /// Verifies energy feasibility by driving each sensor's
    /// [`NodeEnergyMachine`] (with its own cycle) through the horizon:
    /// every requested activation must be honoured.
    ///
    /// # Panics
    ///
    /// Panics if `cycles.len() != n`.
    pub fn is_feasible(&self, cycles: &[ChargeCycle]) -> bool {
        assert_eq!(cycles.len(), self.n, "one cycle per sensor");
        (0..self.n).all(|v| self.is_sensor_feasible(SensorId(v), cycles[v]))
    }

    /// Feasibility of a single sensor's activation pattern under `cycle`.
    pub fn is_sensor_feasible(&self, v: SensorId, cycle: ChargeCycle) -> bool {
        let mut node = NodeEnergyMachine::new(cycle);
        for slot_set in &self.active {
            let want = slot_set.contains(v);
            let got = node.step(want);
            if want && !got {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for HorizonSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "HorizonSchedule ({} sensors × {} slots):",
            self.n,
            self.horizon()
        )?;
        for (t, set) in self.active.iter().enumerate() {
            writeln!(f, "  t{t}: {} active", set.len())?;
        }
        Ok(())
    }
}

/// Greedy hill-climbing over the whole horizon with per-sensor cycles and
/// partially-recharged activation (§VIII extensions).
///
/// At each step the algorithm adds the **feasible** (sensor, slot) pair of
/// maximum marginal utility — feasibility meaning the sensor's energy
/// machine still honours its entire activation pattern with the new slot
/// added — and stops when no feasible pair improves the utility.
///
/// Complexity: `O(P · n · L · (L + gain))` where `P ≤ n·L` is the number of
/// placements made; instances up to hundreds of sensors × dozens of slots
/// schedule in well under a second. The `gain` term uses per-slot
/// evaluators from [`UtilityFunction::evaluator`], so a multi-target
/// [`SumUtility`](cool_utility::SumUtility) answers it over the O(deg(v))
/// incident parts of its sparse incidence index rather than all `m` parts.
///
/// # Panics
///
/// Panics if `cycles.len() != utility.universe()` or `slots == 0`.
///
/// # Examples
///
/// ```
/// use cool_core::horizon::greedy_horizon;
/// use cool_energy::ChargeCycle;
/// use cool_utility::DetectionUtility;
///
/// // Heterogeneous fleet: 2 sunny sensors (ρ=3) + 2 shaded ones (ρ=7).
/// let cycles = vec![
///     ChargeCycle::from_rho(3.0, 15.0).unwrap(),
///     ChargeCycle::from_rho(3.0, 15.0).unwrap(),
///     ChargeCycle::from_rho(7.0, 15.0).unwrap(),
///     ChargeCycle::from_rho(7.0, 15.0).unwrap(),
/// ];
/// let u = DetectionUtility::uniform(4, 0.4);
/// let schedule = greedy_horizon(&u, &cycles, 16);
/// assert!(schedule.is_feasible(&cycles));
/// // Sunny sensors fit 4 activations in 16 slots, shaded ones 2.
/// assert_eq!(schedule.activation_count(cool_common::SensorId(0)), 4);
/// assert_eq!(schedule.activation_count(cool_common::SensorId(2)), 2);
/// ```
pub fn greedy_horizon<U: UtilityFunction>(
    utility: &U,
    cycles: &[ChargeCycle],
    slots: usize,
) -> HorizonSchedule {
    let n = utility.universe();
    assert_eq!(cycles.len(), n, "one cycle per sensor");
    assert!(slots > 0, "need at least one slot");

    let mut schedule = HorizonSchedule::empty(n, slots);
    let mut evaluators: Vec<U::Evaluator> = (0..slots).map(|_| utility.evaluator()).collect();
    // (v, t) pairs still plausibly addable.
    let mut candidates: Vec<(usize, usize)> = (0..n)
        .flat_map(|v| (0..slots).map(move |t| (v, t)))
        .collect();

    loop {
        let mut best: Option<(f64, usize, usize)> = None;
        candidates.retain(|&(v, t)| {
            if schedule.active_set(t).contains(SensorId(v)) {
                return false;
            }
            // Feasibility with (v, t) added.
            let mut trial = schedule.clone();
            trial.activate(SensorId(v), t);
            if !trial.is_sensor_feasible(SensorId(v), cycles[v]) {
                // Keep the candidate: later placements never *unblock* a
                // sensor's own pattern (adding more activations only
                // tightens it), so it is safe to drop it...
                // ...except feasibility depends only on the sensor's OWN
                // pattern, which only grows ⇒ once infeasible, always
                // infeasible. Drop it.
                return false;
            }
            let gain = evaluators[t].gain(SensorId(v));
            let candidate = (gain, v, t);
            best = Some(match best {
                None => candidate,
                Some(current) => {
                    let better = candidate.0 > current.0
                        || (candidate.0 == current.0
                            && (candidate.1, candidate.2) < (current.1, current.2));
                    if better {
                        candidate
                    } else {
                        current
                    }
                }
            });
            true
        });

        match best {
            Some((gain, v, t)) if gain > 1e-15 => {
                // Monotonicity: the chosen marginal gain is never negative.
                cool_common::invariant!(
                    gain >= -1e-9,
                    "monotone utility produced negative gain {gain}"
                );
                schedule.activate(SensorId(v), t);
                let realised = evaluators[t].insert(SensorId(v));
                // Evaluator consistency: insert must realise the queried gain.
                cool_common::invariant!(
                    (realised - gain).abs() <= 1e-9 * gain.abs().max(1.0),
                    "evaluator gain/insert mismatch: {gain} vs {realised}"
                );
            }
            _ => break,
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_active_naive;
    use crate::schedule::ScheduleMode;
    use cool_common::SeedSequence;
    use cool_utility::{DetectionUtility, SumUtility};
    use proptest::prelude::*;

    fn sunny() -> ChargeCycle {
        ChargeCycle::paper_sunny()
    }

    #[test]
    fn from_period_unrolls_correctly() {
        let period =
            crate::schedule::PeriodSchedule::new(ScheduleMode::ActiveSlot, 2, vec![0, 1, 0]);
        let horizon = HorizonSchedule::from_period(&period, 3);
        assert_eq!(horizon.horizon(), 6);
        for t in 0..6 {
            assert_eq!(horizon.active_set(t), &period.active_set(t % 2));
        }
        assert_eq!(horizon.activation_count(SensorId(0)), 3);
    }

    #[test]
    fn homogeneous_horizon_matches_period_repetition_utility() {
        // With identical sensors and L = 2T, the horizon greedy should
        // recover (at least) the repeated-period greedy's utility.
        let u = DetectionUtility::uniform(8, 0.4);
        let cycles = vec![sunny(); 8];
        let horizon = greedy_horizon(&u, &cycles, 8);
        assert!(horizon.is_feasible(&cycles));

        let period = greedy_active_naive(&u, 4).unwrap();
        let repeated = HorizonSchedule::from_period(&period, 2);
        assert!(
            horizon.total_utility(&u) + 1e-9 >= repeated.total_utility(&u),
            "horizon {} < repeated {}",
            horizon.total_utility(&u),
            repeated.total_utility(&u)
        );
    }

    #[test]
    fn each_sensor_respects_its_own_cycle() {
        // Mixed fleet: ρ = 1 (active every other slot) and ρ = 3.
        let cycles = vec![
            ChargeCycle::from_rho(1.0, 15.0).unwrap(),
            ChargeCycle::from_rho(3.0, 15.0).unwrap(),
        ];
        let u = DetectionUtility::uniform(2, 0.9);
        let schedule = greedy_horizon(&u, &cycles, 12);
        assert!(schedule.is_feasible(&cycles));
        // ρ = 1: up to 6 activations in 12 slots; ρ = 3: up to 3.
        assert_eq!(schedule.activation_count(SensorId(0)), 6);
        assert_eq!(schedule.activation_count(SensorId(1)), 3);
    }

    #[test]
    fn partial_recharge_is_exploited_for_fast_rechargers() {
        // ρ = 1/3: the sensor can be active 3 of every 4 slots.
        let cycles = vec![ChargeCycle::from_rho(1.0 / 3.0, 15.0).unwrap()];
        let u = DetectionUtility::uniform(1, 0.5);
        let schedule = greedy_horizon(&u, &cycles, 8);
        assert!(schedule.is_feasible(&cycles));
        assert_eq!(schedule.activation_count(SensorId(0)), 6);
    }

    #[test]
    fn zero_gain_slots_left_empty() {
        // A sensor with p = 0 contributes nothing and is never scheduled.
        let u = DetectionUtility::new(vec![0.4, 0.0]);
        let cycles = vec![sunny(); 2];
        let schedule = greedy_horizon(&u, &cycles, 4);
        assert_eq!(schedule.activation_count(SensorId(1)), 0);
        assert_eq!(schedule.activation_count(SensorId(0)), 1);
    }

    #[test]
    fn feasibility_rejects_overcommitted_patterns() {
        let mut schedule = HorizonSchedule::empty(1, 4);
        schedule.activate(SensorId(0), 0);
        schedule.activate(SensorId(0), 1); // ρ = 3 cannot go back-to-back
        assert!(!schedule.is_feasible(&[sunny()]));
    }

    #[test]
    fn display_shows_slots() {
        let schedule = HorizonSchedule::empty(2, 2);
        assert!(schedule.to_string().contains("t0: 0 active"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The horizon greedy always returns a feasible schedule and never
        /// loses to the period-repeated greedy on homogeneous instances.
        #[test]
        fn horizon_feasible_and_competitive(
            n in 2usize..7,
            alpha in 1usize..3,
            seed in any::<u64>(),
        ) {
            let mut rng = SeedSequence::new(seed).nth_rng(0);
            let u: SumUtility =
                crate::instances::random_multi_target(n, 2, 0.6, 0.4, &mut rng);
            let cycles = vec![sunny(); n];
            let t = sunny().slots_per_period();
            let horizon = greedy_horizon(&u, &cycles, alpha * t);
            prop_assert!(horizon.is_feasible(&cycles));

            let repeated = HorizonSchedule::from_period(&greedy_active_naive(&u, t).unwrap(), alpha);
            prop_assert!(repeated.is_feasible(&cycles));
            // No domination theorem exists for the horizon variant (the
            // paper leaves it open); empirically it stays within a few
            // percent of — usually above — the period-repeated greedy.
            prop_assert!(
                horizon.total_utility(&u) + 1e-9 >= 0.9 * repeated.total_utility(&u)
            );
        }

        /// Activation counts never exceed the per-cycle budget
        /// ⌈L / T⌉ · active-slots-per-period.
        #[test]
        fn activation_budget_respected(
            n in 1usize..5,
            ratio in 1usize..5,
            slots in 1usize..12,
            seed in any::<u64>(),
        ) {
            let mut rng = SeedSequence::new(seed).nth_rng(1);
            let u = crate::instances::random_multi_target(n, 1, 0.8, 0.5, &mut rng);
            let cycle = ChargeCycle::from_rho(ratio as f64, 15.0).unwrap();
            let cycles = vec![cycle; n];
            let schedule = greedy_horizon(&u, &cycles, slots);
            prop_assert!(schedule.is_feasible(&cycles));
            let budget = slots.div_ceil(cycle.slots_per_period())
                * cycle.active_slots_per_period();
            for v in 0..n {
                prop_assert!(schedule.activation_count(SensorId(v)) <= budget);
            }
        }
    }
}
