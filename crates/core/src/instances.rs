//! Random and geometric instance generators.
//!
//! Shared by the unit/property tests, the Criterion benches and the
//! figure-reproduction harness, so every consumer draws instances from the
//! same distributions:
//!
//! * [`random_multi_target`] — coverage-matrix instances (Fig. 8 style):
//!   each sensor covers each target with a fixed probability, every target
//!   guaranteed at least one coverer;
//! * [`geometric_multi_target`] — disk-coverage instances over a square
//!   region (Fig. 9 style): uniform sensor deployment, uniform targets,
//!   `V(O_i)` = sensors within sensing range;
//! * [`fig8_instance`] / [`fig9_instance`] — the exact parameterisations
//!   used by the paper-reproduction experiments.

use cool_common::{SensorId, SensorSet};
use cool_geometry::{deployment, DeploymentKind, DeploymentSpec, Point, Rect};
use cool_utility::SumUtility;
use rand::Rng;

/// Random multi-target detection instance: `n` sensors, `m` targets, each
/// sensor covering each target independently with probability
/// `coverage_prob`; covering sensors detect with probability `p`. Every
/// target is guaranteed at least one coverer (a uniformly random sensor is
/// added when the draw leaves a target uncovered — the paper's instances
/// never feature unmonitorable targets).
///
/// # Panics
///
/// Panics if `n == 0`, `m == 0`, or a probability is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use cool_core::instances::random_multi_target;
/// use cool_common::SeedSequence;
/// use cool_utility::UtilityFunction;
///
/// let mut rng = SeedSequence::new(5).nth_rng(0);
/// let u = random_multi_target(20, 4, 0.5, 0.4, &mut rng);
/// assert_eq!(u.universe(), 20);
/// assert_eq!(u.n_targets(), 4);
/// ```
pub fn random_multi_target<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    coverage_prob: f64,
    p: f64,
    rng: &mut R,
) -> SumUtility {
    assert!(n > 0, "need at least one sensor");
    assert!(m > 0, "need at least one target");
    assert!(
        (0.0..=1.0).contains(&coverage_prob),
        "coverage_prob in [0,1]"
    );
    assert!((0.0..=1.0).contains(&p), "p in [0,1]");
    let coverages: Vec<SensorSet> = (0..m)
        .map(|_| {
            let mut cov = SensorSet::new(n);
            for v in 0..n {
                if rng.random_range(0.0..1.0) < coverage_prob {
                    cov.insert(SensorId(v));
                }
            }
            if cov.is_empty() {
                cov.insert(SensorId(rng.random_range(0..n)));
            }
            cov
        })
        .collect();
    SumUtility::multi_target_detection(&coverages, p)
}

/// Geometric instance: sensors deployed uniformly in `omega`, `m` uniform
/// targets, a sensor covers a target within `sensing_radius`. Targets that
/// land outside everyone's range are re-drawn (up to 64 attempts, then
/// snapped to a random sensor's position), matching the paper's setting
/// where every target is monitorable.
///
/// Returns the utility plus the sensor and target positions for callers
/// that also need the geometry (e.g. the testbed simulator).
///
/// # Panics
///
/// Panics if `n == 0`, `m == 0`, `sensing_radius <= 0`, or `p ∉ [0, 1]`.
pub fn geometric_multi_target<R: Rng + ?Sized>(
    omega: Rect,
    n: usize,
    m: usize,
    sensing_radius: f64,
    p: f64,
    rng: &mut R,
) -> (SumUtility, Vec<Point>, Vec<Point>) {
    assert!(n > 0, "need at least one sensor");
    assert!(m > 0, "need at least one target");
    assert!(sensing_radius > 0.0, "sensing radius must be positive");
    assert!((0.0..=1.0).contains(&p), "p in [0,1]");

    let spec = DeploymentSpec::new(omega, n, DeploymentKind::UniformRandom);
    let positions = spec.generate(rng);
    let disks = deployment::disks_at(&positions, sensing_radius);

    let mut targets = Vec::with_capacity(m);
    let mut coverages = Vec::with_capacity(m);
    for _ in 0..m {
        let mut placed = None;
        for _ in 0..64 {
            let candidate = deployment::uniform_targets(omega, 1, rng)[0];
            let cov = deployment::sensors_covering(candidate, &disks);
            if !cov.is_empty() {
                placed = Some((candidate, cov));
                break;
            }
        }
        let (target, cov) = placed.unwrap_or_else(|| {
            let anchor = positions[rng.random_range(0..n)];
            let cov = deployment::sensors_covering(anchor, &disks);
            (anchor, cov)
        });
        targets.push(target);
        coverages.push(cov);
    }
    (
        SumUtility::multi_target_detection(&coverages, p),
        positions,
        targets,
    )
}

/// The Fig. 8 instance family: `n` sensors, `m ∈ {1,2,3,4}` targets,
/// `p = 0.4`. For `m = 1` every sensor covers the target (the paper's
/// single-target setting); multi-target coverage draws follow
/// [`random_multi_target`] with coverage probability 0.5.
pub fn fig8_instance<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> SumUtility {
    const P: f64 = 0.4;
    if m == 1 {
        SumUtility::multi_target_detection(&[SensorSet::full(n)], P)
    } else {
        random_multi_target(n, m, 0.5, P, rng)
    }
}

/// The Fig. 9 instance family: `n ∈ {100..500}` sensors and `m ∈ {10..50}`
/// targets, sensing radius 100, `p = 0.4`, deployed in a square whose side
/// grows as `500 · (n/100)^0.4`.
///
/// The paper does not state its region size; a fixed region makes expected
/// per-target coverage grow linearly in `n` and saturates the utility well
/// before `n = 500`, while constant density keeps it flat. The mildly
/// densifying exponent reproduces the paper's reported bands — average
/// utility ≈ 0.69–0.75 for `n = 100–200` and ≈ 0.78–0.84 for
/// `n = 300–500` (see EXPERIMENTS.md).
pub fn fig9_instance<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> SumUtility {
    let side = 500.0 * (n as f64 / 100.0).powf(0.4);
    let omega = Rect::square(side);
    let (u, _, _) = geometric_multi_target(omega, n, m, 100.0, 0.4, rng);
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::SeedSequence;
    use cool_utility::{check_utility, AnyUtility, UtilityFunction};

    fn rng() -> rand::rngs::StdRng {
        SeedSequence::new(2024).nth_rng(0)
    }

    fn coverage_of(part: &AnyUtility) -> SensorSet {
        match part {
            AnyUtility::Detection(d) => d.coverage(),
            _ => panic!("instances are detection sums"),
        }
    }

    #[test]
    fn every_target_has_a_coverer() {
        let mut r = rng();
        for _ in 0..20 {
            let u = random_multi_target(10, 5, 0.1, 0.4, &mut r);
            for part in u.parts() {
                assert!(!coverage_of(part).is_empty());
            }
        }
    }

    #[test]
    fn generated_instances_are_valid_utilities() {
        let mut r = rng();
        let u = random_multi_target(12, 4, 0.5, 0.4, &mut r);
        check_utility(&u, 200, &mut r).unwrap();
    }

    #[test]
    fn geometric_instance_coverage_respects_radius() {
        let mut r = rng();
        let omega = Rect::square(100.0);
        let (u, positions, targets) = geometric_multi_target(omega, 30, 5, 20.0, 0.4, &mut r);
        assert_eq!(positions.len(), 30);
        assert_eq!(targets.len(), 5);
        for (target_idx, part) in u.parts().iter().enumerate() {
            let cov = coverage_of(part);
            assert!(!cov.is_empty(), "target {target_idx} covered");
            for v in &cov {
                assert!(
                    positions[v.index()].distance(targets[target_idx]) <= 20.0 + 1e-9,
                    "coverer within radius"
                );
            }
        }
    }

    #[test]
    fn fig8_single_target_is_full_coverage() {
        let u = fig8_instance(25, 1, &mut rng());
        assert_eq!(u.n_targets(), 1);
        assert_eq!(coverage_of(&u.parts()[0]).len(), 25);
        // p = 0.4: max value = 1 − 0.6^25.
        assert!((u.max_value() - (1.0 - 0.6f64.powi(25))).abs() < 1e-12);
    }

    #[test]
    fn fig9_instance_has_requested_shape() {
        let u = fig9_instance(100, 10, &mut rng());
        assert_eq!(u.universe(), 100);
        assert_eq!(u.n_targets(), 10);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_multi_target(8, 3, 0.5, 0.4, &mut SeedSequence::new(1).nth_rng(7));
        let b = random_multi_target(8, 3, 0.5, 0.4, &mut SeedSequence::new(1).nth_rng(7));
        for (pa, pb) in a.parts().iter().zip(b.parts()) {
            assert_eq!(coverage_of(pa), coverage_of(pb));
        }
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn zero_targets_panics() {
        let _ = random_multi_target(5, 0, 0.5, 0.4, &mut rng());
    }
}
