//! Dynamic node-activation scheduling for solar-powered sensor coverage.
//!
//! This crate is the primary contribution of *"Cool: On Coverage with
//! Solar-Powered Sensors"* (Tang, Li, Shen, Zhang, Dai, Das — ICDCS 2011):
//! given `n` homogeneous solar-rechargeable sensors whose charging period
//! spans `T` time slots, and a non-decreasing submodular utility over the
//! set of simultaneously active sensors, compute an activation schedule for
//! a working time `L = αT` maximising total (equivalently average) utility.
//!
//! # What's here
//!
//! * [`Problem`] — the instance: utility + [`ChargeCycle`](cool_energy::ChargeCycle) + horizon
//!   ([`problem`]);
//! * [`PeriodSchedule`] / feasibility checking ([`schedule`]);
//! * **Greedy hill-climbing** (Algorithm 1) with naive and lazy (CELF)
//!   implementations, for both the `ρ > 1` active-slot allocation and the
//!   `ρ ≤ 1` passive-slot allocation — ½-approximate (Lemma 4.1,
//!   Theorems 4.3, 4.4) ([`greedy`]);
//! * **LP relaxation** (§IV-A.1): the integer program's linear relaxation
//!   solved by an in-crate two-phase simplex, then randomised rounding
//!   ([`lp`], [`simplex`]);
//! * **Exact solvers** — exhaustive enumeration and submodularity-pruned
//!   branch & bound, used as the "optimal by enumeration" reference of
//!   Fig. 8 ([`optimal`]);
//! * the single-target closed-form upper bound `1 − (1−p)^⌈n/T⌉` of §VI-B
//!   and companions ([`bounds`]);
//! * baselines (random, round-robin, static) ([`baselines`]);
//! * activation policies for driving a simulator ([`policy`]);
//! * the §V stochastic-charging scheduling pipeline (`ρ'`-based) and its
//!   Monte-Carlo evaluation ([`stochastic`]);
//! * random/geometric instance generators shared by tests, benches and the
//!   experiment harness ([`instances`]).
//!
//! # Example: the paper's single-target experiment in miniature
//!
//! ```
//! use cool_core::{greedy::greedy_schedule, problem::Problem};
//! use cool_energy::ChargeCycle;
//! use cool_utility::DetectionUtility;
//!
//! // 12 sensors, one target, p = 0.4, sunny cycle (T = 4 slots).
//! let problem = Problem::new(
//!     DetectionUtility::uniform(12, 0.4),
//!     ChargeCycle::paper_sunny(),
//!     12, // α periods — a 12-hour day
//! ).unwrap();
//! let schedule = greedy_schedule(&problem);
//! assert!(schedule.is_feasible(problem.cycle()));
//! let avg = problem.average_utility_per_target_slot(&schedule);
//! assert!(avg > 0.5, "greedy is at least half of the (≤1) optimum");
//! ```

pub mod baselines;
pub mod bounds;
pub mod errors;
pub mod greedy;
pub mod hetero;
pub mod horizon;
pub mod instances;
pub mod local_search;
pub mod lp;
pub mod lp_window;
pub mod optimal;
pub mod policy;
pub mod problem;
pub mod repair;
pub mod schedule;
pub mod simplex;
pub mod stochastic;
pub mod symmetric;

pub use baselines::{
    hef_schedule, random_schedule, round_robin_schedule, rsc_schedule, set_once_schedule,
    static_schedule,
};
pub use bounds::{grid_duty_upper_bound, single_target_upper_bound};
pub use errors::ScheduleBuildError;
pub use greedy::{
    greedy_schedule, greedy_schedule_lazy, try_greedy_schedule, try_greedy_schedule_lazy,
};
pub use hetero::{
    hetero_greedy_lazy, hetero_greedy_naive, phases_from_period_schedule, repair_fleet_schedule,
    FleetRepairOutcome, FleetSchedule, GridSchedule,
};
pub use horizon::{greedy_horizon, HorizonSchedule};
pub use local_search::{improve_schedule, LocalSearchOutcome};
pub use lp::{LpOutcome, LpScheduler};
pub use lp_window::{solve_window_lp, RepairStrategy, WindowLpOutcome};
pub use optimal::{branch_and_bound, exhaustive_optimal};
pub use problem::{Problem, ProblemError};
pub use repair::{repair_schedule, RepairConfig, RepairMode, RepairOutcome};
pub use schedule::{PeriodSchedule, ScheduleMode};
pub use simplex::{LinearProgram, SimplexError, SimplexSolution};
pub use symmetric::{balanced_partition, optimal_partition_dp, SymmetricOptimum};
