//! Local-search post-optimisation of period schedules.
//!
//! The greedy's ½-guarantee is a floor; on most instances it already lands
//! on the optimum (see `repro approx`). For the residue, a classic
//! 1-exchange local search — repeatedly move a single sensor to the slot
//! where it is worth most — can only improve the schedule and converges to
//! a local optimum where *no single reassignment helps*. For submodular
//! utilities such exchange-stable solutions are themselves
//! ½-approximate, so the combination keeps the guarantee while closing
//! empirical gaps.
//!
//! Each exchange probes every slot with gain/loss queries against the
//! per-slot evaluators from [`UtilityFunction::evaluator`] — O(deg(v))
//! incident parts per query for a multi-target
//! [`SumUtility`](cool_utility::SumUtility) thanks to its sparse
//! incidence index.

use crate::schedule::{PeriodSchedule, ScheduleMode};
use cool_common::SensorId;
use cool_utility::{Evaluator, UtilityFunction};

/// Result of a local-search pass.
#[derive(Clone, Debug)]
pub struct LocalSearchOutcome {
    /// The improved (or unchanged) schedule.
    pub schedule: PeriodSchedule,
    /// Utility before local search.
    pub initial_value: f64,
    /// Utility after convergence.
    pub final_value: f64,
    /// Number of single-sensor moves applied.
    pub moves: usize,
    /// Full sweeps over all sensors until no move helped.
    pub sweeps: usize,
}

impl LocalSearchOutcome {
    /// Relative improvement over the input schedule (`0.0` when the input
    /// was already exchange-stable).
    pub fn improvement(&self) -> f64 {
        if self.initial_value <= 0.0 {
            0.0
        } else {
            self.final_value / self.initial_value - 1.0
        }
    }
}

/// Improves an active-slot schedule by single-sensor exchange moves until
/// no move increases the period utility (or `max_sweeps` full sweeps have
/// run). Deterministic: sensors are scanned in index order, destination
/// ties break toward the lower slot.
///
/// # Panics
///
/// Panics if the schedule's mode is not
/// [`ScheduleMode::ActiveSlot`] or universes mismatch.
///
/// # Examples
///
/// ```
/// use cool_core::greedy::greedy_active_naive;
/// use cool_core::local_search::improve_schedule;
/// use cool_utility::DetectionUtility;
///
/// let u = DetectionUtility::uniform(9, 0.4);
/// let greedy = greedy_active_naive(&u, 3).unwrap();
/// let improved = improve_schedule(greedy, &u, 8);
/// assert!(improved.final_value + 1e-12 >= improved.initial_value);
/// ```
// The schedule is taken by value deliberately: local search is the next
// pipeline stage after a scheduler, which hands its result over entirely.
#[allow(clippy::needless_pass_by_value)]
pub fn improve_schedule<U: UtilityFunction>(
    schedule: PeriodSchedule,
    utility: &U,
    max_sweeps: usize,
) -> LocalSearchOutcome {
    assert_eq!(
        schedule.mode(),
        ScheduleMode::ActiveSlot,
        "local search operates on active-slot schedules"
    );
    assert_eq!(
        utility.universe(),
        schedule.n_sensors(),
        "utility universe mismatch"
    );
    let n = schedule.n_sensors();
    let slots = schedule.slots_per_period();
    let initial_value = schedule.period_utility(utility);

    // Mutable state: per-slot evaluators loaded with the current sets.
    let mut assignment = schedule.assignment().to_vec();
    let mut evaluators: Vec<U::Evaluator> = (0..slots).map(|_| utility.evaluator()).collect();
    for (v, &t) in assignment.iter().enumerate() {
        evaluators[t].insert(SensorId(v));
    }

    let mut moves = 0usize;
    let mut sweeps = 0usize;
    while sweeps < max_sweeps {
        sweeps += 1;
        let mut improved = false;
        #[allow(clippy::needless_range_loop)] // `assignment[v]` is also written below
        for v in 0..n {
            let from = assignment[v];
            let loss = evaluators[from].loss(SensorId(v));
            // Best destination gain, evaluated with v removed from `from`.
            evaluators[from].remove(SensorId(v));
            let mut best = (0.0f64, from); // (net improvement, slot)
            for (t, evaluator) in evaluators.iter().enumerate() {
                if t == from {
                    continue;
                }
                let net = evaluator.gain(SensorId(v)) - loss;
                if net > best.0 + 1e-12 {
                    best = (net, t);
                }
            }
            let destination = best.1;
            evaluators[destination].insert(SensorId(v));
            if destination != from {
                assignment[v] = destination;
                moves += 1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    let schedule = PeriodSchedule::new(ScheduleMode::ActiveSlot, slots, assignment);
    let final_value = schedule.period_utility(utility);
    LocalSearchOutcome {
        schedule,
        initial_value,
        final_value,
        moves,
        sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_active_naive;
    use crate::optimal::exhaustive_optimal;
    use cool_common::SeedSequence;
    use cool_utility::DetectionUtility;
    use proptest::prelude::*;

    #[test]
    fn never_degrades() {
        let mut rng = SeedSequence::new(314).nth_rng(0);
        for trial in 0..20u64 {
            let n = 3 + (trial as usize % 8);
            let u = crate::instances::random_multi_target(n, 2, 0.6, 0.4, &mut rng);
            let greedy = greedy_active_naive(&u, 4).unwrap();
            let out = improve_schedule(greedy, &u, 16);
            assert!(
                out.final_value + 1e-12 >= out.initial_value,
                "trial {trial}"
            );
            assert!(out
                .schedule
                .is_feasible(cool_energy::ChargeCycle::paper_sunny()));
        }
    }

    #[test]
    fn repairs_a_bad_schedule_to_optimal() {
        // Start from the worst case: everyone in slot 0 of a symmetric
        // instance — local search must fan them out to the balanced optimum.
        let u = DetectionUtility::uniform(8, 0.4);
        let awful = PeriodSchedule::new(ScheduleMode::ActiveSlot, 4, vec![0; 8]);
        let out = improve_schedule(awful, &u, 32);
        let opt = exhaustive_optimal(&u, 4, ScheduleMode::ActiveSlot).period_utility(&u);
        assert!(
            (out.final_value - opt).abs() < 1e-9,
            "local search reached {} vs optimal {opt}",
            out.final_value
        );
        assert!(out.moves >= 6, "most sensors had to move");
        assert!(out.improvement() > 1.0, "more than doubled the awful start");
    }

    #[test]
    fn greedy_output_is_often_already_stable() {
        let u = DetectionUtility::uniform(12, 0.4);
        let greedy = greedy_active_naive(&u, 4).unwrap();
        let out = improve_schedule(greedy, &u, 8);
        assert_eq!(out.moves, 0, "balanced greedy is exchange-stable");
        assert_eq!(out.sweeps, 1);
        assert_eq!(out.improvement(), 0.0);
    }

    #[test]
    #[should_panic(expected = "active-slot")]
    fn passive_mode_panics() {
        let u = DetectionUtility::uniform(2, 0.4);
        let s = PeriodSchedule::new(ScheduleMode::PassiveSlot, 2, vec![0, 1]);
        let _ = improve_schedule(s, &u, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Exchange-stability: after convergence no single move helps
        /// (verified from scratch), and the value never drops.
        #[test]
        fn converges_to_exchange_stable(n in 2usize..7, slots in 2usize..4, seed in any::<u64>()) {
            let mut rng = SeedSequence::new(seed).nth_rng(0);
            let u = crate::instances::random_multi_target(n, 2, 0.5, 0.4, &mut rng);
            let greedy = greedy_active_naive(&u, slots).unwrap();
            let out = improve_schedule(greedy, &u, 64);
            prop_assert!(out.final_value + 1e-12 >= out.initial_value);

            // No single reassignment improves the final schedule.
            let base = out.schedule.period_utility(&u);
            for v in 0..n {
                let from = out.schedule.assigned_slot(cool_common::SensorId(v)).index();
                for t in 0..slots {
                    if t == from { continue; }
                    let mut assignment = out.schedule.assignment().to_vec();
                    assignment[v] = t;
                    let moved = PeriodSchedule::new(ScheduleMode::ActiveSlot, slots, assignment);
                    prop_assert!(
                        moved.period_utility(&u) <= base + 1e-9,
                        "move v{} {}→{} improves a 'stable' schedule", v, from, t
                    );
                }
            }
        }
    }
}
