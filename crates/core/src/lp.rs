//! The LP-relaxation scheduler of §IV-A.1.
//!
//! The paper's integer program maximises `Σ_t Σ_j U_j(S_X(O_j, t))` subject
//! to each sensor being active at most once per period; relaxing
//! `x(v_i, t) ∈ {0,1}` to `[0,1]` yields a linear program, after which the
//! schedule is obtained by randomised rounding ("let each node v_i be active
//! at time-slot t with probability x(v_i, t)").
//!
//! A submodular objective is not linear, so — as is standard for coverage
//! objectives — we solve the LP over the **concave envelope**
//! `U(S) ≤ Σ_k w_k · min(1, Σ_{v∈S} q_{k,v})`, which every built-in utility
//! admits exactly ([`coverage_items`]):
//!
//! | utility | items |
//! |---|---|
//! | detection `1−Π(1−p)` | one item, cap 1, mass `p_v` |
//! | weighted coverage (Eq. 2) | one item per subregion, cap `w·\|A\|`, mass `1` |
//! | linear | one item per sensor (exact) |
//! | log-sum | one item, cap `ln(1+W)`, mass `w_v/cap` |
//! | facility location | one item per target, cap `max_v b`, mass `b_v/cap` |
//!
//! The LP optimum therefore **upper-bounds** the true optimum (useful as a
//! certificate), and rounding yields a feasible schedule whose true utility
//! is reported alongside. Because the per-period constraint is
//! `Σ_t x(v,t) ≤ 1`, sampling each sensor's slot from its LP row is feasible
//! *by construction* — the iterated-rounding repair of the paper's \[13\]
//! reduces, in the one-period form, to re-sampling, which
//! [`LpScheduler::rounding_trials`] performs, keeping the best draw.
//!
//! The rounding repair scores candidate slots with per-slot evaluators
//! from [`UtilityFunction::evaluator`]; for a multi-target
//! [`SumUtility`] each such gain/loss query is O(deg(v)) via the sparse
//! incidence index rather than O(m) over all parts.

use crate::problem::Problem;
use crate::schedule::{PeriodSchedule, ScheduleMode};
use crate::simplex::{LinearProgram, Relation, SimplexError};
use cool_common::SensorId;
use cool_utility::{AnyUtility, Evaluator, SumUtility, UtilityFunction};
use rand::Rng;

/// Decomposes a utility into concave-envelope coverage items
/// `(cap w_k, per-sensor mass q_k)` with
/// `U(S) ≤ Σ_k w_k · min(1, Σ_{v∈S} q_{k,v})` for every integral `S`.
pub fn coverage_items(utility: &AnyUtility) -> Vec<(f64, Vec<f64>)> {
    match utility {
        AnyUtility::Detection(d) => vec![(1.0, d.probs().to_vec())],
        AnyUtility::Linear(l) => l
            .weights()
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0.0)
            .map(|(v, &w)| {
                let mut q = vec![0.0; l.weights().len()];
                q[v] = 1.0;
                (w, q)
            })
            .collect(),
        AnyUtility::LogSum(l) => {
            let total: f64 = l.weights().iter().sum();
            let cap = (1.0 + total).ln();
            if cap <= 0.0 {
                return Vec::new();
            }
            vec![(cap, l.weights().iter().map(|w| w / cap).collect())]
        }
        // One item per subregion: cap = weighted area, indicator masses.
        AnyUtility::Coverage(c) => c.lp_items(),
        AnyUtility::Facility(fac) => fac.lp_items(),
        AnyUtility::KCover(kc) => kc.lp_items(),
    }
}

/// Outcome of the LP pipeline.
#[derive(Clone, Debug)]
pub struct LpOutcome {
    /// Optimal value of the relaxation for **one period** — an upper bound
    /// on any feasible period's true utility.
    pub lp_value: f64,
    /// The best rounded schedule.
    pub schedule: PeriodSchedule,
    /// True (submodular) period utility of `schedule`.
    pub rounded_value: f64,
}

/// The LP-based scheduler.
///
/// # Examples
///
/// ```
/// use cool_core::{lp::LpScheduler, problem::Problem};
/// use cool_common::{SeedSequence, SensorSet};
/// use cool_energy::ChargeCycle;
/// use cool_utility::SumUtility;
///
/// let u = SumUtility::multi_target_detection(
///     &[SensorSet::full(8)], 0.4);
/// let p = Problem::new(u, ChargeCycle::paper_sunny(), 1).unwrap();
/// let out = LpScheduler::new(16)
///     .schedule(&p, &mut SeedSequence::new(3).nth_rng(0))
///     .unwrap();
/// assert!(out.schedule.is_feasible(p.cycle()));
/// assert!(out.rounded_value <= out.lp_value + 1e-9);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct LpScheduler {
    rounding_trials: usize,
}

impl LpScheduler {
    /// Creates a scheduler performing `rounding_trials` independent
    /// rounding passes (the paper's iterated rounding), keeping the best.
    ///
    /// # Panics
    ///
    /// Panics if `rounding_trials == 0`.
    pub fn new(rounding_trials: usize) -> Self {
        assert!(rounding_trials > 0, "need at least one rounding trial");
        LpScheduler { rounding_trials }
    }

    /// Number of rounding passes.
    pub fn rounding_trials(&self) -> usize {
        self.rounding_trials
    }

    /// Runs the pipeline on a problem over [`SumUtility`].
    ///
    /// For `ρ > 1` this is the paper's active-slot LP (`Σ_t x(v,t) ≤ 1`
    /// active slot per period). For `ρ ≤ 1` it solves the **passive
    /// dual**: `x(v,t)` relaxes the indicator "sensor `v` takes its
    /// passive slot at `t`" with `Σ_t x(v,t) = 1`, the coverage link
    /// becomes `y(k,t) + Σ_v q_{k,v}·x(v,t) ≤ Σ_v q_{k,v}` (mass lost to
    /// the sensors resting at `t`), and rounding samples each sensor's
    /// passive slot, emitting a [`ScheduleMode::PassiveSlot`] schedule.
    /// In both regimes `lp_value` upper-bounds `rounded_value`.
    ///
    /// # Errors
    ///
    /// Propagates [`SimplexError`] from the LP solve (a well-formed
    /// scheduling LP is never infeasible or unbounded, so this signals a
    /// malformed utility decomposition).
    pub fn schedule<R: Rng + ?Sized>(
        &self,
        problem: &Problem<SumUtility>,
        rng: &mut R,
    ) -> Result<LpOutcome, SimplexError> {
        if problem.cycle().rho() > 1.0 {
            self.schedule_active(problem, rng)
        } else {
            self.schedule_passive(problem, rng)
        }
    }

    /// `ρ > 1`: one active slot per sensor per period.
    fn schedule_active<R: Rng + ?Sized>(
        self,
        problem: &Problem<SumUtility>,
        rng: &mut R,
    ) -> Result<LpOutcome, SimplexError> {
        let utility = problem.utility();
        let n = problem.n_sensors();
        let t_slots = problem.slots_per_period();

        // Gather items across all parts.
        let items: Vec<(f64, Vec<f64>)> = utility.parts().iter().flat_map(coverage_items).collect();
        let k_items = items.len();

        // Variables: x(v,t) laid out v*T + t, then y(k,t) at n*T + k*T + t.
        let n_x = n * t_slots;
        let n_vars = n_x + k_items * t_slots;
        let mut lp = LinearProgram::new(n_vars);

        let mut objective = vec![0.0; n_vars];
        for (k, (cap, _)) in items.iter().enumerate() {
            for t in 0..t_slots {
                objective[n_x + k * t_slots + t] = *cap;
            }
        }
        lp.set_objective(objective);

        // Σ_t x(v,t) ≤ 1 per sensor.
        for v in 0..n {
            let mut row = vec![0.0; n_vars];
            for t in 0..t_slots {
                row[v * t_slots + t] = 1.0;
            }
            lp.add_constraint(row, Relation::Le, 1.0);
        }
        // y(k,t) ≤ 1 and y(k,t) ≤ Σ_v q_{k,v} x(v,t).
        for (k, (_, masses)) in items.iter().enumerate() {
            for t in 0..t_slots {
                let y = n_x + k * t_slots + t;
                let mut cap_row = vec![0.0; n_vars];
                cap_row[y] = 1.0;
                lp.add_constraint(cap_row, Relation::Le, 1.0);

                let mut link = vec![0.0; n_vars];
                link[y] = 1.0;
                for (v, &q) in masses.iter().enumerate() {
                    if q != 0.0 {
                        link[v * t_slots + t] = -q;
                    }
                }
                lp.add_constraint(link, Relation::Le, 0.0);
            }
        }

        let solution = lp.solve()?;
        let x = &solution.x[..n_x];

        // Randomised rounding, repeated; greedy completion for sensors whose
        // LP row leaves them unscheduled (activating more never hurts a
        // monotone utility).
        let mut best: Option<(f64, PeriodSchedule)> = None;
        for _ in 0..self.rounding_trials {
            let mut assignment = vec![usize::MAX; n];
            let mut evaluators: Vec<_> = (0..t_slots).map(|_| utility.evaluator()).collect();
            for v in 0..n {
                // The simplex solution must be a (sub-)probability row per
                // sensor for the rounding below to be well-defined.
                cool_common::invariant!(
                    (0..t_slots).all(|t| {
                        let p = x[v * t_slots + t];
                        (-1e-9..=1.0 + 1e-9).contains(&p)
                    }),
                    "LP slot-assignment variables for sensor {v} outside [0, 1]"
                );
                cool_common::invariant!(
                    (0..t_slots).map(|t| x[v * t_slots + t]).sum::<f64>() <= 1.0 + 1e-6,
                    "LP slot-assignment row for sensor {v} exceeds probability mass 1"
                );
                let mut u: f64 = rng.random_range(0.0..1.0);
                for t in 0..t_slots {
                    let p = x[v * t_slots + t];
                    if u < p {
                        assignment[v] = t;
                        break;
                    }
                    u -= p;
                }
            }
            for (v, slot) in assignment.iter_mut().enumerate() {
                if *slot == usize::MAX {
                    // Greedy completion.
                    let (_, best_t) = (0..t_slots)
                        .map(|t| (evaluators[t].gain(SensorId(v)), t))
                        .fold(
                            (f64::NEG_INFINITY, 0),
                            |acc, c| if c.0 > acc.0 { c } else { acc },
                        );
                    *slot = best_t;
                }
                evaluators[*slot].insert(SensorId(v));
            }
            let schedule = PeriodSchedule::new(ScheduleMode::ActiveSlot, t_slots, assignment);
            let value = schedule.period_utility(utility);
            if best.as_ref().is_none_or(|(b, _)| value > *b) {
                best = Some((value, schedule));
            }
        }
        let Some((rounded_value, schedule)) = best else {
            unreachable!("trials >= 1, so at least one rounding attempt ran")
        };
        // The envelope relaxation dominates every integral assignment.
        cool_common::invariant!(
            rounded_value <= solution.objective_value + 1e-6,
            "rounded value {rounded_value} exceeds LP bound {}",
            solution.objective_value
        );
        Ok(LpOutcome {
            lp_value: solution.objective_value,
            schedule,
            rounded_value,
        })
    }

    /// `ρ ≤ 1`: one passive slot per sensor per period (the dual form).
    #[allow(clippy::too_many_lines)] // one linear recipe: build rows, solve, round, complete
    fn schedule_passive<R: Rng + ?Sized>(
        self,
        problem: &Problem<SumUtility>,
        rng: &mut R,
    ) -> Result<LpOutcome, SimplexError> {
        let utility = problem.utility();
        let n = problem.n_sensors();
        let t_slots = problem.slots_per_period();

        let items: Vec<(f64, Vec<f64>)> = utility.parts().iter().flat_map(coverage_items).collect();
        let k_items = items.len();

        // Variables: x(v,t) = P(sensor v rests at slot t) laid out v*T + t,
        // then y(k,t) at n*T + k*T + t.
        let n_x = n * t_slots;
        let n_vars = n_x + k_items * t_slots;
        let mut lp = LinearProgram::new(n_vars);

        let mut objective = vec![0.0; n_vars];
        for (k, (cap, _)) in items.iter().enumerate() {
            for t in 0..t_slots {
                objective[n_x + k * t_slots + t] = *cap;
            }
        }
        lp.set_objective(objective);

        // Σ_t x(v,t) = 1 per sensor: everyone rests exactly once.
        for v in 0..n {
            let mut row = vec![0.0; n_vars];
            for t in 0..t_slots {
                row[v * t_slots + t] = 1.0;
            }
            lp.add_constraint(row, Relation::Eq, 1.0);
        }
        // y(k,t) ≤ 1 and y(k,t) ≤ Σ_v q_{k,v} (1 − x(v,t)), i.e.
        // y(k,t) + Σ_v q_{k,v} x(v,t) ≤ Σ_v q_{k,v}.
        for (k, (_, masses)) in items.iter().enumerate() {
            let total_mass: f64 = masses.iter().sum();
            for t in 0..t_slots {
                let y = n_x + k * t_slots + t;
                let mut cap_row = vec![0.0; n_vars];
                cap_row[y] = 1.0;
                lp.add_constraint(cap_row, Relation::Le, 1.0);

                let mut link = vec![0.0; n_vars];
                link[y] = 1.0;
                for (v, &q) in masses.iter().enumerate() {
                    if q != 0.0 {
                        link[v * t_slots + t] = q;
                    }
                }
                lp.add_constraint(link, Relation::Le, total_mass);
            }
        }

        let solution = lp.solve()?;
        let x = &solution.x[..n_x];

        // Round by sampling each sensor's passive slot from its LP row;
        // numerical leftovers fall back to the minimum-loss slot given the
        // draws so far (resting where it hurts least).
        let mut best: Option<(f64, PeriodSchedule)> = None;
        for _ in 0..self.rounding_trials {
            let mut assignment = vec![usize::MAX; n];
            let mut evaluators: Vec<_> = (0..t_slots)
                .map(|_| {
                    let mut e = utility.evaluator();
                    for v in 0..n {
                        e.insert(SensorId(v));
                    }
                    e
                })
                .collect();
            for v in 0..n {
                cool_common::invariant!(
                    (0..t_slots).all(|t| {
                        let p = x[v * t_slots + t];
                        (-1e-9..=1.0 + 1e-9).contains(&p)
                    }),
                    "LP passive-slot variables for sensor {v} outside [0, 1]"
                );
                cool_common::invariant!(
                    ((0..t_slots).map(|t| x[v * t_slots + t]).sum::<f64>() - 1.0).abs() <= 1e-6,
                    "LP passive-slot row for sensor {v} is not a probability row"
                );
                let mut u: f64 = rng.random_range(0.0..1.0);
                for t in 0..t_slots {
                    let p = x[v * t_slots + t];
                    if u < p {
                        assignment[v] = t;
                        break;
                    }
                    u -= p;
                }
            }
            for (v, slot) in assignment.iter_mut().enumerate() {
                if *slot == usize::MAX {
                    let (_, best_t) = (0..t_slots)
                        .map(|t| (evaluators[t].loss(SensorId(v)), t))
                        .fold(
                            (f64::INFINITY, 0),
                            |acc, c| if c.0 < acc.0 { c } else { acc },
                        );
                    *slot = best_t;
                }
                evaluators[*slot].remove(SensorId(v));
            }
            let schedule = PeriodSchedule::new(ScheduleMode::PassiveSlot, t_slots, assignment);
            let value = schedule.period_utility(utility);
            if best.as_ref().is_none_or(|(b, _)| value > *b) {
                best = Some((value, schedule));
            }
        }
        let Some((rounded_value, schedule)) = best else {
            unreachable!("trials >= 1, so at least one rounding attempt ran")
        };
        cool_common::invariant!(
            rounded_value <= solution.objective_value + 1e-6,
            "rounded value {rounded_value} exceeds LP bound {}",
            solution.objective_value
        );
        Ok(LpOutcome {
            lp_value: solution.objective_value,
            schedule,
            rounded_value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_schedule;
    use cool_common::{SeedSequence, SensorSet};
    use cool_energy::ChargeCycle;

    fn rng() -> rand::rngs::StdRng {
        SeedSequence::new(55).nth_rng(0)
    }

    fn single_target_problem(n: usize) -> Problem<SumUtility> {
        let u = SumUtility::multi_target_detection(&[SensorSet::full(n)], 0.4);
        Problem::new(u, ChargeCycle::paper_sunny(), 1).unwrap()
    }

    #[test]
    fn lp_value_upper_bounds_optimum() {
        let p = single_target_problem(6);
        let out = LpScheduler::new(8).schedule(&p, &mut rng()).unwrap();
        let opt = crate::optimal::exhaustive_optimal(
            p.utility(),
            p.slots_per_period(),
            ScheduleMode::ActiveSlot,
        );
        let opt_value = opt.period_utility(p.utility());
        assert!(
            out.lp_value + 1e-9 >= opt_value,
            "LP {} should dominate OPT {}",
            out.lp_value,
            opt_value
        );
        assert!(out.rounded_value <= opt_value + 1e-9);
    }

    #[test]
    fn rounded_schedule_is_feasible() {
        let p = single_target_problem(10);
        let out = LpScheduler::new(4).schedule(&p, &mut rng()).unwrap();
        assert!(out.schedule.is_feasible(p.cycle()));
        assert_eq!(out.schedule.n_sensors(), 10);
    }

    #[test]
    fn lp_rounding_is_competitive_with_greedy() {
        // On the paper's single-target instances the LP+rounding result
        // should land within 25% of greedy (usually equal).
        let p = single_target_problem(12);
        let out = LpScheduler::new(32).schedule(&p, &mut rng()).unwrap();
        let g = greedy_schedule(&p).period_utility(p.utility());
        assert!(
            out.rounded_value >= 0.75 * g,
            "LP rounding {} too far below greedy {}",
            out.rounded_value,
            g
        );
    }

    #[test]
    fn multi_target_lp_runs() {
        let mut r = rng();
        let u = crate::instances::random_multi_target(8, 3, 0.5, 0.4, &mut r);
        let p = Problem::new(u, ChargeCycle::paper_sunny(), 1).unwrap();
        let out = LpScheduler::new(8).schedule(&p, &mut r).unwrap();
        assert!(out.lp_value > 0.0);
        assert!(out.schedule.is_feasible(p.cycle()));
    }

    #[test]
    fn items_respect_envelope_inequality() {
        // For random sets: U(S) ≤ Σ_k w_k min(1, Σ q).
        let mut r = rng();
        let u = crate::instances::random_multi_target(10, 4, 0.5, 0.4, &mut r);
        let items: Vec<(f64, Vec<f64>)> = u.parts().iter().flat_map(coverage_items).collect();
        for trial in 0..100 {
            let members: Vec<usize> = (0..10).filter(|_| r.random_range(0.0..1.0) < 0.5).collect();
            let s = SensorSet::from_indices(10, members.iter().copied());
            let envelope: f64 = items
                .iter()
                .map(|(cap, q)| {
                    let mass: f64 = s.iter().map(|v| q[v.index()]).sum();
                    cap * mass.min(1.0)
                })
                .sum();
            assert!(
                u.eval(&s) <= envelope + 1e-9,
                "trial {trial}: U={} > envelope={}",
                u.eval(&s),
                envelope
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one rounding trial")]
    fn zero_trials_panics() {
        let _ = LpScheduler::new(0);
    }

    #[test]
    fn passive_lp_schedules_fast_recharge_problems() {
        // Regression (promoted from examples/bugprobe.rs, probe 1): the
        // scheduler used to emit an ActiveSlot plan regardless of ρ, which
        // is infeasible on a ρ ≤ 1 cycle. The passive dual must produce a
        // feasible PassiveSlot schedule bounded by the LP value.
        let u = SumUtility::multi_target_detection(&[SensorSet::full(6)], 0.4);
        let cycle = ChargeCycle::from_rho(0.5, 10.0).unwrap();
        let p = Problem::new(u, cycle, 1).unwrap();
        let out = LpScheduler::new(4).schedule(&p, &mut rng()).unwrap();
        assert_eq!(out.schedule.mode(), ScheduleMode::PassiveSlot);
        assert!(out.schedule.is_feasible(p.cycle()));
        assert!(
            out.rounded_value <= out.lp_value + 1e-9,
            "rounded {} must not exceed LP bound {}",
            out.rounded_value,
            out.lp_value
        );
        assert!(out.rounded_value > 0.0);
    }

    #[test]
    fn passive_lp_value_upper_bounds_passive_optimum() {
        let u = SumUtility::multi_target_detection(&[SensorSet::full(5)], 0.4);
        let cycle = ChargeCycle::from_rho(1.0 / 3.0, 10.0).unwrap();
        let p = Problem::new(u, cycle, 1).unwrap();
        let out = LpScheduler::new(8).schedule(&p, &mut rng()).unwrap();
        let opt = crate::optimal::exhaustive_optimal(
            p.utility(),
            p.slots_per_period(),
            ScheduleMode::PassiveSlot,
        );
        let opt_value = opt.period_utility(p.utility());
        assert!(
            out.lp_value + 1e-9 >= opt_value,
            "LP {} should dominate passive OPT {}",
            out.lp_value,
            opt_value
        );
        assert!(out.rounded_value <= opt_value + 1e-9);
    }

    #[test]
    fn rounded_value_never_exceeds_lp_value() {
        // Regression (promoted from examples/bugprobe.rs, probe 3): the
        // envelope relaxation upper-bounds every rounded draw, including
        // greedy-completed ones, in both ρ regimes.
        let mut r = rng();
        for seed in 0..8u64 {
            let mut trial_rng = SeedSequence::new(seed).nth_rng(4);
            let u = crate::instances::random_multi_target(6, 2, 0.5, 0.4, &mut trial_rng);
            for cycle in [
                ChargeCycle::paper_sunny(),
                ChargeCycle::from_rho(0.5, 10.0).unwrap(),
            ] {
                let p = Problem::new(u.clone(), cycle, 1).unwrap();
                let out = LpScheduler::new(16).schedule(&p, &mut r).unwrap();
                assert!(
                    out.rounded_value <= out.lp_value + 1e-9,
                    "seed {seed} rho {}: rounded {} > lp {}",
                    cycle.rho(),
                    out.rounded_value,
                    out.lp_value
                );
            }
        }
    }
}
