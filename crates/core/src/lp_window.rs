//! The full multi-period LP of §IV-A.1, with sliding-window feasibility
//! and the paper's rounding-repair strategies.
//!
//! The integer program constrains every window of `T` consecutive slots:
//!
//! ```text
//! Σ_{t = t'}^{t' + T − 1} x(v_i, t) ≤ 1      ∀ i, ∀ 0 ≤ t' ≤ L − T
//! ```
//!
//! (a sensor may be active at most once in *any* `T`-slot window, not just
//! in aligned periods). After relaxing and solving, each `x(v_i, t)` is a
//! marginal activation probability — but independent per-slot rounding can
//! violate the window constraints, so the paper offers two ways out, both
//! implemented here:
//!
//! * **iterated rounding** (the paper's \[13\]): re-draw an infeasible
//!   sensor's pattern until it satisfies its windows ([`RepairStrategy::Resample`]);
//!   the paper notes this "will be too long to be practical" at scale;
//! * **deactivation repair**: "instead of keeping iterating the rounding
//!   procedure, we may carefully deactivate some sensors to achieve
//!   feasibility" — sweep each sensor's pattern and drop every activation
//!   that lands within a window of the previous kept one
//!   ([`RepairStrategy::Deactivate`]). Earliest-kept is utility-blind but
//!   deterministic; the multi-trial loop picks the best rounded outcome.

use crate::horizon::HorizonSchedule;
use crate::lp::coverage_items;
use crate::simplex::{LinearProgram, Relation, SimplexError};
use cool_common::SensorId;
use cool_utility::{SumUtility, UtilityFunction};
use rand::Rng;

/// How to restore window feasibility after independent rounding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairStrategy {
    /// Re-draw each infeasible sensor's whole pattern (up to a bounded
    /// number of attempts, then fall back to deactivation).
    Resample,
    /// Greedily drop the least-valuable violating activations.
    Deactivate,
}

/// Outcome of the window LP pipeline.
#[derive(Clone, Debug)]
pub struct WindowLpOutcome {
    /// The LP relaxation value over the whole horizon (an upper bound on
    /// any feasible schedule's envelope utility).
    pub lp_value: f64,
    /// The repaired, feasible schedule.
    pub schedule: HorizonSchedule,
    /// True utility of `schedule`.
    pub rounded_value: f64,
    /// Total repair operations performed (re-draws or deactivations).
    pub repair_operations: usize,
}

/// Solves the §IV-A.1 relaxation over `slots` slots with window length
/// `window` (the charging period `T`), rounds, and repairs.
///
/// # Errors
///
/// Propagates [`SimplexError`] from the solver.
///
/// # Panics
///
/// Panics if `window == 0` or `slots < window`.
///
/// # Examples
///
/// ```
/// use cool_common::{SeedSequence, SensorSet};
/// use cool_core::lp_window::{solve_window_lp, RepairStrategy};
/// use cool_utility::SumUtility;
///
/// let u = SumUtility::multi_target_detection(&[SensorSet::full(6)], 0.4);
/// let out = solve_window_lp(&u, 4, 8, RepairStrategy::Deactivate, 4,
///                           &mut SeedSequence::new(1).nth_rng(0)).unwrap();
/// assert!(out.schedule.is_feasible(&vec![cool_energy::ChargeCycle::paper_sunny(); 6]));
/// ```
pub fn solve_window_lp<R: Rng + ?Sized>(
    utility: &SumUtility,
    window: usize,
    slots: usize,
    repair: RepairStrategy,
    rounding_trials: usize,
    rng: &mut R,
) -> Result<WindowLpOutcome, SimplexError> {
    assert!(window > 0, "window must be positive");
    assert!(slots >= window, "horizon shorter than one window");
    assert!(rounding_trials > 0, "need at least one rounding trial");
    let n = utility.universe();

    // Variables: x(v,t) at v*slots + t; y(k,t) after them.
    let items: Vec<(f64, Vec<f64>)> = utility.parts().iter().flat_map(coverage_items).collect();
    let n_x = n * slots;
    let n_vars = n_x + items.len() * slots;
    let mut lp = LinearProgram::new(n_vars);

    let mut objective = vec![0.0; n_vars];
    for (k, (cap, _)) in items.iter().enumerate() {
        for t in 0..slots {
            objective[n_x + k * slots + t] = *cap;
        }
    }
    lp.set_objective(objective);

    // Sliding windows: Σ_{t ∈ [t', t'+T)} x(v,t) ≤ 1.
    for v in 0..n {
        for start in 0..=(slots - window) {
            let mut row = vec![0.0; n_vars];
            for t in start..start + window {
                row[v * slots + t] = 1.0;
            }
            lp.add_constraint(row, Relation::Le, 1.0);
        }
    }
    // Envelope caps and links.
    for (k, (_, masses)) in items.iter().enumerate() {
        for t in 0..slots {
            let y = n_x + k * slots + t;
            let mut cap_row = vec![0.0; n_vars];
            cap_row[y] = 1.0;
            lp.add_constraint(cap_row, Relation::Le, 1.0);
            let mut link = vec![0.0; n_vars];
            link[y] = 1.0;
            for (v, &q) in masses.iter().enumerate() {
                if q != 0.0 {
                    link[v * slots + t] = -q;
                }
            }
            lp.add_constraint(link, Relation::Le, 0.0);
        }
    }

    let solution = lp.solve()?;
    let x = &solution.x[..n_x];

    let mut best: Option<(f64, HorizonSchedule, usize)> = None;
    for _ in 0..rounding_trials {
        let (schedule, repairs) = round_and_repair(utility, x, window, slots, repair, rng);
        let value = schedule.total_utility(utility);
        if best.as_ref().is_none_or(|(b, _, _)| value > *b) {
            best = Some((value, schedule, repairs));
        }
    }
    let Some((rounded_value, schedule, repair_operations)) = best else {
        unreachable!("trials >= 1, so at least one rounding attempt ran")
    };
    Ok(WindowLpOutcome {
        lp_value: solution.objective_value,
        schedule,
        rounded_value,
        repair_operations,
    })
}

/// Independent per-slot rounding followed by the chosen repair.
fn round_and_repair<R: Rng + ?Sized>(
    utility: &SumUtility,
    x: &[f64],
    window: usize,
    slots: usize,
    repair: RepairStrategy,
    rng: &mut R,
) -> (HorizonSchedule, usize) {
    let n = utility.universe();
    let mut patterns: Vec<Vec<bool>> = (0..n)
        .map(|v| {
            (0..slots)
                .map(|t| rng.random_range(0.0..1.0) < x[v * slots + t])
                .collect()
        })
        .collect();
    let mut repairs = 0usize;

    // Per-sensor repair (feasibility is independent across sensors).
    for (v, pattern) in patterns.iter_mut().enumerate() {
        match repair {
            RepairStrategy::Resample => {
                let mut attempts = 0;
                while !window_feasible(pattern, window) && attempts < 64 {
                    for (t, slot) in pattern.iter_mut().enumerate() {
                        *slot = rng.random_range(0.0..1.0) < x[v * slots + t];
                    }
                    attempts += 1;
                    repairs += 1;
                }
                if !window_feasible(pattern, window) {
                    repairs += deactivate_repair(pattern, window);
                }
            }
            RepairStrategy::Deactivate => {
                repairs += deactivate_repair(pattern, window);
            }
        }
    }

    let mut schedule = HorizonSchedule::empty(n, slots);
    for (v, pattern) in patterns.iter().enumerate() {
        for (t, &on) in pattern.iter().enumerate() {
            if on {
                schedule.activate(SensorId(v), t);
            }
        }
    }
    (schedule, repairs)
}

/// `true` when no window of `window` consecutive slots holds two
/// activations.
fn window_feasible(pattern: &[bool], window: usize) -> bool {
    pattern
        .windows(window)
        .all(|w| w.iter().filter(|&&on| on).count() <= 1)
}

/// Drops activations until window-feasible: a left-to-right sweep keeps an
/// activation only when it is at least `window` slots after the previous
/// kept one (so each violating pair loses its **second** member). Returns
/// the number of deactivations.
fn deactivate_repair(pattern: &mut [bool], window: usize) -> usize {
    let mut removed = 0;
    let mut last_active: Option<usize> = None;
    for (t, slot) in pattern.iter_mut().enumerate() {
        if !*slot {
            continue;
        }
        if let Some(prev) = last_active {
            if t - prev < window {
                *slot = false;
                removed += 1;
                continue;
            }
        }
        last_active = Some(t);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::{SeedSequence, SensorSet};
    use cool_energy::ChargeCycle;

    fn rng() -> rand::rngs::StdRng {
        SeedSequence::new(404).nth_rng(0)
    }

    fn single_target(n: usize) -> SumUtility {
        SumUtility::multi_target_detection(&[SensorSet::full(n)], 0.4)
    }

    #[test]
    fn window_feasibility_helper() {
        assert!(window_feasible(&[true, false, false, false, true], 4));
        assert!(!window_feasible(&[true, false, false, true], 4));
        assert!(window_feasible(&[false; 6], 3));
        assert!(window_feasible(&[true], 1));
    }

    #[test]
    fn deactivate_repair_enforces_spacing() {
        let mut p = vec![true, true, false, true, false, false, false, true];
        let removed = deactivate_repair(&mut p, 4);
        assert!(window_feasible(&p, 4), "{p:?}");
        assert!(removed >= 2);
        assert!(p[0], "first activation survives");
    }

    #[test]
    fn both_strategies_yield_feasible_schedules() {
        let u = single_target(8);
        let cycles = vec![ChargeCycle::paper_sunny(); 8];
        for strategy in [RepairStrategy::Resample, RepairStrategy::Deactivate] {
            let out = solve_window_lp(&u, 4, 12, strategy, 4, &mut rng()).expect("LP solves");
            assert!(
                out.schedule.is_feasible(&cycles),
                "{strategy:?} produced an infeasible schedule"
            );
            assert!(out.rounded_value > 0.0);
            assert!(out.rounded_value <= out.lp_value + 1e-9);
        }
    }

    #[test]
    fn lp_value_scales_with_horizon() {
        let u = single_target(6);
        let one_period =
            solve_window_lp(&u, 4, 4, RepairStrategy::Deactivate, 2, &mut rng()).unwrap();
        let three_periods =
            solve_window_lp(&u, 4, 12, RepairStrategy::Deactivate, 2, &mut rng()).unwrap();
        assert!(
            (three_periods.lp_value - 3.0 * one_period.lp_value).abs()
                < 1e-6 * three_periods.lp_value.max(1.0),
            "window LP tiles periods: {} vs 3 × {}",
            three_periods.lp_value,
            one_period.lp_value
        );
    }

    #[test]
    fn lp_value_upper_bounds_period_repetition() {
        use crate::greedy::greedy_active_naive;
        let u = single_target(6);
        let out = solve_window_lp(&u, 4, 8, RepairStrategy::Deactivate, 8, &mut rng()).unwrap();
        let repeated = HorizonSchedule::from_period(&greedy_active_naive(&u, 4).unwrap(), 2);
        assert!(out.lp_value + 1e-6 >= repeated.total_utility(&u));
    }

    #[test]
    fn resample_usually_needs_fewer_deactivations() {
        // Not a strict theorem, but with these marginals resampling should
        // terminate and both produce comparable utility.
        let u = single_target(10);
        let a = solve_window_lp(&u, 4, 8, RepairStrategy::Resample, 4, &mut rng()).unwrap();
        let b = solve_window_lp(&u, 4, 8, RepairStrategy::Deactivate, 4, &mut rng()).unwrap();
        assert!(a.rounded_value > 0.0 && b.rounded_value > 0.0);
    }

    #[test]
    #[should_panic(expected = "horizon shorter")]
    fn short_horizon_panics() {
        let u = single_target(2);
        let _ = solve_window_lp(&u, 4, 2, RepairStrategy::Deactivate, 1, &mut rng());
    }
}
