//! Exact optimal schedules for small instances.
//!
//! §VI-B compares the greedy against "the optimal solution […] obtained by
//! enumerating all possible scheduling". [`exhaustive_optimal`] is that
//! enumerator (`T^n` assignments); [`branch_and_bound`] prunes with a
//! submodularity-derived upper bound and returns the same schedule orders of
//! magnitude faster, extending the reachable instance sizes.

use crate::schedule::{PeriodSchedule, ScheduleMode};
use cool_common::SensorId;
use cool_utility::{Evaluator, UtilityFunction};

/// Enumerates every assignment of `n` sensors to `slots` slots and returns
/// a utility-maximising schedule (ties break toward the lexicographically
/// smallest assignment, which is also the first found).
///
/// Complexity `O(slots^n · cost(eval))` — intended for `n ≲ 10`.
///
/// # Panics
///
/// Panics if `slots == 0`.
///
/// # Examples
///
/// ```
/// use cool_core::optimal::exhaustive_optimal;
/// use cool_core::schedule::ScheduleMode;
/// use cool_utility::DetectionUtility;
///
/// let u = DetectionUtility::uniform(4, 0.4);
/// let opt = exhaustive_optimal(&u, 2, ScheduleMode::ActiveSlot);
/// // 4 identical sensors over 2 slots: optimum splits 2/2.
/// assert_eq!(opt.active_set(0).len(), 2);
/// ```
pub fn exhaustive_optimal<U: UtilityFunction>(
    utility: &U,
    slots: usize,
    mode: ScheduleMode,
) -> PeriodSchedule {
    assert!(slots > 0, "need at least one slot");
    let n = utility.universe();
    let mut assignment = vec![0usize; n];
    let mut best_assignment = vec![0usize; n];
    let mut best_value = f64::NEG_INFINITY;

    // Odometer enumeration.
    loop {
        let schedule = PeriodSchedule::new(mode, slots, assignment.clone());
        let value = schedule.period_utility(utility);
        if value > best_value + 1e-12 {
            best_value = value;
            best_assignment.copy_from_slice(&assignment);
        }
        // Increment.
        let mut i = 0;
        loop {
            if i == n {
                return PeriodSchedule::new(mode, slots, best_assignment);
            }
            assignment[i] += 1;
            if assignment[i] < slots {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

/// Branch & bound over sensor-by-sensor assignment with a submodular upper
/// bound: after fixing a prefix, each remaining sensor's best possible
/// contribution is its maximum marginal gain *with respect to the current
/// prefix only* — an upper bound because gains only shrink as more sensors
/// are added. Returns a schedule with the same value as
/// [`exhaustive_optimal`] (possibly a different, equally-good assignment).
///
/// Only supports [`ScheduleMode::ActiveSlot`] (the `ρ > 1` case the paper
/// enumerates); passive-mode exact solving goes through
/// [`exhaustive_optimal`].
///
/// # Panics
///
/// Panics if `slots == 0`.
pub fn branch_and_bound<U: UtilityFunction>(utility: &U, slots: usize) -> PeriodSchedule {
    struct Search<'a, U: UtilityFunction> {
        evaluators: &'a mut Vec<U::Evaluator>,
        assignment: Vec<usize>,
        best_value: f64,
        best_assignment: Vec<usize>,
        slots: usize,
        n: usize,
    }

    impl<U: UtilityFunction> Search<'_, U> {
        fn recurse(&mut self, depth: usize, current_value: f64) {
            if depth == self.n {
                if current_value > self.best_value + 1e-12 {
                    self.best_value = current_value;
                    self.best_assignment.copy_from_slice(&self.assignment);
                }
                return;
            }
            // Upper bound: current value + Σ over remaining sensors of
            // their best single-slot gain w.r.t. the current prefix.
            let mut bound = current_value;
            for v in depth..self.n {
                let best_gain = (0..self.slots)
                    .map(|t| self.evaluators[t].gain(SensorId(v)))
                    .fold(0.0, f64::max);
                bound += best_gain;
            }
            if bound <= self.best_value + 1e-12 {
                return;
            }
            for t in 0..self.slots {
                let gain = self.evaluators[t].insert(SensorId(depth));
                self.assignment[depth] = t;
                self.recurse(depth + 1, current_value + gain);
                self.evaluators[t].remove(SensorId(depth));
            }
        }
    }

    assert!(slots > 0, "need at least one slot");
    let n = utility.universe();
    let mut evaluators: Vec<U::Evaluator> = (0..slots).map(|_| utility.evaluator()).collect();
    let assignment = vec![0usize; n];

    // Seed the incumbent with the greedy solution for strong initial pruning.
    // `slots > 0` was checked above, so only a non-finite utility can fail.
    let greedy =
        crate::greedy::greedy_active_naive(utility, slots).unwrap_or_else(|e| panic!("{e}"));
    let best_value = greedy.period_utility(utility);
    let best_assignment = greedy.assignment().to_vec();

    let mut search = Search::<U> {
        evaluators: &mut evaluators,
        assignment,
        best_value,
        best_assignment,
        slots,
        n,
    };
    search.recurse(0, 0.0);
    PeriodSchedule::new(ScheduleMode::ActiveSlot, slots, search.best_assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::SeedSequence;
    use cool_utility::{DetectionUtility, LinearUtility, LogSumUtility};
    use proptest::prelude::*;

    #[test]
    fn exhaustive_splits_identical_sensors_evenly() {
        let u = DetectionUtility::uniform(4, 0.5);
        let opt = exhaustive_optimal(&u, 2, ScheduleMode::ActiveSlot);
        assert_eq!(opt.active_set(0).len(), 2);
        assert_eq!(opt.active_set(1).len(), 2);
        // Value: 2 slots × (1 − 0.25) = 1.5, beats 3/1 split (0.875 + 0.5).
        assert!((opt.period_utility(&u) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn exhaustive_passive_mode() {
        // ρ ≤ 1 with T = 2: passive slot assignment; 2 sensors. The optimum
        // staggers passive slots so one sensor is always on.
        let u = DetectionUtility::uniform(2, 0.9);
        let opt = exhaustive_optimal(&u, 2, ScheduleMode::PassiveSlot);
        assert_ne!(
            opt.assigned_slot(SensorId(0)),
            opt.assigned_slot(SensorId(1)),
            "staggered passive slots"
        );
    }

    #[test]
    fn subset_sum_hardness_gadget() {
        // §III: weights {3,1,2,2} (total 8) admit a perfect 4/4 split, so
        // the optimal two-slot log-sum utility hits 2·log(1 + 4).
        let u = LogSumUtility::from_integers(&[3, 1, 2, 2]);
        let opt = exhaustive_optimal(&u, 2, ScheduleMode::ActiveSlot);
        let expected = 2.0 * (1.0f64 + 4.0).ln();
        assert!((opt.period_utility(&u) - expected).abs() < 1e-12);
    }

    #[test]
    fn single_slot_puts_everyone_together() {
        let u = DetectionUtility::uniform(3, 0.4);
        let opt = exhaustive_optimal(&u, 1, ScheduleMode::ActiveSlot);
        assert_eq!(opt.active_set(0).len(), 3);
    }

    #[test]
    fn branch_and_bound_matches_exhaustive_value() {
        let seq = SeedSequence::new(7);
        for trial in 0..15u64 {
            let mut rng = seq.nth_rng(trial);
            let n = 2 + (trial as usize % 6);
            let m = 1 + (trial as usize % 3);
            let u = crate::instances::random_multi_target(n, m, 0.6, 0.5, &mut rng);
            let slots = 2 + (trial as usize % 3);
            let ex = exhaustive_optimal(&u, slots, ScheduleMode::ActiveSlot);
            let bb = branch_and_bound(&u, slots);
            assert!(
                (ex.period_utility(&u) - bb.period_utility(&u)).abs() < 1e-9,
                "trial {trial}: exhaustive {} vs B&B {}",
                ex.period_utility(&u),
                bb.period_utility(&u)
            );
        }
    }

    #[test]
    fn linear_utility_any_assignment_is_optimal() {
        let u = LinearUtility::new(vec![1.0, 2.0]);
        let opt = exhaustive_optimal(&u, 3, ScheduleMode::ActiveSlot);
        assert!((opt.period_utility(&u) - 3.0).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// B&B equals exhaustive on random instances (value).
        #[test]
        fn bb_equals_exhaustive(n in 1usize..6, slots in 1usize..4, seed in any::<u64>()) {
            let mut rng = SeedSequence::new(seed).nth_rng(0);
            let u = crate::instances::random_multi_target(n, 2, 0.5, 0.4, &mut rng);
            let ex = exhaustive_optimal(&u, slots, ScheduleMode::ActiveSlot);
            let bb = branch_and_bound(&u, slots);
            prop_assert!((ex.period_utility(&u) - bb.period_utility(&u)).abs() < 1e-9);
        }
    }
}
