//! Dynamic activation policies.
//!
//! A [`PeriodSchedule`] is a static plan; an [`ActivationPolicy`] is the
//! online object the testbed simulator drives: at every slot it is told
//! which sensors are currently able to activate and answers with the set it
//! wants active. [`SchedulePolicy`] replays a static schedule;
//! [`AdaptivePolicy`] re-plans with the greedy whenever the charging
//! pattern changes (the paper's "we may choose different charging pattern
//! each day for different weather condition").

use crate::greedy;
use crate::schedule::PeriodSchedule;
use cool_common::SensorSet;
use cool_energy::ChargeCycle;
use cool_utility::UtilityFunction;

/// An online activation decision-maker.
pub trait ActivationPolicy {
    /// The set of sensors to request active at global slot `slot`, given
    /// the sensors currently able to activate. Implementations should
    /// return a subset of their intent; the simulator enforces energy
    /// feasibility regardless.
    fn decide(&mut self, slot: usize, ready: &SensorSet) -> SensorSet;

    /// Slots per period of the underlying plan (for alignment/reporting).
    fn slots_per_period(&self) -> usize;
}

/// Replays a fixed [`PeriodSchedule`], period after period.
///
/// # Examples
///
/// ```
/// use cool_core::policy::{ActivationPolicy, SchedulePolicy};
/// use cool_core::schedule::{PeriodSchedule, ScheduleMode};
/// use cool_common::SensorSet;
///
/// let plan = PeriodSchedule::new(ScheduleMode::ActiveSlot, 2, vec![0, 1]);
/// let mut policy = SchedulePolicy::new(plan);
/// let ready = SensorSet::full(2);
/// assert_eq!(policy.decide(0, &ready).len(), 1);
/// assert_eq!(policy.decide(5, &ready).len(), 1); // slot 5 ≡ slot 1 (mod 2)
/// ```
#[derive(Clone, Debug)]
pub struct SchedulePolicy {
    schedule: PeriodSchedule,
}

impl SchedulePolicy {
    /// Wraps a schedule.
    pub fn new(schedule: PeriodSchedule) -> Self {
        SchedulePolicy { schedule }
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &PeriodSchedule {
        &self.schedule
    }
}

impl ActivationPolicy for SchedulePolicy {
    fn decide(&mut self, slot: usize, ready: &SensorSet) -> SensorSet {
        let want = self
            .schedule
            .active_set(slot % self.schedule.slots_per_period());
        want.intersection(ready)
    }

    fn slots_per_period(&self) -> usize {
        self.schedule.slots_per_period()
    }
}

/// Re-plans with the greedy whenever the charging cycle changes — the
/// weather-adaptive controller for week-long deployments.
#[derive(Clone, Debug)]
pub struct AdaptivePolicy<U> {
    utility: U,
    cycle: ChargeCycle,
    current: PeriodSchedule,
    replans: usize,
}

impl<U> AdaptivePolicy<U>
where
    U: UtilityFunction + Sync,
    U::Evaluator: Send + Sync,
{
    /// Creates the policy with an initial cycle (planning immediately).
    pub fn new(utility: U, cycle: ChargeCycle) -> Self {
        let current = Self::plan(&utility, cycle);
        AdaptivePolicy {
            utility,
            cycle,
            current,
            replans: 0,
        }
    }

    fn plan(utility: &U, cycle: ChargeCycle) -> PeriodSchedule {
        // A valid `ChargeCycle` always has ≥ 2 slots, so only a
        // non-finite utility can fail here.
        let planned = if cycle.rho() > 1.0 {
            greedy::greedy_active_lazy(utility, cycle.slots_per_period())
        } else {
            greedy::greedy_passive_lazy(utility, cycle.slots_per_period())
        };
        planned.unwrap_or_else(|e| panic!("{e}"))
    }

    /// Informs the policy of a new charging pattern (e.g. tomorrow's
    /// weather estimate); re-plans if it differs from the current one.
    pub fn update_cycle(&mut self, cycle: ChargeCycle) {
        if cycle != self.cycle {
            self.cycle = cycle;
            self.current = Self::plan(&self.utility, cycle);
            self.replans += 1;
        }
    }

    /// The active cycle.
    pub fn cycle(&self) -> ChargeCycle {
        self.cycle
    }

    /// The current plan.
    pub fn current_schedule(&self) -> &PeriodSchedule {
        &self.current
    }

    /// How many times the policy re-planned.
    pub fn replans(&self) -> usize {
        self.replans
    }
}

impl<U: UtilityFunction> ActivationPolicy for AdaptivePolicy<U> {
    fn decide(&mut self, slot: usize, ready: &SensorSet) -> SensorSet {
        let want = self
            .current
            .active_set(slot % self.current.slots_per_period());
        want.intersection(ready)
    }

    fn slots_per_period(&self) -> usize {
        self.current.slots_per_period()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleMode;
    use cool_utility::DetectionUtility;

    #[test]
    fn schedule_policy_intersects_ready() {
        let plan = PeriodSchedule::new(ScheduleMode::ActiveSlot, 2, vec![0, 0, 1]);
        let mut policy = SchedulePolicy::new(plan);
        let mut ready = SensorSet::full(3);
        ready.remove(cool_common::SensorId(0));
        let decided = policy.decide(0, &ready);
        assert_eq!(
            decided.len(),
            1,
            "sensor 0 not ready, only sensor 1 requested"
        );
        assert!(decided.contains(cool_common::SensorId(1)));
        assert_eq!(policy.slots_per_period(), 2);
        assert_eq!(policy.schedule().n_sensors(), 3);
    }

    #[test]
    fn adaptive_policy_replans_on_cycle_change() {
        let u = DetectionUtility::uniform(6, 0.4);
        let sunny = ChargeCycle::paper_sunny();
        let overcast = ChargeCycle::from_rho(12.0, 15.0).unwrap();
        let mut policy = AdaptivePolicy::new(u, sunny);
        assert_eq!(policy.replans(), 0);
        assert_eq!(policy.slots_per_period(), 4);

        policy.update_cycle(sunny);
        assert_eq!(policy.replans(), 0, "same cycle, no replan");

        policy.update_cycle(overcast);
        assert_eq!(policy.replans(), 1);
        assert_eq!(policy.slots_per_period(), 13, "ρ = 12 → 13 slots");
        assert_eq!(policy.cycle(), overcast);
    }

    #[test]
    fn adaptive_policy_handles_fast_recharge() {
        let u = DetectionUtility::uniform(4, 0.4);
        let fast = ChargeCycle::from_rho(0.5, 10.0).unwrap();
        let policy = AdaptivePolicy::new(u, fast);
        assert_eq!(policy.current_schedule().mode(), ScheduleMode::PassiveSlot);
    }
}
