//! The scheduling problem instance (§II-D).

use crate::schedule::PeriodSchedule;
use cool_energy::ChargeCycle;
use cool_utility::UtilityFunction;
use std::fmt;

/// Error constructing a [`Problem`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProblemError {
    /// The utility's universe is empty.
    NoSensors,
    /// Zero periods requested.
    NoPeriods,
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::NoSensors => write!(f, "problem needs at least one sensor"),
            ProblemError::NoPeriods => write!(f, "working time must span at least one period"),
        }
    }
}

impl std::error::Error for ProblemError {}

/// A scheduling instance: per-slot utility `U`, the charging cycle (which
/// fixes `ρ` and the `T` slots per period), and the horizon `L = αT`.
///
/// The utility is evaluated on the set of sensors active in a slot; the
/// schedule's total utility is `Σ_{t=0}^{L−1} U(S(t))`. For multi-target
/// instances use a [`SumUtility`](cool_utility::SumUtility) (Eq. 1).
#[derive(Clone, Debug)]
pub struct Problem<U> {
    utility: U,
    cycle: ChargeCycle,
    periods: usize,
}

impl<U: UtilityFunction> Problem<U> {
    /// Creates a problem with working time `L = periods · T`.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError`] for an empty universe or zero periods.
    pub fn new(utility: U, cycle: ChargeCycle, periods: usize) -> Result<Self, ProblemError> {
        if utility.universe() == 0 {
            return Err(ProblemError::NoSensors);
        }
        if periods == 0 {
            return Err(ProblemError::NoPeriods);
        }
        Ok(Problem {
            utility,
            cycle,
            periods,
        })
    }

    /// The per-slot utility function.
    pub fn utility(&self) -> &U {
        &self.utility
    }

    /// The charging cycle.
    pub fn cycle(&self) -> ChargeCycle {
        self.cycle
    }

    /// Number of sensors `n`.
    pub fn n_sensors(&self) -> usize {
        self.utility.universe()
    }

    /// Slots per period `T`.
    pub fn slots_per_period(&self) -> usize {
        self.cycle.slots_per_period()
    }

    /// Number of periods `α`.
    pub fn periods(&self) -> usize {
        self.periods
    }

    /// Working time in slots, `L = αT`.
    pub fn horizon_slots(&self) -> usize {
        self.periods * self.slots_per_period()
    }

    /// Total utility of `schedule` over the horizon: `α ×` its per-period
    /// utility (the schedule repeats every period — Theorem 4.3).
    ///
    /// # Panics
    ///
    /// Panics if the schedule's shape does not match the problem.
    pub fn total_utility(&self, schedule: &PeriodSchedule) -> f64 {
        self.periods as f64 * schedule.period_utility(&self.utility)
    }

    /// Average utility per slot: `total / L`.
    pub fn average_utility_per_slot(&self, schedule: &PeriodSchedule) -> f64 {
        self.total_utility(schedule) / self.horizon_slots() as f64
    }

    /// The paper's headline metric (§VI-B): **average utility per target per
    /// time-slot**. The target count is taken from the utility when it is a
    /// sum ([`Problem::n_targets`]); for single-part utilities it is 1.
    pub fn average_utility_per_target_slot(&self, schedule: &PeriodSchedule) -> f64 {
        self.average_utility_per_slot(schedule) / self.n_targets() as f64
    }

    /// Number of targets `m` for normalisation — the utility's
    /// [`target_count`](UtilityFunction::target_count) (the part count for
    /// a [`SumUtility`](cool_utility::SumUtility), 1 otherwise).
    pub fn n_targets(&self) -> usize {
        self.utility.target_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleMode;
    use cool_utility::DetectionUtility;

    fn problem() -> Problem<DetectionUtility> {
        Problem::new(
            DetectionUtility::uniform(8, 0.4),
            ChargeCycle::paper_sunny(),
            12,
        )
        .unwrap()
    }

    #[test]
    fn dimensions() {
        let p = problem();
        assert_eq!(p.n_sensors(), 8);
        assert_eq!(p.slots_per_period(), 4);
        assert_eq!(p.periods(), 12);
        assert_eq!(p.horizon_slots(), 48);
        assert_eq!(p.n_targets(), 1);
    }

    #[test]
    fn rejects_degenerate_instances() {
        assert_eq!(
            Problem::new(
                DetectionUtility::uniform(0, 0.4),
                ChargeCycle::paper_sunny(),
                1
            )
            .unwrap_err(),
            ProblemError::NoSensors
        );
        assert_eq!(
            Problem::new(
                DetectionUtility::uniform(3, 0.4),
                ChargeCycle::paper_sunny(),
                0
            )
            .unwrap_err(),
            ProblemError::NoPeriods
        );
    }

    #[test]
    fn total_utility_scales_with_periods() {
        let p = problem();
        // Round-robin-ish: sensor i active in slot i mod 4.
        let schedule =
            PeriodSchedule::new(ScheduleMode::ActiveSlot, 4, (0..8).map(|i| i % 4).collect());
        let per_period = schedule.period_utility(p.utility());
        assert!((p.total_utility(&schedule) - 12.0 * per_period).abs() < 1e-12);
        assert!((p.average_utility_per_slot(&schedule) - per_period / 4.0).abs() < 1e-12);
    }

    #[test]
    fn sum_utility_target_count() {
        use cool_common::SensorSet;
        use cool_utility::SumUtility;
        let u = SumUtility::multi_target_detection(
            &[
                SensorSet::from_indices(4, [0, 1]),
                SensorSet::from_indices(4, [2, 3]),
            ],
            0.4,
        );
        let p = Problem::new(u, ChargeCycle::paper_sunny(), 1).unwrap();
        assert_eq!(p.n_targets(), 2);
    }

    #[test]
    fn error_display() {
        assert!(ProblemError::NoSensors.to_string().contains("sensor"));
        assert!(ProblemError::NoPeriods.to_string().contains("period"));
    }
}
