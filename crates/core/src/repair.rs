//! Warm-start schedule repair for mutating instances (cool-session).
//!
//! A deployed schedule rarely needs to be rebuilt from nothing: when a
//! delta touches only a few sensors, the rest of the assignment is still
//! the product of the same greedy order and can be kept verbatim. This
//! module re-greedies only the **dirty** sensors — those whose marginal
//! contribution may have changed — against per-slot evaluators warm-started
//! with every untouched sensor pinned to its previous slot, visiting
//! `O(|dirty| · T)` cells per greedy step instead of `O(n · T)`.
//!
//! When the dirty fraction exceeds [`RepairConfig::full_threshold`] (or the
//! previous schedule is structurally incompatible with the new instance —
//! different mode, period length, or universe), repair falls back to the
//! exact from-scratch naive greedy, so the result is bit-for-bit what a
//! cold solve would produce. An **empty** dirty set on a compatible
//! instance returns the previous schedule unchanged, also bit-for-bit.
//!
//! The greedy step shares the tie-breaking total order of
//! [`crate::greedy`] (larger gain / smaller loss, then lower sensor, then
//! lower slot), so a full-dirty incremental repair and a scratch solve
//! agree exactly; partial repairs keep the ½-approximation guarantee
//! empirically (enforced by cool-check relation `COOL-E027`).

use crate::errors::ScheduleBuildError;
use crate::greedy::{greedy_active_naive, greedy_passive_naive, max_by_gain, min_by_loss};
use crate::schedule::{PeriodSchedule, ScheduleMode};
use cool_common::{SensorId, SensorSet};
use cool_energy::ChargeCycle;
use cool_utility::{Evaluator, UtilityFunction};

/// Tuning knobs for [`repair_schedule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairConfig {
    /// Dirty-sensor fraction above which repair abandons the warm start
    /// and re-solves from scratch. `0.0` forces a full solve on any
    /// non-empty delta; `1.0` never falls back on size alone.
    pub full_threshold: f64,
}

impl RepairConfig {
    /// Default fallback threshold: re-solve when more than a quarter of
    /// the fleet is dirty (past that point the warm start saves little
    /// and the approximation drift is harder to reason about).
    pub const DEFAULT_FULL_THRESHOLD: f64 = 0.25;
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            full_threshold: Self::DEFAULT_FULL_THRESHOLD,
        }
    }
}

/// Which path [`repair_schedule`] actually took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairMode {
    /// Warm start: untouched sensors kept their slots, only dirty
    /// sensors were re-greedied.
    Incremental,
    /// Fallback: the instance was re-solved from scratch with the same
    /// naive greedy a cold solve uses (bit-for-bit identical result).
    Full,
}

impl RepairMode {
    /// Stable label for metrics and logs.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RepairMode::Incremental => "incremental",
            RepairMode::Full => "full",
        }
    }
}

/// Result of a repair: the schedule plus the decision telemetry the
/// session layer exports on `/metrics`.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The repaired per-period schedule.
    pub schedule: PeriodSchedule,
    /// Which path produced it.
    pub mode: RepairMode,
    /// Marginal-utility queries performed ((sensor, slot) cells visited).
    /// For [`RepairMode::Full`] this is the exact query count of the
    /// naive greedy, `T · n(n+1)/2`.
    pub cells_touched: u64,
    /// Size of the dirty set the caller passed in.
    pub dirty_sensors: usize,
}

/// Gain/loss queries the from-scratch naive greedy performs on an
/// `n`-sensor, `T`-slot instance: step `k` scans `(n − k) · T` cells.
fn full_solve_cells(n: usize, slots: usize) -> u64 {
    let n = n as u64;
    let t = slots as u64;
    n * (n + 1) / 2 * t
}

/// Repairs `previous` after a mutation whose affected sensors are
/// `dirty`, against the **post-mutation** `utility` and `cycle`.
///
/// Contract (checked by cool-check relation `session-repair-equal`,
/// `COOL-E027`):
///
/// * empty `dirty` on a compatible instance → `previous` returned
///   bit-for-bit, zero cells touched;
/// * incompatible instance or dirty fraction above
///   [`RepairConfig::full_threshold`] → from-scratch naive greedy
///   ([`RepairMode::Full`]), bit-for-bit equal to a cold solve;
/// * otherwise → warm-start incremental repair, always feasible, value
///   within the greedy approximation bound of a cold solve.
///
/// # Errors
///
/// Returns [`ScheduleBuildError::EmptySlotCount`] (`COOL-E002`) when the
/// cycle has zero slots per period, and
/// [`ScheduleBuildError::NonFiniteGain`] (`COOL-E015`) when the utility
/// produces a NaN or infinite marginal value.
pub fn repair_schedule<U: UtilityFunction>(
    utility: &U,
    cycle: ChargeCycle,
    previous: &PeriodSchedule,
    dirty: &SensorSet,
    config: &RepairConfig,
) -> Result<RepairOutcome, ScheduleBuildError> {
    let slots = cycle.slots_per_period();
    if slots == 0 {
        return Err(ScheduleBuildError::EmptySlotCount);
    }
    let n = utility.universe();
    let mode = if cycle.rho() > 1.0 {
        ScheduleMode::ActiveSlot
    } else {
        ScheduleMode::PassiveSlot
    };
    let compatible = previous.mode() == mode
        && previous.slots_per_period() == slots
        && previous.n_sensors() == n
        && dirty.universe() == n
        && previous.assignment().iter().all(|&t| t < slots);

    if compatible && dirty.is_empty() {
        return Ok(RepairOutcome {
            schedule: previous.clone(),
            mode: RepairMode::Incremental,
            cells_touched: 0,
            dirty_sensors: 0,
        });
    }

    let dirty_fraction = if n == 0 {
        0.0
    } else {
        dirty.len() as f64 / n as f64
    };
    if !compatible || dirty_fraction > config.full_threshold {
        let schedule = match mode {
            ScheduleMode::ActiveSlot => greedy_active_naive(utility, slots)?,
            ScheduleMode::PassiveSlot => greedy_passive_naive(utility, slots)?,
        };
        return Ok(RepairOutcome {
            schedule,
            mode: RepairMode::Full,
            cells_touched: full_solve_cells(n, slots),
            dirty_sensors: dirty.len(),
        });
    }

    let (schedule, cells_touched) = match mode {
        ScheduleMode::ActiveSlot => repair_active(utility, slots, previous, dirty)?,
        ScheduleMode::PassiveSlot => repair_passive(utility, slots, previous, dirty)?,
    };
    Ok(RepairOutcome {
        schedule,
        mode: RepairMode::Incremental,
        cells_touched,
        dirty_sensors: dirty.len(),
    })
}

/// ρ > 1 warm start: pin every clean sensor to its previous active slot,
/// then run the naive max-gain loop over the dirty sensors only.
fn repair_active<U: UtilityFunction>(
    utility: &U,
    slots: usize,
    previous: &PeriodSchedule,
    dirty: &SensorSet,
) -> Result<(PeriodSchedule, u64), ScheduleBuildError> {
    let n = utility.universe();
    let mut evaluators: Vec<U::Evaluator> = (0..slots).map(|_| utility.evaluator()).collect();
    let mut assignment = vec![usize::MAX; n];
    let mut unassigned: Vec<usize> = Vec::with_capacity(dirty.len());
    for (v, slot) in assignment.iter_mut().enumerate() {
        if dirty.contains(SensorId(v)) {
            unassigned.push(v);
        } else {
            let t = previous.assignment()[v];
            evaluators[t].insert(SensorId(v));
            *slot = t;
        }
    }

    let mut cells = 0u64;
    for _step in 0..unassigned.len() {
        let mut best: Option<(f64, usize, usize)> = None; // (gain, sensor, slot)
        for &v in &unassigned {
            for (t, eval) in evaluators.iter().enumerate() {
                let gain = eval.gain(SensorId(v));
                cells += 1;
                if !gain.is_finite() {
                    return Err(ScheduleBuildError::NonFiniteGain {
                        sensor: v,
                        slot: t,
                        value: gain,
                    });
                }
                let candidate = (gain, v, t);
                best = Some(match best {
                    None => candidate,
                    Some(current) => max_by_gain(current, candidate),
                });
            }
        }
        let Some((gain, v, t)) = best else {
            break;
        };
        cool_common::invariant!(
            gain >= -1e-9,
            "negative marginal gain {gain} for sensor {v} in slot {t}"
        );
        evaluators[t].insert(SensorId(v));
        assignment[v] = t;
        unassigned.retain(|&u| u != v);
    }
    Ok((
        PeriodSchedule::new(ScheduleMode::ActiveSlot, slots, assignment),
        cells,
    ))
}

/// ρ ≤ 1 warm start: everyone active everywhere, clean sensors rest in
/// their previous passive slot, then the naive min-loss loop allocates
/// the dirty sensors' passive slots.
fn repair_passive<U: UtilityFunction>(
    utility: &U,
    slots: usize,
    previous: &PeriodSchedule,
    dirty: &SensorSet,
) -> Result<(PeriodSchedule, u64), ScheduleBuildError> {
    let n = utility.universe();
    let mut evaluators: Vec<U::Evaluator> = (0..slots)
        .map(|_| {
            let mut e = utility.evaluator();
            for v in 0..n {
                e.insert(SensorId(v));
            }
            e
        })
        .collect();
    let mut assignment = vec![usize::MAX; n];
    let mut unassigned: Vec<usize> = Vec::with_capacity(dirty.len());
    for (v, slot) in assignment.iter_mut().enumerate() {
        if dirty.contains(SensorId(v)) {
            unassigned.push(v);
        } else {
            let t = previous.assignment()[v];
            evaluators[t].remove(SensorId(v));
            *slot = t;
        }
    }

    let mut cells = 0u64;
    for _step in 0..unassigned.len() {
        let mut best: Option<(f64, usize, usize)> = None; // (loss, sensor, slot)
        for &v in &unassigned {
            for (t, eval) in evaluators.iter().enumerate() {
                let loss = eval.loss(SensorId(v));
                cells += 1;
                if !loss.is_finite() {
                    return Err(ScheduleBuildError::NonFiniteGain {
                        sensor: v,
                        slot: t,
                        value: loss,
                    });
                }
                let candidate = (loss, v, t);
                best = Some(match best {
                    None => candidate,
                    Some(current) => min_by_loss(current, candidate),
                });
            }
        }
        let Some((loss, v, t)) = best else {
            break;
        };
        cool_common::invariant!(
            loss >= -1e-9,
            "negative marginal loss {loss} for sensor {v} in slot {t}"
        );
        evaluators[t].remove(SensorId(v));
        assignment[v] = t;
        unassigned.retain(|&u| u != v);
    }
    Ok((
        PeriodSchedule::new(ScheduleMode::PassiveSlot, slots, assignment),
        cells,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_schedule;
    use crate::problem::Problem;
    use cool_utility::{DetectionUtility, SumUtility};

    fn active_cycle() -> ChargeCycle {
        ChargeCycle::from_rho(3.0, 15.0).unwrap() // ρ = 3, T = 4
    }

    fn passive_cycle() -> ChargeCycle {
        ChargeCycle::from_minutes(45.0, 15.0).unwrap() // ρ = 1/3, T = 4
    }

    fn multi_target(n: usize) -> SumUtility {
        let targets: Vec<SensorSet> = (0..3)
            .map(|k| SensorSet::from_indices(n, (0..n).filter(|v| v % 3 == k)))
            .collect();
        SumUtility::multi_target_detection(&targets, 0.5)
    }

    #[test]
    fn empty_dirty_returns_previous_bit_for_bit() {
        for cycle in [active_cycle(), passive_cycle()] {
            let utility = multi_target(9);
            let problem = Problem::new(utility.clone(), cycle, 1).unwrap();
            let previous = greedy_schedule(&problem);
            let outcome = repair_schedule(
                &utility,
                cycle,
                &previous,
                &SensorSet::new(9),
                &RepairConfig::default(),
            )
            .unwrap();
            assert_eq!(outcome.mode, RepairMode::Incremental);
            assert_eq!(outcome.cells_touched, 0);
            assert_eq!(outcome.schedule.assignment(), previous.assignment());
            assert_eq!(outcome.schedule.mode(), previous.mode());
        }
    }

    #[test]
    fn all_dirty_full_fallback_equals_scratch() {
        for cycle in [active_cycle(), passive_cycle()] {
            let utility = multi_target(9);
            let problem = Problem::new(utility.clone(), cycle, 1).unwrap();
            let previous = greedy_schedule(&problem);
            let outcome = repair_schedule(
                &utility,
                cycle,
                &previous,
                &SensorSet::full(9),
                &RepairConfig::default(),
            )
            .unwrap();
            assert_eq!(outcome.mode, RepairMode::Full);
            assert_eq!(outcome.schedule.assignment(), previous.assignment());
        }
    }

    #[test]
    fn full_dirty_incremental_equals_scratch() {
        // With every sensor dirty and the threshold disabled, the warm
        // start degenerates to the naive greedy and must agree exactly.
        let config = RepairConfig {
            full_threshold: 1.0,
        };
        for cycle in [active_cycle(), passive_cycle()] {
            let utility = multi_target(9);
            let problem = Problem::new(utility.clone(), cycle, 1).unwrap();
            let scratch = greedy_schedule(&problem);
            let stale = PeriodSchedule::new(scratch.mode(), scratch.slots_per_period(), vec![0; 9]);
            let outcome =
                repair_schedule(&utility, cycle, &stale, &SensorSet::full(9), &config).unwrap();
            assert_eq!(outcome.mode, RepairMode::Incremental);
            assert_eq!(outcome.schedule.assignment(), scratch.assignment());
            assert!(outcome.cells_touched > 0);
        }
    }

    #[test]
    fn incremental_repair_is_feasible_and_near_scratch() {
        for cycle in [active_cycle(), passive_cycle()] {
            let utility = multi_target(12);
            let problem = Problem::new(utility.clone(), cycle, 1).unwrap();
            let previous = greedy_schedule(&problem);
            let dirty = SensorSet::from_indices(12, [4, 7]);
            let outcome = repair_schedule(
                &utility,
                cycle,
                &previous,
                &dirty,
                &RepairConfig {
                    full_threshold: 0.5,
                },
            )
            .unwrap();
            assert_eq!(outcome.mode, RepairMode::Incremental);
            assert!(outcome.schedule.is_feasible(cycle));
            let repaired = outcome.schedule.period_utility(&utility);
            let scratch = previous.period_utility(&utility);
            assert!(
                repaired >= 0.5 * scratch - 1e-9,
                "repaired {repaired} below half of scratch {scratch}"
            );
        }
    }

    #[test]
    fn threshold_forces_full_resolve() {
        let cycle = active_cycle();
        let utility = multi_target(8);
        let problem = Problem::new(utility.clone(), cycle, 1).unwrap();
        let previous = greedy_schedule(&problem);
        let dirty = SensorSet::from_indices(8, [0, 1, 2, 3]); // 50% dirty
        let outcome = repair_schedule(
            &utility,
            cycle,
            &previous,
            &dirty,
            &RepairConfig {
                full_threshold: 0.25,
            },
        )
        .unwrap();
        assert_eq!(outcome.mode, RepairMode::Full);
        assert_eq!(outcome.cells_touched, full_solve_cells(8, 4));
    }

    #[test]
    fn incompatible_previous_forces_full_resolve() {
        let cycle = active_cycle();
        let utility = multi_target(6);
        // Previous schedule from a different universe size.
        let stale = PeriodSchedule::new(ScheduleMode::ActiveSlot, 4, vec![0; 5]);
        let outcome = repair_schedule(
            &utility,
            cycle,
            &stale,
            &SensorSet::new(6),
            &RepairConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome.mode, RepairMode::Full);
        let problem = Problem::new(utility.clone(), cycle, 1).unwrap();
        assert_eq!(
            outcome.schedule.assignment(),
            greedy_schedule(&problem).assignment()
        );
    }

    #[test]
    fn detection_single_target_repair_matches_scratch_value() {
        let cycle = active_cycle();
        let utility = DetectionUtility::uniform(10, 0.4);
        let problem = Problem::new(utility.clone(), cycle, 1).unwrap();
        let previous = greedy_schedule(&problem);
        let dirty = SensorSet::from_indices(10, [9]);
        let outcome =
            repair_schedule(&utility, cycle, &previous, &dirty, &RepairConfig::default()).unwrap();
        assert_eq!(outcome.mode, RepairMode::Incremental);
        assert!(outcome.schedule.is_feasible(cycle));
        // Uniform instance: re-placing one sensor greedily cannot lose
        // value relative to the previous schedule.
        assert!(
            outcome.schedule.period_utility(&utility) >= previous.period_utility(&utility) - 1e-9
        );
    }
}
