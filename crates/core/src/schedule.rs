//! Periodic activation schedules and feasibility.
//!
//! §IV: with homogeneous sensors the optimal structure repeats per charging
//! period (Theorem 4.3 — reusing one period's schedule preserves the
//! ½-approximation). A [`PeriodSchedule`] therefore assigns each sensor one
//! slot within a single period:
//!
//! * `ρ > 1` ([`ScheduleMode::ActiveSlot`]): the assigned slot is the
//!   sensor's **only active** slot per period (it must recharge the rest);
//! * `ρ ≤ 1` ([`ScheduleMode::PassiveSlot`]): the assigned slot is the
//!   sensor's **only passive** slot; it is active in all others (§IV-B).

use cool_common::{SensorId, SensorSet, SlotId};
use cool_energy::{ChargeCycle, NodeEnergyMachine};
use cool_utility::UtilityFunction;
use std::fmt;

/// Whether the per-sensor assignment designates the active or the passive
/// slot of each period.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScheduleMode {
    /// `ρ ≥ 1`: each sensor is active exactly in its assigned slot.
    ActiveSlot,
    /// `ρ ≤ 1`: each sensor is passive exactly in its assigned slot and
    /// active in every other slot of the period.
    PassiveSlot,
}

/// One period's activation schedule: `assignment[v]` is the slot (within
/// `0..slots_per_period`) designated for sensor `v` under `mode`.
///
/// # Examples
///
/// ```
/// use cool_core::schedule::{PeriodSchedule, ScheduleMode};
/// use cool_energy::ChargeCycle;
///
/// // ρ = 3 ⇒ 4 slots; 6 sensors spread round-robin.
/// let s = PeriodSchedule::new(ScheduleMode::ActiveSlot, 4,
///                             vec![0, 1, 2, 3, 0, 1]);
/// assert_eq!(s.active_set(0).len(), 2);
/// assert!(s.is_feasible(ChargeCycle::paper_sunny()));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PeriodSchedule {
    mode: ScheduleMode,
    slots_per_period: usize,
    assignment: Vec<usize>,
}

impl PeriodSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if `slots_per_period == 0` or any assigned slot is out of
    /// range.
    pub fn new(mode: ScheduleMode, slots_per_period: usize, assignment: Vec<usize>) -> Self {
        assert!(slots_per_period > 0, "need at least one slot per period");
        assert!(
            assignment.iter().all(|&s| s < slots_per_period),
            "assigned slot out of range 0..{slots_per_period}"
        );
        PeriodSchedule {
            mode,
            slots_per_period,
            assignment,
        }
    }

    /// The schedule's mode.
    pub fn mode(&self) -> ScheduleMode {
        self.mode
    }

    /// Slots per period `T`.
    pub fn slots_per_period(&self) -> usize {
        self.slots_per_period
    }

    /// Number of sensors.
    pub fn n_sensors(&self) -> usize {
        self.assignment.len()
    }

    /// The slot assigned to `sensor`.
    ///
    /// # Panics
    ///
    /// Panics if `sensor` is out of range.
    pub fn assigned_slot(&self, sensor: SensorId) -> SlotId {
        SlotId(self.assignment[sensor.index()])
    }

    /// The raw assignment vector.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// The paper's indicator `x(v_i, t)`: is `sensor` active in slot
    /// `slot_in_period`?
    pub fn is_active(&self, sensor: SensorId, slot_in_period: usize) -> bool {
        let assigned = self.assignment[sensor.index()] == slot_in_period;
        match self.mode {
            ScheduleMode::ActiveSlot => assigned,
            ScheduleMode::PassiveSlot => !assigned,
        }
    }

    /// The set of sensors active in `slot_in_period`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range.
    pub fn active_set(&self, slot_in_period: usize) -> SensorSet {
        assert!(slot_in_period < self.slots_per_period, "slot out of range");
        let mut set = SensorSet::new(self.assignment.len());
        for (i, _) in self.assignment.iter().enumerate() {
            if self.is_active(SensorId(i), slot_in_period) {
                set.insert(SensorId(i));
            }
        }
        set
    }

    /// All per-slot active sets for one period.
    pub fn active_sets(&self) -> Vec<SensorSet> {
        (0..self.slots_per_period)
            .map(|t| self.active_set(t))
            .collect()
    }

    /// One period's total utility `Σ_t U(S(t))`.
    ///
    /// # Panics
    ///
    /// Panics if the utility's universe does not match the sensor count.
    pub fn period_utility<U: UtilityFunction>(&self, utility: &U) -> f64 {
        assert_eq!(
            utility.universe(),
            self.assignment.len(),
            "utility universe does not match schedule"
        );
        (0..self.slots_per_period)
            .map(|t| utility.eval(&self.active_set(t)))
            .sum()
    }

    /// The schedule shifted by `offset` slots within the period (assigned
    /// slots move to `(slot + offset) mod T`, mode unchanged). Rotation
    /// permutes a period's active sets, so [`period_utility`](Self::period_utility)
    /// is invariant — the slot-rotation metamorphic oracle in `cool-check`
    /// relies on this, and a rotated schedule stays feasible for any cycle
    /// the original was feasible for (period boundaries are arbitrary).
    #[must_use]
    pub fn rotated(&self, offset: usize) -> PeriodSchedule {
        let t = self.slots_per_period;
        let assignment = self.assignment.iter().map(|&s| (s + offset) % t).collect();
        PeriodSchedule {
            mode: self.mode,
            slots_per_period: t,
            assignment,
        }
    }

    /// Verifies energy feasibility by driving every sensor's
    /// [`NodeEnergyMachine`] through two full periods of this schedule:
    /// every activation request must be honoured (the battery is never
    /// asked for energy it does not have), including across the period
    /// boundary.
    pub fn is_feasible(&self, cycle: ChargeCycle) -> bool {
        if cycle.slots_per_period() != self.slots_per_period {
            return false;
        }
        let expected_mode = if cycle.rho() > 1.0 {
            ScheduleMode::ActiveSlot
        } else {
            // ρ = 1 is expressible both ways (1 active + 1 passive slot);
            // accept either.
            if cycle.rho() == 1.0 {
                self.mode
            } else {
                ScheduleMode::PassiveSlot
            }
        };
        if self.mode != expected_mode {
            return false;
        }
        (0..self.assignment.len()).all(|i| {
            let mut node = NodeEnergyMachine::new(cycle);
            // ρ ≤ 1 nodes start full; if their passive slot is late in the
            // period they are active from slot 0 — still feasible because a
            // full battery sustains a whole period minus one slot. Drive two
            // periods to catch wrap-around deficits.
            for _period in 0..2 {
                for t in 0..self.slots_per_period {
                    let want = self.is_active(SensorId(i), t);
                    let got = node.step(want);
                    if want && !got {
                        return false;
                    }
                }
            }
            true
        })
    }
}

impl fmt::Display for PeriodSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self.mode {
            ScheduleMode::ActiveSlot => "active",
            ScheduleMode::PassiveSlot => "passive",
        };
        writeln!(
            f,
            "PeriodSchedule ({label}-slot, T={}):",
            self.slots_per_period
        )?;
        for t in 0..self.slots_per_period {
            let set = self.active_set(t);
            write!(f, "  t{t}: ")?;
            for (k, v) in set.iter().enumerate() {
                if k > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_utility::{DetectionUtility, LinearUtility};
    use proptest::prelude::*;

    #[test]
    fn active_mode_sets() {
        let s = PeriodSchedule::new(ScheduleMode::ActiveSlot, 3, vec![0, 1, 1, 2]);
        assert_eq!(s.active_set(0).len(), 1);
        assert_eq!(s.active_set(1).len(), 2);
        assert_eq!(s.active_set(2).len(), 1);
        assert!(s.is_active(SensorId(1), 1));
        assert!(!s.is_active(SensorId(1), 0));
        assert_eq!(s.assigned_slot(SensorId(3)), SlotId(2));
    }

    #[test]
    fn passive_mode_inverts_membership() {
        let s = PeriodSchedule::new(ScheduleMode::PassiveSlot, 3, vec![0, 1]);
        // Sensor 0 passive in slot 0 → active in 1, 2.
        assert!(!s.is_active(SensorId(0), 0));
        assert!(s.is_active(SensorId(0), 1));
        assert_eq!(s.active_set(0).len(), 1);
        assert_eq!(s.active_sets().len(), 3);
    }

    #[test]
    fn period_utility_sums_slots() {
        let s = PeriodSchedule::new(ScheduleMode::ActiveSlot, 2, vec![0, 1]);
        let u = LinearUtility::new(vec![2.0, 5.0]);
        assert_eq!(s.period_utility(&u), 7.0);
        let d = DetectionUtility::uniform(2, 0.4);
        assert!((s.period_utility(&d) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn feasibility_active_mode() {
        let cycle = ChargeCycle::paper_sunny(); // T = 4, ρ = 3
        let good = PeriodSchedule::new(ScheduleMode::ActiveSlot, 4, vec![0, 3, 2]);
        assert!(good.is_feasible(cycle));
        let wrong_t = PeriodSchedule::new(ScheduleMode::ActiveSlot, 3, vec![0, 1, 2]);
        assert!(!wrong_t.is_feasible(cycle));
        let wrong_mode = PeriodSchedule::new(ScheduleMode::PassiveSlot, 4, vec![0, 1, 2]);
        assert!(!wrong_mode.is_feasible(cycle));
    }

    #[test]
    fn feasibility_passive_mode() {
        let cycle = ChargeCycle::from_rho(1.0 / 3.0, 10.0).unwrap(); // T = 4 slots, 3 active
        let good = PeriodSchedule::new(ScheduleMode::PassiveSlot, 4, vec![0, 1, 2, 3, 1]);
        assert!(good.is_feasible(cycle));
        let wrong_mode = PeriodSchedule::new(ScheduleMode::ActiveSlot, 4, vec![0; 5]);
        assert!(!wrong_mode.is_feasible(cycle));
    }

    #[test]
    fn rho_one_accepts_both_modes() {
        let cycle = ChargeCycle::from_rho(1.0, 10.0).unwrap(); // T = 2
        let active = PeriodSchedule::new(ScheduleMode::ActiveSlot, 2, vec![0, 1]);
        let passive = PeriodSchedule::new(ScheduleMode::PassiveSlot, 2, vec![1, 0]);
        assert!(active.is_feasible(cycle));
        assert!(passive.is_feasible(cycle));
        // They describe the same activation pattern.
        assert_eq!(active.active_set(0), passive.active_set(0));
    }

    #[test]
    fn rotation_permutes_active_sets_and_preserves_utility() {
        let s = PeriodSchedule::new(ScheduleMode::ActiveSlot, 4, vec![0, 1, 1, 3]);
        let u = DetectionUtility::uniform(4, 0.4);
        for offset in 0..8 {
            let r = s.rotated(offset);
            assert_eq!(r.active_set(offset % 4), s.active_set(0));
            assert!((r.period_utility(&u) - s.period_utility(&u)).abs() < 1e-12);
            assert!(r.is_feasible(ChargeCycle::paper_sunny()), "offset {offset}");
        }
        assert_eq!(s.rotated(4), s, "full rotation is the identity");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_assignment_panics() {
        let _ = PeriodSchedule::new(ScheduleMode::ActiveSlot, 2, vec![2]);
    }

    #[test]
    fn display_lists_slots() {
        let s = PeriodSchedule::new(ScheduleMode::ActiveSlot, 2, vec![0, 1, 0]);
        let text = s.to_string();
        assert!(text.contains("t0: v0 v2"));
        assert!(text.contains("t1: v1"));
    }

    proptest! {
        /// Any in-range assignment is feasible in its natural mode — the
        /// point of the per-period representation (Thm 4.3's feasibility
        /// half).
        #[test]
        fn natural_assignments_are_feasible(
            ratio in 1usize..6,
            invert in any::<bool>(),
            raw in proptest::collection::vec(0usize..64, 1..20),
        ) {
            let rho = if invert { 1.0 / ratio as f64 } else { ratio as f64 };
            let cycle = ChargeCycle::from_rho(rho, 10.0).unwrap();
            let t = cycle.slots_per_period();
            let mode = if cycle.rho() > 1.0 {
                ScheduleMode::ActiveSlot
            } else {
                ScheduleMode::PassiveSlot
            };
            let assignment: Vec<usize> = raw.iter().map(|r| r % t).collect();
            let s = PeriodSchedule::new(mode, t, assignment);
            prop_assert!(s.is_feasible(cycle));
        }

        /// In active mode each sensor appears in exactly one slot per
        /// period; in passive mode in exactly T−1.
        #[test]
        fn activity_counts(
            t in 2usize..6,
            raw in proptest::collection::vec(0usize..64, 1..15),
            passive in any::<bool>(),
        ) {
            let assignment: Vec<usize> = raw.iter().map(|r| r % t).collect();
            let mode = if passive { ScheduleMode::PassiveSlot } else { ScheduleMode::ActiveSlot };
            let s = PeriodSchedule::new(mode, t, assignment.clone());
            for i in 0..assignment.len() {
                let count = (0..t).filter(|&slot| s.is_active(SensorId(i), slot)).count();
                prop_assert_eq!(count, if passive { t - 1 } else { 1 });
            }
        }
    }
}
