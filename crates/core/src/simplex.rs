//! A self-contained two-phase dense simplex solver.
//!
//! The paper's LP-based scheduler (§IV-A.1) needs a generic LP oracle; this
//! module provides one with no external dependency: maximise `c·x` subject
//! to linear constraints (`≤`, `=`, `≥`) and `x ≥ 0`, via the standard
//! two-phase tableau method with Bland's rule (guaranteeing termination).
//!
//! The implementation favours clarity over sparsity — the scheduling LPs it
//! solves have a few hundred variables.

use std::fmt;

/// Constraint relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

/// A linear program: maximise `c·x` s.t. constraints, `x ≥ 0`.
///
/// # Examples
///
/// ```
/// use cool_core::simplex::{LinearProgram, Relation};
///
/// // max 3x + 5y  s.t.  x ≤ 4,  2y ≤ 12,  3x + 2y ≤ 18  (classic Dantzig)
/// let mut lp = LinearProgram::new(2);
/// lp.set_objective(vec![3.0, 5.0]);
/// lp.add_constraint(vec![1.0, 0.0], Relation::Le, 4.0);
/// lp.add_constraint(vec![0.0, 2.0], Relation::Le, 12.0);
/// lp.add_constraint(vec![3.0, 2.0], Relation::Le, 18.0);
/// let sol = lp.solve().unwrap();
/// assert!((sol.objective_value - 36.0).abs() < 1e-9);
/// assert!((sol.x[0] - 2.0).abs() < 1e-9);
/// assert!((sol.x[1] - 6.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct LinearProgram {
    n_vars: usize,
    objective: Vec<f64>,
    rows: Vec<Vec<f64>>,
    relations: Vec<Relation>,
    rhs: Vec<f64>,
}

/// An optimal LP solution.
#[derive(Clone, Debug, PartialEq)]
pub struct SimplexSolution {
    /// The optimal objective value.
    pub objective_value: f64,
    /// An optimal assignment of the original variables.
    pub x: Vec<f64>,
}

/// Solver failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimplexError {
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// The program was malformed (e.g. a constraint of the wrong width).
    Malformed(String),
}

impl fmt::Display for SimplexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimplexError::Infeasible => write!(f, "linear program is infeasible"),
            SimplexError::Unbounded => write!(f, "linear program is unbounded"),
            SimplexError::Malformed(msg) => write!(f, "malformed linear program: {msg}"),
        }
    }
}

impl std::error::Error for SimplexError {}

const TOL: f64 = 1e-9;

impl LinearProgram {
    /// Creates an empty program over `n_vars` non-negative variables with a
    /// zero objective.
    pub fn new(n_vars: usize) -> Self {
        LinearProgram {
            n_vars,
            objective: vec![0.0; n_vars],
            rows: Vec::new(),
            relations: Vec::new(),
            rhs: Vec::new(),
        }
    }

    /// Sets the maximisation objective `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c.len() != n_vars`.
    pub fn set_objective(&mut self, c: Vec<f64>) {
        assert_eq!(c.len(), self.n_vars, "objective width mismatch");
        self.objective = c;
    }

    /// Adds a constraint `a·x REL b`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n_vars`.
    pub fn add_constraint(&mut self, a: Vec<f64>, rel: Relation, b: f64) {
        assert_eq!(a.len(), self.n_vars, "constraint width mismatch");
        self.rows.push(a);
        self.relations.push(rel);
        self.rhs.push(b);
    }

    /// Number of decision variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Solves the program.
    ///
    /// # Errors
    ///
    /// [`SimplexError::Infeasible`] when no point satisfies the constraints,
    /// [`SimplexError::Unbounded`] when the maximum is `+∞`,
    /// [`SimplexError::Malformed`] for NaN coefficients.
    pub fn solve(&self) -> Result<SimplexSolution, SimplexError> {
        if self.objective.iter().any(|v| v.is_nan())
            || self.rows.iter().flatten().any(|v| v.is_nan())
            || self.rhs.iter().any(|v| v.is_nan())
        {
            return Err(SimplexError::Malformed("NaN coefficient".into()));
        }
        self.solve_impl()
    }
}

/// The working tableau: `m` constraint rows over columns
/// `[decision | slack/surplus | artificial | rhs]`, plus a basis map.
struct Tableau {
    m: usize,
    /// Total structural columns (decision + slack + artificial).
    cols: usize,
    first_artificial: usize,
    /// `m × (cols + 1)` matrix; last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Result<Self, SimplexError> {
        let m = lp.rows.len();
        let n = lp.n_vars;

        // Count auxiliary columns: one slack/surplus per inequality, one
        // artificial per `=`/`≥` row (and per `≤` row with negative rhs,
        // handled by sign normalisation first).
        let mut rows: Vec<Vec<f64>> = lp.rows.clone();
        let mut relations = lp.relations.clone();
        let mut rhs = lp.rhs.clone();
        for i in 0..m {
            if rhs[i] < 0.0 {
                for v in &mut rows[i] {
                    *v = -*v;
                }
                rhs[i] = -rhs[i];
                relations[i] = match relations[i] {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
        }
        let n_slack = relations.iter().filter(|r| **r != Relation::Eq).count();
        let n_artificial = relations
            .iter()
            .filter(|r| matches!(r, Relation::Eq | Relation::Ge))
            .count();
        let cols = n + n_slack + n_artificial;
        let first_artificial = n + n_slack;

        let mut a = vec![vec![0.0; cols + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut slack_cursor = n;
        let mut art_cursor = first_artificial;
        for i in 0..m {
            a[i][..n].copy_from_slice(&rows[i]);
            a[i][cols] = rhs[i];
            match relations[i] {
                Relation::Le => {
                    a[i][slack_cursor] = 1.0;
                    basis[i] = slack_cursor;
                    slack_cursor += 1;
                }
                Relation::Ge => {
                    a[i][slack_cursor] = -1.0;
                    slack_cursor += 1;
                    a[i][art_cursor] = 1.0;
                    basis[i] = art_cursor;
                    art_cursor += 1;
                }
                Relation::Eq => {
                    a[i][art_cursor] = 1.0;
                    basis[i] = art_cursor;
                    art_cursor += 1;
                }
            }
        }

        let mut tableau = Tableau {
            m,
            cols,
            first_artificial,
            a,
            basis,
        };

        if n_artificial > 0 {
            // Phase 1: maximise −Σ artificials.
            let mut phase1 = vec![0.0; cols];
            for coeff in phase1.iter_mut().skip(first_artificial) {
                *coeff = -1.0;
            }
            let value = tableau.run_simplex(&phase1)?;
            if value < -1e-7 {
                return Err(SimplexError::Infeasible);
            }
            tableau.evict_artificials();
        }
        Ok(tableau)
    }

    /// Runs simplex iterations maximising `c · columns` (length `cols`),
    /// returning the optimal value. Uses Bland's rule; all columns may
    /// enter.
    fn run_simplex(&mut self, c: &[f64]) -> Result<f64, SimplexError> {
        let cols = self.cols;
        self.run_simplex_excluding(c, cols)
    }

    /// Pivot on `(row, col)`: make column `col` basic in `row`.
    fn pivot(&mut self, row: usize, col: usize) {
        let pivot = self.a[row][col];
        debug_assert!(pivot.abs() > TOL, "pivot too small");
        for v in &mut self.a[row] {
            *v /= pivot;
        }
        for i in 0..self.m {
            if i == row {
                continue;
            }
            let factor = self.a[i][col];
            if factor.abs() <= TOL {
                continue;
            }
            for jj in 0..=self.cols {
                let delta = factor * self.a[row][jj];
                self.a[i][jj] -= delta;
            }
        }
        self.basis[row] = col;
    }

    /// After phase 1, pivot remaining artificial variables out of the basis
    /// where possible (degenerate rows), so phase 2 never re-enters them.
    fn evict_artificials(&mut self) {
        for i in 0..self.m {
            if self.basis[i] >= self.first_artificial {
                // Find a non-artificial column with nonzero coefficient.
                if let Some(j) = (0..self.first_artificial).find(|&j| self.a[i][j].abs() > TOL) {
                    self.pivot(i, j);
                }
                // Otherwise the row is all-zero (redundant constraint) with
                // zero rhs; the artificial stays basic at value 0 — harmless
                // as long as it never increases, which phase 2 prevents by
                // giving artificials no positive reduced cost... enforced by
                // excluding artificial columns from entering in phase 2
                // (their phase-2 cost is 0 and values are 0).
            }
        }
    }
}

impl LinearProgram {
    /// Internal: full pipeline (build → phase 1 → phase 2 → extract).
    fn solve_impl(&self) -> Result<SimplexSolution, SimplexError> {
        let mut tableau = Tableau::build(self)?;
        let mut c = vec![0.0; tableau.cols];
        c[..self.n_vars].copy_from_slice(&self.objective);
        // Phase 2 must never re-admit artificials.
        let first_art = tableau.first_artificial;
        for coeff in c.iter_mut().skip(first_art) {
            *coeff = 0.0;
        }
        let value = tableau.run_simplex_excluding(&c, first_art)?;
        let mut x = vec![0.0; self.n_vars];
        for (i, &b) in tableau.basis.iter().enumerate() {
            if b < self.n_vars {
                x[b] = tableau.a[i][tableau.cols];
            }
        }
        Ok(SimplexSolution {
            objective_value: value,
            x,
        })
    }
}

impl Tableau {
    /// Like [`run_simplex`] but columns `≥ excluded_from` may never enter
    /// the basis (phase 2 locking out artificials).
    fn run_simplex_excluding(
        &mut self,
        c: &[f64],
        excluded_from: usize,
    ) -> Result<f64, SimplexError> {
        loop {
            let cb: Vec<f64> = self.basis.iter().map(|&b| c[b]).collect();
            let mut entering = None;
            for (j, &cj) in c.iter().enumerate().take(excluded_from) {
                if self.basis.contains(&j) {
                    continue;
                }
                let mut d = cj;
                for (row, &cb_i) in self.a.iter().zip(&cb) {
                    d -= cb_i * row[j];
                }
                if d > TOL {
                    entering = Some(j);
                    break;
                }
            }
            let Some(j) = entering else {
                let value: f64 = self
                    .basis
                    .iter()
                    .zip(&self.a)
                    .map(|(&b, row)| c[b] * row[self.cols])
                    .sum();
                return Ok(value);
            };

            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.m {
                if self.a[i][j] > TOL {
                    let ratio = self.a[i][self.cols] / self.a[i][j];
                    if leaving.is_none() || ratio < best_ratio - TOL {
                        best_ratio = ratio;
                        leaving = Some(i);
                    } else if (ratio - best_ratio).abs() <= TOL {
                        // Bland tie-break: smaller basis index leaves.
                        if let Some(l) = leaving {
                            if self.basis[i] < self.basis[l] {
                                leaving = Some(i);
                            }
                        }
                    }
                }
            }
            let Some(r) = leaving else {
                return Err(SimplexError::Unbounded);
            };
            self.pivot(r, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dantzig_textbook_example() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![3.0, 5.0]);
        lp.add_constraint(vec![1.0, 0.0], Relation::Le, 4.0);
        lp.add_constraint(vec![0.0, 2.0], Relation::Le, 12.0);
        lp.add_constraint(vec![3.0, 2.0], Relation::Le, 18.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective_value - 36.0).abs() < 1e-9);
        assert!((sol.x[0] - 2.0).abs() < 1e-9 && (sol.x[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5, x ≤ 3 → opt 5 with x ≤ 3.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, 1.0], Relation::Eq, 5.0);
        lp.add_constraint(vec![1.0, 0.0], Relation::Le, 3.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective_value - 5.0).abs() < 1e-9);
        assert!((sol.x[0] + sol.x[1] - 5.0).abs() < 1e-9);
        assert!(sol.x[0] <= 3.0 + 1e-9);
    }

    #[test]
    fn ge_constraints_and_minimization_flavor() {
        // max −x s.t. x ≥ 2 → opt −2 at x = 2.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(vec![-1.0]);
        lp.add_constraint(vec![1.0], Relation::Ge, 2.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective_value + 2.0).abs() < 1e-9);
        assert!((sol.x[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(vec![1.0]);
        lp.add_constraint(vec![1.0], Relation::Le, 1.0);
        lp.add_constraint(vec![1.0], Relation::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), SimplexError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![1.0, 0.0]);
        lp.add_constraint(vec![0.0, 1.0], Relation::Le, 1.0);
        assert_eq!(lp.solve().unwrap_err(), SimplexError::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // x ≥ 0, −x ≤ −2 ⇔ x ≥ 2; max −x → −2.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(vec![-1.0]);
        lp.add_constraint(vec![-1.0], Relation::Le, -2.0);
        let sol = lp.solve().unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_redundant_constraints() {
        // Duplicate constraints should not confuse the solver.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![1.0, 1.0]);
        for _ in 0..3 {
            lp.add_constraint(vec![1.0, 1.0], Relation::Le, 1.0);
        }
        lp.add_constraint(vec![1.0, 1.0], Relation::Eq, 1.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_nan() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(vec![f64::NAN]);
        assert!(matches!(lp.solve(), Err(SimplexError::Malformed(_))));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(vec![1.0], Relation::Le, 1.0);
    }

    #[test]
    fn error_display() {
        assert!(SimplexError::Infeasible.to_string().contains("infeasible"));
        assert!(SimplexError::Unbounded.to_string().contains("unbounded"));
    }

    #[test]
    fn scheduling_shaped_lp() {
        // A miniature of the §IV-A LP: 2 sensors × 2 slots, x(v,t) ∈ [0,1],
        // Σ_t x(v,t) ≤ 1, maximise total "coverage mass" with per-slot caps:
        //   max Σ y_t, y_t ≤ x(0,t)·0.4 + x(1,t)·0.4, y_t ≤ 1.
        // Vars: x00 x01 x10 x11 y0 y1.
        let mut lp = LinearProgram::new(6);
        lp.set_objective(vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0]);
        lp.add_constraint(vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0], Relation::Le, 1.0);
        lp.add_constraint(vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0], Relation::Le, 1.0);
        lp.add_constraint(vec![-0.4, 0.0, -0.4, 0.0, 1.0, 0.0], Relation::Le, 0.0);
        lp.add_constraint(vec![0.0, -0.4, 0.0, -0.4, 0.0, 1.0], Relation::Le, 0.0);
        lp.add_constraint(vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0], Relation::Le, 1.0);
        lp.add_constraint(vec![0.0, 0.0, 0.0, 0.0, 0.0, 1.0], Relation::Le, 1.0);
        for v in 0..4 {
            let mut row = vec![0.0; 6];
            row[v] = 1.0;
            lp.add_constraint(row, Relation::Le, 1.0);
        }
        let sol = lp.solve().unwrap();
        // Each sensor spends its single activation; total mass 0.8.
        assert!((sol.objective_value - 0.8).abs() < 1e-9);
    }
}
