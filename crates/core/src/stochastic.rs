//! Scheduling under the §V random charging model.
//!
//! The paper: replace `ρ` with `ρ' = T̄_r/T̄_d` (expectations of the random
//! recharge/discharge processes) and feed it to the LP-based solution;
//! extending the greedy analysis is left open. This module supplies:
//!
//! * [`rho_prime_cycle`] — quantising `ρ'` into a scheduler-ready
//!   [`ChargeCycle`];
//! * [`simulate_schedule`] — a slot-level Monte-Carlo evaluation of *any*
//!   period schedule under the stochastic energy process (Poisson event
//!   drain while active, Normal recharge while depleted), reporting the
//!   achieved average utility;
//! * [`stochastic_greedy`] — the pragmatic pipeline the paper hints at:
//!   greedy on the `ρ'` cycle, evaluated by simulation. The greedy stage
//!   inherits the lazy CELF machinery of [`crate::greedy`], including
//!   sparse O(deg) gain queries for multi-target
//!   [`SumUtility`](cool_utility::SumUtility) instances.

use crate::greedy;
use crate::schedule::PeriodSchedule;
use cool_common::{SensorId, SensorSet};
use cool_energy::{ChargeCycle, CycleError, RandomChargeModel};
use cool_utility::UtilityFunction;
use rand::Rng;

/// Builds the `ρ'`-based cycle: `ρ' = T̄_r/T̄_d` rounded to the nearest
/// integer ratio with slot length `T̄_d` normalised to `slot_minutes`.
///
/// # Errors
///
/// Propagates [`CycleError`] for degenerate ratios.
///
/// # Examples
///
/// ```
/// use cool_core::stochastic::rho_prime_cycle;
/// use cool_energy::RandomChargeModel;
///
/// let model = RandomChargeModel::new(15.0, 0.2, 2.0, 112.5, 5.0).unwrap();
/// // T̄_d = 37.5, ρ' = 3.
/// let cycle = rho_prime_cycle(&model).unwrap();
/// assert_eq!(cycle.slots_per_period(), 4);
/// ```
pub fn rho_prime_cycle(model: &RandomChargeModel) -> Result<ChargeCycle, CycleError> {
    let rho = model.rho_prime();
    if rho >= 1.0 {
        ChargeCycle::from_rho(rho.round().max(1.0), model.mean_discharge_minutes())
    } else {
        let inv = (1.0 / rho).round().max(1.0);
        ChargeCycle::from_rho(1.0 / inv, model.mean_recharge_minutes())
    }
}

/// Greedy on the `ρ'` cycle (the paper's pragmatic §V pipeline).
///
/// # Errors
///
/// Propagates [`CycleError`] from [`rho_prime_cycle`].
pub fn stochastic_greedy<U>(
    utility: &U,
    model: &RandomChargeModel,
) -> Result<(ChargeCycle, PeriodSchedule), CycleError>
where
    U: UtilityFunction + Sync,
    U::Evaluator: Send + Sync,
{
    let cycle = rho_prime_cycle(model)?;
    // A valid `ChargeCycle` always has ≥ 2 slots, so only a non-finite
    // utility can fail here.
    let schedule = if cycle.rho() > 1.0 {
        greedy::greedy_active_lazy(utility, cycle.slots_per_period())
    } else {
        greedy::greedy_passive_lazy(utility, cycle.slots_per_period())
    };
    Ok((cycle, schedule.unwrap_or_else(|e| panic!("{e}"))))
}

/// Error from the §V LP pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum StochasticLpError {
    /// The `ρ'` ratio could not be quantised into a cycle.
    Cycle(CycleError),
    /// The LP solve failed.
    Lp(crate::simplex::SimplexError),
    /// The **raw** ratio `ρ' ≤ 1`, which the §V LP pipeline does not
    /// cover. The check uses the un-quantised `ρ'`: a ratio like 1.3
    /// rounds down to a cycle with `ρ = 1`, but it is still a
    /// slow-recharge regime and must not be rejected.
    FastRecharge,
}

impl std::fmt::Display for StochasticLpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StochasticLpError::Cycle(e) => write!(f, "cycle error: {e}"),
            StochasticLpError::Lp(e) => write!(f, "lp error: {e}"),
            StochasticLpError::FastRecharge => {
                write!(
                    f,
                    "rho' <= 1: the LP pipeline covers the slow-recharge case only"
                )
            }
        }
    }
}

impl std::error::Error for StochasticLpError {}

/// The paper's **literal** §V proposal: "we can use the new defined ratio
/// ρ' in the linear programming based solution" — LP relaxation +
/// randomised rounding on the `ρ'` cycle.
///
/// # Errors
///
/// [`StochasticLpError`] on quantisation/LP failure, or when `ρ' ≤ 1`
/// (the LP formulation covers the slow-recharge case).
pub fn stochastic_lp<R: Rng + ?Sized>(
    utility: &cool_utility::SumUtility,
    model: &RandomChargeModel,
    rounding_trials: usize,
    rng: &mut R,
) -> Result<(ChargeCycle, PeriodSchedule), StochasticLpError> {
    // Gate on the RAW ratio, not the quantised cycle: ρ' ∈ (1, 1.5)
    // rounds to a cycle with ρ = 1 (where active-slot scheduling is still
    // feasible), and rejecting it here would silently drop the boundary.
    if model.rho_prime() <= 1.0 {
        return Err(StochasticLpError::FastRecharge);
    }
    let cycle = rho_prime_cycle(model).map_err(StochasticLpError::Cycle)?;
    let problem = crate::problem::Problem::new(utility.clone(), cycle, 1)
        .unwrap_or_else(|e| unreachable!("non-empty utility and one period: {e}"));
    let outcome = crate::lp::LpScheduler::new(rounding_trials)
        .schedule(&problem, rng)
        .map_err(StochasticLpError::Lp)?;
    Ok((cycle, outcome.schedule))
}

/// Slot-level Monte-Carlo evaluation of a schedule under the stochastic
/// model. Per sensor, per active slot, the energy drained is the sampled
/// event-monitoring time within the slot (Poisson arrivals × exponential
/// durations); a depleted sensor recharges for a sampled
/// `Normal(T̄_r, σ)` wall-time. Returns the achieved **average utility per
/// slot** over `periods` repetitions of the schedule.
///
/// # Panics
///
/// Panics if `periods == 0` or `slot_minutes ≤ 0`.
pub fn simulate_schedule<U: UtilityFunction, R: Rng + ?Sized>(
    utility: &U,
    schedule: &PeriodSchedule,
    model: &RandomChargeModel,
    slot_minutes: f64,
    periods: usize,
    rng: &mut R,
) -> f64 {
    #[derive(Clone, Copy)]
    enum EnergyState {
        /// Remaining continuous-monitoring budget in minutes.
        Available(f64),
        /// Remaining recharge wall-time in minutes.
        Recharging(f64),
    }

    assert!(periods > 0, "need at least one period");
    assert!(slot_minutes > 0.0, "slot length must be positive");
    let n = schedule.n_sensors();
    let t_slots = schedule.slots_per_period();

    let full_budget = |_rng: &mut R| model_budget(model);
    let mut states: Vec<EnergyState> = (0..n)
        .map(|_| EnergyState::Available(full_budget(rng)))
        .collect();

    let mut total = 0.0;
    let mut slots = 0usize;
    for _period in 0..periods {
        for t in 0..t_slots {
            let mut active = SensorSet::new(n);
            for (v, state) in states.iter_mut().enumerate() {
                let scheduled = schedule.is_active(SensorId(v), t);
                match *state {
                    EnergyState::Available(budget) if scheduled => {
                        // Event-monitoring minutes within this slot.
                        let drain = sample_slot_drain(model, slot_minutes, rng);
                        active.insert(SensorId(v));
                        let budget = budget - drain;
                        *state = if budget <= 0.0 {
                            EnergyState::Recharging(model.sample_recharge_minutes(rng))
                        } else {
                            EnergyState::Available(budget)
                        };
                    }
                    EnergyState::Available(_) => {}
                    EnergyState::Recharging(remaining) => {
                        let remaining = remaining - slot_minutes;
                        *state = if remaining <= 0.0 {
                            EnergyState::Available(model_budget(model))
                        } else {
                            EnergyState::Recharging(remaining)
                        };
                    }
                }
            }
            total += utility.eval(&active);
            slots += 1;
        }
    }
    total / slots as f64
}

/// The continuous-monitoring budget of a full battery: the model's
/// continuous discharge time `T_d`.
fn model_budget(model: &RandomChargeModel) -> f64 {
    model.continuous_discharge_minutes()
}

/// Minutes of event activity within one slot: arrivals are Poisson with
/// rate `λ_a`, each contributing an `Exp(λ_d)` duration, the total capped
/// at the slot length (concurrent events saturate the sensor).
fn sample_slot_drain<R: Rng + ?Sized>(
    model: &RandomChargeModel,
    slot_minutes: f64,
    rng: &mut R,
) -> f64 {
    let mean_events = model.arrival_rate_per_minute() * slot_minutes;
    let events = sample_poisson(mean_events, rng);
    let mut drain = 0.0;
    for _ in 0..events {
        let u: f64 = rng.random_range(f64::EPSILON..1.0);
        drain += -model.mean_event_minutes() * u.ln();
    }
    drain.min(slot_minutes)
}

fn sample_poisson<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> usize {
    // Knuth's method — means here are O(slot_minutes · λ_a), small.
    let threshold = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.random_range(0.0f64..1.0);
        if p <= threshold {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // safety valve for extreme means
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::SeedSequence;
    use cool_utility::DetectionUtility;

    fn model() -> RandomChargeModel {
        // duty 0.4, T̄_d = 37.5 min, T̄_r = 112.5 min → ρ' = 3.
        RandomChargeModel::new(15.0, 0.2, 2.0, 112.5, 5.0).unwrap()
    }

    #[test]
    fn rho_prime_cycle_quantizes() {
        let c = rho_prime_cycle(&model()).unwrap();
        assert_eq!(c.slots_per_period(), 4);
        assert!((c.rho() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rho_prime_cycle_fast_recharge() {
        // T̄_d = 37.5, T̄_r = 9 → ρ' ≈ 0.24 → quantized 1/4.
        let m = RandomChargeModel::new(15.0, 0.2, 2.0, 9.0, 1.0).unwrap();
        let c = rho_prime_cycle(&m).unwrap();
        assert!((c.rho() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn stochastic_greedy_produces_feasible_plan() {
        let u = DetectionUtility::uniform(10, 0.4);
        let (cycle, schedule) = stochastic_greedy(&u, &model()).unwrap();
        assert!(schedule.is_feasible(cycle));
    }

    #[test]
    fn simulation_yields_positive_utility() {
        let u = DetectionUtility::uniform(10, 0.4);
        let (cycle, schedule) = stochastic_greedy(&u, &model()).unwrap();
        let mut rng = SeedSequence::new(70).nth_rng(0);
        let avg = simulate_schedule(&u, &schedule, &model(), cycle.slot_minutes(), 50, &mut rng);
        assert!(avg > 0.0 && avg <= 1.0, "avg utility {avg}");
    }

    #[test]
    fn greedy_on_rho_prime_beats_static_under_simulation() {
        let u = DetectionUtility::uniform(12, 0.4);
        let m = model();
        let (cycle, greedy_plan) = stochastic_greedy(&u, &m).unwrap();
        let static_plan = PeriodSchedule::new(
            crate::schedule::ScheduleMode::ActiveSlot,
            cycle.slots_per_period(),
            vec![0; 12],
        );
        let mut rng = SeedSequence::new(71).nth_rng(0);
        let g = simulate_schedule(&u, &greedy_plan, &m, cycle.slot_minutes(), 100, &mut rng);
        let mut rng = SeedSequence::new(71).nth_rng(0);
        let s = simulate_schedule(&u, &static_plan, &m, cycle.slot_minutes(), 100, &mut rng);
        assert!(g > s, "greedy {g} should beat static {s} under uncertainty");
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let u = DetectionUtility::uniform(6, 0.4);
        let (cycle, schedule) = stochastic_greedy(&u, &model()).unwrap();
        let run = |seed| {
            let mut rng = SeedSequence::new(seed).nth_rng(0);
            simulate_schedule(&u, &schedule, &model(), cycle.slot_minutes(), 20, &mut rng)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn stochastic_lp_produces_feasible_plan() {
        use cool_common::SensorSet;
        let u = cool_utility::SumUtility::multi_target_detection(&[SensorSet::full(8)], 0.4);
        let mut rng = SeedSequence::new(72).nth_rng(0);
        let (cycle, schedule) = stochastic_lp(&u, &model(), 8, &mut rng).unwrap();
        assert!(schedule.is_feasible(cycle));
    }

    #[test]
    fn stochastic_lp_accepts_rho_prime_just_above_one() {
        // Regression (promoted from examples/bugprobe.rs): ρ' = 1.3
        // quantises to a cycle with ρ = 1, and the old gate on the
        // *quantised* ratio wrongly returned FastRecharge for this
        // slow-recharge model. The raw-ρ' gate must let it through and
        // produce a feasible plan on the ρ = 1 cycle.
        use cool_common::SensorSet;
        let u = cool_utility::SumUtility::multi_target_detection(&[SensorSet::full(6)], 0.4);
        // T̄_d = 15/(0.2·2) … = 37.5 min, T̄_r = 48.75 min → ρ' = 1.3.
        let m = RandomChargeModel::new(15.0, 0.2, 2.0, 48.75, 1.0).unwrap();
        assert!((m.rho_prime() - 1.3).abs() < 1e-9);
        let mut rng = SeedSequence::new(74).nth_rng(0);
        let (cycle, schedule) = stochastic_lp(&u, &m, 8, &mut rng)
            .expect("rho' in (1, 1.5) is slow-recharge and must be accepted");
        assert!((cycle.rho() - 1.0).abs() < 1e-12, "quantises to rho = 1");
        assert!(schedule.is_feasible(cycle));
    }

    #[test]
    fn stochastic_lp_rejects_fast_recharge() {
        use cool_common::SensorSet;
        let u = cool_utility::SumUtility::multi_target_detection(&[SensorSet::full(4)], 0.4);
        let m = RandomChargeModel::new(15.0, 0.2, 2.0, 9.0, 1.0).unwrap(); // rho' = 1/4
        let mut rng = SeedSequence::new(73).nth_rng(0);
        let err = stochastic_lp(&u, &m, 2, &mut rng).unwrap_err();
        assert_eq!(err, StochasticLpError::FastRecharge);
        assert!(err.to_string().contains("rho'"));
    }

    #[test]
    #[should_panic(expected = "at least one period")]
    fn zero_periods_panics() {
        let u = DetectionUtility::uniform(2, 0.4);
        let (cycle, schedule) = stochastic_greedy(&u, &model()).unwrap();
        let mut rng = SeedSequence::new(0).nth_rng(0);
        let _ = simulate_schedule(&u, &schedule, &model(), cycle.slot_minutes(), 0, &mut rng);
    }
}
