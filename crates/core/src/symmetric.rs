//! Exact optimal schedules for **symmetric** utilities in polynomial time.
//!
//! When every sensor is interchangeable — the per-slot utility depends only
//! on *how many* sensors are active, `U(S) = f(|S|)` with `f` concave
//! non-decreasing (the paper's single-target evaluation with uniform
//! `p` is exactly this: `f(k) = 1 − (1−p)^k`) — the NP-hard assignment
//! problem collapses to an integer partition problem:
//!
//! ```text
//! maximise Σ_{t=1}^{T} f(k_t)   subject to   Σ k_t = n,  k_t ≥ 0
//! ```
//!
//! solved exactly in `O(T · n²)` by dynamic programming (and, for concave
//! `f`, by the balanced partition in `O(1)` — both are provided, each
//! validating the other). This gives the paper's "optimal by enumeration"
//! reference at `n = 100`, far beyond the reach of `T^n` enumeration.

use crate::schedule::{PeriodSchedule, ScheduleMode};

/// The optimal per-period value and per-slot counts for a symmetric
/// utility `f` over counts.
#[derive(Clone, Debug, PartialEq)]
pub struct SymmetricOptimum {
    /// Optimal total per-period utility `Σ_t f(k_t)`.
    pub value: f64,
    /// The optimal per-slot sensor counts (sorted descending).
    pub counts: Vec<usize>,
}

impl SymmetricOptimum {
    /// Materialises a [`PeriodSchedule`] realising these counts (sensors
    /// assigned in index order).
    pub fn to_schedule(&self) -> PeriodSchedule {
        let mut assignment = Vec::new();
        for (slot, &count) in self.counts.iter().enumerate() {
            assignment.extend(std::iter::repeat_n(slot, count));
        }
        PeriodSchedule::new(ScheduleMode::ActiveSlot, self.counts.len(), assignment)
    }
}

/// Exact DP over count partitions: `best[t][k]` = max utility of filling
/// `t` slots with `k` sensors. Works for **any** `f` with `f(0) = 0`
/// (concavity not required).
///
/// # Panics
///
/// Panics if `slots == 0`.
///
/// # Examples
///
/// ```
/// use cool_core::symmetric::optimal_partition_dp;
///
/// // The paper's single-target instance: f(k) = 1 − 0.6^k, n = 100, T = 4.
/// let f = |k: usize| 1.0 - 0.6f64.powi(k as i32);
/// let opt = optimal_partition_dp(100, 4, f);
/// assert_eq!(opt.counts, vec![25, 25, 25, 25]);
/// assert!((opt.value - 4.0 * (1.0 - 0.6f64.powi(25))).abs() < 1e-12);
/// ```
pub fn optimal_partition_dp<F: Fn(usize) -> f64>(n: usize, slots: usize, f: F) -> SymmetricOptimum {
    assert!(slots > 0, "need at least one slot");
    let values: Vec<f64> = (0..=n).map(&f).collect();

    // best[k] after processing t slots; choice[t][k] = count in slot t.
    let mut best = vec![f64::NEG_INFINITY; n + 1];
    best[0] = 0.0;
    let mut choices: Vec<Vec<usize>> = Vec::with_capacity(slots);
    for _t in 0..slots {
        let mut next = vec![f64::NEG_INFINITY; n + 1];
        let mut choice = vec![0usize; n + 1];
        for used in 0..=n {
            if best[used] == f64::NEG_INFINITY {
                continue;
            }
            for take in 0..=(n - used) {
                let candidate = best[used] + values[take];
                if candidate > next[used + take] {
                    next[used + take] = candidate;
                    choice[used + take] = take;
                }
            }
        }
        best = next;
        choices.push(choice);
    }

    // Backtrack from exactly-n (all sensors must be scheduled — adding a
    // sensor never hurts a monotone f, and for non-monotone f the caller
    // asked for a partition of all n anyway).
    let mut counts = Vec::with_capacity(slots);
    let mut remaining = n;
    for choice in choices.iter().rev() {
        let take = choice[remaining];
        counts.push(take);
        remaining -= take;
    }
    counts.sort_unstable_by(|a, b| b.cmp(a));
    SymmetricOptimum {
        value: best[n],
        counts,
    }
}

/// Closed-form optimum for **concave non-decreasing** `f`: the balanced
/// partition `k_t ∈ {⌊n/T⌋, ⌈n/T⌉}` (by the discrete Jensen inequality /
/// exchange argument: moving a sensor from a fuller slot to an emptier one
/// never decreases `f(a−1) + f(b+1) − f(a) − f(b) ≥ 0` when `a > b + 1`).
///
/// # Panics
///
/// Panics if `slots == 0`.
///
/// # Examples
///
/// ```
/// use cool_core::symmetric::balanced_partition;
///
/// let f = |k: usize| 1.0 - 0.6f64.powi(k as i32);
/// let opt = balanced_partition(10, 4, f);
/// assert_eq!(opt.counts, vec![3, 3, 2, 2]);
/// ```
pub fn balanced_partition<F: Fn(usize) -> f64>(n: usize, slots: usize, f: F) -> SymmetricOptimum {
    assert!(slots > 0, "need at least one slot");
    let base = n / slots;
    let extra = n % slots;
    let counts: Vec<usize> = (0..slots)
        .map(|t| if t < extra { base + 1 } else { base })
        .collect();
    let value = counts.iter().map(|&k| f(k)).sum();
    SymmetricOptimum { value, counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::exhaustive_optimal;
    use cool_utility::DetectionUtility;
    use proptest::prelude::*;

    fn detection(p: f64) -> impl Fn(usize) -> f64 {
        move |k| 1.0 - (1.0 - p).powi(i32::try_from(k).unwrap())
    }

    #[test]
    fn dp_matches_balanced_for_concave_f() {
        for (n, t) in [(10usize, 4usize), (100, 4), (7, 3), (1, 5), (0, 2)] {
            let dp = optimal_partition_dp(n, t, detection(0.4));
            let bal = balanced_partition(n, t, detection(0.4));
            assert!(
                (dp.value - bal.value).abs() < 1e-12,
                "n={n}, T={t}: DP {} vs balanced {}",
                dp.value,
                bal.value
            );
            assert_eq!(dp.counts, bal.counts, "n={n}, T={t}");
        }
    }

    #[test]
    fn dp_matches_exhaustive_on_small_instances() {
        for n in 1..=6usize {
            let u = DetectionUtility::uniform(n, 0.4);
            let t = 3;
            let dp = optimal_partition_dp(n, t, detection(0.4));
            let ex = exhaustive_optimal(&u, t, crate::schedule::ScheduleMode::ActiveSlot);
            assert!(
                (dp.value - ex.period_utility(&u)).abs() < 1e-12,
                "n={n}: DP {} vs exhaustive {}",
                dp.value,
                ex.period_utility(&u)
            );
        }
    }

    #[test]
    fn dp_handles_non_concave_f() {
        // f with a sweet spot at exactly 2 sensors (non-concave): the DP
        // must find the 2+2 split, the balanced heuristic would too here,
        // but try n=5, T=2: best is 2+3 vs balanced 3+2 — equal; use a
        // sharper f: f(2)=1, else 0.
        let f = |k: usize| if k == 2 { 1.0 } else { 0.0 };
        let opt = optimal_partition_dp(6, 3, f);
        assert_eq!(opt.value, 3.0, "three slots of exactly 2");
        assert_eq!(opt.counts, vec![2, 2, 2]);

        let opt = optimal_partition_dp(5, 3, f);
        assert_eq!(opt.value, 2.0, "two slots of 2, one slot of 1");
    }

    #[test]
    fn schedule_realises_counts() {
        let opt = optimal_partition_dp(10, 4, detection(0.4));
        let schedule = opt.to_schedule();
        let u = DetectionUtility::uniform(10, 0.4);
        assert!((schedule.period_utility(&u) - opt.value).abs() < 1e-12);
        let mut sizes: Vec<usize> = (0..4).map(|t| schedule.active_set(t).len()).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(sizes, opt.counts);
    }

    #[test]
    fn paper_scale_runs_instantly() {
        // n = 500, T = 13 — far beyond enumeration.
        let opt = optimal_partition_dp(500, 13, detection(0.4));
        assert_eq!(opt.counts.iter().sum::<usize>(), 500);
        assert!(opt.value > 0.0);
    }

    proptest! {
        /// DP ≥ balanced always (DP is exact), and equal for the concave
        /// detection family.
        #[test]
        fn dp_dominates_balanced(n in 0usize..60, t in 1usize..8, p in 0.01f64..0.99) {
            let dp = optimal_partition_dp(n, t, detection(p));
            let bal = balanced_partition(n, t, detection(p));
            prop_assert!(dp.value + 1e-12 >= bal.value);
            prop_assert!((dp.value - bal.value).abs() < 1e-9, "concave ⇒ balanced optimal");
        }

        /// The greedy from §IV matches the exact symmetric optimum on
        /// uniform single-target instances — at any scale.
        #[test]
        fn greedy_is_exactly_optimal_for_symmetric_instances(
            n in 1usize..80, t in 1usize..6, p in 0.05f64..0.95,
        ) {
            let u = DetectionUtility::uniform(n, p);
            let greedy = crate::greedy::greedy_active_naive(&u, t).unwrap();
            let opt = optimal_partition_dp(n, t, detection(p));
            prop_assert!((greedy.period_utility(&u) - opt.value).abs() < 1e-9);
        }
    }
}
