//! A rechargeable battery with capacity `B` (§II-B).
//!
//! The paper's model: energy can be depleted to zero, a node is recharged
//! while passive, and is only activatable when **fully** charged. The
//! battery type enforces the `0 ≤ level ≤ capacity` invariant; the policy
//! ("only activate when full") lives in [`crate::state`].

use std::fmt;

/// A battery holding `level ∈ [0, capacity]` joules.
///
/// # Examples
///
/// ```
/// use cool_energy::Battery;
///
/// let mut b = Battery::full(100.0);
/// assert!(b.is_full());
/// let drawn = b.discharge(30.0);
/// assert_eq!(drawn, 30.0);
/// assert_eq!(b.level(), 70.0);
/// let stored = b.charge(1000.0); // clamps at capacity
/// assert_eq!(stored, 30.0);
/// assert!(b.is_full());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Battery {
    capacity: f64,
    level: f64,
}

impl Battery {
    /// Creates a battery at the given initial level.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive/finite or `level ∉ [0, capacity]`.
    pub fn new(capacity: f64, level: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive, got {capacity}"
        );
        assert!(
            level.is_finite() && (0.0..=capacity).contains(&level),
            "level {level} outside [0, {capacity}]"
        );
        Battery { capacity, level }
    }

    /// Creates a fully-charged battery.
    pub fn full(capacity: f64) -> Self {
        Battery::new(capacity, capacity)
    }

    /// Creates an empty battery.
    pub fn empty(capacity: f64) -> Self {
        Battery::new(capacity, 0.0)
    }

    /// Capacity `B` in joules.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Current level in joules.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Level as a fraction of capacity, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.level / self.capacity
    }

    /// `true` when charged to capacity (within an epsilon of numerical
    /// charging error).
    pub fn is_full(&self) -> bool {
        self.level >= self.capacity * (1.0 - 1e-12)
    }

    /// `true` when depleted.
    pub fn is_empty(&self) -> bool {
        self.level <= self.capacity * 1e-12
    }

    /// Draws up to `amount` joules; returns the energy actually delivered
    /// (less than `amount` when the battery runs out mid-draw).
    ///
    /// # Panics
    ///
    /// Panics if `amount` is negative or not finite.
    pub fn discharge(&mut self, amount: f64) -> f64 {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "discharge amount must be non-negative"
        );
        let drawn = amount.min(self.level);
        self.level -= drawn;
        drawn
    }

    /// Stores up to `amount` joules; returns the energy actually stored
    /// (clamped at capacity).
    ///
    /// # Panics
    ///
    /// Panics if `amount` is negative or not finite.
    pub fn charge(&mut self, amount: f64) -> f64 {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "charge amount must be non-negative"
        );
        let stored = amount.min(self.capacity - self.level);
        self.level += stored;
        stored
    }

    /// Forces the level to exactly zero (used when the model declares a node
    /// depleted at a slot boundary).
    pub fn deplete(&mut self) {
        self.level = 0.0;
    }

    /// Forces the level to exactly capacity (slot-boundary full).
    pub fn refill(&mut self) {
        self.level = self.capacity;
    }
}

impl fmt::Display for Battery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2}/{:.2} J ({:.0}%)",
            self.level,
            self.capacity,
            self.fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_variants() {
        assert!(Battery::full(10.0).is_full());
        assert!(Battery::empty(10.0).is_empty());
        let b = Battery::new(10.0, 4.0);
        assert_eq!(b.fraction(), 0.4);
    }

    #[test]
    fn discharge_clamps_at_zero() {
        let mut b = Battery::new(10.0, 3.0);
        assert_eq!(b.discharge(5.0), 3.0);
        assert!(b.is_empty());
        assert_eq!(b.discharge(5.0), 0.0);
    }

    #[test]
    fn charge_clamps_at_capacity() {
        let mut b = Battery::new(10.0, 9.0);
        assert_eq!(b.charge(5.0), 1.0);
        assert!(b.is_full());
        assert_eq!(b.charge(5.0), 0.0);
    }

    #[test]
    fn deplete_and_refill() {
        let mut b = Battery::new(10.0, 5.0);
        b.deplete();
        assert_eq!(b.level(), 0.0);
        b.refill();
        assert_eq!(b.level(), 10.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Battery::full(0.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn overfull_level_panics() {
        let _ = Battery::new(10.0, 11.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_discharge_panics() {
        Battery::full(1.0).discharge(-0.1);
    }

    proptest! {
        /// The level invariant holds under any sequence of operations, and
        /// energy is conserved: level = initial + Σ stored − Σ drawn.
        #[test]
        fn invariant_under_random_ops(
            initial in 0.0f64..100.0,
            ops in proptest::collection::vec((any::<bool>(), 0.0f64..50.0), 0..100),
        ) {
            let mut b = Battery::new(100.0, initial);
            let mut ledger = initial;
            for (is_charge, amount) in ops {
                if is_charge {
                    ledger += b.charge(amount);
                } else {
                    ledger -= b.discharge(amount);
                }
                prop_assert!(b.level() >= 0.0 && b.level() <= b.capacity());
                prop_assert!((b.level() - ledger).abs() < 1e-9);
            }
        }
    }
}
