//! Heterogeneous fleets: per-sensor energy profiles and the LCM tick grid.
//!
//! The paper assumes a homogeneous deployment — one battery capacity `B`,
//! discharge rate `μ_d`, and recharge rate `μ_r` for every sensor, so one
//! global `ρ` and one slot grid. [`SensorProfile`] lifts that: each sensor
//! carries its own `(B, μ_d, μ_r, solar_eff)`, yielding per-sensor
//! `T_d = 60·B/μ_d`, `T_r = 60·B/(μ_r·solar_eff)` and `ρ_v = T_r/T_d`.
//!
//! Mixed durations break the uniform slot grid, so a [`Fleet`] is
//! scheduled on the **LCM grid** ([`FleetGrid`]): the tick length is the
//! (tolerance-aware) GCD of every sensor's slot length, each sensor's
//! period spans `P_v = d_v + r_v` ticks, and the grid repeats after the
//! hyperperiod `H = lcm(P_v)`. Per-sensor slot boundaries embed losslessly
//! into the grid — pinned by this module's round-trip property test.
//!
//! A fleet whose profiles are all identical degenerates to the paper's
//! model: the grid tick is the homogeneous slot, `H` is the charging
//! period `T`, and per-tick energy rates are bitwise equal to
//! [`ChargeCycle::discharge_fraction_per_slot`] /
//! [`ChargeCycle::recharge_fraction_per_slot`] — the foundation of the
//! `hetero-homog-reduce` (COOL-E028) relation in `cool-check`.

use crate::{ChargeCycle, CycleError};
use std::fmt;

/// One sensor's energy hardware: battery capacity in watt-hours, discharge
/// and recharge power in milliwatts, and a solar-efficiency derating on the
/// recharge path.
///
/// The defaults reproduce the paper's sunny-day testbed pattern
/// (`T_d = 15 min`, `T_r = 45 min`, `ρ = 3`).
///
/// # Examples
///
/// ```
/// use cool_energy::SensorProfile;
///
/// let p = SensorProfile::default();
/// assert_eq!(p.discharge_minutes(), 15.0);
/// assert_eq!(p.recharge_minutes(), 45.0);
/// assert_eq!(p.cycle().unwrap().rho(), 3.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SensorProfile {
    /// Battery capacity in watt-hours.
    pub battery: f64,
    /// Discharge power draw while active, in milliwatts.
    pub mu_d: f64,
    /// Recharge power while passive under full sun, in milliwatts.
    pub mu_r: f64,
    /// Solar efficiency in `(0, 1]`: derates the effective recharge power
    /// (panel ageing, shading, conversion losses).
    pub solar_eff: f64,
}

impl Default for SensorProfile {
    fn default() -> Self {
        SensorProfile {
            battery: 30.0,
            mu_d: 120.0,
            mu_r: 40.0,
            solar_eff: 1.0,
        }
    }
}

impl SensorProfile {
    /// Discharge time `T_d = 60·B/μ_d` in minutes.
    pub fn discharge_minutes(&self) -> f64 {
        60.0 * self.battery / self.mu_d
    }

    /// Recharge time `T_r = 60·B/(μ_r·solar_eff)` in minutes.
    pub fn recharge_minutes(&self) -> f64 {
        60.0 * self.battery / (self.mu_r * self.solar_eff)
    }

    /// The per-sensor ratio `ρ_v = T_r/T_d = μ_d/(μ_r·solar_eff)`.
    pub fn rho(&self) -> f64 {
        self.recharge_minutes() / self.discharge_minutes()
    }

    /// `true` when every field is finite and positive (and `solar_eff ≤ 1`).
    pub fn is_valid(&self) -> bool {
        let positive = |x: f64| x.is_finite() && x > 0.0;
        positive(self.battery)
            && positive(self.mu_d)
            && positive(self.mu_r)
            && positive(self.solar_eff)
            && self.solar_eff <= 1.0
    }

    /// The sensor's own charge cycle.
    ///
    /// # Errors
    ///
    /// [`CycleError`] when the profile is degenerate or its `ρ_v` is not
    /// slot-decomposable (neither `ρ_v` nor `1/ρ_v` integral).
    pub fn cycle(&self) -> Result<ChargeCycle, CycleError> {
        if !self.is_valid() {
            return Err(CycleError::NonPositiveDuration);
        }
        ChargeCycle::from_minutes(self.discharge_minutes(), self.recharge_minutes())
    }
}

impl fmt::Display for SensorProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "B={}Wh mu_d={}mW mu_r={}mW eff={}",
            self.battery, self.mu_d, self.mu_r, self.solar_eff
        )
    }
}

/// Error constructing a [`Fleet`] or its [`FleetGrid`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FleetError {
    /// A fleet needs at least one sensor.
    EmptyFleet,
    /// Sensor `sensor`'s profile is degenerate or not slot-decomposable.
    BadProfile {
        /// The offending sensor index.
        sensor: usize,
        /// Why its cycle could not be built.
        source: CycleError,
    },
    /// Sensor `sensor`'s durations do not share a common tick with the
    /// rest of the fleet (within tolerance).
    NonCommensurable {
        /// The offending sensor index.
        sensor: usize,
    },
    /// The hyperperiod `lcm(P_v)` exceeds
    /// [`FleetGrid::MAX_HYPERPERIOD_TICKS`].
    HyperperiodTooLarge {
        /// The computed hyperperiod in ticks.
        ticks: u128,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::EmptyFleet => write!(f, "a fleet needs at least one sensor"),
            FleetError::BadProfile { sensor, source } => {
                write!(f, "sensor {sensor}: {source}")
            }
            FleetError::NonCommensurable { sensor } => write!(
                f,
                "sensor {sensor}: durations share no common tick with the fleet"
            ),
            FleetError::HyperperiodTooLarge { ticks } => write!(
                f,
                "hyperperiod of {ticks} ticks exceeds the {} cap",
                FleetGrid::MAX_HYPERPERIOD_TICKS
            ),
        }
    }
}

impl std::error::Error for FleetError {}

/// A heterogeneous deployment: one [`SensorProfile`] per sensor, with the
/// derived per-sensor [`ChargeCycle`]s validated up front.
#[derive(Clone, Debug, PartialEq)]
pub struct Fleet {
    profiles: Vec<SensorProfile>,
    cycles: Vec<ChargeCycle>,
}

impl Fleet {
    /// Builds a fleet from per-sensor profiles, deriving and validating
    /// each sensor's cycle.
    ///
    /// # Errors
    ///
    /// [`FleetError::EmptyFleet`] for zero sensors;
    /// [`FleetError::BadProfile`] when a profile is degenerate or not
    /// slot-decomposable.
    pub fn new(profiles: Vec<SensorProfile>) -> Result<Self, FleetError> {
        if profiles.is_empty() {
            return Err(FleetError::EmptyFleet);
        }
        let mut cycles = Vec::with_capacity(profiles.len());
        for (sensor, profile) in profiles.iter().enumerate() {
            let cycle = profile
                .cycle()
                .map_err(|source| FleetError::BadProfile { sensor, source })?;
            cycles.push(cycle);
        }
        Ok(Fleet { profiles, cycles })
    }

    /// Builds a fleet directly from per-sensor cycles (profiles are
    /// synthesised at the default battery capacity). The given cycles are
    /// stored **verbatim** — no round-trip through profile arithmetic — so
    /// a uniform fleet built from a homogeneous cycle reproduces that
    /// cycle's rates bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`FleetError::EmptyFleet`] for zero sensors.
    pub fn from_cycles(cycles: Vec<ChargeCycle>) -> Result<Self, FleetError> {
        if cycles.is_empty() {
            return Err(FleetError::EmptyFleet);
        }
        let profiles = cycles
            .iter()
            .map(|c| {
                let battery = SensorProfile::default().battery;
                SensorProfile {
                    battery,
                    mu_d: 60.0 * battery / c.discharge_minutes(),
                    mu_r: 60.0 * battery / c.recharge_minutes(),
                    solar_eff: 1.0,
                }
            })
            .collect();
        Ok(Fleet { profiles, cycles })
    }

    /// A fleet of `n` sensors all governed by `cycle` — the homogeneous
    /// special case, stored bit-exactly (see [`Fleet::from_cycles`]).
    ///
    /// # Errors
    ///
    /// [`FleetError::EmptyFleet`] when `n == 0`.
    pub fn uniform_from_cycle(n: usize, cycle: ChargeCycle) -> Result<Self, FleetError> {
        Fleet::from_cycles(vec![cycle; n])
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// `true` for a zero-sensor fleet (unreachable through constructors).
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The per-sensor profiles.
    pub fn profiles(&self) -> &[SensorProfile] {
        &self.profiles
    }

    /// The per-sensor cycles.
    pub fn cycles(&self) -> &[ChargeCycle] {
        &self.cycles
    }

    /// Sensor `v`'s cycle.
    pub fn cycle(&self, v: usize) -> ChargeCycle {
        self.cycles[v]
    }

    /// `Some(cycle)` when every sensor's cycle is identical (bitwise on
    /// both durations) — the homogeneous reduction gate.
    pub fn uniform_cycle(&self) -> Option<ChargeCycle> {
        let first = self.cycles[0];
        self.cycles
            .iter()
            .all(|c| {
                c.discharge_minutes() == first.discharge_minutes()
                    && c.recharge_minutes() == first.recharge_minutes()
            })
            .then_some(first)
    }
}

/// Relative tolerance for the duration-GCD and tick-rounding checks.
const COMMENSURABILITY_TOL: f64 = 1e-6;

/// Tolerance-aware GCD of two positive durations (centred Euclid: the
/// remainder is folded into `[-b/2, b/2]` so near-multiples terminate).
fn gcd_minutes(a: f64, b: f64) -> f64 {
    let tol = 1e-9 * a.max(b);
    let (mut a, mut b) = if a >= b { (a, b) } else { (b, a) };
    while b > tol {
        let r = (a - (a / b).round() * b).abs();
        a = b;
        b = r;
    }
    a
}

/// The LCM slot grid of a heterogeneous fleet.
///
/// * one **tick** is the GCD of every sensor's `T_d` and `T_r`;
/// * sensor `v` discharges over `d_v` ticks and recharges over `r_v`,
///   a period of `P_v = d_v + r_v` ticks;
/// * the whole fleet's activity repeats after the **hyperperiod**
///   `H = lcm(P_v)` ticks (capped at
///   [`FleetGrid::MAX_HYPERPERIOD_TICKS`]).
///
/// Per-tick energy rates are `1/d_v` (drain) and `1/r_v` (refill) of the
/// sensor's own capacity — for a uniform fleet these are bitwise the
/// homogeneous [`ChargeCycle::discharge_fraction_per_slot`] /
/// [`ChargeCycle::recharge_fraction_per_slot`].
///
/// # Examples
///
/// ```
/// use cool_energy::{ChargeCycle, Fleet, FleetGrid};
///
/// // Battery 30 Wh vs 60 Wh at the same currents: cycles (15,45), (30,90).
/// let fleet = Fleet::from_cycles(vec![
///     ChargeCycle::from_minutes(15.0, 45.0).unwrap(),
///     ChargeCycle::from_minutes(30.0, 90.0).unwrap(),
/// ]).unwrap();
/// let grid = FleetGrid::build(&fleet).unwrap();
/// assert_eq!(grid.tick_minutes(), 15.0);
/// assert_eq!(grid.period_ticks(0), 4);  // 1 + 3
/// assert_eq!(grid.period_ticks(1), 8);  // 2 + 6
/// assert_eq!(grid.hyperperiod(), 8);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FleetGrid {
    tick_minutes: f64,
    cycles: Vec<ChargeCycle>,
    discharge_ticks: Vec<usize>,
    recharge_ticks: Vec<usize>,
    hyperperiod: usize,
}

impl FleetGrid {
    /// Upper bound on the hyperperiod, in ticks. Fleets of wildly coprime
    /// periods would otherwise explode the grid; `cool-scenario` surfaces
    /// the error as a field diagnostic.
    pub const MAX_HYPERPERIOD_TICKS: usize = 4096;

    /// Derives the grid from a fleet.
    ///
    /// # Errors
    ///
    /// [`FleetError::NonCommensurable`] when a sensor's durations do not
    /// round cleanly onto the common tick;
    /// [`FleetError::HyperperiodTooLarge`] when `lcm(P_v)` exceeds the cap.
    pub fn build(fleet: &Fleet) -> Result<Self, FleetError> {
        let cycles = fleet.cycles().to_vec();
        let mut tick = cycles[0].discharge_minutes();
        for c in &cycles {
            tick = gcd_minutes(tick, c.discharge_minutes());
            tick = gcd_minutes(tick, c.recharge_minutes());
        }
        let to_ticks = |minutes: f64, sensor: usize| -> Result<usize, FleetError> {
            let raw = minutes / tick;
            let ticks = raw.round();
            if ticks < 1.0 || (raw - ticks).abs() > COMMENSURABILITY_TOL * raw.max(1.0) {
                return Err(FleetError::NonCommensurable { sensor });
            }
            Ok(ticks as usize)
        };
        let mut discharge_ticks = Vec::with_capacity(cycles.len());
        let mut recharge_ticks = Vec::with_capacity(cycles.len());
        let mut hyper: u128 = 1;
        for (v, c) in cycles.iter().enumerate() {
            let d = to_ticks(c.discharge_minutes(), v)?;
            let r = to_ticks(c.recharge_minutes(), v)?;
            let p = (d + r) as u128;
            hyper = hyper / gcd_u128(hyper, p) * p;
            if hyper > Self::MAX_HYPERPERIOD_TICKS as u128 {
                return Err(FleetError::HyperperiodTooLarge { ticks: hyper });
            }
            discharge_ticks.push(d);
            recharge_ticks.push(r);
        }
        Ok(FleetGrid {
            tick_minutes: tick,
            cycles,
            discharge_ticks,
            recharge_ticks,
            hyperperiod: hyper as usize,
        })
    }

    /// Number of sensors.
    pub fn n_sensors(&self) -> usize {
        self.discharge_ticks.len()
    }

    /// Length of one grid tick in minutes.
    pub fn tick_minutes(&self) -> f64 {
        self.tick_minutes
    }

    /// The hyperperiod `H = lcm(P_v)` in ticks.
    pub fn hyperperiod(&self) -> usize {
        self.hyperperiod
    }

    /// Sensor `v`'s cycle (as given to [`FleetGrid::build`], verbatim).
    pub fn cycle(&self, v: usize) -> ChargeCycle {
        self.cycles[v]
    }

    /// Discharge ticks `d_v` (length of one active run).
    pub fn discharge_ticks(&self, v: usize) -> usize {
        self.discharge_ticks[v]
    }

    /// Recharge ticks `r_v` (length of one passive run).
    pub fn recharge_ticks(&self, v: usize) -> usize {
        self.recharge_ticks[v]
    }

    /// Sensor `v`'s period `P_v = d_v + r_v` in ticks.
    pub fn period_ticks(&self, v: usize) -> usize {
        self.discharge_ticks[v] + self.recharge_ticks[v]
    }

    /// How many periods of sensor `v` fit in one hyperperiod: `H / P_v`.
    pub fn runs_per_hyperperiod(&self, v: usize) -> usize {
        self.hyperperiod / self.period_ticks(v)
    }

    /// Energy drained per active tick, as a fraction of sensor `v`'s own
    /// capacity: `1/d_v`.
    pub fn need_per_tick(&self, v: usize) -> f64 {
        1.0 / self.discharge_ticks[v] as f64
    }

    /// Energy restored per passive tick: `1/r_v` of `v`'s own capacity.
    pub fn refill_per_tick(&self, v: usize) -> f64 {
        1.0 / self.recharge_ticks[v] as f64
    }

    /// The unified periodic activity pattern: sensor `v`, whose active run
    /// starts at `phase ∈ 0..P_v` within each of its periods, is active at
    /// grid tick `tick` iff `(tick − phase) mod P_v < d_v`.
    pub fn active_at(&self, v: usize, phase: usize, tick: usize) -> bool {
        let p = self.period_ticks(v);
        debug_assert!(phase < p, "phase {phase} outside period {p}");
        (tick + p - phase) % p < self.discharge_ticks[v]
    }

    /// Minutes offset of grid tick `k`.
    pub fn ticks_to_minutes(&self, ticks: usize) -> f64 {
        ticks as f64 * self.tick_minutes
    }

    /// The grid tick at minute offset `minutes`, when `minutes` lies on a
    /// tick boundary (within tolerance); `None` otherwise.
    pub fn minutes_to_ticks(&self, minutes: f64) -> Option<usize> {
        let raw = minutes / self.tick_minutes;
        let ticks = raw.round();
        (ticks >= 0.0 && (raw - ticks).abs() <= COMMENSURABILITY_TOL * raw.abs().max(1.0))
            .then_some(ticks as usize)
    }
}

fn gcd_u128(a: u128, b: u128) -> u128 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

impl fmt::Display for FleetGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FleetGrid: {} sensors, tick {}min, hyperperiod {} ticks",
            self.n_sensors(),
            self.tick_minutes,
            self.hyperperiod
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_profile_is_the_paper_testbed() {
        let cycle = SensorProfile::default().cycle().unwrap();
        assert_eq!(cycle, ChargeCycle::paper_sunny());
    }

    #[test]
    fn solar_eff_stretches_recharge_only() {
        let p = SensorProfile {
            solar_eff: 0.5,
            ..SensorProfile::default()
        };
        assert_eq!(p.discharge_minutes(), 15.0);
        assert_eq!(p.recharge_minutes(), 90.0);
        assert_eq!(p.cycle().unwrap().rho(), 6.0);
    }

    #[test]
    fn invalid_profiles_are_rejected() {
        let bad = SensorProfile {
            battery: 0.0,
            ..SensorProfile::default()
        };
        assert!(!bad.is_valid());
        assert_eq!(bad.cycle(), Err(CycleError::NonPositiveDuration));
        let overeff = SensorProfile {
            solar_eff: 1.5,
            ..SensorProfile::default()
        };
        assert!(!overeff.is_valid());
        let err = Fleet::new(vec![SensorProfile::default(), bad]).unwrap_err();
        assert_eq!(
            err,
            FleetError::BadProfile {
                sensor: 1,
                source: CycleError::NonPositiveDuration
            }
        );
        assert!(err.to_string().contains("sensor 1"));
    }

    #[test]
    fn empty_fleet_is_rejected() {
        assert_eq!(Fleet::new(vec![]), Err(FleetError::EmptyFleet));
        assert_eq!(Fleet::from_cycles(vec![]), Err(FleetError::EmptyFleet));
    }

    #[test]
    fn uniform_fleet_grid_is_the_homogeneous_slot_structure() {
        for cycle in [
            ChargeCycle::paper_sunny(),
            ChargeCycle::from_minutes(40.0, 10.0).unwrap(),
            ChargeCycle::from_minutes(20.0, 20.0).unwrap(),
        ] {
            let fleet = Fleet::uniform_from_cycle(5, cycle).unwrap();
            assert_eq!(fleet.uniform_cycle(), Some(cycle));
            let grid = FleetGrid::build(&fleet).unwrap();
            assert_eq!(grid.tick_minutes(), cycle.slot_minutes());
            assert_eq!(grid.hyperperiod(), cycle.slots_per_period());
            for v in 0..5 {
                assert_eq!(grid.discharge_ticks(v), cycle.active_slots_per_period());
                assert_eq!(grid.recharge_ticks(v), cycle.passive_slots_per_period());
                // Bitwise: the homogeneous reduction depends on exact equality.
                assert_eq!(grid.need_per_tick(v), cycle.discharge_fraction_per_slot());
                assert_eq!(grid.refill_per_tick(v), cycle.recharge_fraction_per_slot());
            }
        }
    }

    #[test]
    fn mixed_capacity_grid() {
        // Battery 30 vs 60 Wh at identical currents: (15,45) and (30,90).
        let fleet = Fleet::new(vec![
            SensorProfile::default(),
            SensorProfile {
                battery: 60.0,
                ..SensorProfile::default()
            },
        ])
        .unwrap();
        assert!(fleet.uniform_cycle().is_none());
        let grid = FleetGrid::build(&fleet).unwrap();
        assert_eq!(grid.tick_minutes(), 15.0);
        assert_eq!((grid.discharge_ticks(0), grid.recharge_ticks(0)), (1, 3));
        assert_eq!((grid.discharge_ticks(1), grid.recharge_ticks(1)), (2, 6));
        assert_eq!(grid.hyperperiod(), 8);
        assert_eq!(grid.runs_per_hyperperiod(0), 2);
        assert_eq!(grid.runs_per_hyperperiod(1), 1);
        assert_eq!(grid.need_per_tick(1), 0.5);
        assert_eq!(grid.refill_per_tick(1), 1.0 / 6.0);
    }

    #[test]
    fn active_at_traces_the_periodic_run() {
        let fleet = Fleet::uniform_from_cycle(1, ChargeCycle::paper_sunny()).unwrap();
        let grid = FleetGrid::build(&fleet).unwrap();
        // d=1, r=3, P=4; phase 2 → active at ticks 2, 6, 10, …
        let active: Vec<usize> = (0..8).filter(|&t| grid.active_at(0, 2, t)).collect();
        assert_eq!(active, [2, 6]);
    }

    #[test]
    fn coprime_periods_overflow_the_hyperperiod_cap() {
        // Periods 3, 5, 7, 11, 13 ticks → lcm 15015 > 4096.
        let cycles: Vec<ChargeCycle> = [2.0, 4.0, 6.0, 10.0, 12.0]
            .iter()
            .map(|&r| ChargeCycle::from_minutes(1.0, r).unwrap())
            .collect();
        let fleet = Fleet::from_cycles(cycles).unwrap();
        let err = FleetGrid::build(&fleet).unwrap_err();
        assert!(matches!(err, FleetError::HyperperiodTooLarge { ticks } if ticks > 4096));
        assert!(err.to_string().contains("4096"));
    }

    #[test]
    fn tick_round_trip() {
        let fleet = Fleet::uniform_from_cycle(2, ChargeCycle::paper_sunny()).unwrap();
        let grid = FleetGrid::build(&fleet).unwrap();
        assert_eq!(grid.minutes_to_ticks(grid.ticks_to_minutes(7)), Some(7));
        assert_eq!(grid.minutes_to_ticks(7.5), None, "off-boundary minute");
    }

    proptest! {
        /// Lossless embedding: every sensor's own slot boundaries land on
        /// grid ticks exactly (refine), and coarsening the grid pattern
        /// back recovers the same active/passive intervals — each sensor
        /// is active in H/P_v maximal runs of exactly d_v ticks, totalling
        /// d_v·H/P_v active ticks per hyperperiod.
        #[test]
        fn grid_embeds_slot_boundaries_losslessly(
            specs in proptest::collection::vec(
                (1usize..=4, any::<bool>(), 1usize..=3),
                1..5,
            ),
            phase_seed in any::<u64>(),
        ) {
            let cycles: Vec<ChargeCycle> = specs
                .iter()
                .map(|&(ratio, invert, slot_scale)| {
                    let rho = if invert { 1.0 / ratio as f64 } else { ratio as f64 };
                    ChargeCycle::from_rho(rho, 5.0 * slot_scale as f64).unwrap()
                })
                .collect();
            let fleet = Fleet::from_cycles(cycles.clone()).unwrap();
            // Coprime-period draws can exceed the hyperperiod cap; that
            // rejection path has its own unit test, so skip those here.
            let Ok(grid) = FleetGrid::build(&fleet) else { return };
            let h = grid.hyperperiod();
            for (v, cycle) in cycles.iter().enumerate() {
                // Refine: the sensor's own slot boundaries are grid ticks.
                let d = grid.discharge_ticks(v);
                let r = grid.recharge_ticks(v);
                prop_assert!((d as f64 * grid.tick_minutes() - cycle.discharge_minutes()).abs()
                    < 1e-6 * cycle.discharge_minutes());
                prop_assert!((r as f64 * grid.tick_minutes() - cycle.recharge_minutes()).abs()
                    < 1e-6 * cycle.recharge_minutes());
                prop_assert_eq!(
                    grid.minutes_to_ticks(cycle.slot_minutes() * 2.0),
                    Some(if cycle.rho() >= 1.0 { 2 * d } else { 2 * r })
                );
                // Coarsen: the periodic pattern over one hyperperiod is
                // H/P_v runs of exactly d_v consecutive active ticks.
                let p = grid.period_ticks(v);
                prop_assert_eq!(h % p, 0, "hyperperiod must cover whole periods");
                let phase = (phase_seed as usize).wrapping_mul(v + 1) % p;
                let pattern: Vec<bool> =
                    (0..h).map(|t| grid.active_at(v, phase, t)).collect();
                let active = pattern.iter().filter(|&&a| a).count();
                prop_assert_eq!(active, d * (h / p));
                // Every maximal cyclic run has length exactly d_v.
                let doubled: Vec<bool> = pattern.iter().chain(pattern.iter()).copied().collect();
                let mut t = 0;
                while t < doubled.len() {
                    if doubled[t] && (t == 0 || !doubled[t - 1]) {
                        let mut len = 0;
                        while t + len < doubled.len() && doubled[t + len] {
                            len += 1;
                        }
                        if t > 0 && t + len < doubled.len() {
                            prop_assert_eq!(len, d, "run at tick {} of sensor {}", t, v);
                        }
                        t += len;
                    } else {
                        t += 1;
                    }
                }
            }
        }
    }
}
