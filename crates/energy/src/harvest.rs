//! Solar harvesting: irradiance → light strength → charging voltage.
//!
//! Substitutes the paper's rooftop measurement campaign (§VI-A, Fig. 7).
//! The paper's key empirical observations, which this model reproduces:
//!
//! 1. "within one day, the light strength varies significantly";
//! 2. "the charging voltage almost remains at the same level as long as it
//!    starts to harvest the energy" — because the charge controller
//!    saturates at the battery's charge-acceptance current well below the
//!    clear-sky panel output;
//! 3. consequently `T_r` (and thus `ρ`) is stable within ≈2-hour windows on
//!    a sunny day.
//!
//! [`SolarDay`] is the clear-sky diurnal irradiance curve, [`SolarCell`]
//! converts light to charging current, and [`HarvestTrace`] samples a full
//! day of (light, voltage, charge-rate) tuples at a fixed cadence — the raw
//! material for Fig. 7 and for pattern estimation ([`crate::profile`]).

use crate::Weather;
use rand::Rng;
use std::fmt;

/// Clear-sky diurnal irradiance: zero before sunrise and after sunset, a
/// half-sine in between peaking at `peak_wm2` W/m².
///
/// # Examples
///
/// ```
/// use cool_energy::SolarDay;
///
/// let day = SolarDay::default(); // 06:00–19:00, 1000 W/m² peak
/// assert_eq!(day.clear_sky_irradiance(5.0 * 60.0), 0.0);
/// let noonish = day.clear_sky_irradiance(12.5 * 60.0);
/// assert!((noonish - 1000.0).abs() < 1.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolarDay {
    sunrise_minute: f64,
    sunset_minute: f64,
    peak_wm2: f64,
}

impl SolarDay {
    /// Creates a solar day.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ sunrise < sunset ≤ 1440` and `peak_wm2 > 0`.
    pub fn new(sunrise_minute: f64, sunset_minute: f64, peak_wm2: f64) -> Self {
        assert!(
            (0.0..1440.0).contains(&sunrise_minute)
                && sunrise_minute < sunset_minute
                && sunset_minute <= 1440.0,
            "need 0 <= sunrise < sunset <= 1440, got {sunrise_minute}..{sunset_minute}"
        );
        assert!(
            peak_wm2.is_finite() && peak_wm2 > 0.0,
            "peak must be positive"
        );
        SolarDay {
            sunrise_minute,
            sunset_minute,
            peak_wm2,
        }
    }

    /// Minute of sunrise since midnight.
    pub fn sunrise_minute(&self) -> f64 {
        self.sunrise_minute
    }

    /// Minute of sunset since midnight.
    pub fn sunset_minute(&self) -> f64 {
        self.sunset_minute
    }

    /// Clear-sky irradiance (W/m²) at `minute` since midnight.
    pub fn clear_sky_irradiance(&self, minute: f64) -> f64 {
        if minute < self.sunrise_minute || minute > self.sunset_minute {
            return 0.0;
        }
        let phase = (minute - self.sunrise_minute) / (self.sunset_minute - self.sunrise_minute);
        self.peak_wm2 * (std::f64::consts::PI * phase).sin().max(0.0)
    }
}

impl Default for SolarDay {
    /// A mid-July day: sunrise 06:00, sunset 19:00, 1 kW/m² peak — matching
    /// the paper's July measurement dates.
    fn default() -> Self {
        SolarDay::new(6.0 * 60.0, 19.0 * 60.0, 1000.0)
    }
}

/// A small solar cell with a saturating charge controller, TelosB-style.
///
/// Converts irradiance to charging current; the controller clips at
/// `max_charge_current_ma`, which produces the voltage plateau the paper
/// observes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolarCell {
    area_cm2: f64,
    efficiency: f64,
    max_charge_current_ma: f64,
    battery_nominal_v: f64,
}

impl SolarCell {
    /// Creates a cell.
    ///
    /// # Panics
    ///
    /// Panics for non-positive area/efficiency/current/voltage or
    /// efficiency > 1.
    pub fn new(
        area_cm2: f64,
        efficiency: f64,
        max_charge_current_ma: f64,
        battery_nominal_v: f64,
    ) -> Self {
        assert!(area_cm2 > 0.0, "area must be positive");
        assert!(
            (0.0..=1.0).contains(&efficiency) && efficiency > 0.0,
            "efficiency in (0, 1]"
        );
        assert!(max_charge_current_ma > 0.0, "max current must be positive");
        assert!(battery_nominal_v > 0.0, "voltage must be positive");
        SolarCell {
            area_cm2,
            efficiency,
            max_charge_current_ma,
            battery_nominal_v,
        }
    }

    /// Raw panel current (mA) under `irradiance_wm2`, before the controller.
    pub fn panel_current_ma(&self, irradiance_wm2: f64) -> f64 {
        // P = G·A·η; I = P/V. Area in cm² → m².
        let power_w = irradiance_wm2 * self.area_cm2 * 1e-4 * self.efficiency;
        power_w / self.battery_nominal_v * 1000.0
    }

    /// Charging current (mA) after the saturating controller.
    pub fn charging_current_ma(&self, irradiance_wm2: f64) -> f64 {
        self.panel_current_ma(irradiance_wm2)
            .min(self.max_charge_current_ma)
    }

    /// Charging voltage (V) the measurement node observes: near-nominal
    /// whenever the controller is delivering appreciable current, trailing
    /// off with light at dawn/dusk. This is the plateau of Fig. 7.
    pub fn charging_voltage(&self, irradiance_wm2: f64) -> f64 {
        let drive = self.charging_current_ma(irradiance_wm2) / self.max_charge_current_ma;
        // Hard knee: rises very steeply with the first usable light, then
        // flat — the plateau the paper measures.
        self.battery_nominal_v * (1.1 * drive.min(1.0)).min(1.0).powf(0.05)
    }

    /// The smallest irradiance at which the controller saturates (the
    /// voltage plateau begins).
    pub fn saturation_irradiance_wm2(&self) -> f64 {
        self.max_charge_current_ma * self.battery_nominal_v
            / (self.area_cm2 * 1e-4 * self.efficiency)
            / 1000.0
    }
}

impl Default for SolarCell {
    /// Matches the testbed hardware scale: a ~25 cm² cell at 10% efficiency
    /// feeding a 2.5 V supercap-backed TelosB at ≤ 40 mA — it saturates near
    /// 400 W/m². A sunny day (1 kW/m² peak) then charges at the plateau for
    /// most of the daylight hours (the stable pattern of Fig. 7), while an
    /// overcast day (≤ 250 W/m²) never saturates and recharges markedly
    /// slower — which is why the paper selects a different pattern per
    /// weather condition.
    fn default() -> Self {
        SolarCell::new(25.0, 0.10, 40.0, 2.5)
    }
}

/// One sample of a harvest trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HarvestSample {
    /// Minute since midnight.
    pub minute: f64,
    /// Light strength (W/m²) after weather attenuation and flicker.
    pub light_wm2: f64,
    /// Charging voltage (V).
    pub voltage: f64,
    /// Charging current (mA).
    pub charge_current_ma: f64,
}

/// Configuration for generating a day-long harvest trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HarvestConfig {
    /// The clear-sky curve.
    pub day: SolarDay,
    /// The cell + controller.
    pub cell: SolarCell,
    /// The day's weather.
    pub weather: Weather,
    /// Sampling cadence in minutes.
    pub sample_minutes: f64,
}

impl Default for HarvestConfig {
    fn default() -> Self {
        HarvestConfig {
            day: SolarDay::default(),
            cell: SolarCell::default(),
            weather: Weather::Sunny,
            sample_minutes: 1.0,
        }
    }
}

/// A day of light/voltage/current samples for one node — the substance of
/// Fig. 7.
///
/// # Examples
///
/// ```
/// use cool_energy::{HarvestConfig, HarvestTrace};
/// use cool_common::SeedSequence;
///
/// let trace = HarvestTrace::generate(HarvestConfig::default(),
///                                    &mut SeedSequence::new(1).nth_rng(5));
/// assert_eq!(trace.samples().len(), 1440);
/// // Light varies a lot; voltage barely moves while harvesting.
/// assert!(trace.light_relative_spread() > 0.5);
/// assert!(trace.daytime_voltage_relative_spread() < 0.1);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct HarvestTrace {
    config: HarvestConfig,
    samples: Vec<HarvestSample>,
}

impl HarvestTrace {
    /// Generates a full-day trace (midnight to midnight).
    ///
    /// Flicker is a bounded multiplicative AR(1) process — cloud shadows are
    /// correlated minute-to-minute, not white noise.
    pub fn generate<R: Rng + ?Sized>(config: HarvestConfig, rng: &mut R) -> Self {
        assert!(
            config.sample_minutes > 0.0,
            "sample cadence must be positive"
        );
        let n = (1440.0 / config.sample_minutes).floor() as usize;
        let mut samples = Vec::with_capacity(n);
        let mut flicker_state = 0.0f64;
        let amplitude = config.weather.flicker();
        for k in 0..n {
            let minute = k as f64 * config.sample_minutes;
            let clear = config.day.clear_sky_irradiance(minute);
            // AR(1): x ← 0.9x + ε, bounded to ±1.
            flicker_state = (0.9 * flicker_state + rng.random_range(-0.3..0.3)).clamp(-1.0, 1.0);
            let factor =
                (config.weather.attenuation() * (1.0 + amplitude * flicker_state)).max(0.0);
            let light = clear * factor;
            samples.push(HarvestSample {
                minute,
                light_wm2: light,
                voltage: config.cell.charging_voltage(light),
                charge_current_ma: config.cell.charging_current_ma(light),
            });
        }
        HarvestTrace { config, samples }
    }

    /// Wraps externally measured samples (e.g. parsed from a testbed log)
    /// so they can flow through the same estimation pipeline as generated
    /// traces. `config` supplies the daylight window the estimator uses.
    ///
    /// # Panics
    ///
    /// Panics if samples are empty, not in increasing time order, or
    /// contain negative/non-finite readings.
    pub fn from_samples(config: HarvestConfig, samples: Vec<HarvestSample>) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        assert!(
            samples.windows(2).all(|w| w[0].minute < w[1].minute),
            "samples must be strictly increasing in time"
        );
        assert!(
            samples.iter().all(|s| {
                s.minute.is_finite()
                    && s.light_wm2.is_finite()
                    && s.light_wm2 >= 0.0
                    && s.voltage.is_finite()
                    && s.voltage >= 0.0
                    && s.charge_current_ma.is_finite()
                    && s.charge_current_ma >= 0.0
            }),
            "sample readings must be non-negative and finite"
        );
        HarvestTrace { config, samples }
    }

    /// Serialises the trace as CSV
    /// (`minute,light_wm2,voltage,charge_current_ma`).
    ///
    /// # Examples
    ///
    /// ```
    /// use cool_energy::{HarvestConfig, HarvestTrace};
    /// use cool_common::SeedSequence;
    ///
    /// let trace = HarvestTrace::generate(HarvestConfig::default(),
    ///                                    &mut SeedSequence::new(1).nth_rng(0));
    /// let csv = trace.to_csv();
    /// let back = HarvestTrace::from_csv(HarvestConfig::default(), &csv).unwrap();
    /// assert_eq!(back.samples().len(), trace.samples().len());
    /// ```
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("minute,light_wm2,voltage,charge_current_ma\n");
        for s in &self.samples {
            let _ = writeln!(
                out,
                "{},{},{},{}",
                s.minute, s.light_wm2, s.voltage, s.charge_current_ma
            );
        }
        out
    }

    /// Parses a trace from the CSV format written by
    /// [`HarvestTrace::to_csv`] (header required).
    ///
    /// # Errors
    ///
    /// Returns [`TraceParseError`] describing the first offending line.
    pub fn from_csv(config: HarvestConfig, csv: &str) -> Result<Self, TraceParseError> {
        let mut lines = csv.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header.trim() == "minute,light_wm2,voltage,charge_current_ma" => {}
            _ => {
                return Err(TraceParseError {
                    line: 1,
                    reason: "missing or wrong header".into(),
                })
            }
        }
        let mut samples = Vec::new();
        for (idx, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split(',');
            let mut next_f64 = |name: &str| -> Result<f64, TraceParseError> {
                fields
                    .next()
                    .ok_or_else(|| TraceParseError {
                        line: idx + 1,
                        reason: format!("missing field {name}"),
                    })?
                    .trim()
                    .parse()
                    .map_err(|_| TraceParseError {
                        line: idx + 1,
                        reason: format!("unparseable {name}"),
                    })
            };
            let sample = HarvestSample {
                minute: next_f64("minute")?,
                light_wm2: next_f64("light_wm2")?,
                voltage: next_f64("voltage")?,
                charge_current_ma: next_f64("charge_current_ma")?,
            };
            if !sample.minute.is_finite()
                || sample.light_wm2 < 0.0
                || sample.voltage < 0.0
                || sample.charge_current_ma < 0.0
            {
                return Err(TraceParseError {
                    line: idx + 1,
                    reason: "negative or non-finite reading".into(),
                });
            }
            if let Some(last) = samples.last() {
                let last: &HarvestSample = last;
                if sample.minute <= last.minute {
                    return Err(TraceParseError {
                        line: idx + 1,
                        reason: "time going backwards".into(),
                    });
                }
            }
            samples.push(sample);
        }
        if samples.is_empty() {
            return Err(TraceParseError {
                line: 1,
                reason: "no samples".into(),
            });
        }
        Ok(HarvestTrace { config, samples })
    }

    /// The generating configuration.
    pub fn config(&self) -> &HarvestConfig {
        &self.config
    }

    /// The samples, in time order.
    pub fn samples(&self) -> &[HarvestSample] {
        &self.samples
    }

    /// Relative spread `(max − min)/max` of light strength over the daylight
    /// window — large, per the paper's observation 1.
    pub fn light_relative_spread(&self) -> f64 {
        let daylight: Vec<f64> = self.daylight_samples().map(|s| s.light_wm2).collect();
        relative_spread(&daylight)
    }

    /// Relative spread of charging voltage over the *harvesting* window
    /// (samples with meaningful current) — small, per observation 2.
    pub fn daytime_voltage_relative_spread(&self) -> f64 {
        let harvesting: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.charge_current_ma > 0.2 * self.config.cell.max_current_hint())
            .map(|s| s.voltage)
            .collect();
        relative_spread(&harvesting)
    }

    /// Mean charging current over the day (mA) — proportional to `1/T_r`.
    pub fn mean_charge_current_ma(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|s| s.charge_current_ma)
            .sum::<f64>()
            / self.samples.len() as f64
    }

    fn daylight_samples(&self) -> impl Iterator<Item = &HarvestSample> {
        self.samples.iter().filter(|s| {
            s.minute >= self.config.day.sunrise_minute()
                && s.minute <= self.config.day.sunset_minute()
        })
    }
}

impl SolarCell {
    fn max_current_hint(&self) -> f64 {
        self.max_charge_current_ma
    }
}

/// Error parsing a harvest-trace CSV.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace CSV line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceParseError {}

fn relative_spread(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    if max <= 0.0 {
        0.0
    } else {
        (max - min) / max
    }
}

impl fmt::Display for HarvestSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={:.0}min light={:.1}W/m² V={:.3}V I={:.2}mA",
            self.minute, self.light_wm2, self.voltage, self.charge_current_ma
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::SeedSequence;

    fn rng() -> rand::rngs::StdRng {
        SeedSequence::new(77).nth_rng(0)
    }

    #[test]
    fn irradiance_is_zero_at_night_and_peaks_at_noonish() {
        let day = SolarDay::default();
        assert_eq!(day.clear_sky_irradiance(0.0), 0.0);
        assert_eq!(day.clear_sky_irradiance(1439.0), 0.0);
        let mid = f64::midpoint(day.sunrise_minute(), day.sunset_minute());
        assert!((day.clear_sky_irradiance(mid) - 1000.0).abs() < 1e-9);
        assert!(day.clear_sky_irradiance(mid - 120.0) < 1000.0);
    }

    #[test]
    #[should_panic(expected = "sunrise")]
    fn inverted_day_panics() {
        let _ = SolarDay::new(1200.0, 600.0, 1000.0);
    }

    #[test]
    fn controller_saturates_between_overcast_and_sunny_levels() {
        let cell = SolarCell::default();
        let sat = cell.saturation_irradiance_wm2();
        assert!(
            sat > 250.0 && sat < 1000.0,
            "saturation at {sat} W/m² should sit between overcast peak and clear-sky peak"
        );
        assert_eq!(
            cell.charging_current_ma(1000.0),
            cell.charging_current_ma(500.0),
            "plateau: current equal at 500 and 1000 W/m²"
        );
    }

    #[test]
    fn voltage_plateau_on_sunny_day() {
        let trace = HarvestTrace::generate(HarvestConfig::default(), &mut rng());
        assert!(
            trace.light_relative_spread() > 0.5,
            "light varies significantly"
        );
        assert!(
            trace.daytime_voltage_relative_spread() < 0.1,
            "voltage stays level while harvesting: spread {}",
            trace.daytime_voltage_relative_spread()
        );
    }

    #[test]
    fn rainy_day_harvests_much_less() {
        let sunny = HarvestTrace::generate(HarvestConfig::default(), &mut rng());
        let rainy = HarvestTrace::generate(
            HarvestConfig {
                weather: Weather::Rainy,
                ..HarvestConfig::default()
            },
            &mut rng(),
        );
        assert!(
            rainy.mean_charge_current_ma() < 0.5 * sunny.mean_charge_current_ma(),
            "rainy {} vs sunny {}",
            rainy.mean_charge_current_ma(),
            sunny.mean_charge_current_ma()
        );
    }

    #[test]
    fn trace_cadence_and_determinism() {
        let cfg = HarvestConfig {
            sample_minutes: 5.0,
            ..HarvestConfig::default()
        };
        let a = HarvestTrace::generate(cfg, &mut rng());
        let b = HarvestTrace::generate(cfg, &mut rng());
        assert_eq!(a, b, "same seed, same trace");
        assert_eq!(a.samples().len(), 288);
        assert!((a.samples()[1].minute - 5.0).abs() < 1e-12);
    }

    #[test]
    fn light_is_never_negative() {
        for weather in Weather::ALL {
            let trace = HarvestTrace::generate(
                HarvestConfig {
                    weather,
                    ..HarvestConfig::default()
                },
                &mut rng(),
            );
            assert!(trace.samples().iter().all(|s| s.light_wm2 >= 0.0));
            assert!(trace.samples().iter().all(|s| s.charge_current_ma >= 0.0));
        }
    }

    #[test]
    fn csv_round_trip_preserves_samples() {
        let trace = HarvestTrace::generate(HarvestConfig::default(), &mut rng());
        let csv = trace.to_csv();
        let back = HarvestTrace::from_csv(HarvestConfig::default(), &csv).unwrap();
        assert_eq!(back.samples().len(), trace.samples().len());
        for (a, b) in trace.samples().iter().zip(back.samples()) {
            assert_eq!(a.minute, b.minute);
            assert!((a.light_wm2 - b.light_wm2).abs() < 1e-9);
            assert!((a.voltage - b.voltage).abs() < 1e-9);
        }
        // External trace flows through the estimator.
        let windows = crate::estimate_pattern(&back, 120.0, 30.0);
        assert!(!windows.is_empty());
    }

    #[test]
    fn csv_parse_errors_are_located() {
        let cfg = HarvestConfig::default();
        let err = HarvestTrace::from_csv(cfg, "bogus header\n1,2,3,4\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("header"));

        let err = HarvestTrace::from_csv(
            cfg,
            "minute,light_wm2,voltage,charge_current_ma\n0,1,2,3\n0,1,2,3\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.reason.contains("backwards"));

        let err = HarvestTrace::from_csv(
            cfg,
            "minute,light_wm2,voltage,charge_current_ma\n0,abc,2,3\n",
        )
        .unwrap_err();
        assert!(err.reason.contains("light_wm2"));

        let err = HarvestTrace::from_csv(cfg, "minute,light_wm2,voltage,charge_current_ma\n")
            .unwrap_err();
        assert!(err.reason.contains("no samples"));
    }

    #[test]
    fn from_samples_validates() {
        let cfg = HarvestConfig::default();
        let good = vec![
            HarvestSample {
                minute: 0.0,
                light_wm2: 1.0,
                voltage: 2.0,
                charge_current_ma: 3.0,
            },
            HarvestSample {
                minute: 1.0,
                light_wm2: 1.0,
                voltage: 2.0,
                charge_current_ma: 3.0,
            },
        ];
        let trace = HarvestTrace::from_samples(cfg, good);
        assert_eq!(trace.samples().len(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_samples_rejects_disorder() {
        let cfg = HarvestConfig::default();
        let bad = vec![
            HarvestSample {
                minute: 5.0,
                light_wm2: 1.0,
                voltage: 2.0,
                charge_current_ma: 3.0,
            },
            HarvestSample {
                minute: 1.0,
                light_wm2: 1.0,
                voltage: 2.0,
                charge_current_ma: 3.0,
            },
        ];
        let _ = HarvestTrace::from_samples(cfg, bad);
    }

    #[test]
    fn sample_display_is_nonempty() {
        let trace = HarvestTrace::generate(HarvestConfig::default(), &mut rng());
        assert!(trace.samples()[720].to_string().contains("W/m²"));
    }
}
