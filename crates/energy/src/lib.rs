//! Energy substrate for solar-powered sensor nodes.
//!
//! Implements the recharging/discharging model of §II-B of the paper plus
//! the measurement apparatus of §VI-A:
//!
//! * [`ChargeCycle`] — the slot algebra: discharge time `T_d`, recharge time
//!   `T_r`, ratio `ρ = T_r/T_d`, charging period `T = T_r + T_d`, and the
//!   normalisation of one time-slot to `T_d` (when `ρ > 1`) or `T_r`
//!   (when `ρ ≤ 1`) ([`slots`]);
//! * [`Battery`] and the three-state **active / passive / ready** machine
//!   ([`battery`], [`state`]);
//! * a solar harvesting model — diurnal irradiance, weather attenuation,
//!   solar cell and charge controller — that generates the light-strength /
//!   charging-voltage traces of Fig. 7 ([`harvest`], [`weather`]);
//! * charging-pattern estimation: recovering `(T_d, T_r, ρ)` from traces per
//!   2-hour window, as the paper does from its testbed measurements
//!   ([`profile`]);
//! * the random charging model of §V — Poisson event arrivals, exponential
//!   event durations, normally-distributed recharge times
//!   ([`random_model`]).
//!
//! # Examples
//!
//! ```
//! use cool_energy::ChargeCycle;
//!
//! // Sunny-day pattern measured in §VI-A: discharge 15 min, recharge 45 min.
//! let cycle = ChargeCycle::from_minutes(15.0, 45.0).unwrap();
//! assert_eq!(cycle.rho(), 3.0);
//! assert_eq!(cycle.slots_per_period(), 4);       // T = ρ + 1 slots
//! assert_eq!(cycle.slot_minutes(), 15.0);        // one slot = T_d
//! assert_eq!(cycle.slots_in_hours(12.0), 48);    // L = 12 h of 15-min slots
//! ```

pub mod battery;
pub mod fleet;
pub mod harvest;
pub mod profile;
pub mod random_model;
pub mod slots;
pub mod state;
pub mod weather;

pub use battery::Battery;
pub use fleet::{Fleet, FleetError, FleetGrid, SensorProfile};
pub use harvest::{
    HarvestConfig, HarvestSample, HarvestTrace, SolarCell, SolarDay, TraceParseError,
};
pub use profile::{
    core_window_stability, estimate_pattern, fit_pattern, ChargingPattern, WindowEstimate,
};
pub use random_model::RandomChargeModel;
pub use slots::{ChargeCycle, CycleError};
pub use state::{slot_transition, tick_transition, NodeEnergyMachine, NodeState, SlotOutcome};
pub use weather::{Weather, WeatherGenerator};
