//! Charging-pattern estimation (§VI-A).
//!
//! The paper's methodology: measure light/voltage traces per node, observe
//! that the charging rate is stable over short windows (≈ 2 hours), extract
//! the pattern `(T_d, T_r)` for the day's weather, and feed `ρ = T_r/T_d` to
//! the scheduler. This module reproduces that pipeline on
//! [`HarvestTrace`]s: per-window estimates of the
//! recharge time plus a stability check.

use crate::{ChargeCycle, CycleError, HarvestTrace};
use std::fmt;

/// An estimated charging pattern `(T_d, T_r)` with the derived ratio.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChargingPattern {
    /// Discharge time in minutes (a property of the node's consumption, not
    /// of the trace — supplied by the caller from hardware measurement).
    pub discharge_minutes: f64,
    /// Estimated recharge time in minutes.
    pub recharge_minutes: f64,
}

impl ChargingPattern {
    /// The ratio `ρ = T_r/T_d`.
    pub fn rho(&self) -> f64 {
        self.recharge_minutes / self.discharge_minutes
    }

    /// Rounds `ρ` (or `1/ρ`) to the nearest integer and builds the
    /// scheduler-ready [`ChargeCycle`], as the paper does when it sets
    /// `T_d = 15`, `T_r = 45` from noisy measurements.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the rounded ratio is degenerate (zero).
    pub fn quantize(&self) -> Result<ChargeCycle, CycleError> {
        let rho = self.rho();
        if rho >= 1.0 {
            ChargeCycle::from_rho(rho.round().max(1.0), self.discharge_minutes)
        } else {
            let inv = (1.0 / rho).round().max(1.0);
            ChargeCycle::from_rho(1.0 / inv, self.recharge_minutes)
        }
    }
}

impl fmt::Display for ChargingPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T_d={:.1}min, T_r={:.1}min (rho={:.2})",
            self.discharge_minutes,
            self.recharge_minutes,
            self.rho()
        )
    }
}

/// The estimate for one time window of a trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowEstimate {
    /// Window start, minutes since midnight.
    pub start_minute: f64,
    /// Window end, minutes since midnight.
    pub end_minute: f64,
    /// Mean charging current in the window (mA).
    pub mean_current_ma: f64,
    /// Estimated recharge time in minutes (∞ when no charging occurs).
    pub recharge_minutes: f64,
}

/// Estimates the recharge time per window of `window_minutes` across the
/// daylight portion of a trace.
///
/// The recharge time follows from charge balance: a battery of
/// `capacity_mah` refills in `capacity_mah / mean_current · 60` minutes.
///
/// # Panics
///
/// Panics if `window_minutes` or `capacity_mah` is not positive.
///
/// # Examples
///
/// ```
/// use cool_energy::{estimate_pattern, HarvestConfig, HarvestTrace};
/// use cool_common::SeedSequence;
///
/// let trace = HarvestTrace::generate(HarvestConfig::default(),
///                                    &mut SeedSequence::new(3).nth_rng(0));
/// let windows = estimate_pattern(&trace, 120.0, 30.0);
/// assert!(!windows.is_empty());
/// // Mid-day windows agree: the pattern is stable, as §VI-A observes.
/// ```
pub fn estimate_pattern(
    trace: &HarvestTrace,
    window_minutes: f64,
    capacity_mah: f64,
) -> Vec<WindowEstimate> {
    assert!(window_minutes > 0.0, "window must be positive");
    assert!(capacity_mah > 0.0, "capacity must be positive");
    let day = trace.config().day;
    let mut windows = Vec::new();
    let mut start = day.sunrise_minute();
    while start + window_minutes <= day.sunset_minute() + 1e-9 {
        let end = start + window_minutes;
        let in_window: Vec<f64> = trace
            .samples()
            .iter()
            .filter(|s| s.minute >= start && s.minute < end)
            .map(|s| s.charge_current_ma)
            .collect();
        let mean = if in_window.is_empty() {
            0.0
        } else {
            in_window.iter().sum::<f64>() / in_window.len() as f64
        };
        let recharge = if mean <= 0.0 {
            f64::INFINITY
        } else {
            capacity_mah / mean * 60.0
        };
        windows.push(WindowEstimate {
            start_minute: start,
            end_minute: end,
            mean_current_ma: mean,
            recharge_minutes: recharge,
        });
        start = end;
    }
    windows
}

/// Coefficient of variation of the recharge-time estimates across the
/// *core* daylight windows (those whose mean current is at least 70% of
/// the day's maximum — excluding dawn/dusk ramp windows) — the paper's "ρ almost remains at the same level within
/// 2 hours" claim quantified.
///
/// Returns `None` when fewer than two core windows exist.
pub fn core_window_stability(windows: &[WindowEstimate]) -> Option<f64> {
    let max_current = windows
        .iter()
        .map(|w| w.mean_current_ma)
        .fold(0.0, f64::max);
    let core: Vec<f64> = windows
        .iter()
        .filter(|w| w.mean_current_ma >= 0.7 * max_current && w.recharge_minutes.is_finite())
        .map(|w| w.recharge_minutes)
        .collect();
    if core.len() < 2 {
        return None;
    }
    let mean = core.iter().sum::<f64>() / core.len() as f64;
    let var = core.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (core.len() - 1) as f64;
    Some(var.sqrt() / mean)
}

/// Fits a single [`ChargingPattern`] for the day from the core windows.
///
/// `discharge_minutes` comes from consumption measurement (15 min for the
/// paper's nodes); the recharge time is the mean across core windows.
///
/// Returns `None` when the trace has no usable charging window.
pub fn fit_pattern(windows: &[WindowEstimate], discharge_minutes: f64) -> Option<ChargingPattern> {
    let max_current = windows
        .iter()
        .map(|w| w.mean_current_ma)
        .fold(0.0, f64::max);
    let core: Vec<f64> = windows
        .iter()
        .filter(|w| w.mean_current_ma >= 0.7 * max_current && w.recharge_minutes.is_finite())
        .map(|w| w.recharge_minutes)
        .collect();
    if core.is_empty() {
        return None;
    }
    Some(ChargingPattern {
        discharge_minutes,
        recharge_minutes: core.iter().sum::<f64>() / core.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HarvestConfig, Weather};
    use cool_common::SeedSequence;

    fn sunny_trace() -> HarvestTrace {
        HarvestTrace::generate(
            HarvestConfig::default(),
            &mut SeedSequence::new(9).nth_rng(0),
        )
    }

    #[test]
    fn two_hour_windows_cover_daylight() {
        let windows = estimate_pattern(&sunny_trace(), 120.0, 30.0);
        // 06:00–19:00 = 13 h → six full 2-h windows.
        assert_eq!(windows.len(), 6);
        assert_eq!(windows[0].start_minute, 360.0);
        assert_eq!(windows[5].end_minute, 360.0 + 6.0 * 120.0);
    }

    #[test]
    fn sunny_pattern_is_stable_within_windows() {
        let windows = estimate_pattern(&sunny_trace(), 120.0, 30.0);
        let cv = core_window_stability(&windows).expect("core windows exist");
        assert!(
            cv < 0.1,
            "recharge-time CV on a sunny day is small, got {cv}"
        );
    }

    #[test]
    fn fitted_pattern_quantizes_to_paper_cycle() {
        // Capacity chosen so T_r ≈ 45 min at the 40 mA plateau: 30 mAh.
        let windows = estimate_pattern(&sunny_trace(), 120.0, 30.0);
        let pattern = fit_pattern(&windows, 15.0).expect("fit succeeds");
        assert!(
            (pattern.recharge_minutes - 45.0).abs() < 5.0,
            "T_r ≈ 45 min, got {}",
            pattern.recharge_minutes
        );
        let cycle = pattern.quantize().expect("quantizes");
        assert_eq!(cycle, ChargeCycle::paper_sunny());
    }

    #[test]
    fn overcast_day_estimates_longer_recharge() {
        let overcast = HarvestTrace::generate(
            HarvestConfig {
                weather: Weather::Overcast,
                ..HarvestConfig::default()
            },
            &mut SeedSequence::new(9).nth_rng(1),
        );
        let sunny_fit = fit_pattern(&estimate_pattern(&sunny_trace(), 120.0, 30.0), 15.0).unwrap();
        let overcast_fit = fit_pattern(&estimate_pattern(&overcast, 120.0, 30.0), 15.0).unwrap();
        assert!(
            overcast_fit.recharge_minutes > 1.5 * sunny_fit.recharge_minutes,
            "overcast {} vs sunny {}",
            overcast_fit.recharge_minutes,
            sunny_fit.recharge_minutes
        );
    }

    #[test]
    fn quantize_handles_fast_recharge() {
        let p = ChargingPattern {
            discharge_minutes: 40.0,
            recharge_minutes: 10.3,
        };
        let c = p.quantize().unwrap();
        assert_eq!(c.rho(), 0.25);
        assert_eq!(c.recharge_minutes(), 10.3);
    }

    #[test]
    fn pattern_display_shows_rho() {
        let p = ChargingPattern {
            discharge_minutes: 15.0,
            recharge_minutes: 45.0,
        };
        assert!(p.to_string().contains("rho=3.00"));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = estimate_pattern(&sunny_trace(), 0.0, 30.0);
    }

    #[test]
    fn stability_none_for_single_window() {
        let windows = estimate_pattern(&sunny_trace(), 700.0, 30.0);
        assert!(windows.len() <= 1);
        assert!(core_window_stability(&windows).is_none());
    }
}
