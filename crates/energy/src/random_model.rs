//! The random charging model of §V.
//!
//! "In some cases, the discharging time is not a fixed value. Instead, it is
//! a variable depending on some random events that happen with some
//! probability distribution, such as Poisson arrival with a rate λ_a. For
//! each event, assume the time duration follows the exponential distribution
//! with the mean duration λ_d. […] the mean discharging time T̄_d monitoring
//! the event is T_d/λ_a·λ_d. […] recharging time T_r may also be a random
//! variable […] follows the normal distribution with mean T̄_r."
//!
//! The effective ratio `ρ' = T̄_r/T̄_d` feeds the LP-based scheduler
//! unchanged (the paper leaves the greedy extension as future work; see
//! `cool-core`'s stochastic evaluation harness for the empirical study).

use rand::Rng;
use std::fmt;

/// Parameters of the §V stochastic charging model.
///
/// # Examples
///
/// ```
/// use cool_energy::RandomChargeModel;
///
/// // Events arrive 0.2/min lasting 2 min on average: duty factor 0.4.
/// let model = RandomChargeModel::new(15.0, 0.2, 2.0, 45.0, 5.0).unwrap();
/// assert!((model.duty_factor() - 0.4).abs() < 1e-12);
/// assert!((model.mean_discharge_minutes() - 37.5).abs() < 1e-12);
/// assert!((model.rho_prime() - 1.2).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RandomChargeModel {
    continuous_discharge_minutes: f64,
    arrival_rate_per_minute: f64,
    mean_event_minutes: f64,
    mean_recharge_minutes: f64,
    recharge_std_minutes: f64,
}

/// Error constructing a [`RandomChargeModel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidModelError;

impl fmt::Display for InvalidModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "random charge model parameters must be positive and finite (std may be zero)"
        )
    }
}

impl std::error::Error for InvalidModelError {}

impl RandomChargeModel {
    /// Creates a model.
    ///
    /// * `continuous_discharge_minutes` — `T_d`, the battery life under
    ///   continuous sensing;
    /// * `arrival_rate_per_minute` — Poisson rate `λ_a`;
    /// * `mean_event_minutes` — mean exponential event duration `λ_d`;
    /// * `mean_recharge_minutes`, `recharge_std_minutes` — the Normal
    ///   recharge time `T_r`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidModelError`] for non-positive/non-finite parameters
    /// (the standard deviation may be zero).
    pub fn new(
        continuous_discharge_minutes: f64,
        arrival_rate_per_minute: f64,
        mean_event_minutes: f64,
        mean_recharge_minutes: f64,
        recharge_std_minutes: f64,
    ) -> Result<Self, InvalidModelError> {
        let positive = [
            continuous_discharge_minutes,
            arrival_rate_per_minute,
            mean_event_minutes,
            mean_recharge_minutes,
        ];
        if positive.iter().any(|x| !x.is_finite() || *x <= 0.0)
            || !recharge_std_minutes.is_finite()
            || recharge_std_minutes < 0.0
        {
            return Err(InvalidModelError);
        }
        Ok(RandomChargeModel {
            continuous_discharge_minutes,
            arrival_rate_per_minute,
            mean_event_minutes,
            mean_recharge_minutes,
            recharge_std_minutes,
        })
    }

    /// The battery life under continuous sensing, `T_d`, in minutes.
    pub fn continuous_discharge_minutes(&self) -> f64 {
        self.continuous_discharge_minutes
    }

    /// Poisson event arrival rate `λ_a` per minute.
    pub fn arrival_rate_per_minute(&self) -> f64 {
        self.arrival_rate_per_minute
    }

    /// Mean exponential event duration `λ_d` in minutes.
    pub fn mean_event_minutes(&self) -> f64 {
        self.mean_event_minutes
    }

    /// Standard deviation of the Normal recharge time, in minutes.
    pub fn recharge_std_minutes(&self) -> f64 {
        self.recharge_std_minutes
    }

    /// Long-run fraction of time the sensor is actively monitoring events
    /// (`λ_a · λ_d`, capped at 1 — beyond that events overlap and the sensor
    /// is saturated).
    pub fn duty_factor(&self) -> f64 {
        (self.arrival_rate_per_minute * self.mean_event_minutes).min(1.0)
    }

    /// The paper's `T̄_d = T_d / (λ_a · λ_d)`: wall-clock time to deplete a
    /// battery when energy drains only while monitoring events.
    pub fn mean_discharge_minutes(&self) -> f64 {
        self.continuous_discharge_minutes / self.duty_factor()
    }

    /// Mean recharge time `T̄_r`.
    pub fn mean_recharge_minutes(&self) -> f64 {
        self.mean_recharge_minutes
    }

    /// The effective ratio `ρ' = T̄_r / T̄_d` (§V) used by the LP scheduler.
    pub fn rho_prime(&self) -> f64 {
        self.mean_recharge_minutes / self.mean_discharge_minutes()
    }

    /// Samples a depletion time: wall-clock minutes until the battery is
    /// exhausted, accumulating drain only while monitoring events.
    ///
    /// Events arrive as a Poisson process at rate `λ_a` (inter-arrival gaps
    /// exponential with mean `1/λ_a`, measured start-to-start, so events may
    /// overlap — during overlap the sensing workload is proportional to the
    /// number of concurrent events). Total drain therefore accrues at
    /// long-run rate `λ_a·λ_d`, matching the paper's
    /// `T̄_d = T_d/(λ_a·λ_d)`.
    pub fn sample_discharge_minutes<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut wall = 0.0;
        let mut drained = 0.0;
        loop {
            // Next event start after an Exp(1/λ_a) start-to-start gap.
            wall += sample_exponential(rng, 1.0 / self.arrival_rate_per_minute);
            let duration = sample_exponential(rng, self.mean_event_minutes);
            let need = self.continuous_discharge_minutes - drained;
            if duration >= need {
                return wall + need;
            }
            drained += duration;
        }
    }

    /// Samples a recharge time: `max(Normal(T̄_r, σ), ε)`.
    pub fn sample_recharge_minutes<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let z = sample_standard_normal(rng);
        (self.mean_recharge_minutes + z * self.recharge_std_minutes).max(1e-6)
    }
}

impl fmt::Display for RandomChargeModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T_d={:.1}min λ_a={:.3}/min λ_d={:.1}min T_r~N({:.1},{:.1}) (rho'={:.2})",
            self.continuous_discharge_minutes,
            self.arrival_rate_per_minute,
            self.mean_event_minutes,
            self.mean_recharge_minutes,
            self.recharge_std_minutes,
            self.rho_prime()
        )
    }
}

fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.random_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::SeedSequence;

    fn model() -> RandomChargeModel {
        RandomChargeModel::new(15.0, 0.2, 2.0, 45.0, 5.0).unwrap()
    }

    #[test]
    fn derived_quantities() {
        let m = model();
        assert!((m.duty_factor() - 0.4).abs() < 1e-12);
        assert!((m.mean_discharge_minutes() - 37.5).abs() < 1e-12);
        assert!((m.rho_prime() - 45.0 / 37.5).abs() < 1e-12);
    }

    #[test]
    fn saturated_duty_caps_at_one() {
        let m = RandomChargeModel::new(15.0, 2.0, 5.0, 45.0, 0.0).unwrap();
        assert_eq!(m.duty_factor(), 1.0);
        assert_eq!(m.mean_discharge_minutes(), 15.0);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(RandomChargeModel::new(0.0, 1.0, 1.0, 1.0, 0.0).is_err());
        assert!(RandomChargeModel::new(1.0, -1.0, 1.0, 1.0, 0.0).is_err());
        assert!(RandomChargeModel::new(1.0, 1.0, 1.0, 1.0, -0.5).is_err());
        assert!(RandomChargeModel::new(1.0, 1.0, f64::NAN, 1.0, 0.0).is_err());
        assert!(RandomChargeModel::new(1.0, 1.0, 1.0, 1.0, 0.0).is_ok());
    }

    #[test]
    fn sampled_discharge_matches_fluid_mean_for_frequent_events() {
        // The paper's T̄_d = T_d/(λ_a·λ_d) is a fluid limit; it is accurate
        // when many events fit in one depletion (here T_d/λ_d = 75 events).
        let m = RandomChargeModel::new(15.0, 2.0, 0.2, 45.0, 5.0).unwrap();
        let mut rng = SeedSequence::new(21).nth_rng(0);
        let n = 4000;
        let mean: f64 = (0..n)
            .map(|_| m.sample_discharge_minutes(&mut rng))
            .sum::<f64>()
            / f64::from(n);
        let expected = m.mean_discharge_minutes();
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "sampled {mean} vs expected {expected}"
        );
    }

    #[test]
    fn sampled_discharge_shows_renewal_overshoot_for_rare_events() {
        // With few events per depletion (T_d/λ_d = 7.5) the renewal
        // overshoot biases the wall-clock depletion time above the fluid
        // value — documented behaviour, not a bug.
        let m = model();
        let mut rng = SeedSequence::new(23).nth_rng(0);
        let n = 4000;
        let mean: f64 = (0..n)
            .map(|_| m.sample_discharge_minutes(&mut rng))
            .sum::<f64>()
            / f64::from(n);
        let fluid = m.mean_discharge_minutes();
        assert!(
            mean > fluid,
            "overshoot raises the sampled mean: {mean} vs {fluid}"
        );
        assert!(
            mean < 1.4 * fluid,
            "but only by a bounded margin: {mean} vs {fluid}"
        );
    }

    #[test]
    fn sampled_recharge_matches_mean_and_is_positive() {
        let m = model();
        let mut rng = SeedSequence::new(22).nth_rng(0);
        let n = 4000;
        let samples: Vec<f64> = (0..n)
            .map(|_| m.sample_recharge_minutes(&mut rng))
            .collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / f64::from(n);
        assert!((mean - 45.0).abs() < 1.0, "sampled mean {mean}");
        let std =
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / f64::from(n - 1)).sqrt();
        assert!((std - 5.0).abs() < 0.5, "sampled std {std}");
    }

    #[test]
    fn error_display_is_meaningful() {
        let e = RandomChargeModel::new(0.0, 1.0, 1.0, 1.0, 0.0).unwrap_err();
        assert!(e.to_string().contains("positive"));
    }

    #[test]
    fn display_shows_rho_prime() {
        assert!(model().to_string().contains("rho'"));
    }
}
