//! The slot algebra of §II-B.
//!
//! Time is divided into equal slots; the paper normalises the slot length to
//! `T_d` when `ρ = T_r/T_d > 1` and to `T_r` when `ρ ≤ 1`, so that one
//! charging period `T = T_r + T_d` always spans an integer number of slots:
//! `ρ + 1` in the first case, `1 + 1/ρ` in the second (Fig. 2). For
//! simplicity of exposition the paper assumes `ρ` (or `1/ρ`) is an integer;
//! [`ChargeCycle`] enforces the same and exposes the derived quantities.

use std::fmt;

/// Error constructing a [`ChargeCycle`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CycleError {
    /// A duration was zero, negative, or not finite.
    NonPositiveDuration,
    /// Neither `ρ` nor `1/ρ` is an integer (within tolerance), so the period
    /// does not decompose into equal slots.
    NonIntegralRatio,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleError::NonPositiveDuration => {
                write!(
                    f,
                    "discharge and recharge times must be positive and finite"
                )
            }
            CycleError::NonIntegralRatio => {
                write!(
                    f,
                    "neither rho nor 1/rho is an integer, period does not slot evenly"
                )
            }
        }
    }
}

impl std::error::Error for CycleError {}

/// The charge/discharge cycle of a homogeneous solar-powered deployment:
/// `T_d`, `T_r`, `ρ = T_r/T_d`, `T = T_r + T_d`.
///
/// # Examples
///
/// ```
/// use cool_energy::ChargeCycle;
///
/// // Fast recharge (ρ ≤ 1): discharge 40 min, recharge 10 min → ρ = 1/4.
/// let cycle = ChargeCycle::from_minutes(40.0, 10.0)?;
/// assert_eq!(cycle.rho(), 0.25);
/// assert_eq!(cycle.slot_minutes(), 10.0);        // one slot = T_r
/// assert_eq!(cycle.slots_per_period(), 5);       // 1/ρ + 1
/// assert_eq!(cycle.active_slots_per_period(), 4);
/// assert_eq!(cycle.passive_slots_per_period(), 1);
/// # Ok::<(), cool_energy::CycleError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChargeCycle {
    discharge_minutes: f64,
    recharge_minutes: f64,
}

impl ChargeCycle {
    /// Tolerance for the "ρ is an integer" check, as a fraction of ρ.
    const RATIO_TOLERANCE: f64 = 1e-9;

    /// Creates a cycle from the discharge time `T_d` and recharge time `T_r`
    /// in minutes.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError::NonPositiveDuration`] for non-positive or
    /// non-finite inputs and [`CycleError::NonIntegralRatio`] when neither
    /// `T_r/T_d` nor `T_d/T_r` is an integer.
    pub fn from_minutes(discharge_minutes: f64, recharge_minutes: f64) -> Result<Self, CycleError> {
        let valid = discharge_minutes.is_finite()
            && discharge_minutes > 0.0
            && recharge_minutes.is_finite()
            && recharge_minutes > 0.0;
        if !valid {
            return Err(CycleError::NonPositiveDuration);
        }
        let rho = recharge_minutes / discharge_minutes;
        let ratio = if rho >= 1.0 { rho } else { 1.0 / rho };
        if (ratio - ratio.round()).abs() > Self::RATIO_TOLERANCE * ratio {
            return Err(CycleError::NonIntegralRatio);
        }
        Ok(ChargeCycle {
            discharge_minutes,
            recharge_minutes,
        })
    }

    /// Creates a cycle from `ρ` directly, with slot length `slot_minutes`.
    ///
    /// When `ρ ≥ 1` the slot is the discharge time (`T_d = slot`,
    /// `T_r = ρ·slot`); when `ρ < 1` the slot is the recharge time.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ChargeCycle::from_minutes`].
    ///
    /// # Examples
    ///
    /// ```
    /// use cool_energy::ChargeCycle;
    /// let c = ChargeCycle::from_rho(3.0, 15.0)?;
    /// assert_eq!(c.discharge_minutes(), 15.0);
    /// assert_eq!(c.recharge_minutes(), 45.0);
    /// # Ok::<(), cool_energy::CycleError>(())
    /// ```
    pub fn from_rho(rho: f64, slot_minutes: f64) -> Result<Self, CycleError> {
        let valid = rho.is_finite() && rho > 0.0 && slot_minutes.is_finite() && slot_minutes > 0.0;
        if !valid {
            return Err(CycleError::NonPositiveDuration);
        }
        if rho >= 1.0 {
            ChargeCycle::from_minutes(slot_minutes, rho * slot_minutes)
        } else {
            ChargeCycle::from_minutes(slot_minutes / rho, slot_minutes)
        }
    }

    /// The sunny-day pattern measured on the paper's testbed (§VI-A):
    /// `T_d = 15 min`, `T_r = 45 min`, so `ρ = 3`.
    pub fn paper_sunny() -> Self {
        match ChargeCycle::from_minutes(15.0, 45.0) {
            Ok(cycle) => cycle,
            Err(_) => unreachable!("paper constants are valid"),
        }
    }

    /// Discharge time `T_d` in minutes.
    pub fn discharge_minutes(&self) -> f64 {
        self.discharge_minutes
    }

    /// Recharge time `T_r` in minutes.
    pub fn recharge_minutes(&self) -> f64 {
        self.recharge_minutes
    }

    /// The ratio `ρ = T_r / T_d`.
    pub fn rho(&self) -> f64 {
        self.recharge_minutes / self.discharge_minutes
    }

    /// `true` when `ρ > 1` (recharging slower than discharging) — the case
    /// §IV-A schedules by choosing each sensor's single **active** slot.
    pub fn is_slow_recharge(&self) -> bool {
        self.rho() > 1.0
    }

    /// Charging period `T = T_r + T_d` in minutes.
    pub fn period_minutes(&self) -> f64 {
        self.discharge_minutes + self.recharge_minutes
    }

    /// Length of one normalised time slot in minutes: `T_d` if `ρ ≥ 1`,
    /// otherwise `T_r`.
    pub fn slot_minutes(&self) -> f64 {
        if self.rho() >= 1.0 {
            self.discharge_minutes
        } else {
            self.recharge_minutes
        }
    }

    /// Slots per charging period: `ρ + 1` when `ρ ≥ 1`, else `1/ρ + 1`.
    pub fn slots_per_period(&self) -> usize {
        let rho = self.rho();
        let ratio = if rho >= 1.0 { rho } else { 1.0 / rho };
        ratio.round() as usize + 1
    }

    /// Slots per period a sensor may be **active**: `1` when `ρ ≥ 1`,
    /// `1/ρ` otherwise.
    pub fn active_slots_per_period(&self) -> usize {
        if self.rho() >= 1.0 {
            1
        } else {
            self.slots_per_period() - 1
        }
    }

    /// Slots per period a sensor must be **passive** (recharging):
    /// `ρ` when `ρ ≥ 1`, else `1`.
    pub fn passive_slots_per_period(&self) -> usize {
        self.slots_per_period() - self.active_slots_per_period()
    }

    /// Number of whole slots in a working time of `hours` hours.
    ///
    /// The paper takes `L` to be a multiple of `T`; this helper truncates.
    pub fn slots_in_hours(&self, hours: f64) -> usize {
        (hours * 60.0 / self.slot_minutes()).floor() as usize
    }

    /// Number of whole periods `α` such that `L = αT` fits in `hours`.
    pub fn periods_in_hours(&self, hours: f64) -> usize {
        (hours * 60.0 / self.period_minutes()).floor() as usize
    }

    /// Energy drawn from a full battery per active slot, as a fraction of
    /// battery capacity: `1/active_slots_per_period`.
    ///
    /// With `ρ ≥ 1` an active slot drains the battery completely (`1.0`);
    /// with `ρ < 1` it drains `ρ` of it (the battery sustains `1/ρ` active
    /// slots).
    pub fn discharge_fraction_per_slot(&self) -> f64 {
        1.0 / self.active_slots_per_period() as f64
    }

    /// Energy restored per passive slot as a fraction of battery capacity:
    /// `1/passive_slots_per_period` (`ρ ≥ 1` ⇒ `1/ρ`; `ρ < 1` ⇒ `1.0`).
    pub fn recharge_fraction_per_slot(&self) -> f64 {
        1.0 / self.passive_slots_per_period() as f64
    }
}

impl fmt::Display for ChargeCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T_d={}min T_r={}min (rho={}, T={} slots of {}min)",
            self.discharge_minutes,
            self.recharge_minutes,
            self.rho(),
            self.slots_per_period(),
            self.slot_minutes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_sunny_constants() {
        let c = ChargeCycle::paper_sunny();
        assert_eq!(c.rho(), 3.0);
        assert_eq!(c.period_minutes(), 60.0);
        assert_eq!(c.slots_per_period(), 4);
        assert_eq!(c.active_slots_per_period(), 1);
        assert_eq!(c.passive_slots_per_period(), 3);
        // Paper example: L = 12 h → 720 min → 48 slots → 12 periods.
        assert_eq!(c.slots_in_hours(12.0), 48);
        assert_eq!(c.periods_in_hours(12.0), 12);
    }

    #[test]
    fn fast_recharge_case() {
        let c = ChargeCycle::from_minutes(30.0, 10.0).unwrap();
        assert_eq!(c.rho(), 1.0 / 3.0);
        assert!(!c.is_slow_recharge());
        assert_eq!(c.slot_minutes(), 10.0);
        assert_eq!(c.slots_per_period(), 4);
        assert_eq!(c.active_slots_per_period(), 3);
        assert_eq!(c.passive_slots_per_period(), 1);
        assert!((c.discharge_fraction_per_slot() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.recharge_fraction_per_slot(), 1.0);
    }

    #[test]
    fn rho_equal_one() {
        let c = ChargeCycle::from_minutes(20.0, 20.0).unwrap();
        assert_eq!(c.rho(), 1.0);
        assert!(!c.is_slow_recharge());
        assert_eq!(c.slots_per_period(), 2);
        assert_eq!(c.active_slots_per_period(), 1);
        assert_eq!(c.passive_slots_per_period(), 1);
    }

    #[test]
    fn from_rho_round_trips() {
        let c = ChargeCycle::from_rho(5.0, 15.0).unwrap();
        assert_eq!(c.discharge_minutes(), 15.0);
        assert_eq!(c.recharge_minutes(), 75.0);
        let c = ChargeCycle::from_rho(0.5, 10.0).unwrap();
        assert_eq!(c.recharge_minutes(), 10.0);
        assert_eq!(c.discharge_minutes(), 20.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            ChargeCycle::from_minutes(0.0, 10.0),
            Err(CycleError::NonPositiveDuration)
        );
        assert_eq!(
            ChargeCycle::from_minutes(10.0, f64::NAN),
            Err(CycleError::NonPositiveDuration)
        );
        assert_eq!(
            ChargeCycle::from_minutes(10.0, 25.0),
            Err(CycleError::NonIntegralRatio)
        );
        assert_eq!(
            ChargeCycle::from_rho(-1.0, 10.0),
            Err(CycleError::NonPositiveDuration)
        );
    }

    #[test]
    fn error_display_is_meaningful() {
        let e = ChargeCycle::from_minutes(10.0, 25.0).unwrap_err();
        assert!(e.to_string().contains("integer"));
    }

    proptest! {
        /// Fig. 2 identity: the period always decomposes into
        /// active + passive slots, and their durations sum to T.
        #[test]
        fn period_decomposes_into_slots(ratio in 1usize..20, slot in 1.0f64..120.0, invert in any::<bool>()) {
            let rho = if invert { 1.0 / ratio as f64 } else { ratio as f64 };
            let c = ChargeCycle::from_rho(rho, slot).unwrap();
            prop_assert_eq!(
                c.active_slots_per_period() + c.passive_slots_per_period(),
                c.slots_per_period()
            );
            let total = c.slots_per_period() as f64 * c.slot_minutes();
            prop_assert!((total - c.period_minutes()).abs() < 1e-6 * c.period_minutes());
            // Energy balance: a period's worth of activity exactly drains and
            // refills the battery.
            let drained = c.active_slots_per_period() as f64 * c.discharge_fraction_per_slot();
            let refilled = c.passive_slots_per_period() as f64 * c.recharge_fraction_per_slot();
            prop_assert!((drained - 1.0).abs() < 1e-9);
            prop_assert!((refilled - 1.0).abs() < 1e-9);
        }
    }
}
