//! The three-state node lifecycle of §II-B.
//!
//! > "Each sensor could be in one of three states at each time instant:
//! > active, passive and ready. In the active state the sensor is powered on
//! > […] and consumes its energy gradually. Once the energy of a sensor node
//! > is used up, it will enter the passive state and be recharged without
//! > any other operations. When its battery is fully charged, the sensor
//! > enters the ready state. Sensors in ready state do not participate in
//! > sensing […] the energy level of a sensor in the ready state does not
//! > change."
//!
//! [`NodeEnergyMachine`] advances one node through whole slots under a
//! [`ChargeCycle`]; activation requests are honoured only
//! in the **ready** state (the paper activates only fully-charged nodes).

use crate::{Battery, ChargeCycle};
use std::fmt;

/// The lifecycle state of a node at a slot boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeState {
    /// Powered on: sensing/communicating/computing, draining energy.
    Active,
    /// Depleted: recharging, no operations.
    Passive,
    /// Fully charged and waiting to be activated; energy level unchanged
    /// (the ready-state drain is negligible per the paper).
    Ready,
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeState::Active => "active",
            NodeState::Passive => "passive",
            NodeState::Ready => "ready",
        };
        f.write_str(s)
    }
}

/// Per-node battery + state machine stepping in whole slots.
///
/// # Examples
///
/// ```
/// use cool_energy::{ChargeCycle, NodeEnergyMachine, NodeState};
///
/// let cycle = ChargeCycle::paper_sunny(); // ρ = 3, 4 slots per period
/// let mut node = NodeEnergyMachine::new(cycle);
/// assert_eq!(node.state(), NodeState::Ready);
///
/// // Activate for one slot: with ρ ≥ 1 that drains the battery.
/// assert!(node.step(true));
/// assert_eq!(node.state(), NodeState::Passive);
///
/// // Three passive slots recharge it back to ready.
/// for _ in 0..3 {
///     assert!(!node.step(true)); // activation refused while passive
/// }
/// assert_eq!(node.state(), NodeState::Ready);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct NodeEnergyMachine {
    cycle: ChargeCycle,
    battery: Battery,
    state: NodeState,
    ready_leakage: f64,
    activation_tolerance: f64,
    slots_active: u64,
    slots_passive: u64,
    slots_ready: u64,
    refused_activations: u64,
}

impl NodeEnergyMachine {
    /// Creates a node with a full (normalised, capacity-1) battery in the
    /// ready state.
    pub fn new(cycle: ChargeCycle) -> Self {
        NodeEnergyMachine {
            cycle,
            battery: Battery::full(1.0),
            state: NodeState::Ready,
            ready_leakage: 0.0,
            activation_tolerance: 0.0,
            slots_active: 0,
            slots_passive: 0,
            slots_ready: 0,
            refused_activations: 0,
        }
    }

    /// Honours activation requests already at `(1 − tolerance) ×` the
    /// required slot energy, instead of demanding the full amount — the
    /// engineering antidote to ready-state leakage: a node that leaked a
    /// sliver below full can still take its scheduled slot (draining
    /// whatever it has; the shortfall is a proportionally shorter active
    /// slot on real hardware).
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not in `[0, 1]`.
    #[must_use]
    pub fn with_activation_tolerance(mut self, tolerance: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&tolerance),
            "tolerance must be a fraction of the slot energy"
        );
        self.activation_tolerance = tolerance;
        self
    }

    /// Relaxes the paper's idealisation that "the energy level of a sensor
    /// in the ready state does not change": a ready node now leaks
    /// `leakage` (fraction of capacity) per slot — the periodic wake-ups
    /// the paper mentions ("they still need to wake up periodically to
    /// keep track of the system state") are not free on real hardware.
    /// A node that leaks below full re-enters the passive state to top up.
    ///
    /// # Panics
    ///
    /// Panics if `leakage` is not in `[0, 1]`.
    #[must_use]
    pub fn with_ready_leakage(mut self, leakage: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&leakage),
            "leakage must be a fraction of capacity per slot"
        );
        self.ready_leakage = leakage;
        self
    }

    /// Current state.
    pub fn state(&self) -> NodeState {
        self.state
    }

    /// Battery level as a fraction of capacity.
    pub fn battery_fraction(&self) -> f64 {
        self.battery.fraction()
    }

    /// The governing cycle.
    pub fn cycle(&self) -> ChargeCycle {
        self.cycle
    }

    /// `(active, passive, ready)` slot counters since construction.
    pub fn slot_counts(&self) -> (u64, u64, u64) {
        (self.slots_active, self.slots_passive, self.slots_ready)
    }

    /// Number of activation requests refused because the node was not ready.
    pub fn refused_activations(&self) -> u64 {
        self.refused_activations
    }

    /// `true` if an activation request this slot would be honoured.
    pub fn can_activate(&self) -> bool {
        matches!(self.state, NodeState::Ready)
    }

    /// Advances one slot. `activate` requests the node be active this slot;
    /// the request is honoured only when the battery holds at least one
    /// active slot's worth of energy. Returns whether the node was actually
    /// active.
    ///
    /// Transitions (evaluated at the end of the slot):
    /// * activation honoured → **active**; drains
    ///   `discharge_fraction_per_slot`; exits to passive when depleted.
    ///   With `ρ ≥ 1` one active slot needs (and drains) a full battery, so
    ///   "activatable ⇔ fully charged", exactly the paper's rule; with
    ///   `ρ < 1` a partially-discharged node may continue its active run;
    /// * otherwise, battery full → **ready**, holding its energy;
    /// * otherwise → **passive**: the node recharges
    ///   `recharge_fraction_per_slot` this slot (whether it got there by
    ///   depletion or by the scheduler designating this its passive slot),
    ///   exiting to ready when full.
    pub fn step(&mut self, activate: bool) -> bool {
        let need = self.cycle.discharge_fraction_per_slot();
        if activate && self.battery.fraction() + 1e-9 >= need * (1.0 - self.activation_tolerance) {
            self.state = NodeState::Active;
            self.slots_active += 1;
            self.battery.discharge(need.min(self.battery.level()));
            if self.battery.fraction() < 1e-9 {
                self.battery.deplete();
                self.state = NodeState::Passive;
            }
            return true;
        }
        if activate {
            self.refused_activations += 1;
        }
        if self.battery.is_full() {
            self.state = NodeState::Ready;
            self.slots_ready += 1;
            if self.ready_leakage > 0.0 {
                self.battery.discharge(self.ready_leakage);
            }
        } else {
            self.state = NodeState::Passive;
            self.slots_passive += 1;
            self.battery.charge(self.cycle.recharge_fraction_per_slot());
            if self.battery.is_full() {
                self.battery.refill();
                self.state = NodeState::Ready;
            }
        }
        false
    }
}

impl fmt::Display for NodeEnergyMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.state, self.battery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rho3_full_cycle() {
        let mut node = NodeEnergyMachine::new(ChargeCycle::paper_sunny());
        assert!(node.can_activate());
        assert!(node.step(true));
        assert_eq!(node.state(), NodeState::Passive);
        assert!(node.battery_fraction() < 1e-9);
        for i in 0..3 {
            assert!(!node.step(false), "passive slot {i}");
        }
        assert_eq!(node.state(), NodeState::Ready);
        assert!((node.battery_fraction() - 1.0).abs() < 1e-9);
        assert_eq!(node.slot_counts(), (1, 3, 0));
    }

    #[test]
    fn rho_le1_sustains_multiple_active_slots() {
        // ρ = 1/4: four active slots per period, one passive.
        let cycle = ChargeCycle::from_rho(0.25, 10.0).unwrap();
        let mut node = NodeEnergyMachine::new(cycle);
        for i in 0..4 {
            assert!(node.step(true), "active slot {i}");
        }
        assert_eq!(node.state(), NodeState::Passive);
        assert!(!node.step(true), "refused while passive");
        assert_eq!(node.refused_activations(), 1);
        assert_eq!(
            node.state(),
            NodeState::Ready,
            "one passive slot refills when rho<1"
        );
    }

    #[test]
    fn ready_state_holds_energy() {
        let mut node = NodeEnergyMachine::new(ChargeCycle::paper_sunny());
        for _ in 0..10 {
            assert!(!node.step(false));
        }
        assert_eq!(node.state(), NodeState::Ready);
        assert!((node.battery_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_drain_node_recharges_when_idle() {
        // A scheduled passive slot recharges a partially-drained node —
        // required for arbitrary passive-slot placement in §IV-B.
        let cycle = ChargeCycle::from_rho(0.5, 10.0).unwrap();
        let mut node = NodeEnergyMachine::new(cycle);
        assert!(node.step(true));
        assert!((node.battery_fraction() - 0.5).abs() < 1e-9);
        assert!(!node.step(false), "designated passive slot");
        assert!(
            (node.battery_fraction() - 1.0).abs() < 1e-9,
            "one passive slot restores a full charge when ρ < 1"
        );
        assert_eq!(node.state(), NodeState::Ready);
        assert!(node.step(true), "activatable again");
    }

    #[test]
    fn display_is_nonempty() {
        let node = NodeEnergyMachine::new(ChargeCycle::paper_sunny());
        assert!(node.to_string().contains("ready"));
        assert_eq!(NodeState::Active.to_string(), "active");
    }

    #[test]
    fn ready_leakage_erodes_idle_nodes() {
        // 5% leakage per ready slot: a node asked to activate right after
        // an idle (leaking) slot is no longer fully charged and — under the
        // paper's ρ ≥ 1 rule "activate only when full" — must refuse and
        // spend the slot topping up instead.
        let mut node = NodeEnergyMachine::new(ChargeCycle::paper_sunny()).with_ready_leakage(0.05);
        assert!(!node.step(false), "idle slot leaks");
        assert!(node.battery_fraction() < 1.0);
        assert!(!node.step(true), "refused while below full");
        assert_eq!(node.refused_activations(), 1);
        // The refusal slot doubled as a top-up (1/ρ ≥ leakage).
        assert!(node.step(true), "activatable after topping up");
    }

    #[test]
    fn zero_leakage_is_the_paper_model() {
        let mut ideal = NodeEnergyMachine::new(ChargeCycle::paper_sunny());
        let mut explicit =
            NodeEnergyMachine::new(ChargeCycle::paper_sunny()).with_ready_leakage(0.0);
        for i in 0..20 {
            let want = i % 4 == 0;
            assert_eq!(ideal.step(want), explicit.step(want));
        }
        assert_eq!(ideal.slot_counts(), explicit.slot_counts());
    }

    #[test]
    #[should_panic(expected = "fraction of capacity")]
    fn excessive_leakage_panics() {
        let _ = NodeEnergyMachine::new(ChargeCycle::paper_sunny()).with_ready_leakage(1.5);
    }

    #[test]
    fn activation_tolerance_absorbs_leakage() {
        // With a tolerance at least the leakage, the post-idle activation
        // is honoured again (the node just runs marginally shorter).
        let mut node = NodeEnergyMachine::new(ChargeCycle::paper_sunny())
            .with_ready_leakage(0.05)
            .with_activation_tolerance(0.05);
        assert!(!node.step(false), "idle slot leaks");
        assert!(node.step(true), "tolerant activation succeeds");
        assert_eq!(node.refused_activations(), 0);
        assert_eq!(
            node.state(),
            NodeState::Passive,
            "drained by the active slot"
        );
    }

    #[test]
    #[should_panic(expected = "fraction of the slot energy")]
    fn excessive_tolerance_panics() {
        let _ = NodeEnergyMachine::new(ChargeCycle::paper_sunny()).with_activation_tolerance(2.0);
    }

    proptest! {
        /// Battery level stays in [0, 1] and the node is never active in
        /// more than `active_slots_per_period` of any window of
        /// `slots_per_period` consecutive slots.
        #[test]
        fn feasibility_under_arbitrary_requests(
            ratio in 1usize..6,
            invert in any::<bool>(),
            requests in proptest::collection::vec(any::<bool>(), 1..200),
        ) {
            let rho = if invert { 1.0 / ratio as f64 } else { ratio as f64 };
            let cycle = ChargeCycle::from_rho(rho, 10.0).unwrap();
            let mut node = NodeEnergyMachine::new(cycle);
            let mut activity: Vec<bool> = Vec::new();
            for &req in &requests {
                activity.push(node.step(req));
                prop_assert!((0.0..=1.0 + 1e-9).contains(&node.battery_fraction()));
            }
            let window = cycle.slots_per_period();
            let cap = cycle.active_slots_per_period();
            for w in activity.windows(window) {
                let on = w.iter().filter(|&&a| a).count();
                prop_assert!(
                    on <= cap,
                    "{} active slots in a window of {} (cap {})", on, window, cap
                );
            }
        }
    }
}
