//! The three-state node lifecycle of §II-B.
//!
//! > "Each sensor could be in one of three states at each time instant:
//! > active, passive and ready. In the active state the sensor is powered on
//! > […] and consumes its energy gradually. Once the energy of a sensor node
//! > is used up, it will enter the passive state and be recharged without
//! > any other operations. When its battery is fully charged, the sensor
//! > enters the ready state. Sensors in ready state do not participate in
//! > sensing […] the energy level of a sensor in the ready state does not
//! > change."
//!
//! [`NodeEnergyMachine`] advances one node through whole slots under a
//! [`ChargeCycle`]; activation requests are honoured only
//! in the **ready** state (the paper activates only fully-charged nodes).

use crate::{Battery, ChargeCycle};
use std::fmt;

/// The lifecycle state of a node at a slot boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeState {
    /// Powered on: sensing/communicating/computing, draining energy.
    Active,
    /// Depleted: recharging, no operations.
    Passive,
    /// Fully charged and waiting to be activated; energy level unchanged
    /// (the ready-state drain is negligible per the paper).
    Ready,
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeState::Active => "active",
            NodeState::Passive => "passive",
            NodeState::Ready => "ready",
        };
        f.write_str(s)
    }
}

/// The result of advancing one node through one slot: the battery fraction
/// at the slot boundary, whether the activation request was honoured, and
/// the resulting lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlotOutcome {
    /// Battery level as a fraction of capacity after the slot, in `[0, 1]`.
    pub fraction: f64,
    /// Whether the node was actually active this slot.
    pub active: bool,
    /// Lifecycle state at the end of the slot.
    pub state: NodeState,
}

/// The §II-B battery automaton as a pure function of the battery fraction.
///
/// This is the single source of truth for the slot transition:
/// [`NodeEnergyMachine::step`] delegates to it, and the `cool-lint`
/// abstract interpreter replays it over intervals of initial charges —
/// keeping the concrete and abstract semantics bit-identical by
/// construction.
///
/// The arithmetic mirrors a capacity-1 [`Battery`] exactly:
/// * activation honoured when `fraction + 1e-9 ≥ need × (1 − tolerance)`
///   where `need` is [`ChargeCycle::discharge_fraction_per_slot`]; the slot
///   drains `min(need, fraction)` and a residue below `1e-9` depletes to
///   exactly `0` (passive);
/// * otherwise a full battery (`≥ 1 − 1e-12`) idles ready, minus
///   `ready_leakage`;
/// * otherwise the node charges [`ChargeCycle::recharge_fraction_per_slot`]
///   (clamped at capacity) and snaps to exactly `1` on reaching full.
///
/// # Panics
///
/// Panics when `fraction` is outside `[0, 1]` or not finite.
#[must_use]
pub fn slot_transition(
    cycle: ChargeCycle,
    fraction: f64,
    activate: bool,
    ready_leakage: f64,
    activation_tolerance: f64,
) -> SlotOutcome {
    tick_transition(
        cycle.discharge_fraction_per_slot(),
        cycle.recharge_fraction_per_slot(),
        fraction,
        activate,
        ready_leakage,
        activation_tolerance,
    )
}

/// [`slot_transition`] generalised to explicit per-tick rates, for
/// heterogeneous fleets on the LCM tick grid where each sensor drains
/// `need` and refills `refill` (fractions of its own capacity) per tick.
/// With `need = discharge_fraction_per_slot()` and
/// `refill = recharge_fraction_per_slot()` this is bit-identical to the
/// homogeneous transition — [`slot_transition`] delegates here.
///
/// # Panics
///
/// Panics when `fraction` is outside `[0, 1]` or not finite.
#[must_use]
pub fn tick_transition(
    need: f64,
    refill: f64,
    fraction: f64,
    activate: bool,
    ready_leakage: f64,
    activation_tolerance: f64,
) -> SlotOutcome {
    assert!(
        fraction.is_finite() && (0.0..=1.0).contains(&fraction),
        "battery fraction {fraction} outside [0, 1]"
    );
    if activate && fraction + 1e-9 >= need * (1.0 - activation_tolerance) {
        let mut level = fraction - need.min(fraction);
        let state = if level < 1e-9 {
            level = 0.0;
            NodeState::Passive
        } else {
            NodeState::Active
        };
        return SlotOutcome {
            fraction: level,
            active: true,
            state,
        };
    }
    if fraction >= 1.0 - 1e-12 {
        SlotOutcome {
            fraction: fraction - ready_leakage.min(fraction),
            active: false,
            state: NodeState::Ready,
        }
    } else {
        let mut level = fraction + refill.min(1.0 - fraction);
        let state = if level >= 1.0 - 1e-12 {
            level = 1.0;
            NodeState::Ready
        } else {
            NodeState::Passive
        };
        SlotOutcome {
            fraction: level,
            active: false,
            state,
        }
    }
}

/// Per-node battery + state machine stepping in whole slots.
///
/// # Examples
///
/// ```
/// use cool_energy::{ChargeCycle, NodeEnergyMachine, NodeState};
///
/// let cycle = ChargeCycle::paper_sunny(); // ρ = 3, 4 slots per period
/// let mut node = NodeEnergyMachine::new(cycle);
/// assert_eq!(node.state(), NodeState::Ready);
///
/// // Activate for one slot: with ρ ≥ 1 that drains the battery.
/// assert!(node.step(true));
/// assert_eq!(node.state(), NodeState::Passive);
///
/// // Three passive slots recharge it back to ready.
/// for _ in 0..3 {
///     assert!(!node.step(true)); // activation refused while passive
/// }
/// assert_eq!(node.state(), NodeState::Ready);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct NodeEnergyMachine {
    cycle: ChargeCycle,
    battery: Battery,
    state: NodeState,
    ready_leakage: f64,
    activation_tolerance: f64,
    slots_active: u64,
    slots_passive: u64,
    slots_ready: u64,
    refused_activations: u64,
}

impl NodeEnergyMachine {
    /// Creates a node with a full (normalised, capacity-1) battery in the
    /// ready state.
    pub fn new(cycle: ChargeCycle) -> Self {
        NodeEnergyMachine::with_initial_fraction(cycle, 1.0)
    }

    /// Creates a node whose battery starts at `fraction` of capacity — the
    /// deployment reality the full-battery constructor idealises away. The
    /// node starts ready when full and passive (recharging) otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]` or not finite.
    pub fn with_initial_fraction(cycle: ChargeCycle, fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "initial battery fraction {fraction} outside [0, 1]"
        );
        let battery = Battery::new(1.0, fraction);
        let state = if battery.is_full() {
            NodeState::Ready
        } else {
            NodeState::Passive
        };
        NodeEnergyMachine {
            cycle,
            battery,
            state,
            ready_leakage: 0.0,
            activation_tolerance: 0.0,
            slots_active: 0,
            slots_passive: 0,
            slots_ready: 0,
            refused_activations: 0,
        }
    }

    /// Honours activation requests already at `(1 − tolerance) ×` the
    /// required slot energy, instead of demanding the full amount — the
    /// engineering antidote to ready-state leakage: a node that leaked a
    /// sliver below full can still take its scheduled slot (draining
    /// whatever it has; the shortfall is a proportionally shorter active
    /// slot on real hardware).
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not in `[0, 1]`.
    #[must_use]
    pub fn with_activation_tolerance(mut self, tolerance: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&tolerance),
            "tolerance must be a fraction of the slot energy"
        );
        self.activation_tolerance = tolerance;
        self
    }

    /// Relaxes the paper's idealisation that "the energy level of a sensor
    /// in the ready state does not change": a ready node now leaks
    /// `leakage` (fraction of capacity) per slot — the periodic wake-ups
    /// the paper mentions ("they still need to wake up periodically to
    /// keep track of the system state") are not free on real hardware.
    /// A node that leaks below full re-enters the passive state to top up.
    ///
    /// # Panics
    ///
    /// Panics if `leakage` is not in `[0, 1]`.
    #[must_use]
    pub fn with_ready_leakage(mut self, leakage: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&leakage),
            "leakage must be a fraction of capacity per slot"
        );
        self.ready_leakage = leakage;
        self
    }

    /// Current state.
    pub fn state(&self) -> NodeState {
        self.state
    }

    /// Battery level as a fraction of capacity.
    pub fn battery_fraction(&self) -> f64 {
        self.battery.fraction()
    }

    /// The governing cycle.
    pub fn cycle(&self) -> ChargeCycle {
        self.cycle
    }

    /// `(active, passive, ready)` slot counters since construction.
    pub fn slot_counts(&self) -> (u64, u64, u64) {
        (self.slots_active, self.slots_passive, self.slots_ready)
    }

    /// Number of activation requests refused because the node was not ready.
    pub fn refused_activations(&self) -> u64 {
        self.refused_activations
    }

    /// `true` if an activation request this slot would be honoured.
    pub fn can_activate(&self) -> bool {
        matches!(self.state, NodeState::Ready)
    }

    /// Advances one slot. `activate` requests the node be active this slot;
    /// the request is honoured only when the battery holds at least one
    /// active slot's worth of energy. Returns whether the node was actually
    /// active.
    ///
    /// Transitions (evaluated at the end of the slot):
    /// * activation honoured → **active**; drains
    ///   `discharge_fraction_per_slot`; exits to passive when depleted.
    ///   With `ρ ≥ 1` one active slot needs (and drains) a full battery, so
    ///   "activatable ⇔ fully charged", exactly the paper's rule; with
    ///   `ρ < 1` a partially-discharged node may continue its active run;
    /// * otherwise, battery full → **ready**, holding its energy;
    /// * otherwise → **passive**: the node recharges
    ///   `recharge_fraction_per_slot` this slot (whether it got there by
    ///   depletion or by the scheduler designating this its passive slot),
    ///   exiting to ready when full.
    pub fn step(&mut self, activate: bool) -> bool {
        let entry_full = self.battery.is_full();
        let out = slot_transition(
            self.cycle,
            self.battery.fraction(),
            activate,
            self.ready_leakage,
            self.activation_tolerance,
        );
        self.battery = Battery::new(1.0, out.fraction);
        self.state = out.state;
        if out.active {
            self.slots_active += 1;
        } else {
            if activate {
                self.refused_activations += 1;
            }
            if entry_full {
                self.slots_ready += 1;
            } else {
                self.slots_passive += 1;
            }
        }
        out.active
    }
}

impl fmt::Display for NodeEnergyMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.state, self.battery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rho3_full_cycle() {
        let mut node = NodeEnergyMachine::new(ChargeCycle::paper_sunny());
        assert!(node.can_activate());
        assert!(node.step(true));
        assert_eq!(node.state(), NodeState::Passive);
        assert!(node.battery_fraction() < 1e-9);
        for i in 0..3 {
            assert!(!node.step(false), "passive slot {i}");
        }
        assert_eq!(node.state(), NodeState::Ready);
        assert!((node.battery_fraction() - 1.0).abs() < 1e-9);
        assert_eq!(node.slot_counts(), (1, 3, 0));
    }

    #[test]
    fn rho_le1_sustains_multiple_active_slots() {
        // ρ = 1/4: four active slots per period, one passive.
        let cycle = ChargeCycle::from_rho(0.25, 10.0).unwrap();
        let mut node = NodeEnergyMachine::new(cycle);
        for i in 0..4 {
            assert!(node.step(true), "active slot {i}");
        }
        assert_eq!(node.state(), NodeState::Passive);
        assert!(!node.step(true), "refused while passive");
        assert_eq!(node.refused_activations(), 1);
        assert_eq!(
            node.state(),
            NodeState::Ready,
            "one passive slot refills when rho<1"
        );
    }

    #[test]
    fn ready_state_holds_energy() {
        let mut node = NodeEnergyMachine::new(ChargeCycle::paper_sunny());
        for _ in 0..10 {
            assert!(!node.step(false));
        }
        assert_eq!(node.state(), NodeState::Ready);
        assert!((node.battery_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_drain_node_recharges_when_idle() {
        // A scheduled passive slot recharges a partially-drained node —
        // required for arbitrary passive-slot placement in §IV-B.
        let cycle = ChargeCycle::from_rho(0.5, 10.0).unwrap();
        let mut node = NodeEnergyMachine::new(cycle);
        assert!(node.step(true));
        assert!((node.battery_fraction() - 0.5).abs() < 1e-9);
        assert!(!node.step(false), "designated passive slot");
        assert!(
            (node.battery_fraction() - 1.0).abs() < 1e-9,
            "one passive slot restores a full charge when ρ < 1"
        );
        assert_eq!(node.state(), NodeState::Ready);
        assert!(node.step(true), "activatable again");
    }

    #[test]
    fn display_is_nonempty() {
        let node = NodeEnergyMachine::new(ChargeCycle::paper_sunny());
        assert!(node.to_string().contains("ready"));
        assert_eq!(NodeState::Active.to_string(), "active");
    }

    #[test]
    fn ready_leakage_erodes_idle_nodes() {
        // 5% leakage per ready slot: a node asked to activate right after
        // an idle (leaking) slot is no longer fully charged and — under the
        // paper's ρ ≥ 1 rule "activate only when full" — must refuse and
        // spend the slot topping up instead.
        let mut node = NodeEnergyMachine::new(ChargeCycle::paper_sunny()).with_ready_leakage(0.05);
        assert!(!node.step(false), "idle slot leaks");
        assert!(node.battery_fraction() < 1.0);
        assert!(!node.step(true), "refused while below full");
        assert_eq!(node.refused_activations(), 1);
        // The refusal slot doubled as a top-up (1/ρ ≥ leakage).
        assert!(node.step(true), "activatable after topping up");
    }

    #[test]
    fn zero_leakage_is_the_paper_model() {
        let mut ideal = NodeEnergyMachine::new(ChargeCycle::paper_sunny());
        let mut explicit =
            NodeEnergyMachine::new(ChargeCycle::paper_sunny()).with_ready_leakage(0.0);
        for i in 0..20 {
            let want = i % 4 == 0;
            assert_eq!(ideal.step(want), explicit.step(want));
        }
        assert_eq!(ideal.slot_counts(), explicit.slot_counts());
    }

    #[test]
    #[should_panic(expected = "fraction of capacity")]
    fn excessive_leakage_panics() {
        let _ = NodeEnergyMachine::new(ChargeCycle::paper_sunny()).with_ready_leakage(1.5);
    }

    #[test]
    fn activation_tolerance_absorbs_leakage() {
        // With a tolerance at least the leakage, the post-idle activation
        // is honoured again (the node just runs marginally shorter).
        let mut node = NodeEnergyMachine::new(ChargeCycle::paper_sunny())
            .with_ready_leakage(0.05)
            .with_activation_tolerance(0.05);
        assert!(!node.step(false), "idle slot leaks");
        assert!(node.step(true), "tolerant activation succeeds");
        assert_eq!(node.refused_activations(), 0);
        assert_eq!(
            node.state(),
            NodeState::Passive,
            "drained by the active slot"
        );
    }

    #[test]
    #[should_panic(expected = "fraction of the slot energy")]
    fn excessive_tolerance_panics() {
        let _ = NodeEnergyMachine::new(ChargeCycle::paper_sunny()).with_activation_tolerance(2.0);
    }

    #[test]
    fn with_initial_fraction_starts_passive_below_full() {
        let cycle = ChargeCycle::paper_sunny();
        let node = NodeEnergyMachine::with_initial_fraction(cycle, 0.4);
        assert_eq!(node.state(), NodeState::Passive);
        assert!(!node.can_activate());
        assert!((node.battery_fraction() - 0.4).abs() < 1e-12);
        let full = NodeEnergyMachine::with_initial_fraction(cycle, 1.0);
        assert_eq!(full, NodeEnergyMachine::new(cycle));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn overfull_initial_fraction_panics() {
        let _ = NodeEnergyMachine::with_initial_fraction(ChargeCycle::paper_sunny(), 1.5);
    }

    proptest! {
        /// The pure [`slot_transition`] and the stateful machine agree on
        /// every slot for arbitrary initial charges and request streams —
        /// the contract the `cool-lint` abstract interpreter relies on.
        #[test]
        fn pure_transition_matches_machine(
            ratio in 1usize..6,
            invert in any::<bool>(),
            initial in 0.0f64..=1.0,
            leakage in 0.0f64..0.1,
            tolerance in 0.0f64..0.1,
            requests in proptest::collection::vec(any::<bool>(), 1..100),
        ) {
            let rho = if invert { 1.0 / ratio as f64 } else { ratio as f64 };
            let cycle = ChargeCycle::from_rho(rho, 10.0).unwrap();
            let mut node = NodeEnergyMachine::with_initial_fraction(cycle, initial)
                .with_ready_leakage(leakage)
                .with_activation_tolerance(tolerance);
            let mut fraction = initial;
            for &req in &requests {
                let out = slot_transition(cycle, fraction, req, leakage, tolerance);
                let was_active = node.step(req);
                prop_assert_eq!(out.active, was_active);
                prop_assert_eq!(out.fraction, node.battery_fraction(), "exact agreement");
                prop_assert_eq!(out.state, node.state());
                fraction = out.fraction;
            }
        }
    }

    proptest! {
        /// The rate-parameterised tick transition with a cycle's own rates
        /// is the slot transition — the contract the heterogeneous-fleet
        /// grid replay relies on.
        #[test]
        fn tick_transition_generalises_slot_transition(
            ratio in 1usize..6,
            invert in any::<bool>(),
            fraction in 0.0f64..=1.0,
            activate in any::<bool>(),
            leakage in 0.0f64..0.1,
            tolerance in 0.0f64..0.1,
        ) {
            let rho = if invert { 1.0 / ratio as f64 } else { ratio as f64 };
            let cycle = ChargeCycle::from_rho(rho, 10.0).unwrap();
            let via_cycle = slot_transition(cycle, fraction, activate, leakage, tolerance);
            let via_rates = tick_transition(
                cycle.discharge_fraction_per_slot(),
                cycle.recharge_fraction_per_slot(),
                fraction,
                activate,
                leakage,
                tolerance,
            );
            prop_assert_eq!(via_cycle, via_rates);
        }
    }

    proptest! {
        /// Battery level stays in [0, 1] and the node is never active in
        /// more than `active_slots_per_period` of any window of
        /// `slots_per_period` consecutive slots.
        #[test]
        fn feasibility_under_arbitrary_requests(
            ratio in 1usize..6,
            invert in any::<bool>(),
            requests in proptest::collection::vec(any::<bool>(), 1..200),
        ) {
            let rho = if invert { 1.0 / ratio as f64 } else { ratio as f64 };
            let cycle = ChargeCycle::from_rho(rho, 10.0).unwrap();
            let mut node = NodeEnergyMachine::new(cycle);
            let mut activity: Vec<bool> = Vec::new();
            for &req in &requests {
                activity.push(node.step(req));
                prop_assert!((0.0..=1.0 + 1e-9).contains(&node.battery_fraction()));
            }
            let window = cycle.slots_per_period();
            let cap = cycle.active_slots_per_period();
            for w in activity.windows(window) {
                let on = w.iter().filter(|&&a| a).count();
                prop_assert!(
                    on <= cap,
                    "{} active slots in a window of {} (cap {})", on, window, cap
                );
            }
        }
    }
}
