//! Weather conditions and day-to-day weather evolution.
//!
//! §II-B: "For different weather conditions, although we may have different
//! discharging/recharging pattern, […] within a relatively small period,
//! e.g., 2 hours in day time under sunny weather, those two parameters will
//! not change significantly. When the weather condition changes
//! significantly, e.g., during one week, we may choose different charging
//! pattern accordingly."
//!
//! [`Weather`] carries the attenuation each condition applies to clear-sky
//! irradiance and the charging pattern the paper would select for it;
//! [`WeatherGenerator`] evolves weather across days with a Markov chain, so
//! week-long experiments see realistic persistence (sunny spells, cloudy
//! spells).

use crate::{ChargeCycle, CycleError};
use rand::Rng;
use std::fmt;

/// A day's dominant weather condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Weather {
    /// Clear sky; the paper's measured pattern `T_d = 15`, `T_r = 45`.
    Sunny,
    /// Broken clouds; harvesting roughly halved.
    PartlyCloudy,
    /// Continuous cloud cover; harvesting cut to a quarter.
    Overcast,
    /// Rain; harvesting nearly negligible.
    Rainy,
}

impl Weather {
    /// All conditions, in order of decreasing irradiance.
    pub const ALL: [Weather; 4] = [
        Weather::Sunny,
        Weather::PartlyCloudy,
        Weather::Overcast,
        Weather::Rainy,
    ];

    /// Mean attenuation this condition applies to clear-sky irradiance,
    /// in `(0, 1]`.
    pub fn attenuation(self) -> f64 {
        match self {
            Weather::Sunny => 1.0,
            Weather::PartlyCloudy => 0.55,
            Weather::Overcast => 0.25,
            Weather::Rainy => 0.08,
        }
    }

    /// Short-term flicker amplitude (cloud shadows) as a fraction of the
    /// attenuated irradiance. Partly-cloudy skies flicker the most.
    pub fn flicker(self) -> f64 {
        match self {
            Weather::Sunny => 0.05,
            Weather::PartlyCloudy => 0.35,
            Weather::Overcast => 0.15,
            Weather::Rainy => 0.10,
        }
    }

    /// The charging pattern the paper's methodology selects for this
    /// condition ("we may choose different charging pattern accordingly").
    ///
    /// Recharge slows as attenuation deepens while discharge stays fixed at
    /// 15 minutes (the node's consumption does not depend on weather).
    ///
    /// # Errors
    ///
    /// Propagates [`CycleError`] — never fails for the built-in constants,
    /// but callers composing their own ratios may rely on the same signature.
    pub fn charge_cycle(self) -> Result<ChargeCycle, CycleError> {
        let (t_d, t_r) = match self {
            Weather::Sunny => (15.0, 45.0),        // ρ = 3 (measured, §VI-A)
            Weather::PartlyCloudy => (15.0, 90.0), // ρ = 6
            Weather::Overcast => (15.0, 180.0),    // ρ = 12
            Weather::Rainy => (15.0, 450.0),       // ρ = 30
        };
        ChargeCycle::from_minutes(t_d, t_r)
    }
}

impl fmt::Display for Weather {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Weather::Sunny => "sunny",
            Weather::PartlyCloudy => "partly-cloudy",
            Weather::Overcast => "overcast",
            Weather::Rainy => "rainy",
        };
        f.write_str(s)
    }
}

/// Markov-chain day-to-day weather evolution.
///
/// Transition rows (from → to) encode persistence: tomorrow most likely
/// repeats today.
///
/// # Examples
///
/// ```
/// use cool_energy::{Weather, WeatherGenerator};
/// use cool_common::SeedSequence;
///
/// let mut days = WeatherGenerator::new(Weather::Sunny);
/// let mut rng = SeedSequence::new(11).nth_rng(0);
/// let week: Vec<Weather> = (0..7).map(|_| days.next_day(&mut rng)).collect();
/// assert_eq!(week.len(), 7);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct WeatherGenerator {
    current: Weather,
}

impl WeatherGenerator {
    /// Row-stochastic transition matrix, indexed by [`Weather::ALL`] order.
    const TRANSITIONS: [[f64; 4]; 4] = [
        // from Sunny
        [0.70, 0.20, 0.07, 0.03],
        // from PartlyCloudy
        [0.30, 0.45, 0.18, 0.07],
        // from Overcast
        [0.10, 0.30, 0.40, 0.20],
        // from Rainy
        [0.10, 0.25, 0.35, 0.30],
    ];

    /// Creates a generator whose "yesterday" was `start`.
    pub fn new(start: Weather) -> Self {
        WeatherGenerator { current: start }
    }

    /// The most recent day's weather.
    pub fn current(&self) -> Weather {
        self.current
    }

    /// Samples the next day's weather and advances.
    pub fn next_day<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Weather {
        let row_idx = Weather::ALL
            .iter()
            .position(|&w| w == self.current)
            .unwrap_or_default(); // every Weather variant is a member of ALL
        let row = &Self::TRANSITIONS[row_idx];
        let mut u: f64 = rng.random_range(0.0..1.0);
        for (i, &p) in row.iter().enumerate() {
            if u < p {
                self.current = Weather::ALL[i];
                return self.current;
            }
            u -= p;
        }
        self.current = Weather::Rainy;
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::SeedSequence;

    #[test]
    fn attenuations_are_ordered_and_positive() {
        let atts: Vec<f64> = Weather::ALL.iter().map(|w| w.attenuation()).collect();
        assert!(atts.windows(2).all(|w| w[0] > w[1]), "strictly decreasing");
        assert!(atts.iter().all(|&a| a > 0.0 && a <= 1.0));
    }

    #[test]
    fn sunny_cycle_matches_paper() {
        let c = Weather::Sunny.charge_cycle().unwrap();
        assert_eq!(c, ChargeCycle::paper_sunny());
    }

    #[test]
    fn all_cycles_are_constructible_with_integral_rho() {
        for w in Weather::ALL {
            let c = w.charge_cycle().unwrap();
            assert!(c.rho() >= 1.0);
            assert_eq!(c.discharge_minutes(), 15.0);
        }
    }

    #[test]
    fn rainy_recharges_slowest() {
        assert!(
            Weather::Rainy.charge_cycle().unwrap().rho()
                > Weather::Overcast.charge_cycle().unwrap().rho()
        );
    }

    #[test]
    fn transition_rows_are_stochastic() {
        for row in WeatherGenerator::TRANSITIONS {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row sums to {sum}");
            assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn long_run_visits_every_condition() {
        let mut generator = WeatherGenerator::new(Weather::Sunny);
        let mut rng = SeedSequence::new(3).nth_rng(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(generator.next_day(&mut rng));
        }
        assert_eq!(seen.len(), 4, "chain is irreducible");
    }

    #[test]
    fn sunny_persists_most_of_the_time() {
        let mut rng = SeedSequence::new(4).nth_rng(0);
        let mut stays = 0;
        let trials = 2000;
        for _ in 0..trials {
            let mut generator = WeatherGenerator::new(Weather::Sunny);
            if generator.next_day(&mut rng) == Weather::Sunny {
                stays += 1;
            }
        }
        let rate = f64::from(stays) / f64::from(trials);
        assert!(
            (rate - 0.70).abs() < 0.05,
            "sunny persistence ≈ 0.70, got {rate}"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<Weather> {
            let mut g = WeatherGenerator::new(Weather::PartlyCloudy);
            let mut rng = SeedSequence::new(seed).nth_rng(0);
            (0..30).map(|_| g.next_day(&mut rng)).collect()
        };
        assert_eq!(run(9), run(9));
    }
}
