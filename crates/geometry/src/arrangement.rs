//! The arrangement of sensing regions: subdividing `Ω` into subregions.
//!
//! §II-C of the paper: "the region `Ω` is divided into polynomial number of
//! subregions defined by all monitored regions `R(v_i)`" — Fig. 3(b) shows 38
//! such subregions for a small deployment. Each subregion `A_i` is a maximal
//! set of points covered by exactly the same subset of sensors (its
//! *signature*), and carries an area `|A_i|` and a preference weight `w_i`
//! consumed by the region-monitoring utility of Eq. (2):
//!
//! ```text
//! U(S) = Σ_i I_i(S) · w_i · |A_i|
//! ```
//!
//! We compute the subdivision numerically on a regular grid: every grid cell
//! is assigned the signature of its centre point, and cells with equal
//! signatures are merged into one [`Subregion`]. As the resolution grows this
//! converges to the exact arrangement (areas converge at rate O(perimeter ·
//! cell-size)); exact two-disk lens areas from
//! [`disk_intersection_area`](crate::disk_intersection_area) are used in the
//! tests to validate convergence.

use crate::{Point, Rect, Region};
use cool_common::{SensorSet, SubregionId};
use std::collections::HashMap;

/// One subregion `A_i` of the arrangement: all points of `Ω` covered by
/// exactly the sensors in `signature`.
#[derive(Clone, Debug, PartialEq)]
pub struct Subregion {
    /// Stable identifier within the owning [`Arrangement`].
    pub id: SubregionId,
    /// The set of sensors covering every point of this subregion.
    pub signature: SensorSet,
    /// Area `|A_i|`.
    pub area: f64,
    /// Preference weight `w_i` (default `1.0`).
    pub weight: f64,
    /// A point inside the subregion (a covered grid-cell centre).
    pub representative: Point,
}

/// The subdivision of an area of interest `Ω` induced by sensing regions.
///
/// # Examples
///
/// ```
/// use cool_geometry::{AnyRegion, Arrangement, Disk, Point, Rect};
/// use cool_common::SensorSet;
///
/// let omega = Rect::square(10.0);
/// let regions: Vec<AnyRegion> = vec![
///     Disk::new(Point::new(3.0, 5.0), 2.0).into(),
///     Disk::new(Point::new(5.0, 5.0), 2.0).into(),
/// ];
/// let arr = Arrangement::build(omega, &regions, 256);
/// // Two overlapping disks make 3 subregions: only-0, only-1, both.
/// assert_eq!(arr.subregions().len(), 3);
///
/// let only_first = SensorSet::from_indices(2, [0]);
/// assert!(arr.covered_weighted_area(&only_first) > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct Arrangement {
    omega: Rect,
    n_sensors: usize,
    subregions: Vec<Subregion>,
}

impl Arrangement {
    /// Builds the arrangement of `regions` within `omega` on a
    /// `resolution × resolution` grid.
    ///
    /// `resolution` trades accuracy for build time; 256 is accurate to a few
    /// percent for deployments of tens of sensors, 1024 to a fraction of a
    /// percent.
    ///
    /// # Panics
    ///
    /// Panics if `resolution == 0` or `omega` has zero area while regions
    /// are provided.
    pub fn build<R: Region>(omega: Rect, regions: &[R], resolution: usize) -> Self {
        assert!(resolution > 0, "resolution must be positive");
        if !regions.is_empty() {
            assert!(omega.area() > 0.0, "Ω must have positive area");
        }
        let n = regions.len();
        let (res_x, res_y) = (resolution, resolution);
        let cell_w = omega.width() / res_x as f64;
        let cell_h = omega.height() / res_y as f64;
        let cell_area = cell_w * cell_h;

        // Signature of every grid cell, built region-by-region with
        // bounding-box pruning.
        let mut signatures: Vec<SensorSet> = vec![SensorSet::new(n); res_x * res_y];
        for (i, region) in regions.iter().enumerate() {
            let bbox = region.bounding_box();
            let Some(clip) = bbox.intersection(&omega) else {
                continue;
            };
            let x_lo = (((clip.min().x - omega.min().x) / cell_w).floor() as usize).min(res_x - 1);
            let x_hi = (((clip.max().x - omega.min().x) / cell_w).ceil() as usize).min(res_x);
            let y_lo = (((clip.min().y - omega.min().y) / cell_h).floor() as usize).min(res_y - 1);
            let y_hi = (((clip.max().y - omega.min().y) / cell_h).ceil() as usize).min(res_y);
            for cy in y_lo..y_hi {
                let py = omega.min().y + (cy as f64 + 0.5) * cell_h;
                for cx in x_lo..x_hi {
                    let px = omega.min().x + (cx as f64 + 0.5) * cell_w;
                    if region.contains(Point::new(px, py)) {
                        signatures[cy * res_x + cx].insert(cool_common::SensorId(i));
                    }
                }
            }
        }

        // Merge equal signatures; drop the uncovered signature (it can never
        // contribute utility).
        let mut groups: HashMap<SensorSet, (f64, Point)> = HashMap::new();
        for (idx, sig) in signatures.into_iter().enumerate() {
            if sig.is_empty() {
                continue;
            }
            let cy = idx / res_x;
            let cx = idx % res_x;
            let rep = Point::new(
                omega.min().x + (cx as f64 + 0.5) * cell_w,
                omega.min().y + (cy as f64 + 0.5) * cell_h,
            );
            groups
                .entry(sig)
                .and_modify(|(area, _)| *area += cell_area)
                .or_insert((cell_area, rep));
        }

        Arrangement::from_groups(omega, n, groups)
    }

    /// Builds the arrangement by adaptive quadtree subdivision: cells whose
    /// signature is provably uniform (every region either
    /// [`Covers`](crate::region::CellRelation::Covers) or lies
    /// [`Outside`](crate::region::CellRelation::Outside)) are accounted
    /// **exactly** and never refined; only cells crossed by region
    /// boundaries split, down to `max_depth` levels (where the centre point
    /// decides, as in the grid builder).
    ///
    /// Compared to [`Arrangement::build`] at resolution `2^max_depth`, this
    /// touches far fewer cells for the same boundary accuracy — the
    /// interior of every disk is settled after a few levels.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth == 0` or (with regions present) `omega` has
    /// zero area.
    pub fn build_adaptive<R: Region>(omega: Rect, regions: &[R], max_depth: usize) -> Self {
        assert!(max_depth > 0, "max_depth must be positive");
        if !regions.is_empty() {
            assert!(omega.area() > 0.0, "Ω must have positive area");
        }
        let n = regions.len();
        let mut groups: HashMap<SensorSet, (f64, Point)> = HashMap::new();

        // Work stack: (cell, depth, settled signature, still-partial regions).
        let all: Vec<usize> = (0..n).collect();
        let mut stack: Vec<(Rect, usize, SensorSet, Vec<usize>)> =
            vec![(omega, 0, SensorSet::new(n), all)];
        while let Some((cell, depth, mut signature, partial)) = stack.pop() {
            let mut still_partial = Vec::with_capacity(partial.len());
            for &i in &partial {
                match regions[i].classify_cell(cell) {
                    crate::region::CellRelation::Covers => {
                        signature.insert(cool_common::SensorId(i));
                    }
                    crate::region::CellRelation::Outside => {}
                    crate::region::CellRelation::Partial => still_partial.push(i),
                }
            }
            if still_partial.is_empty() || depth == max_depth {
                if depth == max_depth {
                    // Centre-point decision for the residue.
                    let c = cell.center();
                    for &i in &still_partial {
                        if regions[i].contains(c) {
                            signature.insert(cool_common::SensorId(i));
                        }
                    }
                }
                if !signature.is_empty() {
                    groups
                        .entry(signature)
                        .and_modify(|(area, _)| *area += cell.area())
                        .or_insert((cell.area(), cell.center()));
                }
                continue;
            }
            let mid = cell.center();
            let (lo, hi) = (cell.min(), cell.max());
            for child in [
                Rect::new(lo, mid),
                Rect::new(Point::new(mid.x, lo.y), Point::new(hi.x, mid.y)),
                Rect::new(Point::new(lo.x, mid.y), Point::new(mid.x, hi.y)),
                Rect::new(mid, hi),
            ] {
                stack.push((child, depth + 1, signature.clone(), still_partial.clone()));
            }
        }

        Arrangement::from_groups(omega, n, groups)
    }

    fn from_groups(omega: Rect, n: usize, groups: HashMap<SensorSet, (f64, Point)>) -> Arrangement {
        let mut entries: Vec<(SensorSet, f64, Point)> = groups
            .into_iter()
            .map(|(sig, (area, rep))| (sig, area, rep))
            .collect();
        // Deterministic order: by signature members.
        entries.sort_by_key(|(sig, _, _)| {
            sig.iter()
                .map(cool_common::SensorId::index)
                .collect::<Vec<_>>()
        });

        let subregions = entries
            .into_iter()
            .enumerate()
            .map(|(i, (signature, area, representative))| Subregion {
                id: SubregionId(i),
                signature,
                area,
                weight: 1.0,
                representative,
            })
            .collect();

        Arrangement {
            omega,
            n_sensors: n,
            subregions,
        }
    }

    /// Applies a preference weight field `w(p)` — each subregion's weight is
    /// evaluated at its representative point.
    ///
    /// # Examples
    ///
    /// ```
    /// use cool_geometry::{AnyRegion, Arrangement, Disk, Point, Rect};
    ///
    /// let regions: Vec<AnyRegion> = vec![Disk::new(Point::new(5.0, 5.0), 2.0).into()];
    /// let arr = Arrangement::build(Rect::square(10.0), &regions, 64)
    ///     .with_weights(|p| if p.x < 5.0 { 2.0 } else { 1.0 });
    /// assert!(arr.subregions().iter().all(|s| s.weight >= 1.0));
    /// ```
    #[must_use]
    pub fn with_weights<F: Fn(Point) -> f64>(mut self, weight: F) -> Self {
        for sub in &mut self.subregions {
            let w = weight(sub.representative);
            assert!(
                w.is_finite() && w >= 0.0,
                "weights must be non-negative and finite, got {w}"
            );
            sub.weight = w;
        }
        self
    }

    /// The area of interest.
    pub fn omega(&self) -> Rect {
        self.omega
    }

    /// Number of sensors in the deployment (the signature universe).
    pub fn n_sensors(&self) -> usize {
        self.n_sensors
    }

    /// The subregions, in deterministic order.
    pub fn subregions(&self) -> &[Subregion] {
        &self.subregions
    }

    /// Total area covered by at least one sensor (`Σ |A_i|`).
    pub fn total_coverable_area(&self) -> f64 {
        self.subregions.iter().map(|s| s.area).sum()
    }

    /// Total *weighted* coverable area (`Σ w_i · |A_i|`) — the maximum of
    /// Eq. (2) over all activation sets.
    pub fn total_coverable_weight(&self) -> f64 {
        self.subregions.iter().map(|s| s.weight * s.area).sum()
    }

    /// Area of `Ω` covered by at least `k` sensors of the full deployment —
    /// the k-coverage profile (`k = 1` gives
    /// [`total_coverable_area`](Arrangement::total_coverable_area)).
    ///
    /// # Examples
    ///
    /// ```
    /// use cool_geometry::{AnyRegion, Arrangement, Disk, Point, Rect};
    ///
    /// let regions: Vec<AnyRegion> = vec![
    ///     Disk::new(Point::new(4.0, 5.0), 2.0).into(),
    ///     Disk::new(Point::new(5.0, 5.0), 2.0).into(),
    /// ];
    /// let arr = Arrangement::build(Rect::square(10.0), &regions, 256);
    /// let lens = arr.area_covered_at_least(2);
    /// assert!(lens > 0.0 && lens < arr.area_covered_at_least(1));
    /// assert_eq!(arr.area_covered_at_least(3), 0.0);
    /// ```
    pub fn area_covered_at_least(&self, k: usize) -> f64 {
        self.subregions
            .iter()
            .filter(|s| s.signature.len() >= k)
            .map(|s| s.area)
            .sum()
    }

    /// Area of `Ω` covered by at least `k` sensors of the `active` subset.
    ///
    /// # Panics
    ///
    /// Panics if `active` is drawn from a different universe size.
    pub fn active_area_covered_at_least(&self, active: &SensorSet, k: usize) -> f64 {
        assert_eq!(
            active.universe(),
            self.n_sensors,
            "active set universe does not match the deployment"
        );
        self.subregions
            .iter()
            .filter(|s| s.signature.intersection_len(active) >= k)
            .map(|s| s.area)
            .sum()
    }

    /// Eq. (2): the weighted area covered when `active` sensors are on,
    /// `U(S) = Σ_i I_i(S) · w_i · |A_i|`.
    ///
    /// # Panics
    ///
    /// Panics if `active` is drawn from a different universe size.
    pub fn covered_weighted_area(&self, active: &SensorSet) -> f64 {
        assert_eq!(
            active.universe(),
            self.n_sensors,
            "active set universe does not match the deployment"
        );
        self.subregions
            .iter()
            .filter(|s| !s.signature.is_disjoint(active))
            .map(|s| s.weight * s.area)
            .sum()
    }

    /// The subset of sensors covering point `p` — i.e. `p`'s signature.
    ///
    /// Computed from the stored subregions (cheap, grid-resolution accurate):
    /// the signature of the subregion whose representative grid cell `p`
    /// falls in is not stored per-cell, so this method recomputes from the
    /// subregion list by locating the subregion containing `p`'s nearest
    /// representative — callers needing exact membership should query the
    /// regions directly.
    pub fn is_covered(&self, active: &SensorSet, p: Point) -> bool {
        // Nearest-representative heuristic; exact enough for diagnostics.
        self.subregions
            .iter()
            .filter(|s| !s.signature.is_disjoint(active))
            .any(|s| s.representative.distance_squared(p) < f64::EPSILON.sqrt())
            || self
                .subregions
                .iter()
                .min_by(|a, b| {
                    a.representative
                        .distance_squared(p)
                        .total_cmp(&b.representative.distance_squared(p))
                })
                .is_some_and(|s| !s.signature.is_disjoint(active))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnyRegion, Disk};
    use cool_common::SensorId;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    fn two_disk_arrangement(resolution: usize) -> Arrangement {
        let regions: Vec<AnyRegion> = vec![
            Disk::new(Point::new(4.0, 5.0), 2.0).into(),
            Disk::new(Point::new(6.0, 5.0), 2.0).into(),
        ];
        Arrangement::build(Rect::square(10.0), &regions, resolution)
    }

    #[test]
    fn single_disk_produces_one_subregion_with_disk_area() {
        let regions: Vec<AnyRegion> = vec![Disk::new(Point::new(5.0, 5.0), 2.0).into()];
        let arr = Arrangement::build(Rect::square(10.0), &regions, 512);
        assert_eq!(arr.subregions().len(), 1);
        let sub = &arr.subregions()[0];
        assert!(sub.signature.contains(SensorId(0)));
        assert!(
            (sub.area - PI * 4.0).abs() / (PI * 4.0) < 0.01,
            "grid area {} vs πr² {}",
            sub.area,
            PI * 4.0
        );
    }

    #[test]
    fn two_overlapping_disks_make_three_subregions() {
        let arr = two_disk_arrangement(512);
        assert_eq!(arr.subregions().len(), 3);
        let sigs: Vec<usize> = arr.subregions().iter().map(|s| s.signature.len()).collect();
        assert_eq!(sigs.iter().filter(|&&l| l == 1).count(), 2);
        assert_eq!(sigs.iter().filter(|&&l| l == 2).count(), 1);
    }

    #[test]
    fn lens_area_matches_closed_form() {
        let arr = two_disk_arrangement(1024);
        let lens = arr
            .subregions()
            .iter()
            .find(|s| s.signature.len() == 2)
            .expect("overlap subregion exists");
        let exact = crate::disk_intersection_area(
            &Disk::new(Point::new(4.0, 5.0), 2.0),
            &Disk::new(Point::new(6.0, 5.0), 2.0),
        );
        assert!(
            (lens.area - exact).abs() / exact < 0.02,
            "grid lens {} vs exact {}",
            lens.area,
            exact
        );
    }

    #[test]
    fn disk_clipped_by_omega_boundary() {
        // Disk centred on the corner: only a quarter lies inside Ω.
        let regions: Vec<AnyRegion> = vec![Disk::new(Point::new(0.0, 0.0), 2.0).into()];
        let arr = Arrangement::build(Rect::square(10.0), &regions, 512);
        let area = arr.total_coverable_area();
        assert!(
            (area - PI).abs() / PI < 0.02,
            "quarter disk area {area} vs π {PI}"
        );
    }

    #[test]
    fn region_outside_omega_is_ignored() {
        let regions: Vec<AnyRegion> = vec![Disk::new(Point::new(50.0, 50.0), 2.0).into()];
        let arr = Arrangement::build(Rect::square(10.0), &regions, 64);
        assert!(arr.subregions().is_empty());
        assert_eq!(arr.total_coverable_area(), 0.0);
    }

    #[test]
    fn covered_area_full_set_equals_total() {
        let arr = two_disk_arrangement(256);
        let all = SensorSet::full(2);
        assert!((arr.covered_weighted_area(&all) - arr.total_coverable_weight()).abs() < 1e-9);
        let none = SensorSet::new(2);
        assert_eq!(arr.covered_weighted_area(&none), 0.0);
    }

    #[test]
    fn covered_area_single_sensor_counts_lens_once() {
        let arr = two_disk_arrangement(512);
        let only0 = SensorSet::from_indices(2, [0]);
        // Activating disk 0 covers its full (unclipped) disk: π·r².
        let expected = PI * 4.0;
        let got = arr.covered_weighted_area(&only0);
        assert!(
            (got - expected).abs() / expected < 0.02,
            "{got} vs {expected}"
        );
    }

    #[test]
    fn weights_scale_covered_area() {
        let arr = two_disk_arrangement(256);
        let weighted = arr.clone().with_weights(|_| 3.0);
        let all = SensorSet::full(2);
        assert!(
            (weighted.covered_weighted_area(&all) - 3.0 * arr.covered_weighted_area(&all)).abs()
                < 1e-9
        );
    }

    #[test]
    fn empty_deployment_is_fine() {
        let arr = Arrangement::build(Rect::square(1.0), &Vec::<AnyRegion>::new(), 8);
        assert_eq!(arr.n_sensors(), 0);
        assert!(arr.subregions().is_empty());
    }

    #[test]
    #[should_panic(expected = "universe")]
    fn mismatched_active_universe_panics() {
        let arr = two_disk_arrangement(64);
        let wrong = SensorSet::new(3);
        let _ = arr.covered_weighted_area(&wrong);
    }

    #[test]
    fn adaptive_matches_grid_structure() {
        let grid = two_disk_arrangement(512);
        let regions: Vec<AnyRegion> = vec![
            Disk::new(Point::new(4.0, 5.0), 2.0).into(),
            Disk::new(Point::new(6.0, 5.0), 2.0).into(),
        ];
        let adaptive = Arrangement::build_adaptive(Rect::square(10.0), &regions, 9);
        assert_eq!(adaptive.subregions().len(), 3);
        // Same signatures, closely matching areas.
        for sub in grid.subregions() {
            let twin = adaptive
                .subregions()
                .iter()
                .find(|s| s.signature == sub.signature)
                .expect("same signature present");
            assert!(
                (twin.area - sub.area).abs() / sub.area < 0.02,
                "signature {:?}: adaptive {} vs grid {}",
                sub.signature,
                twin.area,
                sub.area
            );
        }
    }

    #[test]
    fn adaptive_is_more_accurate_than_same_depth_grid() {
        // One disk: compare |area − πr²| for grid at 2^6 = 64 cells/side vs
        // adaptive at depth 6 (same finest cell size).
        let regions: Vec<AnyRegion> = vec![Disk::new(Point::new(5.0, 5.0), 2.0).into()];
        let omega = Rect::square(10.0);
        let exact = PI * 4.0;
        let grid = Arrangement::build(omega, &regions, 64).total_coverable_area();
        let adaptive = Arrangement::build_adaptive(omega, &regions, 6).total_coverable_area();
        assert!(
            (adaptive - exact).abs() <= (grid - exact).abs() + 1e-9,
            "adaptive {adaptive} vs grid {grid} vs exact {exact}"
        );
    }

    #[test]
    fn adaptive_handles_full_cover_and_empty() {
        // A rect region covering all of Ω terminates at depth 0.
        let regions: Vec<AnyRegion> = vec![Rect::square(10.0).into()];
        let arr = Arrangement::build_adaptive(Rect::square(10.0), &regions, 8);
        assert_eq!(arr.subregions().len(), 1);
        assert!(
            (arr.total_coverable_area() - 100.0).abs() < 1e-9,
            "exact, no refinement"
        );

        let empty = Arrangement::build_adaptive(Rect::square(1.0), &Vec::<AnyRegion>::new(), 4);
        assert!(empty.subregions().is_empty());
    }

    #[test]
    fn k_coverage_profile_is_monotone_and_matches_lens() {
        let arr = two_disk_arrangement(512);
        let all = arr.area_covered_at_least(1);
        let double = arr.area_covered_at_least(2);
        assert!(all > double && double > 0.0);
        assert_eq!(arr.area_covered_at_least(3), 0.0);
        assert_eq!(
            arr.area_covered_at_least(0),
            all,
            "k = 0 counts covered cells only"
        );

        // The ≥2 region is exactly the lens.
        let exact = crate::disk_intersection_area(
            &Disk::new(Point::new(4.0, 5.0), 2.0),
            &Disk::new(Point::new(6.0, 5.0), 2.0),
        );
        assert!((double - exact).abs() / exact < 0.02, "{double} vs {exact}");

        // Active-subset variant: only one disk on ⇒ no 2-covered area.
        let one = SensorSet::from_indices(2, [0]);
        assert_eq!(arr.active_area_covered_at_least(&one, 2), 0.0);
        assert!(arr.active_area_covered_at_least(&one, 1) > 0.0);
        let both = SensorSet::full(2);
        assert!((arr.active_area_covered_at_least(&both, 2) - double).abs() < 1e-9);
    }

    #[test]
    fn subregion_order_is_deterministic() {
        let a = two_disk_arrangement(128);
        let b = two_disk_arrangement(128);
        let ids_a: Vec<_> = a.subregions().iter().map(|s| s.signature.clone()).collect();
        let ids_b: Vec<_> = b.subregions().iter().map(|s| s.signature.clone()).collect();
        assert_eq!(ids_a, ids_b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Eq. (2) is monotone: adding sensors never reduces covered area.
        #[test]
        fn covered_area_is_monotone(
            xs in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0.5f64..3.0), 1..6),
            sub in proptest::collection::vec(any::<bool>(), 6),
        ) {
            let regions: Vec<AnyRegion> = xs
                .iter()
                .map(|&(x, y, r)| Disk::new(Point::new(x, y), r).into())
                .collect();
            let arr = Arrangement::build(Rect::square(10.0), &regions, 64);
            let n = regions.len();
            let smaller = SensorSet::from_indices(
                n,
                (0..n).filter(|&i| sub[i]),
            );
            let mut larger = smaller.clone();
            larger.insert(SensorId(0));
            prop_assert!(
                arr.covered_weighted_area(&larger) + 1e-9 >= arr.covered_weighted_area(&smaller)
            );
        }

        /// Subregion areas partition the covered area: Σ areas = area(∪ disks ∩ Ω).
        #[test]
        fn subregion_areas_sum_to_union_area(
            xs in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0.5f64..3.0), 1..5),
        ) {
            let regions: Vec<AnyRegion> = xs
                .iter()
                .map(|&(x, y, r)| Disk::new(Point::new(x, y), r).into())
                .collect();
            let arr = Arrangement::build(Rect::square(10.0), &regions, 128);
            let full = SensorSet::full(regions.len());
            prop_assert!(
                (arr.covered_weighted_area(&full) - arr.total_coverable_area()).abs() < 1e-9
            );
        }
    }
}
