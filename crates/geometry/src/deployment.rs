//! Deployment generators: where sensors and targets are placed.
//!
//! The paper's testbed deploys 100 solar TelosB motes on a rooftop (§VI) and
//! its larger simulation scales to 500 sensors and 50 targets (Fig. 9).
//! These generators produce the positions for such synthetic deployments,
//! deterministically from a caller-supplied RNG.

use crate::{Disk, Point, Rect};
use cool_common::{SensorId, SensorSet};
use rand::Rng;

/// The spatial law used to place sensors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeploymentKind {
    /// Independent uniform positions in `Ω`.
    UniformRandom,
    /// A near-square grid, row-major, centred in each cell.
    Grid,
    /// Grid positions with independent uniform jitter of at most
    /// `jitter` × cell-size in each coordinate — models hand-placed testbeds.
    JitteredGrid {
        /// Fraction of a grid cell by which each node may deviate, in `[0, 0.5]`.
        jitter: f64,
    },
    /// `clusters` uniform cluster centres, nodes scattered around a random
    /// centre with Gaussian spread `spread` — models clustered field drops.
    Clustered {
        /// Number of cluster centres.
        clusters: usize,
        /// Standard deviation of the per-node scatter.
        spread: f64,
    },
    /// Dart-throwing Poisson-disk: uniform proposals rejected when closer
    /// than `min_distance` to an accepted node (best effort — falls back to
    /// accepting after many failed proposals so `n` is always reached).
    PoissonDisk {
        /// Desired minimum pairwise distance.
        min_distance: f64,
    },
}

/// A deployment request: how many sensors, where, with what law.
///
/// # Examples
///
/// ```
/// use cool_geometry::{DeploymentKind, DeploymentSpec, Rect};
/// use cool_common::SeedSequence;
///
/// let spec = DeploymentSpec::new(Rect::square(100.0), 100, DeploymentKind::UniformRandom);
/// let mut rng = SeedSequence::new(1).nth_rng(0);
/// let positions = spec.generate(&mut rng);
/// assert_eq!(positions.len(), 100);
/// assert!(positions.iter().all(|&p| spec.omega().contains(p)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeploymentSpec {
    omega: Rect,
    n: usize,
    kind: DeploymentKind,
}

impl DeploymentSpec {
    /// Creates a deployment spec.
    ///
    /// # Panics
    ///
    /// Panics if parameters are out of range (`jitter ∉ [0, 0.5]`,
    /// `clusters == 0`, negative `spread`/`min_distance`).
    pub fn new(omega: Rect, n: usize, kind: DeploymentKind) -> Self {
        match kind {
            DeploymentKind::JitteredGrid { jitter } => {
                assert!(
                    (0.0..=0.5).contains(&jitter),
                    "jitter must be in [0, 0.5], got {jitter}"
                );
            }
            DeploymentKind::Clustered { clusters, spread } => {
                assert!(clusters > 0, "need at least one cluster");
                assert!(
                    spread.is_finite() && spread >= 0.0,
                    "spread must be non-negative"
                );
            }
            DeploymentKind::PoissonDisk { min_distance } => {
                assert!(
                    min_distance.is_finite() && min_distance >= 0.0,
                    "min distance must be non-negative"
                );
            }
            DeploymentKind::UniformRandom | DeploymentKind::Grid => {}
        }
        DeploymentSpec { omega, n, kind }
    }

    /// The area of interest.
    pub fn omega(&self) -> Rect {
        self.omega
    }

    /// Number of sensors to place.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The placement law.
    pub fn kind(&self) -> DeploymentKind {
        self.kind
    }

    /// Generates the sensor positions.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Point> {
        match self.kind {
            DeploymentKind::UniformRandom => (0..self.n)
                .map(|_| uniform_point(self.omega, rng))
                .collect(),
            DeploymentKind::Grid => self.grid_points(0.0, rng),
            DeploymentKind::JitteredGrid { jitter } => self.grid_points(jitter, rng),
            DeploymentKind::Clustered { clusters, spread } => {
                let centers: Vec<Point> = (0..clusters)
                    .map(|_| uniform_point(self.omega, rng))
                    .collect();
                (0..self.n)
                    .map(|_| {
                        let c = centers[rng.random_range(0..centers.len())];
                        let p =
                            Point::new(c.x + gaussian(rng) * spread, c.y + gaussian(rng) * spread);
                        clamp_to(self.omega, p)
                    })
                    .collect()
            }
            DeploymentKind::PoissonDisk { min_distance } => {
                let mut accepted: Vec<Point> = Vec::with_capacity(self.n);
                let d2 = min_distance * min_distance;
                while accepted.len() < self.n {
                    let mut placed = false;
                    for _ in 0..64 {
                        let p = uniform_point(self.omega, rng);
                        if accepted.iter().all(|q| q.distance_squared(p) >= d2) {
                            accepted.push(p);
                            placed = true;
                            break;
                        }
                    }
                    if !placed {
                        // Saturated: accept an unconstrained point so the
                        // requested count is always met.
                        accepted.push(uniform_point(self.omega, rng));
                    }
                }
                accepted
            }
        }
    }

    fn grid_points<R: Rng + ?Sized>(&self, jitter: f64, rng: &mut R) -> Vec<Point> {
        if self.n == 0 {
            return Vec::new();
        }
        let cols = (self.n as f64).sqrt().ceil() as usize;
        let rows = self.n.div_ceil(cols);
        let cw = self.omega.width() / cols as f64;
        let ch = self.omega.height() / rows as f64;
        (0..self.n)
            .map(|i| {
                let (r, c) = (i / cols, i % cols);
                let base = Point::new(
                    self.omega.min().x + (c as f64 + 0.5) * cw,
                    self.omega.min().y + (r as f64 + 0.5) * ch,
                );
                let p = if jitter > 0.0 {
                    Point::new(
                        base.x + rng.random_range(-jitter..jitter) * cw,
                        base.y + rng.random_range(-jitter..jitter) * ch,
                    )
                } else {
                    base
                };
                clamp_to(self.omega, p)
            })
            .collect()
    }
}

/// Places `m` targets uniformly at random in `omega`.
///
/// # Examples
///
/// ```
/// use cool_geometry::{deployment::uniform_targets, Rect};
/// use cool_common::SeedSequence;
///
/// let mut rng = SeedSequence::new(2).nth_rng(0);
/// let targets = uniform_targets(Rect::square(50.0), 10, &mut rng);
/// assert_eq!(targets.len(), 10);
/// ```
pub fn uniform_targets<R: Rng + ?Sized>(omega: Rect, m: usize, rng: &mut R) -> Vec<Point> {
    (0..m).map(|_| uniform_point(omega, rng)).collect()
}

/// Builds identical-radius disk sensing regions at the given positions.
pub fn disks_at(positions: &[Point], radius: f64) -> Vec<Disk> {
    positions.iter().map(|&p| Disk::new(p, radius)).collect()
}

/// The set of sensors (by index into `disks`) covering `target` —
/// the paper's `V(O_i)`.
///
/// # Examples
///
/// ```
/// use cool_geometry::{deployment::{disks_at, sensors_covering}, Point};
///
/// let disks = disks_at(&[Point::new(0.0, 0.0), Point::new(10.0, 0.0)], 2.0);
/// let cover = sensors_covering(Point::new(1.0, 0.0), &disks);
/// assert_eq!(cover.len(), 1);
/// assert!(cover.contains(cool_common::SensorId(0)));
/// ```
pub fn sensors_covering(target: Point, disks: &[Disk]) -> SensorSet {
    use crate::Region;
    let mut set = SensorSet::new(disks.len());
    for (i, d) in disks.iter().enumerate() {
        if d.contains(target) {
            set.insert(SensorId(i));
        }
    }
    set
}

fn uniform_point<R: Rng + ?Sized>(omega: Rect, rng: &mut R) -> Point {
    Point::new(
        rng.random_range(omega.min().x..=omega.max().x),
        rng.random_range(omega.min().y..=omega.max().y),
    )
}

fn clamp_to(omega: Rect, p: Point) -> Point {
    Point::new(
        p.x.clamp(omega.min().x, omega.max().x),
        p.y.clamp(omega.min().y, omega.max().y),
    )
}

/// Standard normal via Box–Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::SeedSequence;

    fn rng() -> rand::rngs::StdRng {
        SeedSequence::new(42).nth_rng(0)
    }

    #[test]
    fn uniform_stays_in_omega() {
        let spec = DeploymentSpec::new(Rect::square(100.0), 500, DeploymentKind::UniformRandom);
        let pts = spec.generate(&mut rng());
        assert_eq!(pts.len(), 500);
        assert!(pts.iter().all(|&p| spec.omega().contains(p)));
    }

    #[test]
    fn grid_is_deterministic_and_even() {
        let spec = DeploymentSpec::new(Rect::square(100.0), 100, DeploymentKind::Grid);
        let a = spec.generate(&mut rng());
        let b = spec.generate(&mut rng());
        assert_eq!(a, b, "grid ignores the RNG");
        // 10×10 grid: first point at (5, 5).
        assert_eq!(a[0], Point::new(5.0, 5.0));
        assert_eq!(a[99], Point::new(95.0, 95.0));
    }

    #[test]
    fn non_square_grid_count_is_respected() {
        let spec = DeploymentSpec::new(Rect::square(100.0), 7, DeploymentKind::Grid);
        assert_eq!(spec.generate(&mut rng()).len(), 7);
    }

    #[test]
    fn jittered_grid_stays_in_omega() {
        let spec = DeploymentSpec::new(
            Rect::square(10.0),
            50,
            DeploymentKind::JitteredGrid { jitter: 0.5 },
        );
        let pts = spec.generate(&mut rng());
        assert!(pts.iter().all(|&p| spec.omega().contains(p)));
        let grid =
            DeploymentSpec::new(Rect::square(10.0), 50, DeploymentKind::Grid).generate(&mut rng());
        assert_ne!(pts, grid, "jitter moves points");
    }

    #[test]
    fn clustered_points_cluster() {
        let spec = DeploymentSpec::new(
            Rect::square(1000.0),
            200,
            DeploymentKind::Clustered {
                clusters: 2,
                spread: 5.0,
            },
        );
        let pts = spec.generate(&mut rng());
        assert_eq!(pts.len(), 200);
        // Mean nearest-neighbour distance must be far below the uniform
        // expectation (~0.5·√(A/n) ≈ 35) because points concentrate.
        let mean_nn: f64 = pts
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                pts.iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &q)| p.distance(q))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / pts.len() as f64;
        assert!(
            mean_nn < 10.0,
            "clustered mean-NN {mean_nn} should be small"
        );
    }

    #[test]
    fn poisson_disk_respects_min_distance_when_feasible() {
        let spec = DeploymentSpec::new(
            Rect::square(100.0),
            20,
            DeploymentKind::PoissonDisk { min_distance: 10.0 },
        );
        let pts = spec.generate(&mut rng());
        assert_eq!(pts.len(), 20);
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                assert!(
                    pts[i].distance(pts[j]) >= 10.0 - 1e-9,
                    "pair ({i},{j}) too close"
                );
            }
        }
    }

    #[test]
    fn poisson_disk_saturated_still_returns_n() {
        // 100 nodes at min distance 50 in a 10×10 box is impossible; the
        // generator must fall back rather than loop forever.
        let spec = DeploymentSpec::new(
            Rect::square(10.0),
            100,
            DeploymentKind::PoissonDisk { min_distance: 50.0 },
        );
        assert_eq!(spec.generate(&mut rng()).len(), 100);
    }

    #[test]
    fn sensors_covering_respects_radius() {
        let disks = disks_at(&[Point::new(0.0, 0.0), Point::new(4.0, 0.0)], 2.5);
        let cover = sensors_covering(Point::new(2.0, 0.0), &disks);
        assert_eq!(cover.len(), 2);
        let cover = sensors_covering(Point::new(-2.0, 0.0), &disks);
        assert_eq!(cover.len(), 1);
        let cover = sensors_covering(Point::new(100.0, 0.0), &disks);
        assert!(cover.is_empty());
    }

    #[test]
    fn generation_is_reproducible_from_seed() {
        let spec = DeploymentSpec::new(Rect::square(10.0), 30, DeploymentKind::UniformRandom);
        let a = spec.generate(&mut SeedSequence::new(5).nth_rng(1));
        let b = spec.generate(&mut SeedSequence::new(5).nth_rng(1));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn excessive_jitter_panics() {
        let _ = DeploymentSpec::new(
            Rect::square(1.0),
            1,
            DeploymentKind::JitteredGrid { jitter: 0.9 },
        );
    }

    #[test]
    fn zero_sensors_is_fine() {
        let spec = DeploymentSpec::new(Rect::square(1.0), 0, DeploymentKind::Grid);
        assert!(spec.generate(&mut rng()).is_empty());
    }
}
