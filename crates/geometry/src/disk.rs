//! Exact disk–disk intersection area.
//!
//! Used to cross-check the numerical arrangement areas and to compute
//! pairwise coverage overlap statistics for deployments.

use crate::region::Disk;

/// Exact area of the intersection of two disks (the "lens" area).
///
/// Handles all configurations: disjoint (`0`), one containing the other
/// (area of the smaller), and partial overlap (circular-segment formula).
///
/// # Examples
///
/// ```
/// use cool_geometry::{disk_intersection_area, Disk, Point};
/// use std::f64::consts::PI;
///
/// let a = Disk::new(Point::new(0.0, 0.0), 1.0);
/// let b = Disk::new(Point::new(3.0, 0.0), 1.0);
/// assert_eq!(disk_intersection_area(&a, &b), 0.0);
///
/// let c = Disk::new(Point::new(0.0, 0.0), 2.0);
/// assert!((disk_intersection_area(&a, &c) - PI).abs() < 1e-12); // a ⊂ c
/// ```
pub fn disk_intersection_area(a: &Disk, b: &Disk) -> f64 {
    let d = a.center().distance(b.center());
    let (r, s) = (a.radius(), b.radius());

    if d >= r + s {
        return 0.0; // disjoint (or tangent)
    }
    if d + r.min(s) <= r.max(s) {
        // Smaller disk entirely inside the larger.
        let rm = r.min(s);
        return std::f64::consts::PI * rm * rm;
    }

    // Partial overlap: sum of two circular segments.
    // Half-angle at each centre subtended by the chord through the two
    // circle-circle intersection points.
    let alpha = ((d * d + r * r - s * s) / (2.0 * d * r))
        .clamp(-1.0, 1.0)
        .acos();
    let beta = ((d * d + s * s - r * r) / (2.0 * d * s))
        .clamp(-1.0, 1.0)
        .acos();
    r * r * (alpha - alpha.sin() * alpha.cos()) + s * s * (beta - beta.sin() * beta.cos())
}

/// The points where two circles intersect, if they cross transversally.
///
/// Returns `None` when the circles are disjoint, nested, or identical.
///
/// # Examples
///
/// ```
/// use cool_geometry::{disk::circle_intersection_points, Disk, Point};
///
/// let a = Disk::new(Point::new(0.0, 0.0), 1.0);
/// let b = Disk::new(Point::new(1.0, 0.0), 1.0);
/// let (p, q) = circle_intersection_points(&a, &b).unwrap();
/// assert!((p.x - 0.5).abs() < 1e-12 && (q.x - 0.5).abs() < 1e-12);
/// ```
pub fn circle_intersection_points(a: &Disk, b: &Disk) -> Option<(crate::Point, crate::Point)> {
    let d = a.center().distance(b.center());
    let (r, s) = (a.radius(), b.radius());
    if d == 0.0 || d > r + s || d < (r - s).abs() {
        return None;
    }
    // Distance from a's centre to the chord, along the centre line.
    let x = (d * d + r * r - s * s) / (2.0 * d);
    let h_sq = r * r - x * x;
    if h_sq < 0.0 {
        return None;
    }
    let h = h_sq.sqrt();
    let dir = (b.center() - a.center()) * (1.0 / d);
    let mid = a.center() + dir * x;
    let perp = crate::Point::new(-dir.y, dir.x);
    Some((mid + perp * h, mid + perp * (-h)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Point, Region};
    use proptest::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn identical_disks_intersect_fully() {
        let d = Disk::new(Point::new(1.0, 1.0), 2.0);
        assert!((disk_intersection_area(&d, &d) - PI * 4.0).abs() < 1e-12);
    }

    #[test]
    fn tangent_disks_have_zero_intersection() {
        let a = Disk::new(Point::new(0.0, 0.0), 1.0);
        let b = Disk::new(Point::new(2.0, 0.0), 1.0);
        assert_eq!(disk_intersection_area(&a, &b), 0.0);
    }

    #[test]
    fn half_overlap_known_value() {
        // Two unit circles at distance 1: lens area = 2π/3 − √3/2.
        let a = Disk::new(Point::new(0.0, 0.0), 1.0);
        let b = Disk::new(Point::new(1.0, 0.0), 1.0);
        let expected = 2.0 * PI / 3.0 - 3f64.sqrt() / 2.0;
        assert!((disk_intersection_area(&a, &b) - expected).abs() < 1e-12);
    }

    #[test]
    fn nested_disks_return_smaller_area() {
        let big = Disk::new(Point::new(0.0, 0.0), 5.0);
        let small = Disk::new(Point::new(1.0, 0.0), 1.0);
        assert!((disk_intersection_area(&big, &small) - PI).abs() < 1e-12);
        assert!((disk_intersection_area(&small, &big) - PI).abs() < 1e-12);
    }

    #[test]
    fn zero_radius_disk_has_zero_intersection() {
        let a = Disk::new(Point::new(0.0, 0.0), 0.0);
        let b = Disk::new(Point::new(0.0, 0.0), 1.0);
        assert_eq!(disk_intersection_area(&a, &b), 0.0);
    }

    #[test]
    fn intersection_points_lie_on_both_circles() {
        let a = Disk::new(Point::new(0.0, 0.0), 2.0);
        let b = Disk::new(Point::new(3.0, 1.0), 1.5);
        let (p, q) = circle_intersection_points(&a, &b).expect("circles cross");
        for pt in [p, q] {
            assert!((a.center().distance(pt) - a.radius()).abs() < 1e-9);
            assert!((b.center().distance(pt) - b.radius()).abs() < 1e-9);
        }
        assert!(p.distance(q) > 1e-9, "two distinct points");
    }

    #[test]
    fn no_intersection_points_when_nested_or_disjoint() {
        let a = Disk::new(Point::new(0.0, 0.0), 5.0);
        let inner = Disk::new(Point::new(0.5, 0.0), 1.0);
        let far = Disk::new(Point::new(100.0, 0.0), 1.0);
        assert!(circle_intersection_points(&a, &inner).is_none());
        assert!(circle_intersection_points(&a, &far).is_none());
        assert!(
            circle_intersection_points(&a, &a).is_none(),
            "identical circles"
        );
    }

    /// Monte-Carlo cross-check of the closed form.
    #[test]
    fn monte_carlo_agrees_with_closed_form() {
        use rand::Rng;
        let a = Disk::new(Point::new(0.0, 0.0), 2.0);
        let b = Disk::new(Point::new(1.5, 0.7), 1.3);
        let exact = disk_intersection_area(&a, &b);

        let bbox = a.bounding_box();
        let mut rng = cool_common::SeedSequence::new(7).nth_rng(0);
        let samples = 400_000;
        let mut hits = 0u32;
        for _ in 0..samples {
            let p = Point::new(
                rng.random_range(bbox.min().x..bbox.max().x),
                rng.random_range(bbox.min().y..bbox.max().y),
            );
            if a.contains(p) && b.contains(p) {
                hits += 1;
            }
        }
        let estimate = f64::from(hits) / f64::from(samples) * bbox.area();
        assert!(
            (estimate - exact).abs() < 0.05,
            "MC {estimate} vs exact {exact}"
        );
    }

    proptest! {
        #[test]
        fn area_is_symmetric_and_bounded(
            ax in -10f64..10.0, ay in -10f64..10.0, ar in 0.0f64..5.0,
            bx in -10f64..10.0, by in -10f64..10.0, br in 0.0f64..5.0,
        ) {
            let a = Disk::new(Point::new(ax, ay), ar);
            let b = Disk::new(Point::new(bx, by), br);
            let ab = disk_intersection_area(&a, &b);
            let ba = disk_intersection_area(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-9);
            prop_assert!(ab >= 0.0);
            prop_assert!(ab <= PI * ar * ar + 1e-9);
            prop_assert!(ab <= PI * br * br + 1e-9);
        }
    }
}
