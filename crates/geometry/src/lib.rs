//! Planar geometry substrate for the `cool` workspace.
//!
//! The paper deploys sensors in a two-dimensional region: each sensor `v_i`
//! monitors a fixed region `R(v_i)` (typically a disk), targets are points,
//! and for region monitoring the area of interest `Ω` is subdivided by the
//! sensing regions into at most polynomially-many subregions `A_1..A_b`
//! (Fig. 3(b)), each with an area `|A_i|` and a preference weight `w_i`
//! feeding the utility of Eq. (2).
//!
//! This crate provides:
//!
//! * [`Point`] and [`Rect`] primitives ([`point`]);
//! * the [`Region`] trait with [`Disk`], [`Rect`], [`ConvexPolygon`] and
//!   [`Sector`] implementations ([`region`]);
//! * exact two-disk intersection area ([`disk`]);
//! * [`Arrangement`]: the signature-based subdivision of `Ω`
//!   ([`arrangement`]);
//! * deployment and target-placement generators ([`deployment`]).
//!
//! # Examples
//!
//! ```
//! use cool_geometry::{Disk, Point, Region};
//!
//! let sensor = Disk::new(Point::new(0.0, 0.0), 10.0);
//! assert!(sensor.contains(Point::new(3.0, 4.0)));
//! assert!(!sensor.contains(Point::new(8.0, 8.0)));
//! ```

pub mod arrangement;
pub mod deployment;
pub mod disk;
pub mod point;
pub mod region;

pub use arrangement::{Arrangement, Subregion};
pub use deployment::{DeploymentKind, DeploymentSpec};
pub use disk::disk_intersection_area;
pub use point::{Point, Rect};
pub use region::{AnyRegion, CellRelation, ConvexPolygon, Disk, Region, Sector};
