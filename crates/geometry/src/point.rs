//! Points and axis-aligned rectangles.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point (or vector) in the plane.
///
/// # Examples
///
/// ```
/// use cool_geometry::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert!((a.distance(b) - 5.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the `sqrt` on hot
    /// paths such as coverage tests).
    #[inline]
    pub fn distance_squared(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Dot product, treating both points as vectors.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the cross product `self × other`, treating both points
    /// as vectors. Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm, treating the point as a vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

/// An axis-aligned rectangle, used for the area of interest `Ω` and for
/// bounding boxes.
///
/// Invariant: `min.x <= max.x` and `min.y <= max.y` (enforced by
/// [`Rect::new`]).
///
/// # Examples
///
/// ```
/// use cool_geometry::{Point, Rect};
///
/// let omega = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 50.0));
/// assert_eq!(omega.area(), 5000.0);
/// assert!(omega.contains(Point::new(10.0, 10.0)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from two corners.
    ///
    /// # Panics
    ///
    /// Panics if any `min` coordinate exceeds the corresponding `max`
    /// coordinate, or if any coordinate is not finite.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(
            min.x.is_finite() && min.y.is_finite() && max.x.is_finite() && max.y.is_finite(),
            "rectangle corners must be finite"
        );
        assert!(
            min.x <= max.x && min.y <= max.y,
            "invalid rectangle: min {min} exceeds max {max}"
        );
        Rect { min, max }
    }

    /// Creates the square `[0, side] × [0, side]`.
    ///
    /// # Panics
    ///
    /// Panics if `side` is negative or not finite.
    pub fn square(side: f64) -> Self {
        assert!(
            side.is_finite() && side >= 0.0,
            "side must be non-negative, got {side}"
        );
        Rect::new(Point::ORIGIN, Point::new(side, side))
    }

    /// Lower-left corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width (extent along x).
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (extent along y).
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point.
    pub fn center(&self) -> Point {
        Point::new(
            f64::midpoint(self.min.x, self.max.x),
            f64::midpoint(self.min.y, self.max.y),
        )
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` if the rectangles overlap (sharing a boundary counts).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The intersection rectangle, or `None` if disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect::new(
            Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        ))
    }

    /// Smallest rectangle containing both.
    #[must_use]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn point_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(b - a, Point::new(2.0, -3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
        assert!((Point::new(3.0, 4.0).norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(2.0, 5.0);
        let b = Point::new(-1.0, 9.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
        assert_eq!(a.distance_squared(b), 25.0);
    }

    #[test]
    fn rect_basic_queries() {
        let r = Rect::new(Point::new(1.0, 2.0), Point::new(4.0, 6.0));
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.center(), Point::new(2.5, 4.0));
        assert!(r.contains(Point::new(1.0, 2.0)), "boundary is inside");
        assert!(!r.contains(Point::new(0.999, 3.0)));
    }

    #[test]
    fn rect_intersection_and_union() {
        let a = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = Rect::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        let i = a.intersection(&b).expect("overlapping rects intersect");
        assert_eq!(i, Rect::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0)));
        assert_eq!(
            a.union(&b),
            Rect::new(Point::new(0.0, 0.0), Point::new(3.0, 3.0))
        );

        let far = Rect::new(Point::new(10.0, 10.0), Point::new(11.0, 11.0));
        assert!(a.intersection(&far).is_none());
        assert!(!a.intersects(&far));
    }

    #[test]
    fn touching_rects_intersect_with_zero_area() {
        let a = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = Rect::new(Point::new(1.0, 0.0), Point::new(2.0, 1.0));
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b).expect("edges touch").area(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid rectangle")]
    fn inverted_rect_panics() {
        let _ = Rect::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rect_panics() {
        let _ = Rect::new(Point::new(f64::NAN, 0.0), Point::new(1.0, 1.0));
    }

    #[test]
    fn square_constructor() {
        let s = Rect::square(10.0);
        assert_eq!(s.area(), 100.0);
        assert_eq!(s.min(), Point::ORIGIN);
    }

    proptest! {
        #[test]
        fn triangle_inequality(ax in -1e3f64..1e3, ay in -1e3f64..1e3,
                               bx in -1e3f64..1e3, by in -1e3f64..1e3,
                               cx in -1e3f64..1e3, cy in -1e3f64..1e3) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        }

        #[test]
        fn intersection_is_contained_in_both(
            x1 in -100f64..100.0, y1 in -100f64..100.0, w1 in 0f64..50.0, h1 in 0f64..50.0,
            x2 in -100f64..100.0, y2 in -100f64..100.0, w2 in 0f64..50.0, h2 in 0f64..50.0,
        ) {
            let a = Rect::new(Point::new(x1, y1), Point::new(x1 + w1, y1 + h1));
            let b = Rect::new(Point::new(x2, y2), Point::new(x2 + w2, y2 + h2));
            if let Some(i) = a.intersection(&b) {
                prop_assert!(i.area() <= a.area() + 1e-9);
                prop_assert!(i.area() <= b.area() + 1e-9);
                prop_assert!(a.contains(i.center()) && b.contains(i.center()));
            }
            let u = a.union(&b);
            prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
        }
    }
}
