//! Sensing regions `R(v_i)`.
//!
//! The paper fixes each sensor's operating power, hence its monitored region
//! `R(v_i)` is fixed and known; regions of different sensors may differ
//! ("the coverage patterns of different nodes can be different", §II-A).
//! [`Region`] abstracts over the shapes; [`AnyRegion`] stores heterogeneous
//! regions in one deployment.

use crate::{Point, Rect};
use std::f64::consts::PI;
use std::fmt;

/// How a region relates to an axis-aligned cell — used by the adaptive
/// arrangement to stop refining cells whose signature is already uniform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellRelation {
    /// The region covers no point of the cell.
    Outside,
    /// The region covers every point of the cell.
    Covers,
    /// The region's boundary may pass through the cell (or the
    /// implementation cannot tell) — refine further.
    Partial,
}

/// A fixed monitored region in the plane.
///
/// Implementors must be consistent: `contains(p)` implies
/// `bounding_box().contains(p)`.
pub trait Region: fmt::Debug {
    /// Returns `true` if point `p` is monitored.
    fn contains(&self, p: Point) -> bool;

    /// A rectangle enclosing the region (used to prune arrangement cells).
    fn bounding_box(&self) -> Rect;

    /// Exact area when known in closed form; `None` otherwise.
    ///
    /// The arrangement computes areas numerically regardless; this is used
    /// for cross-checks and fast paths.
    fn area_hint(&self) -> Option<f64> {
        None
    }

    /// Conservatively classifies the region against a cell. Implementations
    /// may always answer [`CellRelation::Partial`] (the default answers
    /// [`CellRelation::Outside`] only on a bounding-box miss); answering
    /// `Covers`/`Outside` must be exact, as the adaptive arrangement stops
    /// refining such cells.
    fn classify_cell(&self, cell: Rect) -> CellRelation {
        if self.bounding_box().intersects(&cell) {
            CellRelation::Partial
        } else {
            CellRelation::Outside
        }
    }
}

/// A disk sensing region: everything within `radius` of `center`.
///
/// This is the canonical omni-directional sensing model used for the paper's
/// testbed experiments.
///
/// # Examples
///
/// ```
/// use cool_geometry::{Disk, Point, Region};
///
/// let d = Disk::new(Point::new(1.0, 1.0), 2.0);
/// assert!(d.contains(Point::new(2.0, 2.0)));
/// assert_eq!(d.area_hint(), Some(std::f64::consts::PI * 4.0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Disk {
    center: Point,
    radius: f64,
}

impl Disk {
    /// Creates a disk.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be non-negative, got {radius}"
        );
        Disk { center, radius }
    }

    /// Disk centre.
    pub fn center(&self) -> Point {
        self.center
    }

    /// Disk radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }
}

impl Region for Disk {
    #[inline]
    fn contains(&self, p: Point) -> bool {
        self.center.distance_squared(p) <= self.radius * self.radius
    }

    fn bounding_box(&self) -> Rect {
        Rect::new(
            Point::new(self.center.x - self.radius, self.center.y - self.radius),
            Point::new(self.center.x + self.radius, self.center.y + self.radius),
        )
    }

    fn area_hint(&self) -> Option<f64> {
        Some(PI * self.radius * self.radius)
    }

    fn classify_cell(&self, cell: Rect) -> CellRelation {
        let r_sq = self.radius * self.radius;
        // Farthest cell corner inside the disk ⇒ the disk covers the cell.
        let fx = (self.center.x - cell.min().x)
            .abs()
            .max((self.center.x - cell.max().x).abs());
        let fy = (self.center.y - cell.min().y)
            .abs()
            .max((self.center.y - cell.max().y).abs());
        if fx * fx + fy * fy <= r_sq {
            return CellRelation::Covers;
        }
        // Distance from centre to the cell (clamped point) beyond the
        // radius ⇒ disjoint.
        let cx = self.center.x.clamp(cell.min().x, cell.max().x);
        let cy = self.center.y.clamp(cell.min().y, cell.max().y);
        if self.center.distance_squared(Point::new(cx, cy)) > r_sq {
            return CellRelation::Outside;
        }
        CellRelation::Partial
    }
}

impl Region for Rect {
    #[inline]
    fn contains(&self, p: Point) -> bool {
        Rect::contains(self, p)
    }

    fn bounding_box(&self) -> Rect {
        *self
    }

    fn area_hint(&self) -> Option<f64> {
        Some(self.area())
    }

    fn classify_cell(&self, cell: Rect) -> CellRelation {
        if Rect::contains(self, cell.min()) && Rect::contains(self, cell.max()) {
            CellRelation::Covers
        } else if !self.intersects(&cell) {
            CellRelation::Outside
        } else {
            CellRelation::Partial
        }
    }
}

/// A convex polygon sensing region (counter-clockwise vertices).
///
/// # Examples
///
/// ```
/// use cool_geometry::{ConvexPolygon, Point, Region};
///
/// let tri = ConvexPolygon::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
///     Point::new(0.0, 4.0),
/// ]);
/// assert!(tri.contains(Point::new(1.0, 1.0)));
/// assert!(!tri.contains(Point::new(3.0, 3.0)));
/// assert_eq!(tri.area_hint(), Some(8.0));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ConvexPolygon {
    vertices: Vec<Point>,
}

impl ConvexPolygon {
    /// Creates a convex polygon from vertices in counter-clockwise order.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 3 vertices are given, or if the vertex sequence
    /// is not convex counter-clockwise (within a small tolerance).
    pub fn new(vertices: Vec<Point>) -> Self {
        assert!(vertices.len() >= 3, "polygon needs at least 3 vertices");
        let n = vertices.len();
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            let c = vertices[(i + 2) % n];
            let turn = (b - a).cross(c - b);
            assert!(
                turn >= -1e-9,
                "vertices must be convex counter-clockwise (turn {turn} at vertex {i})"
            );
        }
        ConvexPolygon { vertices }
    }

    /// The vertices, counter-clockwise.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Area by the shoelace formula.
    pub fn area(&self) -> f64 {
        let n = self.vertices.len();
        let mut twice_area = 0.0;
        for i in 0..n {
            twice_area += self.vertices[i].cross(self.vertices[(i + 1) % n]);
        }
        twice_area.abs() / 2.0
    }
}

impl Region for ConvexPolygon {
    fn contains(&self, p: Point) -> bool {
        let n = self.vertices.len();
        (0..n).all(|i| {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            (b - a).cross(p - a) >= -1e-9
        })
    }

    fn bounding_box(&self) -> Rect {
        let mut min = self.vertices[0];
        let mut max = self.vertices[0];
        for v in &self.vertices[1..] {
            min = Point::new(min.x.min(v.x), min.y.min(v.y));
            max = Point::new(max.x.max(v.x), max.y.max(v.y));
        }
        Rect::new(min, max)
    }

    fn area_hint(&self) -> Option<f64> {
        Some(self.area())
    }
}

/// A directional (angular sector) sensing region — models sensors such as
/// cameras whose field of view is limited to an angular range.
///
/// Covers points within `radius` of `center` whose bearing from `center`
/// lies within `half_angle` of `heading` (angles in radians).
///
/// # Examples
///
/// ```
/// use cool_geometry::{Point, Region, Sector};
///
/// // Faces east with a 90° field of view.
/// let cam = Sector::new(Point::ORIGIN, 10.0, 0.0, std::f64::consts::FRAC_PI_4);
/// assert!(cam.contains(Point::new(5.0, 1.0)));
/// assert!(!cam.contains(Point::new(-5.0, 0.0)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sector {
    center: Point,
    radius: f64,
    heading: f64,
    half_angle: f64,
}

impl Sector {
    /// Creates a sector.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative, or `half_angle` is outside `(0, π]`.
    pub fn new(center: Point, radius: f64, heading: f64, half_angle: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be non-negative, got {radius}"
        );
        assert!(
            half_angle > 0.0 && half_angle <= PI,
            "half-angle must be in (0, π], got {half_angle}"
        );
        Sector {
            center,
            radius,
            heading,
            half_angle,
        }
    }

    /// Apex of the sector.
    pub fn center(&self) -> Point {
        self.center
    }

    /// Sensing range.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Facing direction in radians.
    pub fn heading(&self) -> f64 {
        self.heading
    }

    /// Half of the angular field of view in radians.
    pub fn half_angle(&self) -> f64 {
        self.half_angle
    }
}

impl Region for Sector {
    fn contains(&self, p: Point) -> bool {
        if self.center.distance_squared(p) > self.radius * self.radius {
            return false;
        }
        if p == self.center {
            return true;
        }
        let bearing = (p.y - self.center.y).atan2(p.x - self.center.x);
        let mut delta = (bearing - self.heading) % (2.0 * PI);
        if delta > PI {
            delta -= 2.0 * PI;
        }
        if delta < -PI {
            delta += 2.0 * PI;
        }
        delta.abs() <= self.half_angle + 1e-12
    }

    fn bounding_box(&self) -> Rect {
        // Conservative: the full disk's box.
        Disk::new(self.center, self.radius).bounding_box()
    }

    fn area_hint(&self) -> Option<f64> {
        Some(self.half_angle * self.radius * self.radius)
    }
}

/// A heterogeneous sensing region, for deployments mixing shapes
/// ("coverage patterns of different nodes can be different", §II-A).
///
/// # Examples
///
/// ```
/// use cool_geometry::{AnyRegion, Disk, Point, Rect, Region};
///
/// let regions: Vec<AnyRegion> = vec![
///     Disk::new(Point::ORIGIN, 1.0).into(),
///     Rect::square(2.0).into(),
/// ];
/// assert!(regions[0].contains(Point::new(0.5, 0.0)));
/// assert!(regions[1].contains(Point::new(1.5, 1.5)));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum AnyRegion {
    /// Disk region.
    Disk(Disk),
    /// Rectangle region.
    Rect(Rect),
    /// Convex polygon region.
    Polygon(ConvexPolygon),
    /// Directional sector region.
    Sector(Sector),
}

impl Region for AnyRegion {
    fn contains(&self, p: Point) -> bool {
        match self {
            AnyRegion::Disk(r) => r.contains(p),
            AnyRegion::Rect(r) => Region::contains(r, p),
            AnyRegion::Polygon(r) => r.contains(p),
            AnyRegion::Sector(r) => r.contains(p),
        }
    }

    fn bounding_box(&self) -> Rect {
        match self {
            AnyRegion::Disk(r) => r.bounding_box(),
            AnyRegion::Rect(r) => *r,
            AnyRegion::Polygon(r) => r.bounding_box(),
            AnyRegion::Sector(r) => r.bounding_box(),
        }
    }

    fn area_hint(&self) -> Option<f64> {
        match self {
            AnyRegion::Disk(r) => r.area_hint(),
            AnyRegion::Rect(r) => Region::area_hint(r),
            AnyRegion::Polygon(r) => r.area_hint(),
            AnyRegion::Sector(r) => r.area_hint(),
        }
    }

    fn classify_cell(&self, cell: Rect) -> CellRelation {
        match self {
            AnyRegion::Disk(r) => r.classify_cell(cell),
            AnyRegion::Rect(r) => Region::classify_cell(r, cell),
            AnyRegion::Polygon(r) => r.classify_cell(cell),
            AnyRegion::Sector(r) => r.classify_cell(cell),
        }
    }
}

impl From<Disk> for AnyRegion {
    fn from(value: Disk) -> Self {
        AnyRegion::Disk(value)
    }
}

impl From<Rect> for AnyRegion {
    fn from(value: Rect) -> Self {
        AnyRegion::Rect(value)
    }
}

impl From<ConvexPolygon> for AnyRegion {
    fn from(value: ConvexPolygon) -> Self {
        AnyRegion::Polygon(value)
    }
}

impl From<Sector> for AnyRegion {
    fn from(value: Sector) -> Self {
        AnyRegion::Sector(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn disk_contains_boundary() {
        let d = Disk::new(Point::ORIGIN, 1.0);
        assert!(d.contains(Point::new(1.0, 0.0)));
        assert!(!d.contains(Point::new(1.0 + 1e-9, 0.0)));
        assert!(d.contains(Point::ORIGIN));
    }

    #[test]
    fn zero_radius_disk_contains_only_center() {
        let d = Disk::new(Point::new(2.0, 2.0), 0.0);
        assert!(d.contains(Point::new(2.0, 2.0)));
        assert!(!d.contains(Point::new(2.0, 2.0 + 1e-12)));
        assert_eq!(d.area_hint(), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_panics() {
        let _ = Disk::new(Point::ORIGIN, -1.0);
    }

    #[test]
    fn polygon_square_contains() {
        let sq = ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ]);
        assert_eq!(sq.area(), 4.0);
        assert!(sq.contains(Point::new(1.0, 1.0)));
        assert!(sq.contains(Point::new(0.0, 0.0)), "vertices are inside");
        assert!(!sq.contains(Point::new(2.1, 1.0)));
        assert_eq!(sq.bounding_box(), Rect::square(2.0));
    }

    #[test]
    #[should_panic(expected = "convex counter-clockwise")]
    fn clockwise_polygon_panics() {
        let _ = ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 0.0),
        ]);
    }

    #[test]
    fn sector_wraps_around_pi() {
        // Faces west (heading π); field of view ±45°. A point just below the
        // negative x-axis has bearing ≈ -π + ε, testing angle wrap-around.
        let s = Sector::new(Point::ORIGIN, 10.0, PI, PI / 4.0);
        assert!(s.contains(Point::new(-5.0, -0.1)));
        assert!(s.contains(Point::new(-5.0, 0.1)));
        assert!(!s.contains(Point::new(5.0, 0.0)));
    }

    #[test]
    fn sector_apex_is_covered() {
        let s = Sector::new(Point::new(1.0, 1.0), 5.0, 0.0, 0.1);
        assert!(s.contains(Point::new(1.0, 1.0)));
    }

    #[test]
    fn full_angle_sector_behaves_like_disk() {
        let s = Sector::new(Point::ORIGIN, 3.0, 1.234, PI);
        let d = Disk::new(Point::ORIGIN, 3.0);
        for p in [
            Point::new(1.0, 1.0),
            Point::new(-2.0, 0.5),
            Point::new(0.0, -2.9),
            Point::new(3.5, 0.0),
        ] {
            assert_eq!(s.contains(p), d.contains(p), "disagree at {p}");
        }
    }

    #[test]
    fn any_region_dispatches() {
        let any: AnyRegion = Disk::new(Point::ORIGIN, 2.0).into();
        assert!(any.contains(Point::new(1.0, 1.0)));
        assert_eq!(any.area_hint(), Some(PI * 4.0));
        let any: AnyRegion = ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ])
        .into();
        assert_eq!(any.area_hint(), Some(0.5));
    }

    proptest! {
        /// Cell classification is consistent with membership: `Covers` ⇒
        /// every sampled cell point is inside; `Outside` ⇒ none is.
        #[test]
        fn classify_cell_is_sound(
            cx in -20f64..20.0, cy in -20f64..20.0, r in 0.1f64..10.0,
            x0 in -20f64..20.0, y0 in -20f64..20.0, w in 0.1f64..10.0, h in 0.1f64..10.0,
        ) {
            let disk = Disk::new(Point::new(cx, cy), r);
            let cell = Rect::new(Point::new(x0, y0), Point::new(x0 + w, y0 + h));
            let relation = disk.classify_cell(cell);
            for i in 0..5 {
                for j in 0..5 {
                    let p = Point::new(
                        cell.min().x + w * f64::from(i) / 4.0,
                        cell.min().y + h * f64::from(j) / 4.0,
                    );
                    match relation {
                        CellRelation::Covers => prop_assert!(disk.contains(p)),
                        CellRelation::Outside => prop_assert!(!disk.contains(p)),
                        CellRelation::Partial => {}
                    }
                }
            }
        }

        #[test]
        fn contains_implies_in_bounding_box(
            cx in -50f64..50.0, cy in -50f64..50.0, r in 0f64..20.0,
            px in -100f64..100.0, py in -100f64..100.0,
        ) {
            let d = Disk::new(Point::new(cx, cy), r);
            let p = Point::new(px, py);
            if d.contains(p) {
                prop_assert!(d.bounding_box().contains(p));
            }
        }

        #[test]
        fn sector_subset_of_disk(
            heading in -7f64..7.0, half in 0.01f64..PI,
            px in -10f64..10.0, py in -10f64..10.0,
        ) {
            let s = Sector::new(Point::ORIGIN, 5.0, heading, half);
            let d = Disk::new(Point::ORIGIN, 5.0);
            let p = Point::new(px, py);
            if s.contains(p) {
                prop_assert!(d.contains(p));
            }
        }
    }
}
