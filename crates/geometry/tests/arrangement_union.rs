//! Property test: the subregion areas of an arrangement partition the
//! covered part of `Ω`, so they must sum to the union area of the sensing
//! disks — checked against three independent measurements under random
//! deployments (cool-check satellite, DESIGN.md §9).

use cool_geometry::deployment::disks_at;
use cool_geometry::{Arrangement, DeploymentKind, DeploymentSpec, Point, Rect, Region};

use cool_common::SeedSequence;
use rand::Rng;

/// One randomised deployment drawn from the seed stream.
struct UnionCase {
    omega: Rect,
    disks: Vec<cool_geometry::Disk>,
}

fn random_cases(seed: u64, count: usize) -> Vec<UnionCase> {
    let seeds = SeedSequence::new(seed);
    (0..count)
        .map(|i| {
            let mut rng = seeds.nth_rng(i as u64);
            let side = 100.0 + 50.0 * f64::from(rng.random_range(0..3u32));
            let omega = Rect::square(side);
            let n = rng.random_range(4..=16usize);
            let kind = match i % 3 {
                0 => DeploymentKind::UniformRandom,
                1 => DeploymentKind::Grid,
                _ => DeploymentKind::JitteredGrid { jitter: 0.3 },
            };
            let positions = DeploymentSpec::new(omega, n, kind).generate(&mut rng);
            let radius = side * (0.12 + 0.08 * rng.random::<f64>());
            UnionCase {
                omega,
                disks: disks_at(&positions, radius),
            }
        })
        .collect()
}

/// Monte-Carlo estimate of the disk-union area inside `omega`.
fn sampled_union_area(case: &UnionCase, samples: usize, rng: &mut impl Rng) -> f64 {
    let mut covered = 0usize;
    for _ in 0..samples {
        let p = Point::new(
            case.omega.min().x + rng.random::<f64>() * case.omega.width(),
            case.omega.min().y + rng.random::<f64>() * case.omega.height(),
        );
        if case.disks.iter().any(|d| d.contains(p)) {
            covered += 1;
        }
    }
    case.omega.area() * covered as f64 / samples as f64
}

#[test]
fn subregion_areas_sum_to_the_union_area() {
    let seeds = SeedSequence::new(7);
    for (i, case) in random_cases(7, 8).iter().enumerate() {
        let arr = Arrangement::build(case.omega, &case.disks, 256);
        let sum: f64 = arr.subregions().iter().map(|s| s.area).sum();

        // Internal consistency: the ≥1-covered area *is* the union, and the
        // subregions partition it exactly (same grid cells, no overlap).
        let union = arr.area_covered_at_least(1);
        assert!(
            (sum - union).abs() <= 1e-9 * case.omega.area(),
            "case {i}: Σ|A_j| = {sum} but union = {union}"
        );

        // The union can never exceed Ω or the total disk area.
        let disk_area: f64 = case
            .disks
            .iter()
            .map(|d| std::f64::consts::PI * d.radius() * d.radius())
            .sum();
        assert!(sum <= case.omega.area() + 1e-9, "case {i}: union exceeds Ω");
        assert!(
            sum <= disk_area + 1e-9,
            "case {i}: union exceeds Σ disk areas"
        );

        // Independent measurement #1: the adaptive quadtree builder settles
        // uniform cells exactly, so its union must agree with the grid's to
        // within boundary error (a few percent at these resolutions).
        let adaptive = Arrangement::build_adaptive(case.omega, &case.disks, 8);
        let adaptive_sum: f64 = adaptive.subregions().iter().map(|s| s.area).sum();
        let tol = 0.03 * case.omega.area();
        assert!(
            (sum - adaptive_sum).abs() <= tol,
            "case {i}: grid union {sum} vs adaptive union {adaptive_sum}"
        );

        // Independent measurement #2: Monte-Carlo point sampling.
        let mut rng = seeds.child(1).nth_rng(i as u64);
        let sampled = sampled_union_area(case, 20_000, &mut rng);
        assert!(
            (sum - sampled).abs() <= tol.max(0.05 * sum),
            "case {i}: grid union {sum} vs sampled union {sampled}"
        );
    }
}

#[test]
fn union_area_is_monotone_in_the_deployment() {
    // Adding a disk can only grow (or keep) the union — checked across a
    // growing prefix of one random deployment.
    let case = &random_cases(11, 1)[0];
    let mut previous = 0.0;
    for k in 1..=case.disks.len() {
        let arr = Arrangement::build(case.omega, &case.disks[..k], 128);
        let union = arr.area_covered_at_least(1);
        assert!(
            union + 1e-9 >= previous,
            "union shrank from {previous} to {union} at k={k}"
        );
        previous = union;
    }
}
