//! Interval abstract interpretation of the §II-B battery automaton.
//!
//! The concrete schedule replay ([`crate::schedule::lint_schedule_from`])
//! answers "is this schedule energy-feasible from *one* initial charge?".
//! This module answers the quantified versions:
//!
//! * **∀-proof** — [`proves_feasible_for_all`] replays the schedule over an
//!   abstract battery state `[lo, hi] ⊆ [0, 1]` using [`interval_step`], an
//!   over-approximation of [`cool_energy::slot_transition`]. When every
//!   scheduled activation is honoured by the *entire* abstract interval,
//!   the schedule is feasible from **every** initial charge in the interval
//!   — upgrading the single-trajectory `COOL-E004` replay to a proof.
//! * **∃-refutation** — [`feasible_region`] computes, per sensor, the set
//!   of initial charges from which the replay fails. The concrete
//!   transition is branch-wise monotone (more charge never hurts), so the
//!   failing set is downward-closed: `[0, θ)` for a minimal feasible
//!   charge θ found by bisection on the concrete replay itself. Both
//!   bisection endpoints are *verified concretely*, so a reported failing
//!   sub-interval is witnessed at its boundary, and
//!   [`lint_schedule_abstract`] emits `COOL-E025` only when the audited
//!   initial-charge interval provably intersects it.
//!
//! Soundness is differentially tested from the outside: the `cool-check`
//! harness samples initial charges inside reported regions and replays
//! them concretely (`COOL-E026 abstract-unsound` when they disagree).
//!
//! A note on the full-charge sliver: the concrete automaton snaps a
//! charging battery to exactly `1` once it crosses `1 − 1e-12`, so a
//! charge *inside* that sliver can (in theory) trail one just below it by
//! at most `1e-12`. The bisection is immune (it only trusts concretely
//! verified points); the interval step simply keeps the hull.

use crate::diag::{Diagnostic, Report};
use cool_common::{CoolCode, Interval, SensorId};
use cool_core::schedule::PeriodSchedule;
use cool_core::GridSchedule;
use cool_energy::{slot_transition, tick_transition, ChargeCycle, FleetGrid};

/// Replay depth in periods — matches the concrete lint replay: wrap-around
/// deficits appear in the second period, and the state at the end of period
/// two equals the state at the end of period one for feasible schedules.
const REPLAY_PERIODS: usize = 2;

/// Bisection steps for [`feasible_region`]: 60 halvings pin θ to one part
/// in 2⁻⁶⁰, far below every tolerance in the automaton.
const BISECTION_STEPS: usize = 60;

/// One abstract slot step: the image of the battery-fraction interval `iv`
/// under [`cool_energy::slot_transition`], over-approximated by splitting
/// at the branch boundaries (activation threshold, full-charge boundary),
/// mapping each monotone piece by its endpoints, and joining the pieces.
///
/// Guarantees `concrete ∈ iv ⇒ step(concrete) ∈ interval_step(iv)`; the
/// result may be wider than the true image (convex hull across branches).
#[must_use]
pub fn interval_step(cycle: ChargeCycle, iv: Interval, activate: bool) -> Interval {
    interval_tick(
        cycle.discharge_fraction_per_slot(),
        cycle.recharge_fraction_per_slot(),
        iv,
        activate,
    )
}

/// Rate-parameterised abstract step: the image of `iv` under
/// [`cool_energy::tick_transition`] with per-tick drain `need` and refill
/// `refill` (fractions of the node's **own** capacity). [`interval_step`]
/// is this function with a [`ChargeCycle`]'s slot rates; heterogeneous
/// fleet-grid replays call it with each sensor's own rates.
///
/// Guarantees `concrete ∈ iv ⇒ tick(concrete) ∈ interval_tick(iv)`.
#[must_use]
pub fn interval_tick(need: f64, refill: f64, iv: Interval, activate: bool) -> Interval {
    let mut pieces: Vec<Interval> = Vec::with_capacity(3);
    let (idle_lo, mut idle_hi) = (iv.lo(), iv.hi());
    if activate {
        // Honoured iff fraction + 1e-9 >= need (lint replays use zero
        // activation tolerance); the cut point lands in both pieces.
        let cut = need - 1e-9;
        if iv.hi() + 1e-9 >= need {
            let a = iv.lo().max(cut).clamp(0.0, 1.0);
            pieces.push(Interval::new(
                active_image(a, need),
                active_image(iv.hi(), need),
            ));
        }
        if iv.lo() + 1e-9 < need {
            // The refusing sub-interval falls through to idle semantics.
            idle_hi = iv.hi().min(cut).clamp(0.0, 1.0);
        } else {
            idle_hi = f64::NEG_INFINITY; // nothing refuses
        }
    }
    if idle_lo <= idle_hi {
        let full = 1.0 - 1e-12;
        if idle_hi >= full {
            // Ready: level unchanged (zero leakage in lint replays).
            pieces.push(Interval::new(idle_lo.max(full), idle_hi));
        }
        if idle_lo < full {
            let hi = idle_hi.min(full);
            pieces.push(Interval::new(
                charge_image(idle_lo, refill),
                charge_image(hi, refill),
            ));
        }
    }
    let mut out = pieces[0];
    for p in &pieces[1..] {
        out = out.join(*p);
    }
    out
}

/// The honoured-activation branch of the transition (monotone in `b`).
fn active_image(b: f64, need: f64) -> f64 {
    let level = b - need.min(b);
    if level < 1e-9 {
        0.0
    } else {
        level
    }
}

/// The passive-charging branch of the transition (monotone in `b`).
fn charge_image(b: f64, recharge: f64) -> f64 {
    let level = b + recharge.min(1.0 - b);
    if level >= 1.0 - 1e-12 {
        1.0
    } else {
        level
    }
}

/// `true` when the abstract replay **proves** `schedule` energy-feasible
/// for *every* initial charge in `init`: at each scheduled activation the
/// whole abstract interval clears the activation threshold, so no concrete
/// trajectory starting in `init` can refuse. `false` means "not proved"
/// (the analysis is sound, not complete).
///
/// # Panics
///
/// Panics if `init ⊄ [0, 1]`.
#[must_use]
pub fn proves_feasible_for_all(
    schedule: &PeriodSchedule,
    cycle: ChargeCycle,
    init: Interval,
) -> bool {
    assert!(
        Interval::UNIT.contains_interval(init),
        "initial-charge interval {init} outside [0, 1]"
    );
    let slots = schedule.slots_per_period();
    if slots != cycle.slots_per_period() {
        return false; // structurally broken: the concrete lint owns this
    }
    let need = cycle.discharge_fraction_per_slot();
    for i in 0..schedule.n_sensors() {
        let mut iv = init;
        for _period in 0..REPLAY_PERIODS {
            for t in 0..slots {
                let want = schedule.is_active(SensorId(i), t);
                if want && iv.lo() + 1e-9 < need {
                    return false; // some initial charge may refuse here
                }
                iv = interval_step(cycle, iv, want);
            }
        }
    }
    true
}

/// The set of initial charges from which one sensor's replay succeeds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FeasibleRegion {
    /// Clean from an empty battery — clean from every initial charge.
    All,
    /// Clean from every charge ≥ `theta`; `last_failing` (< `theta`) is the
    /// largest initial charge *concretely verified* to fail, so the failing
    /// region provably contains `[0, last_failing]`.
    Above {
        /// Minimal initial charge verified to replay cleanly.
        theta: f64,
        /// Largest initial charge verified to fail (bisection witness).
        last_failing: f64,
    },
    /// Fails even from a full battery — the schedule is infeasible outright
    /// (the concrete `COOL-E004` replay already reports this).
    None,
}

/// Concrete two-period replay of one sensor's row from `initial`: `true`
/// when every scheduled activation is honoured.
#[must_use]
pub fn sensor_replay_clean(
    schedule: &PeriodSchedule,
    cycle: ChargeCycle,
    sensor: usize,
    initial: f64,
) -> bool {
    let slots = schedule.slots_per_period();
    let mut fraction = initial;
    for _period in 0..REPLAY_PERIODS {
        for t in 0..slots {
            let want = schedule.is_active(SensorId(sensor), t);
            let out = slot_transition(cycle, fraction, want, 0.0, 0.0);
            if want && !out.active {
                return false;
            }
            fraction = out.fraction;
        }
    }
    true
}

/// Bisects the minimal feasible initial charge θ for one sensor's row.
///
/// Relies on the monotone-threshold structure of the automaton: for a fixed
/// request row, more initial charge never turns a clean replay into a
/// failing one, so the failing set is an interval `[0, θ)`.
///
/// # Panics
///
/// Panics if `schedule`'s slot count disagrees with `cycle`'s.
#[must_use]
pub fn feasible_region(
    schedule: &PeriodSchedule,
    cycle: ChargeCycle,
    sensor: usize,
) -> FeasibleRegion {
    assert_eq!(
        schedule.slots_per_period(),
        cycle.slots_per_period(),
        "schedule/cycle slot mismatch"
    );
    if sensor_replay_clean(schedule, cycle, sensor, 0.0) {
        return FeasibleRegion::All;
    }
    if !sensor_replay_clean(schedule, cycle, sensor, 1.0) {
        return FeasibleRegion::None;
    }
    let (mut failing, mut clean) = (0.0_f64, 1.0_f64);
    for _ in 0..BISECTION_STEPS {
        let mid = failing + (clean - failing) / 2.0;
        if mid <= failing || mid >= clean {
            break; // interval narrower than one ulp
        }
        if sensor_replay_clean(schedule, cycle, sensor, mid) {
            clean = mid;
        } else {
            failing = mid;
        }
    }
    FeasibleRegion::Above {
        theta: clean,
        last_failing: failing,
    }
}

/// Lints `schedule` for energy feasibility over a *range* of initial
/// charges, emitting [`CoolCode::AbstractEnergyInfeasible`] for each sensor
/// whose provably-failing region intersects `init`.
///
/// Structural errors (slot-count mismatch) are the concrete
/// [`crate::schedule::lint_schedule`]'s job; this pass returns an empty
/// report for structurally broken schedules instead of double-reporting.
///
/// # Panics
///
/// Panics if `init ⊄ [0, 1]`.
#[must_use]
pub fn lint_schedule_abstract(
    schedule: &PeriodSchedule,
    cycle: ChargeCycle,
    init: Interval,
) -> Report {
    assert!(
        Interval::UNIT.contains_interval(init),
        "initial-charge interval {init} outside [0, 1]"
    );
    let mut report = Report::new();
    if schedule.slots_per_period() != cycle.slots_per_period() {
        return report;
    }
    if proves_feasible_for_all(schedule, cycle, init) {
        return report; // ∀-proof: no sensor can fail anywhere in `init`
    }
    for i in 0..schedule.n_sensors() {
        let failing_hi = match feasible_region(schedule, cycle, i) {
            FeasibleRegion::All => continue,
            FeasibleRegion::Above { last_failing, .. } => last_failing,
            FeasibleRegion::None => 1.0,
        };
        // The failing region provably contains [0, failing_hi]; intersect
        // with the audited interval and report only a verified range.
        if init.lo() > failing_hi {
            continue;
        }
        let lo = init.lo();
        let hi = failing_hi.min(init.hi());
        report.push(
            Diagnostic::new(
                CoolCode::AbstractEnergyInfeasible,
                format!(
                    "sensor {i}'s schedule is energy-infeasible for every initial charge in \
                     [{lo:.6}, {hi:.6}]"
                ),
            )
            .with_help(
                "deploy the sensor with a fuller battery, or move its active slot later in \
                 the period so passive slots can bank the energy first",
            ),
        );
    }
    report
}

/// Concrete cyclic two-hyperperiod replay of one sensor's row of a
/// heterogeneous grid schedule from `initial` (a fraction of that sensor's
/// **own** capacity): `true` when every scheduled activation is honoured.
/// The per-tick rates come from the sensor's own profile via
/// [`FleetGrid::need_per_tick`] / [`FleetGrid::refill_per_tick`] — there is
/// no global battery here.
#[must_use]
pub fn grid_sensor_replay_clean(
    schedule: &GridSchedule,
    grid: &FleetGrid,
    sensor: usize,
    initial: f64,
) -> bool {
    let h = schedule.hyperperiod();
    let need = grid.need_per_tick(sensor);
    let refill = grid.refill_per_tick(sensor);
    let mut fraction = initial;
    for tick in 0..REPLAY_PERIODS * h {
        let want = schedule.is_active(sensor, tick % h);
        let out = tick_transition(need, refill, fraction, want, 0.0, 0.0);
        if want && !out.active {
            return false;
        }
        fraction = out.fraction;
    }
    true
}

/// `true` when the abstract replay **proves** the grid schedule
/// energy-feasible for every per-sensor initial charge in `init` — the
/// heterogeneous analogue of [`proves_feasible_for_all`], stepping each
/// sensor's interval with its own rates via [`interval_tick`].
///
/// # Panics
///
/// Panics if `init ⊄ [0, 1]`.
#[must_use]
pub fn proves_grid_feasible_for_all(
    schedule: &GridSchedule,
    grid: &FleetGrid,
    init: Interval,
) -> bool {
    assert!(
        Interval::UNIT.contains_interval(init),
        "initial-charge interval {init} outside [0, 1]"
    );
    let h = schedule.hyperperiod();
    if grid.n_sensors() != schedule.n_sensors() || grid.hyperperiod() != h {
        return false; // structurally broken: the concrete lint owns this
    }
    for v in 0..schedule.n_sensors() {
        let need = grid.need_per_tick(v);
        let refill = grid.refill_per_tick(v);
        let mut iv = init;
        for tick in 0..REPLAY_PERIODS * h {
            let want = schedule.is_active(v, tick % h);
            if want && iv.lo() + 1e-9 < need {
                return false; // some initial charge may refuse here
            }
            iv = interval_tick(need, refill, iv, want);
        }
    }
    true
}

/// Bisects the minimal feasible initial charge θ (a fraction of the
/// sensor's **own** capacity) for one sensor's row of a grid schedule —
/// the heterogeneous analogue of [`feasible_region`]. Each sensor is
/// bisected against its own drain/refill rates, so fleets mixing battery
/// capacities get per-sensor thresholds rather than one global one.
///
/// # Panics
///
/// Panics if the schedule's universe or hyperperiod disagrees with the
/// grid's.
#[must_use]
pub fn grid_feasible_region(
    schedule: &GridSchedule,
    grid: &FleetGrid,
    sensor: usize,
) -> FeasibleRegion {
    assert_eq!(
        schedule.n_sensors(),
        grid.n_sensors(),
        "schedule/grid universe mismatch"
    );
    assert_eq!(
        schedule.hyperperiod(),
        grid.hyperperiod(),
        "schedule/grid hyperperiod mismatch"
    );
    if grid_sensor_replay_clean(schedule, grid, sensor, 0.0) {
        return FeasibleRegion::All;
    }
    if !grid_sensor_replay_clean(schedule, grid, sensor, 1.0) {
        return FeasibleRegion::None;
    }
    let (mut failing, mut clean) = (0.0_f64, 1.0_f64);
    for _ in 0..BISECTION_STEPS {
        let mid = failing + (clean - failing) / 2.0;
        if mid <= failing || mid >= clean {
            break; // interval narrower than one ulp
        }
        if grid_sensor_replay_clean(schedule, grid, sensor, mid) {
            clean = mid;
        } else {
            failing = mid;
        }
    }
    FeasibleRegion::Above {
        theta: clean,
        last_failing: failing,
    }
}

/// Lints a heterogeneous grid schedule for energy feasibility over a range
/// of initial charges, emitting [`CoolCode::AbstractEnergyInfeasible`] for
/// each sensor whose provably-failing region intersects `init`. The
/// audited interval is interpreted **per sensor**: a charge of `0.5` means
/// half of *that sensor's* battery, whatever its capacity.
///
/// Structural errors (universe or hyperperiod mismatch) are the concrete
/// [`crate::schedule::lint_grid_schedule`]'s job; this pass returns an
/// empty report for structurally broken schedules.
///
/// # Panics
///
/// Panics if `init ⊄ [0, 1]`.
#[must_use]
pub fn lint_grid_schedule_abstract(
    schedule: &GridSchedule,
    grid: &FleetGrid,
    init: Interval,
) -> Report {
    assert!(
        Interval::UNIT.contains_interval(init),
        "initial-charge interval {init} outside [0, 1]"
    );
    let mut report = Report::new();
    if grid.n_sensors() != schedule.n_sensors() || grid.hyperperiod() != schedule.hyperperiod() {
        return report;
    }
    if proves_grid_feasible_for_all(schedule, grid, init) {
        return report; // ∀-proof: no sensor can fail anywhere in `init`
    }
    for v in 0..schedule.n_sensors() {
        let failing_hi = match grid_feasible_region(schedule, grid, v) {
            FeasibleRegion::All => continue,
            FeasibleRegion::Above { last_failing, .. } => last_failing,
            FeasibleRegion::None => 1.0,
        };
        if init.lo() > failing_hi {
            continue;
        }
        let lo = init.lo();
        let hi = failing_hi.min(init.hi());
        report.push(
            Diagnostic::new(
                CoolCode::AbstractEnergyInfeasible,
                format!(
                    "sensor {v}'s schedule is energy-infeasible for every initial charge in \
                     [{lo:.6}, {hi:.6}] of its own capacity"
                ),
            )
            .with_help(
                "deploy the sensor with a fuller battery, or move its active run later in its \
                 period so passive ticks can bank the energy first",
            ),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::SensorSet;
    use cool_core::greedy::greedy_active_naive;
    use cool_core::schedule::ScheduleMode;
    use cool_energy::{Fleet, NodeEnergyMachine, SensorProfile};
    use cool_utility::DetectionUtility;
    use proptest::prelude::*;

    #[test]
    fn point_interval_step_matches_concrete_transition() {
        let cycle = ChargeCycle::paper_sunny();
        for b in [0.0, 0.1, 1.0 / 3.0, 0.5, 0.999, 1.0 - 1e-13, 1.0] {
            for activate in [false, true] {
                let out = slot_transition(cycle, b, activate, 0.0, 0.0);
                let iv = interval_step(cycle, Interval::point(b), activate);
                assert!(
                    iv.contains(out.fraction),
                    "b={b} activate={activate}: {} not in {iv}",
                    out.fraction
                );
            }
        }
    }

    #[test]
    fn interval_step_is_a_sound_over_approximation() {
        // Sampled containment: stepping any point of the interval lands
        // inside the stepped interval, across both rho regimes.
        for cycle in [
            ChargeCycle::paper_sunny(),
            ChargeCycle::from_rho(0.25, 10.0).unwrap(),
        ] {
            for activate in [false, true] {
                let iv = Interval::new(0.2, 0.95);
                let stepped = interval_step(cycle, iv, activate);
                for k in 0..=100 {
                    let b = 0.2 + 0.75 * f64::from(k) / 100.0;
                    let out = slot_transition(cycle, b, activate, 0.0, 0.0);
                    assert!(
                        stepped.contains(out.fraction),
                        "{cycle:?} activate={activate} b={b}: {} not in {stepped}",
                        out.fraction
                    );
                }
            }
        }
    }

    #[test]
    fn late_slot_schedule_proved_feasible_for_all_charges() {
        // Slot 3 under rho = 3: three passive slots bank a full charge from
        // any starting level, so the activation is honoured universally.
        let cycle = ChargeCycle::paper_sunny();
        let late = PeriodSchedule::new(ScheduleMode::ActiveSlot, 4, vec![3]);
        assert!(proves_feasible_for_all(&late, cycle, Interval::UNIT));
        assert!(lint_schedule_abstract(&late, cycle, Interval::UNIT).is_clean());
    }

    #[test]
    fn early_slot_schedule_fails_for_low_charges() {
        let cycle = ChargeCycle::paper_sunny();
        let early = PeriodSchedule::new(ScheduleMode::ActiveSlot, 4, vec![0]);
        assert!(!proves_feasible_for_all(&early, cycle, Interval::UNIT));
        let FeasibleRegion::Above {
            theta,
            last_failing,
        } = feasible_region(&early, cycle, 0)
        else {
            panic!("expected a threshold region");
        };
        // Slot 0 is honoured iff b + 1e-9 >= 1, so theta sits just below 1.
        assert!(theta > 0.9 && theta <= 1.0, "theta = {theta}");
        assert!(last_failing < theta);
        assert!(!sensor_replay_clean(&early, cycle, 0, last_failing));
        assert!(sensor_replay_clean(&early, cycle, 0, theta));
        let r = lint_schedule_abstract(&early, cycle, Interval::UNIT);
        assert!(r.has_code(CoolCode::AbstractEnergyInfeasible), "{r}");
        // From a full deployment charge the same schedule is clean.
        assert!(lint_schedule_abstract(&early, cycle, Interval::point(1.0)).is_clean());
    }

    #[test]
    fn greedy_schedules_are_clean_from_full_charge() {
        let cycle = ChargeCycle::paper_sunny();
        let u = DetectionUtility::uniform(8, 0.4);
        let schedule = greedy_active_naive(&u, cycle.slots_per_period()).unwrap();
        let r = lint_schedule_abstract(&schedule, cycle, Interval::point(1.0));
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn reported_region_boundary_is_concretely_witnessed() {
        // Every initial charge the lint names at the interval boundary must
        // fail a concrete machine replay — the E026 soundness contract.
        let cycle = ChargeCycle::paper_sunny();
        let early = PeriodSchedule::new(ScheduleMode::ActiveSlot, 4, vec![0, 2]);
        for sensor in 0..2 {
            if let FeasibleRegion::Above { last_failing, .. } =
                feasible_region(&early, cycle, sensor)
            {
                let mut node = NodeEnergyMachine::with_initial_fraction(cycle, last_failing);
                let mut refused = false;
                for _ in 0..2 {
                    for t in 0..4 {
                        let want = early.is_active(SensorId(sensor), t);
                        refused |= want && !node.step(want);
                    }
                }
                assert!(
                    refused,
                    "sensor {sensor}: witness {last_failing} replays clean"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_interval_panics() {
        let cycle = ChargeCycle::paper_sunny();
        let s = PeriodSchedule::new(ScheduleMode::ActiveSlot, 4, vec![0]);
        let _ = lint_schedule_abstract(&s, cycle, Interval::new(0.0, 1.5));
    }

    /// Two profiles differing only in battery capacity: 30 Wh → cycle
    /// (15, 45), d = 1, r = 3, P = 4; 60 Wh → cycle (30, 90), d = 2,
    /// r = 6, P = 8. Hyperperiod 8 ticks of 15 minutes.
    fn two_capacity_grid() -> FleetGrid {
        let profiles = vec![
            SensorProfile::default(),
            SensorProfile {
                battery: 60.0,
                ..SensorProfile::default()
            },
        ];
        FleetGrid::build(&Fleet::new(profiles).unwrap()).unwrap()
    }

    /// Sensor 0 active at ticks {3, 7} (late in each of its periods);
    /// sensor 1 active at ticks {0, 1} (its full run right at the start).
    fn two_capacity_schedule() -> GridSchedule {
        let active = (0..8)
            .map(|t| {
                let mut s = SensorSet::new(2);
                if t % 4 == 3 {
                    s.insert(SensorId(0));
                }
                if t < 2 {
                    s.insert(SensorId(1));
                }
                s
            })
            .collect();
        GridSchedule::new(active)
    }

    #[test]
    fn grid_bisection_uses_each_sensors_own_capacity() {
        // The E025 regression: the bisection must normalise initial-charge
        // fractions against each sensor's OWN battery. Sensor 0 (30 Wh,
        // active after three passive ticks) is clean even from empty;
        // sensor 1 (60 Wh, active for its whole 2-tick run from tick 0)
        // needs essentially a full battery of its own.
        let grid = two_capacity_grid();
        let schedule = two_capacity_schedule();
        assert!(schedule.is_feasible(&grid), "feasible from full charge");
        assert_eq!(
            grid_feasible_region(&schedule, &grid, 0),
            FeasibleRegion::All
        );
        let FeasibleRegion::Above {
            theta,
            last_failing,
        } = grid_feasible_region(&schedule, &grid, 1)
        else {
            panic!("expected a threshold region for the 60 Wh sensor");
        };
        // Both run ticks drain need = 1/2 of its own capacity, so theta
        // sits just below 1 — NOT at the 30 Wh sensor's threshold.
        assert!(theta > 0.9 && theta <= 1.0, "theta = {theta}");
        assert!(!grid_sensor_replay_clean(&schedule, &grid, 1, last_failing));
        assert!(grid_sensor_replay_clean(&schedule, &grid, 1, theta));

        // The lint names exactly the failing sensor, per-capacity.
        let r = lint_grid_schedule_abstract(&schedule, &grid, Interval::UNIT);
        assert!(r.has_code(CoolCode::AbstractEnergyInfeasible), "{r}");
        let text = r.to_string();
        assert!(text.contains("sensor 1"), "{text}");
        assert!(!text.contains("sensor 0"), "{text}");
        // From the deployment contract (every battery full) it is clean.
        assert!(lint_grid_schedule_abstract(&schedule, &grid, Interval::point(1.0)).is_clean());
        assert!(proves_grid_feasible_for_all(
            &schedule,
            &grid,
            Interval::point(1.0)
        ));
        assert!(!proves_grid_feasible_for_all(
            &schedule,
            &grid,
            Interval::UNIT
        ));
    }

    #[test]
    fn grid_abstract_lint_skips_structural_mismatches() {
        let grid = two_capacity_grid();
        let wrong_universe = GridSchedule::new(vec![SensorSet::new(3); 8]);
        assert!(lint_grid_schedule_abstract(&wrong_universe, &grid, Interval::UNIT).is_clean());
        let wrong_h = GridSchedule::new(vec![SensorSet::new(2); 5]);
        assert!(lint_grid_schedule_abstract(&wrong_h, &grid, Interval::UNIT).is_clean());
        assert!(!proves_grid_feasible_for_all(
            &wrong_h,
            &grid,
            Interval::UNIT
        ));
    }

    proptest! {
        /// Interval-domain soundness of the rate-parameterised step:
        /// stepping any concrete point of the interval with
        /// [`cool_energy::tick_transition`] lands inside the stepped
        /// interval, for arbitrary per-sensor drain/refill rates.
        #[test]
        fn interval_tick_is_a_sound_over_approximation(
            d in 1usize..7,
            r in 1usize..7,
            lo in 0.0f64..=1.0,
            width in 0.0f64..=1.0,
            activate in any::<bool>(),
        ) {
            let need = 1.0 / d as f64;
            let refill = 1.0 / r as f64;
            let hi = (lo + width).min(1.0);
            let iv = Interval::new(lo, hi);
            let stepped = interval_tick(need, refill, iv, activate);
            for k in 0..=64 {
                let b = lo + (hi - lo) * f64::from(k) / 64.0;
                let out = tick_transition(need, refill, b, activate, 0.0, 0.0);
                prop_assert!(
                    stepped.contains(out.fraction),
                    "need={need} refill={refill} activate={activate} b={b}: {} not in {stepped}",
                    out.fraction
                );
            }
        }

        /// Per-sensor abstract replay soundness: whenever
        /// [`proves_grid_feasible_for_all`] says yes, every sampled
        /// concrete initial charge replays clean; and every bisection
        /// threshold is concretely witnessed on both sides.
        #[test]
        fn grid_abstract_replay_is_sound(
            batteries in proptest::collection::vec(
                proptest::sample::select(vec![30.0f64, 60.0, 45.0]), 1..4),
            phase_seed in 0usize..64,
            lo in 0.0f64..=1.0,
            width in 0.0f64..=0.5,
        ) {
            let profiles: Vec<SensorProfile> = batteries
                .iter()
                .map(|&b| SensorProfile {
                    battery: b,
                    ..SensorProfile::default()
                })
                .collect();
            let grid = FleetGrid::build(&Fleet::new(profiles).unwrap()).unwrap();
            let h = grid.hyperperiod();
            let n = grid.n_sensors();
            // One active run per sensor at a pseudo-random phase.
            let active = (0..h)
                .map(|t| {
                    let mut s = SensorSet::new(n);
                    for v in 0..n {
                        let p = grid.period_ticks(v);
                        let d = grid.discharge_ticks(v);
                        let phase = (phase_seed * (v + 1)) % p;
                        if (t + p - phase) % p < d {
                            s.insert(SensorId(v));
                        }
                    }
                    s
                })
                .collect();
            let schedule = GridSchedule::new(active);
            let init = Interval::new(lo, (lo + width).min(1.0));
            let proved = proves_grid_feasible_for_all(&schedule, &grid, init);
            for k in 0..=16 {
                let b = init.lo() + init.width() * f64::from(k) / 16.0;
                let clean: bool = (0..n)
                    .all(|v| grid_sensor_replay_clean(&schedule, &grid, v, b));
                if proved {
                    prop_assert!(clean, "proved ∀-feasible but {b} fails concretely");
                }
            }
            for v in 0..n {
                if let FeasibleRegion::Above { theta, last_failing } =
                    grid_feasible_region(&schedule, &grid, v)
                {
                    prop_assert!(grid_sensor_replay_clean(&schedule, &grid, v, theta));
                    prop_assert!(!grid_sensor_replay_clean(&schedule, &grid, v, last_failing));
                    prop_assert!(last_failing < theta);
                }
            }
        }
    }
}
