//! `cool audit`: the whole-scenario static-analysis bundle.
//!
//! Runs every lint pass over one scenario file in a fixed order and merges
//! the findings into a single [`Report`]:
//!
//! 1. the scenario-file lint ([`crate::scenario::lint_scenario_text`]);
//! 2. on lintable scenarios, the instance-derived passes, re-deriving the
//!    exact instance and greedy schedule the scenario would run (same seed
//!    path as `Scenario::run`):
//!    * concrete schedule replay ([`crate::schedule::lint_schedule`]);
//!    * abstract-interpretation energy audit over the configured
//!      initial-charge interval
//!      ([`crate::abstract_energy::lint_schedule_abstract`], `COOL-E025`)
//!      plus the ∀-initial-charges feasibility proof;
//!    * dominated sensors / dead slots
//!      ([`crate::dominance`], `COOL-W007`/`W008`);
//!    * communication-graph connectivity
//!      ([`crate::connectivity`], `COOL-W009`, opt-in via `comms_radius`).
//! 3. on scenarios with per-sensor profile lists (`battery`, `mu_d`,
//!    `mu_r`, `solar_eff`), the heterogeneous passes instead: the fleet
//!    grid and heterogeneous greedy schedule are derived, replayed
//!    concretely ([`crate::schedule::lint_grid_schedule`]) and abstractly
//!    ([`crate::abstract_energy::lint_grid_schedule_abstract`]) with each
//!    sensor's **own** drain/refill rates — the `--initial-charge`
//!    interval is a fraction of each sensor's own capacity, never of one
//!    global battery.
//!
//! Everything is deterministic: the same scenario text and options always
//! produce the same report, byte for byte.

use crate::abstract_energy::{
    lint_grid_schedule_abstract, lint_schedule_abstract, proves_feasible_for_all,
    proves_grid_feasible_for_all,
};
use crate::connectivity::lint_connectivity;
use crate::diag::Report;
use crate::dominance::{lint_dead_slots, lint_dominance};
use crate::scenario::{self, ScenarioSpec};
use crate::schedule::{lint_grid_schedule, lint_schedule};
use cool_common::{Interval, SeedSequence};
use cool_core::greedy::{greedy_active_naive, greedy_passive_naive};
use cool_core::hetero::hetero_greedy_naive;
use cool_core::instances::geometric_multi_target;
use cool_energy::{ChargeCycle, FleetGrid};
use cool_geometry::Rect;

/// Audit configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AuditOptions {
    /// Initial battery charges the energy audit must prove the schedule
    /// feasible for. The default, the point `[1, 1]`, is the deployment
    /// contract (nodes ship fully charged) under which a clean `cool lint`
    /// scenario also audits clean; widen it (`--initial-charge 0:1` in the
    /// CLI) to audit cold-start deployments.
    pub initial_charge: Interval,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions {
            initial_charge: Interval::point(1.0),
        }
    }
}

/// The audit verdict: the merged report plus the energy-proof summary.
#[derive(Clone, Debug)]
pub struct AuditOutcome {
    /// Every finding, in pass order.
    pub report: Report,
    /// `true` when the abstract interpreter proved the derived schedule
    /// energy-feasible for **every** initial charge in `[0, 1]` — the
    /// ∀-upgrade of the single-trajectory `COOL-E004` replay.
    pub universally_feasible: bool,
}

/// Audits scenario text, attributing diagnostics to `file`.
#[must_use]
pub fn audit_scenario_text(text: &str, file: &str, options: &AuditOptions) -> AuditOutcome {
    let mut report = scenario::lint_scenario_text(text, file);
    let mut parse_scratch = Report::new();
    let (spec, _lines, fields_usable) = scenario::parse_tolerant(text, &mut parse_scratch);
    if !fields_usable || !report.is_clean() {
        // Structural or field errors: the deep passes would re-derive an
        // instance from unusable fields; the base lint already said why.
        return AuditOutcome {
            report,
            universally_feasible: false,
        };
    }
    let universally_feasible = run_instance_passes(&spec, options, &mut report);
    AuditOutcome {
        report,
        universally_feasible,
    }
}

/// Reads and audits a scenario file from disk.
///
/// # Errors
///
/// Returns the I/O error message when the file cannot be read.
pub fn audit_scenario_path(path: &str, options: &AuditOptions) -> Result<AuditOutcome, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(audit_scenario_text(&text, path, options))
}

/// The instance-derived passes; returns the ∀-feasibility verdict.
fn run_instance_passes(spec: &ScenarioSpec, options: &AuditOptions, report: &mut Report) -> bool {
    if spec.has_profiles() {
        return run_fleet_passes(spec, options, report);
    }
    let Ok(cycle) = ChargeCycle::from_minutes(spec.discharge_minutes, spec.recharge_minutes) else {
        return false; // the field lint already reported the cycle error
    };
    let seeds = SeedSequence::new(spec.seed);
    let mut rng = seeds.nth_rng(0);
    let (utility, positions, targets) = geometric_multi_target(
        Rect::square(spec.region),
        spec.sensors,
        spec.targets,
        spec.radius,
        spec.detection_p,
        &mut rng,
    );
    let slots = cycle.slots_per_period();
    let built = if cycle.rho() > 1.0 {
        greedy_active_naive(&utility, slots)
    } else {
        greedy_passive_naive(&utility, slots)
    };
    let Ok(schedule) = built else {
        return false; // unbuildable schedule: field lint owns the cause
    };

    report.merge(lint_schedule(&schedule, cycle));
    report.merge(lint_schedule_abstract(
        &schedule,
        cycle,
        options.initial_charge,
    ));
    report.merge(lint_dominance(&utility));
    report.merge(lint_dead_slots(&schedule));
    report.merge(lint_connectivity(
        &positions,
        &targets,
        spec.radius,
        spec.comms_radius,
        &schedule,
    ));
    proves_feasible_for_all(&schedule, cycle, Interval::UNIT)
}

/// The heterogeneous analogue of the instance passes: when the scenario
/// sets per-sensor profile lists, the audit derives the fleet grid and the
/// heterogeneous greedy schedule, replays it concretely and abstractly
/// with each sensor's **own** drain/refill rates, and interprets the
/// `--initial-charge` interval as a fraction of each sensor's own battery
/// capacity (not one global capacity). Dead-slot and connectivity passes
/// are slot-grid-shaped and do not apply here.
fn run_fleet_passes(spec: &ScenarioSpec, options: &AuditOptions, report: &mut Report) -> bool {
    let Ok(fleet) = spec.fleet() else {
        return false; // the field lint already reported the profile error
    };
    let Ok(grid) = FleetGrid::build(&fleet) else {
        return false; // non-commensurable or oversized: field lint owns it
    };
    let seeds = SeedSequence::new(spec.seed);
    let mut rng = seeds.nth_rng(0);
    let (utility, _positions, _targets) = geometric_multi_target(
        Rect::square(spec.region),
        spec.sensors,
        spec.targets,
        spec.radius,
        spec.detection_p,
        &mut rng,
    );
    let Ok(schedule) = hetero_greedy_naive(&utility, &grid) else {
        return false; // non-finite utility gain: nothing sound to replay
    };
    let schedule = schedule.to_grid_schedule();
    report.merge(lint_grid_schedule(&schedule, &grid));
    report.merge(lint_grid_schedule_abstract(
        &schedule,
        &grid,
        options.initial_charge,
    ));
    report.merge(lint_dominance(&utility));
    proves_grid_feasible_for_all(&schedule, &grid, Interval::UNIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::CoolCode;

    #[test]
    fn default_scenario_audits_clean_under_deployment_contract() {
        let out = audit_scenario_text("", "default.txt", &AuditOptions::default());
        assert!(out.report.is_clean(), "{}", out.report);
        assert!(
            !out.report.has_code(CoolCode::AbstractEnergyInfeasible),
            "{}",
            out.report
        );
    }

    #[test]
    fn cold_start_audit_flags_early_slots() {
        // From an empty battery, sensors assigned to early slots provably
        // refuse their activation: widening the audited interval to [0, 1]
        // must surface COOL-E025 on the paper testbed.
        let options = AuditOptions {
            initial_charge: Interval::UNIT,
        };
        let out = audit_scenario_text("", "default.txt", &options);
        assert!(
            out.report.has_code(CoolCode::AbstractEnergyInfeasible),
            "{}",
            out.report
        );
        assert!(
            !out.universally_feasible,
            "a schedule with cold-start failures is not universally feasible"
        );
    }

    #[test]
    fn broken_scenario_skips_instance_passes() {
        let out = audit_scenario_text("sensors = lots\n", "bad.txt", &AuditOptions::default());
        assert!(!out.report.is_clean());
        assert!(!out.universally_feasible);
        assert!(!out.report.has_code(CoolCode::DominatedSensor));
    }

    #[test]
    fn audit_is_deterministic() {
        let a = audit_scenario_text("sensors = 30\n", "s.txt", &AuditOptions::default());
        let b = audit_scenario_text("sensors = 30\n", "s.txt", &AuditOptions::default());
        assert_eq!(a.report, b.report);
        assert_eq!(a.universally_feasible, b.universally_feasible);
    }

    #[test]
    fn mixed_fleet_audit_normalises_charge_to_each_sensors_capacity() {
        // Two profiles differing only in battery (30 Wh vs 60 Wh): the
        // deployment contract audits clean, and widening the audited
        // interval surfaces per-sensor COOL-E025 thresholds expressed as
        // fractions of each sensor's OWN capacity. The greedy tie-break
        // pins the first run at tick 0, so a cold start provably fails.
        let text = "sensors = 2\nbattery = 30, 60\n";
        let out = audit_scenario_text(text, "fleet.txt", &AuditOptions::default());
        assert!(out.report.is_clean(), "{}", out.report);
        assert!(
            !out.universally_feasible,
            "a tick-0 run cannot be honoured from an empty battery"
        );
        let options = AuditOptions {
            initial_charge: Interval::UNIT,
        };
        let cold = audit_scenario_text(text, "fleet.txt", &options);
        assert!(
            cold.report.has_code(CoolCode::AbstractEnergyInfeasible),
            "{}",
            cold.report
        );
        assert!(
            cold.report.to_string().contains("of its own capacity"),
            "{}",
            cold.report
        );
    }

    #[test]
    fn mixed_fleet_audit_is_deterministic() {
        let text = "sensors = 3\nbattery = 30, 60\nsolar_eff = 1, 1, 0.5\n";
        let options = AuditOptions {
            initial_charge: Interval::new(0.25, 1.0),
        };
        let a = audit_scenario_text(text, "fleet.txt", &options);
        let b = audit_scenario_text(text, "fleet.txt", &options);
        assert_eq!(a.report, b.report);
        assert_eq!(a.universally_feasible, b.universally_feasible);
    }

    #[test]
    fn broken_profile_list_skips_fleet_passes() {
        let out = audit_scenario_text(
            "sensors = 2\nbattery = 30, nope\n",
            "bad.txt",
            &AuditOptions::default(),
        );
        assert!(!out.report.is_clean());
        assert!(!out.universally_feasible);
        assert!(!out.report.has_code(CoolCode::AbstractEnergyInfeasible));
    }

    #[test]
    fn connectivity_pass_is_wired_through_comms_radius() {
        // A sparse deployment with a tiny comms radius: if the greedy's
        // active sets are coverage-complete anywhere, W009 can fire; either
        // way the audit must stay deterministic and warning-only.
        let text = "sensors = 12\ntargets = 3\ncomms_radius = 1\n";
        let out = audit_scenario_text(text, "s.txt", &AuditOptions::default());
        assert!(out.report.is_clean(), "W009 is a warning: {}", out.report);
    }
}
