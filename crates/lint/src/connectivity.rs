//! Connectivity linting of per-slot active sets (`COOL-W009`).
//!
//! The paper optimises *coverage* and never models the communication
//! graph, but a slot whose active set covers every target while splitting
//! into several communication components cannot relay its detections to a
//! sink — the coverage is real, the data is stranded. Khasteh et al. show
//! coverage implies connectivity only when the communication radius is at
//! least twice the sensing radius; below that threshold this lint is the
//! static check that catches the gap.
//!
//! The pass is opt-in: scenarios enable it with a positive `comms_radius`
//! key (`0`, the default, disables it — the paper's model).

use crate::diag::{Diagnostic, Report};
use cool_common::{CoolCode, UnionFind};
use cool_core::schedule::PeriodSchedule;
use cool_geometry::deployment::{disks_at, sensors_covering};
use cool_geometry::Point;

/// Flags every slot whose active set is coverage-complete (every target
/// geometrically covered by some active sensor) yet splits into more than
/// one component of the communication graph — edges join active sensors at
/// distance ≤ `comms_radius`. Returns an empty report when
/// `comms_radius <= 0` (check disabled) or there are no targets.
#[must_use]
pub fn lint_connectivity(
    positions: &[Point],
    targets: &[Point],
    radius: f64,
    comms_radius: f64,
    schedule: &PeriodSchedule,
) -> Report {
    let mut report = Report::new();
    if comms_radius <= 0.0 || targets.is_empty() {
        return report;
    }
    let disks = disks_at(positions, radius);
    let coverers: Vec<_> = targets
        .iter()
        .map(|&t| sensors_covering(t, &disks))
        .collect();

    for t in 0..schedule.slots_per_period() {
        let active = schedule.active_set(t);
        if active.is_empty() {
            continue; // statically dead: COOL-W008's finding, not ours
        }
        let complete = coverers
            .iter()
            .all(|cov| active.iter().any(|v| cov.contains(v)));
        if !complete {
            continue; // incomplete coverage is not a connectivity finding
        }
        let members: Vec<usize> = active.iter().map(cool_common::SensorId::index).collect();
        let mut uf = UnionFind::new(members.len());
        for (a, &va) in members.iter().enumerate() {
            for (b, &vb) in members.iter().enumerate().skip(a + 1) {
                if positions[va].distance(positions[vb]) <= comms_radius {
                    uf.union(a, b);
                }
            }
        }
        if uf.components() > 1 {
            report.push(
                Diagnostic::new(
                    CoolCode::DisconnectedCover,
                    format!(
                        "slot {t}'s active set covers every target but splits into {} \
                         communication components (comms_radius = {comms_radius})",
                        uf.components()
                    ),
                )
                .with_help(
                    "coverage only implies connectivity when the communication radius is at \
                     least twice the sensing radius; raise comms_radius or densify the \
                     deployment",
                ),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_core::schedule::ScheduleMode;

    /// Two sensors 100 apart, each covering its own nearby target.
    fn split_deployment() -> (Vec<Point>, Vec<Point>) {
        let positions = vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)];
        let targets = vec![Point::new(1.0, 0.0), Point::new(99.0, 0.0)];
        (positions, targets)
    }

    /// Both sensors share slot 0 of a 2-slot period.
    fn both_active() -> PeriodSchedule {
        PeriodSchedule::new(ScheduleMode::ActiveSlot, 2, vec![0, 0])
    }

    #[test]
    fn disconnected_complete_cover_is_w009() {
        let (positions, targets) = split_deployment();
        let r = lint_connectivity(&positions, &targets, 10.0, 20.0, &both_active());
        assert!(r.has_code(CoolCode::DisconnectedCover), "{r}");
        assert!(r.is_clean(), "W009 warns, it does not error");
    }

    #[test]
    fn connected_cover_is_clean() {
        let (positions, targets) = split_deployment();
        let r = lint_connectivity(&positions, &targets, 10.0, 150.0, &both_active());
        assert!(r.diagnostics().is_empty(), "{r}");
    }

    #[test]
    fn incomplete_cover_is_not_flagged() {
        // Only sensor 0 active in slot 0: target 1 uncovered, so the slot
        // is an incomplete (not a disconnected) cover.
        let (positions, targets) = split_deployment();
        let s = PeriodSchedule::new(ScheduleMode::ActiveSlot, 2, vec![0, 1]);
        let r = lint_connectivity(&positions, &targets, 10.0, 20.0, &s);
        assert!(r.diagnostics().is_empty(), "{r}");
    }

    #[test]
    fn zero_comms_radius_disables_the_check() {
        let (positions, targets) = split_deployment();
        let r = lint_connectivity(&positions, &targets, 10.0, 0.0, &both_active());
        assert!(r.diagnostics().is_empty());
    }
}
