//! Diagnostics: a [`Diagnostic`] couples a stable [`CoolCode`] with a
//! message and an optional source location; a [`Report`] collects them and
//! renders either a human-readable listing or machine-readable JSON.

use cool_common::json::escape as json_string;
use cool_common::CoolCode;
use std::fmt;

/// Diagnostic severity, derived from the code class (`E` vs `W`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: the input is suspicious but runnable.
    Warning,
    /// The input violates an invariant; running it would panic or produce
    /// meaningless output.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One finding: a stable code, a message, and an optional location/help.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// The stable diagnostic code.
    pub code: CoolCode,
    /// Human-readable description of this specific finding.
    pub message: String,
    /// Source file the finding points into, when known.
    pub file: Option<String>,
    /// 1-based line number in `file`, when known.
    pub line: Option<usize>,
    /// A suggestion for fixing the finding.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with no location or help attached.
    pub fn new(code: CoolCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            message: message.into(),
            file: None,
            line: None,
            help: None,
        }
    }

    /// Attaches a 1-based source line.
    #[must_use]
    pub fn with_line(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }

    /// Attaches a fix suggestion.
    #[must_use]
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Severity, derived from the code class.
    pub fn severity(&self) -> Severity {
        if self.code.is_error() {
            Severity::Error
        } else {
            Severity::Warning
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.file, self.line) {
            (Some(file), Some(line)) => write!(f, "{file}:{line}: ")?,
            (Some(file), None) => write!(f, "{file}: ")?,
            (None, Some(line)) => write!(f, "line {line}: ")?,
            (None, None) => {}
        }
        write!(
            f,
            "{}[{}]: {}",
            self.severity(),
            self.code.as_str(),
            self.message
        )?;
        if let Some(help) = &self.help {
            write!(f, "\n  help: {help}")?;
        }
        Ok(())
    }
}

/// An ordered collection of diagnostics from one lint run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
    file: Option<String>,
}

impl Report {
    /// An empty report with no file association.
    pub fn new() -> Self {
        Report::default()
    }

    /// An empty report whose diagnostics (and JSON header) name `file`.
    pub fn for_file(file: impl Into<String>) -> Self {
        Report {
            diagnostics: Vec::new(),
            file: Some(file.into()),
        }
    }

    /// The file this report is about, if any.
    pub fn file(&self) -> Option<&str> {
        self.file.as_deref()
    }

    /// Adds a diagnostic, stamping the report's file onto it when the
    /// diagnostic does not already carry one.
    pub fn push(&mut self, mut diagnostic: Diagnostic) {
        if diagnostic.file.is_none() {
            diagnostic.file.clone_from(&self.file);
        }
        self.diagnostics.push(diagnostic);
    }

    /// Appends every diagnostic of `other` (re-stamping unlocated ones with
    /// this report's file).
    pub fn merge(&mut self, other: Report) {
        for d in other.diagnostics {
            self.push(d);
        }
    }

    /// All diagnostics, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// `true` when the report carries no errors (warnings are allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// `true` when the report carries any diagnostic whose code is `code`.
    pub fn has_code(&self, code: CoolCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Machine-readable JSON rendering — one object with a `diagnostics`
    /// array, stable key order, no trailing whitespace.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        // Writing into a String is infallible, so the write! results are
        // discarded.
        let mut out = String::from("{");
        out.push_str("\"tool\":\"cool-lint\",");
        let _ = write!(
            out,
            "\"version\":{},",
            json_string(env!("CARGO_PKG_VERSION"))
        );
        match &self.file {
            Some(file) => {
                let _ = write!(out, "\"file\":{},", json_string(file));
            }
            None => out.push_str("\"file\":null,"),
        }
        let status = if self.is_clean() { "clean" } else { "errors" };
        let _ = write!(out, "\"status\":\"{status}\",");
        let _ = write!(out, "\"error_count\":{},", self.error_count());
        let _ = write!(out, "\"warning_count\":{},", self.warning_count());
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            let _ = write!(out, "\"code\":{},", json_string(d.code.as_str()));
            let _ = write!(out, "\"name\":{},", json_string(d.code.name()));
            let _ = write!(out, "\"summary\":{},", json_string(d.code.summary()));
            let _ = write!(out, "\"severity\":\"{}\",", d.severity());
            let _ = write!(out, "\"message\":{},", json_string(&d.message));
            match &d.file {
                Some(file) => {
                    let _ = write!(out, "\"file\":{},", json_string(file));
                }
                None => out.push_str("\"file\":null,"),
            }
            match d.line {
                Some(line) => {
                    let _ = write!(out, "\"line\":{line},");
                }
                None => out.push_str("\"line\":null,"),
            }
            match &d.help {
                Some(help) => {
                    let _ = write!(out, "\"help\":{}", json_string(help));
                }
                None => out.push_str("\"help\":null"),
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        let noun = |n: usize, s: &str| format!("{n} {s}{}", if n == 1 { "" } else { "s" });
        if self.diagnostics.is_empty() {
            writeln!(f, "clean: no diagnostics")
        } else {
            writeln!(
                f,
                "{}, {}",
                noun(self.error_count(), "error"),
                noun(self.warning_count(), "warning")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_follows_code_class() {
        let e = Diagnostic::new(CoolCode::InvalidProbability, "p = 2");
        let w = Diagnostic::new(CoolCode::ZeroWeightTarget, "target 3");
        assert_eq!(e.severity(), Severity::Error);
        assert_eq!(w.severity(), Severity::Warning);
    }

    #[test]
    fn report_counts_and_cleanliness() {
        let mut r = Report::for_file("s.txt");
        assert!(r.is_clean());
        r.push(Diagnostic::new(CoolCode::ZeroWeightTarget, "w"));
        assert!(r.is_clean(), "warnings alone keep a report clean");
        r.push(Diagnostic::new(CoolCode::EmptySlotCount, "e").with_line(3));
        assert!(!r.is_clean());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_code(CoolCode::EmptySlotCount));
        assert!(!r.has_code(CoolCode::NonIntegralRho));
    }

    #[test]
    fn push_stamps_report_file() {
        let mut r = Report::for_file("a.txt");
        r.push(Diagnostic::new(CoolCode::EmptySlotCount, "e"));
        assert_eq!(r.diagnostics()[0].file.as_deref(), Some("a.txt"));
    }

    #[test]
    fn human_rendering_includes_location_and_help() {
        let mut r = Report::for_file("s.txt");
        r.push(
            Diagnostic::new(
                CoolCode::InvalidProbability,
                "detection_p = 1.5 is out of range",
            )
            .with_line(4)
            .with_help("use a probability in [0, 1]"),
        );
        let text = r.to_string();
        assert!(text.contains("s.txt:4: error[COOL-E005]"), "got: {text}");
        assert!(text.contains("help: use a probability"));
        assert!(text.contains("1 error, 0 warnings"));
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut r = Report::for_file("we\"ird.txt");
        r.push(Diagnostic::new(CoolCode::ScenarioLineMalformed, "line\nbreak").with_line(2));
        let json = r.to_json();
        assert!(json.starts_with("{\"tool\":\"cool-lint\""));
        assert!(json.contains("\"file\":\"we\\\"ird.txt\""));
        assert!(json.contains("\\nbreak"));
        assert!(json.contains("\"status\":\"errors\""));
        assert!(json.contains("\"code\":\"COOL-E008\""));
        assert!(
            json.contains("\"summary\":\"scenario line is not `key = value` or a comment\""),
            "every diagnostic carries its code's one-line summary: {json}"
        );
    }

    #[test]
    fn empty_report_renders_clean() {
        let r = Report::new();
        assert!(r.to_string().contains("clean"));
        assert!(r.to_json().contains("\"status\":\"clean\""));
        assert!(r.to_json().contains("\"diagnostics\":[]"));
    }
}
